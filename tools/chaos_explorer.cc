// Deterministic whole-system chaos explorer (FoundationDB-style seeded
// fault search over the replicated serving stack). Each seed expands into
// one ChaosPlan — a replicated cluster shape, an op schedule (ingest,
// removes, queries, checkpoints, compactions, scrubs, replica kills,
// shard add/remove, crash-restarts), and a set of failpoint fault events
// — which RunChaos executes and then checks the invariant catalog
// (src/chaos/invariants.h) at quiesce. Failing seeds are shrunk to
// minimal repros and written as .plan files a later run can --replay.
//
//   ./build/tools/chaos_explorer --seeds 200          # sweep seeds 1..200
//   ./build/tools/chaos_explorer --seed 42 --print-plan --dry-run
//   ./build/tools/chaos_explorer --replay seed-42.plan --verbose
//
// Exit status: 0 when every seed upheld every invariant, 1 otherwise.
// Prints one machine-readable summary line:
//   CHAOS_RESULT seeds=<n> violations=<m>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/explorer.h"
#include "chaos/plan.h"
#include "chaos/workload.h"

namespace {

namespace fs = std::filesystem;
using lake::chaos::ChaosPlan;
using lake::chaos::ChaosReport;
using lake::chaos::PlanShape;
using lake::chaos::RunOptions;
using lake::chaos::SweepOptions;
using lake::chaos::SweepReport;

struct Args {
  uint64_t first_seed = 1;
  size_t num_seeds = 20;
  uint64_t single_seed = 0;  // 0 = sweep
  bool has_single_seed = false;
  uint32_t num_ops = 0;       // 0 = PlanShape default
  uint32_t num_shards = 0;    // 0 = seed-drawn
  uint32_t num_replicas = 0;  // 0 = seed-drawn
  bool background = false;
  std::string replay_path;
  std::string out_dir = "chaos_repros";
  std::string scratch_dir;
  bool print_plan = false;
  bool dry_run = false;
  bool no_shrink = false;
  bool stop_on_failure = false;
  bool keep_scratch = false;
  bool verbose = false;
  uint64_t watchdog_ms = 120'000;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: chaos_explorer [options]\n"
      "  --seeds N          sweep N consecutive seeds (default 20)\n"
      "  --first-seed N     first seed of the sweep (default 1)\n"
      "  --seed N           run exactly one seed\n"
      "  --replay FILE      run a saved .plan repro instead of a seed\n"
      "  --ops N            ops per generated plan (default 40)\n"
      "  --shards N         pin the shard count (default: seed-drawn)\n"
      "  --replicas N       pin the replica count (default: seed-drawn)\n"
      "  --background       enable background scrubber + compaction\n"
      "  --out DIR          where failing repros are written\n"
      "  --scratch DIR      scratch root for run stores\n"
      "  --print-plan       print the generated plan to stdout\n"
      "  --dry-run          generate/print plans but do not execute\n"
      "  --no-shrink        report failing plans without minimizing\n"
      "  --stop-on-failure  stop the sweep at the first failing seed\n"
      "  --keep-scratch     keep run stores for post-mortem\n"
      "  --watchdog-ms N    per-run hang budget (default 120000)\n"
      "  --verbose          narrate ops and seeds to stderr\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  auto need_value = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds" && need_value(i)) {
      args->num_seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--first-seed" && need_value(i)) {
      args->first_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed" && need_value(i)) {
      args->single_seed = std::strtoull(argv[++i], nullptr, 10);
      args->has_single_seed = true;
    } else if (a == "--replay" && need_value(i)) {
      args->replay_path = argv[++i];
    } else if (a == "--ops" && need_value(i)) {
      args->num_ops = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--shards" && need_value(i)) {
      args->num_shards =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--replicas" && need_value(i)) {
      args->num_replicas =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--background") {
      args->background = true;
    } else if (a == "--out" && need_value(i)) {
      args->out_dir = argv[++i];
    } else if (a == "--scratch" && need_value(i)) {
      args->scratch_dir = argv[++i];
    } else if (a == "--print-plan") {
      args->print_plan = true;
    } else if (a == "--dry-run") {
      args->dry_run = true;
    } else if (a == "--no-shrink") {
      args->no_shrink = true;
    } else if (a == "--stop-on-failure") {
      args->stop_on_failure = true;
    } else if (a == "--keep-scratch") {
      args->keep_scratch = true;
    } else if (a == "--watchdog-ms" && need_value(i)) {
      args->watchdog_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--verbose") {
      args->verbose = true;
    } else if (a == "--help" || a == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      Usage();
      return false;
    }
  }
  return true;
}

PlanShape ShapeFromArgs(const Args& args) {
  PlanShape shape;
  if (args.num_ops != 0) shape.num_ops = args.num_ops;
  shape.num_shards = args.num_shards;
  shape.num_replicas = args.num_replicas;
  shape.background = args.background;
  return shape;
}

int ReportViolations(const ChaosReport& report, uint64_t seed) {
  for (const std::string& v : report.violations) {
    std::fprintf(stderr, "seed %llu VIOLATION: %s\n",
                 static_cast<unsigned long long>(seed), v.c_str());
  }
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  // Scratch default: a per-process directory under the system temp root.
  // (The determinism contract covers plan generation and execution; the
  // scratch path never shapes the schedule.)
  if (args.scratch_dir.empty()) {
    args.scratch_dir =
        (fs::temp_directory_path() /
         ("chaos_explorer_" + std::to_string(::getpid())))
            .string();
  }

  RunOptions run;
  run.scratch_dir = args.scratch_dir;
  run.watchdog_budget_ms = args.watchdog_ms;
  run.keep_scratch = args.keep_scratch;
  run.verbose = args.verbose;

  // --replay: run one saved plan, no generation involved.
  if (!args.replay_path.empty()) {
    auto loaded = ChaosPlan::Load(args.replay_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", args.replay_path.c_str(),
                   loaded.status().ToString().c_str());
      return 2;
    }
    const ChaosPlan& plan = loaded.value();
    if (args.print_plan) std::fputs(plan.Serialize().c_str(), stdout);
    if (args.dry_run) {
      std::printf("CHAOS_RESULT seeds=0 violations=0\n");
      return 0;
    }
    run.scratch_dir = (fs::path(args.scratch_dir) / "replay").string();
    const ChaosReport report = lake::chaos::RunChaos(plan, run);
    const int rc = ReportViolations(report, plan.seed);
    std::printf("CHAOS_RESULT seeds=1 violations=%zu\n",
                report.violations.size());
    return rc;
  }

  // --seed: one generated plan.
  if (args.has_single_seed) {
    const ChaosPlan plan =
        lake::chaos::MakePlan(args.single_seed, ShapeFromArgs(args));
    if (args.print_plan) std::fputs(plan.Serialize().c_str(), stdout);
    if (args.dry_run) {
      std::printf("CHAOS_RESULT seeds=0 violations=0\n");
      return 0;
    }
    run.scratch_dir =
        (fs::path(args.scratch_dir) / ("seed-" + std::to_string(plan.seed)))
            .string();
    const ChaosReport report = lake::chaos::RunChaos(plan, run);
    const int rc = ReportViolations(report, plan.seed);
    std::printf("CHAOS_RESULT seeds=1 violations=%zu\n",
                report.violations.size());
    return rc;
  }

  // Sweep.
  SweepOptions sweep;
  sweep.first_seed = args.first_seed;
  sweep.num_seeds = args.num_seeds;
  sweep.shape = ShapeFromArgs(args);
  sweep.run = run;
  sweep.shrink = !args.no_shrink;
  sweep.out_dir = args.out_dir;
  sweep.stop_on_failure = args.stop_on_failure;
  sweep.verbose = args.verbose;
  if (args.print_plan) {
    for (size_t i = 0; i < sweep.num_seeds; ++i) {
      const ChaosPlan plan =
          lake::chaos::MakePlan(sweep.first_seed + i, sweep.shape);
      std::fputs(plan.Serialize().c_str(), stdout);
    }
  }
  if (args.dry_run) {
    std::printf("CHAOS_RESULT seeds=0 violations=0\n");
    return 0;
  }

  const SweepReport report = lake::chaos::SweepSeeds(sweep);
  size_t violations = 0;
  for (const auto& failure : report.failures) {
    violations += failure.violations.size();
    std::fprintf(stderr, "seed %llu FAILED (%zu ops, %zu faults after shrink)\n",
                 static_cast<unsigned long long>(failure.seed),
                 failure.plan.ops.size(), failure.plan.faults.size());
    for (const std::string& v : failure.violations) {
      std::fprintf(stderr, "  violation: %s\n", v.c_str());
    }
    if (!failure.repro_path.empty()) {
      std::fprintf(stderr, "  repro: %s\n", failure.repro_path.c_str());
    }
  }
  std::printf("CHAOS_RESULT seeds=%zu violations=%zu\n", report.seeds_run,
              violations);
  return report.seeds_failed == 0 ? 0 : 1;
}
