// Regenerates the checked-in back-compat golden artifacts in tests/data:
//
//   pre_ingest_snap.lks  — a PR 2 era snapshot envelope ("LKS1"): catalog
//                          table/ sections plus index/josie and
//                          index/starmie.hnsw, and NO ingest/ sections.
//   metrics_v2.bin       — a serialized metrics snapshot ("LSM2") with
//                          hand-picked values.
//   wal_era/             — a PR 5 era committed store directory: snapshot
//                          generation 1 covering the base plus one delta
//                          table ("wal_covered") with an ingest/wal
//                          durable-LSN section, alongside a wal/ segment
//                          holding the covered batch (LSN 1) and one
//                          acknowledged-but-unchecked tail batch (LSN 2,
//                          adds "wal_tail").
//
// store_compat_test pins today's readers to these bytes, so a format
// change that breaks old snapshots fails a test instead of a restart.
// Only regenerate the goldens for an INTENTIONAL format break:
//
//   ./build/tools/make_compat_golden tests/data
//
// The corpus is hand-written literals (no generator dependency) so the
// artifacts are reproducible from this file alone.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "ingest/live_engine.h"
#include "search/discovery_engine.h"
#include "serve/metrics.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "table/catalog.h"
#include "table/csv.h"
#include "util/serialize.h"

namespace {

constexpr const char* kCsvs[][2] = {
    {"city_population",
     "city,country,population\n"
     "oslo,norway,700000\n"
     "bergen,norway,290000\n"
     "aarhus,denmark,280000\n"
     "malmo,sweden,350000\n"
     "espoo,finland,290000\n"
     "tromso,norway,77000\n"},
    {"city_weather",
     "city,season,avg_temp\n"
     "oslo,winter,-4.3\n"
     "bergen,winter,1.5\n"
     "aarhus,summer,17.2\n"
     "malmo,summer,18.1\n"
     "espoo,winter,-5.0\n"
     "tromso,winter,-3.8\n"},
    {"country_codes",
     "country,iso,calling_code\n"
     "norway,NO,47\n"
     "denmark,DK,45\n"
     "sweden,SE,46\n"
     "finland,FI,358\n"
     "iceland,IS,354\n"},
};

// Mutations logged into the wal_era golden: "wal_covered" lands in the
// checkpointed snapshot (WAL LSN 1, at or below the durable LSN), while
// "wal_tail" exists only as the WAL's tail record (LSN 2) — visible to
// WAL-aware recovery, invisible (but harmless) to pre-WAL readers.
constexpr const char* kWalCoveredCsv =
    "city,landmark,year_built\n"
    "oslo,opera_house,2008\n"
    "bergen,bryggen,1702\n"
    "tromso,arctic_cathedral,1965\n";
constexpr const char* kWalTailCsv =
    "city,airport,iata\n"
    "oslo,gardermoen,OSL\n"
    "bergen,flesland,BGO\n"
    "aarhus,tirstrup,AAR\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string out_dir = argv[1];

  lake::DataLakeCatalog catalog;
  for (const auto& [name, csv] : kCsvs) {
    auto table = lake::ReadCsvString(csv, name);
    if (!table.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", name,
                   table.status().ToString().c_str());
      return 1;
    }
    auto id = catalog.AddTable(std::move(table).value());
    if (!id.ok()) {
      std::fprintf(stderr, "add %s: %s\n", name,
                   id.status().ToString().c_str());
      return 1;
    }
  }

  // The options store_compat_test mirrors: persistable indexes (JOSIE,
  // Starmie) on, the heavyweight long tail off.
  lake::DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  lake::DiscoveryEngine engine(&catalog, nullptr, eopts);

  lake::store::SnapshotWriter snapshot;
  lake::Status status = catalog.SaveSnapshot(&snapshot);
  if (status.ok()) status = engine.SaveIndexSections(&snapshot);
  if (!status.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", status.ToString().c_str());
    return 1;
  }
  {
    const std::string bytes = snapshot.Serialize();
    std::ofstream out(out_dir + "/pre_ingest_snap.lks", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write pre_ingest_snap.lks\n");
      return 1;
    }
  }

  // Metrics golden: literal values only, so the bytes are a pure function
  // of the serialization code.
  lake::serve::MetricsRegistry::Snapshot metrics;
  metrics.counters = {{"serve.cache.hits", 41}, {"serve.queries", 1297}};
  metrics.gauges = {{"serve.degraded", 0}, {"serve.quarantined_sections", 2}};
  metrics.histograms.push_back(lake::serve::MetricsRegistry::HistogramRow{
      "serve.latency.keyword", 512, 133.5, 120.0, 240.0, 310.5, 402.25});
  {
    std::ostringstream buf;
    lake::BinaryWriter writer(&buf);
    status = lake::serve::WriteSnapshot(metrics, &writer);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics: %s\n", status.ToString().c_str());
      return 1;
    }
    const std::string bytes = std::move(buf).str();
    std::ofstream out(out_dir + "/metrics_v2.bin", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write metrics_v2.bin\n");
      return 1;
    }
  }

  // WAL-era store directory golden: a real committed SnapshotStore dir
  // with a live WAL, produced by the engine itself so the bytes track the
  // actual write path. Layout after this block:
  //   wal_era/MANIFEST, wal_era/<snapshot gen 1>,
  //   wal_era/wal/wal-00000000000000000001.log  (LSN 1 covered, LSN 2 tail)
  const std::string wal_dir = out_dir + "/wal_era";
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  {
    auto live_catalog = std::make_shared<lake::DataLakeCatalog>();
    for (const auto& [name, csv] : kCsvs) {
      auto table = lake::ReadCsvString(csv, name);
      if (!table.ok() ||
          !live_catalog->AddTable(std::move(table).value()).ok()) {
        std::fprintf(stderr, "wal_era: cannot rebuild base catalog\n");
        return 1;
      }
    }
    lake::store::SnapshotStore store(wal_dir);
    lake::ingest::LiveEngine::Options lopts;
    lopts.base_options = eopts;
    lopts.store = &store;
    lopts.enable_wal = true;
    lopts.wal_options.sync = lake::store::WalWriter::SyncPolicy::kNone;
    lake::ingest::LiveEngine live(live_catalog, lopts);

    auto covered = lake::ReadCsvString(kWalCoveredCsv, "wal_covered");
    if (!covered.ok() ||
        !live.AddTable(std::move(covered).value()).ok()) {  // WAL LSN 1
      std::fprintf(stderr, "wal_era: covered add failed\n");
      return 1;
    }
    status = live.Checkpoint();  // durable LSN 1, snapshot generation 1
    if (!status.ok()) {
      std::fprintf(stderr, "wal_era checkpoint: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    auto tail = lake::ReadCsvString(kWalTailCsv, "wal_tail");
    if (!tail.ok() || !live.AddTable(std::move(tail).value()).ok()) {
      std::fprintf(stderr, "wal_era: tail add failed\n");  // WAL LSN 2
      return 1;
    }
  }

  std::printf(
      "wrote %s/pre_ingest_snap.lks (%zu sections), metrics_v2.bin, "
      "and wal_era/\n",
      out_dir.c_str(), snapshot.num_sections());
  return 0;
}
