// Regenerates the checked-in back-compat golden artifacts in tests/data:
//
//   pre_ingest_snap.lks  — a PR 2 era snapshot envelope ("LKS1"): catalog
//                          table/ sections plus index/josie and
//                          index/starmie.hnsw, and NO ingest/ sections.
//   metrics_v2.bin       — a serialized metrics snapshot ("LSM2") with
//                          hand-picked values.
//
// store_compat_test pins today's readers to these bytes, so a format
// change that breaks old snapshots fails a test instead of a restart.
// Only regenerate the goldens for an INTENTIONAL format break:
//
//   ./build/tools/make_compat_golden tests/data
//
// The corpus is hand-written literals (no generator dependency) so the
// artifacts are reproducible from this file alone.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "search/discovery_engine.h"
#include "serve/metrics.h"
#include "store/snapshot.h"
#include "table/catalog.h"
#include "table/csv.h"
#include "util/serialize.h"

namespace {

constexpr const char* kCsvs[][2] = {
    {"city_population",
     "city,country,population\n"
     "oslo,norway,700000\n"
     "bergen,norway,290000\n"
     "aarhus,denmark,280000\n"
     "malmo,sweden,350000\n"
     "espoo,finland,290000\n"
     "tromso,norway,77000\n"},
    {"city_weather",
     "city,season,avg_temp\n"
     "oslo,winter,-4.3\n"
     "bergen,winter,1.5\n"
     "aarhus,summer,17.2\n"
     "malmo,summer,18.1\n"
     "espoo,winter,-5.0\n"
     "tromso,winter,-3.8\n"},
    {"country_codes",
     "country,iso,calling_code\n"
     "norway,NO,47\n"
     "denmark,DK,45\n"
     "sweden,SE,46\n"
     "finland,FI,358\n"
     "iceland,IS,354\n"},
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string out_dir = argv[1];

  lake::DataLakeCatalog catalog;
  for (const auto& [name, csv] : kCsvs) {
    auto table = lake::ReadCsvString(csv, name);
    if (!table.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", name,
                   table.status().ToString().c_str());
      return 1;
    }
    auto id = catalog.AddTable(std::move(table).value());
    if (!id.ok()) {
      std::fprintf(stderr, "add %s: %s\n", name,
                   id.status().ToString().c_str());
      return 1;
    }
  }

  // The options store_compat_test mirrors: persistable indexes (JOSIE,
  // Starmie) on, the heavyweight long tail off.
  lake::DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  lake::DiscoveryEngine engine(&catalog, nullptr, eopts);

  lake::store::SnapshotWriter snapshot;
  lake::Status status = catalog.SaveSnapshot(&snapshot);
  if (status.ok()) status = engine.SaveIndexSections(&snapshot);
  if (!status.ok()) {
    std::fprintf(stderr, "snapshot: %s\n", status.ToString().c_str());
    return 1;
  }
  {
    const std::string bytes = snapshot.Serialize();
    std::ofstream out(out_dir + "/pre_ingest_snap.lks", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write pre_ingest_snap.lks\n");
      return 1;
    }
  }

  // Metrics golden: literal values only, so the bytes are a pure function
  // of the serialization code.
  lake::serve::MetricsRegistry::Snapshot metrics;
  metrics.counters = {{"serve.cache.hits", 41}, {"serve.queries", 1297}};
  metrics.gauges = {{"serve.degraded", 0}, {"serve.quarantined_sections", 2}};
  metrics.histograms.push_back(lake::serve::MetricsRegistry::HistogramRow{
      "serve.latency.keyword", 512, 133.5, 120.0, 240.0, 310.5, 402.25});
  {
    std::ostringstream buf;
    lake::BinaryWriter writer(&buf);
    status = lake::serve::WriteSnapshot(metrics, &writer);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics: %s\n", status.ToString().c_str());
      return 1;
    }
    const std::string bytes = std::move(buf).str();
    std::ofstream out(out_dir + "/metrics_v2.bin", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write metrics_v2.bin\n");
      return 1;
    }
  }

  std::printf("wrote %s/pre_ingest_snap.lks (%zu sections) and metrics_v2.bin\n",
              out_dir.c_str(), snapshot.num_sections());
  return 0;
}
