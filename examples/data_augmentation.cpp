// ARDA-style data augmentation (§2.7): improve a regression task by
// joining features discovered in the lake.
//
// The lake holds a table whose numeric column drives the prediction
// target; the base table only has the join key and a weak feature. The
// augmenter discovers the joinable table with JOSIE, harvests candidate
// features, filters them against injected noise, and reports the
// cross-validated R² before and after.
//
//   $ ./data_augmentation

#include <cstdio>

#include "apps/augmentation.h"
#include "search/join_josie.h"
#include "table/catalog.h"
#include "util/random.h"

int main() {
  lake::Rng rng(2024);
  const size_t n = 160;

  // Build the lake: a "drivers" table keyed by entity id, plus noise
  // tables that should NOT be selected.
  std::vector<std::string> keys;
  std::vector<double> driver(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("entity" + std::to_string(i));
    driver[i] = rng.NextGaussian();
  }
  lake::DataLakeCatalog catalog;
  {
    lake::Table t("economics");
    lake::Column key("entity", lake::DataType::kString);
    lake::Column gdp("gdp index", lake::DataType::kDouble);
    lake::Column junk("random walk", lake::DataType::kDouble);
    for (size_t i = 0; i < n; ++i) {
      key.Append(lake::Value(keys[i]));
      gdp.Append(lake::Value(driver[i]));
      junk.Append(lake::Value(rng.NextGaussian()));
    }
    (void)t.AddColumn(std::move(key));
    (void)t.AddColumn(std::move(gdp));
    (void)t.AddColumn(std::move(junk));
    (void)catalog.AddTable(std::move(t));
  }
  {
    lake::Table t("unrelated");
    lake::Column key("code", lake::DataType::kString);
    lake::Column x("x", lake::DataType::kDouble);
    for (size_t i = 0; i < 50; ++i) {
      key.Append(lake::Value("zz" + std::to_string(i)));
      x.Append(lake::Value(rng.NextGaussian()));
    }
    (void)t.AddColumn(std::move(key));
    (void)t.AddColumn(std::move(x));
    (void)catalog.AddTable(std::move(t));
  }

  // The analyst's base table: key + weak feature; target depends mostly on
  // the lake's hidden driver.
  lake::Table base("training");
  {
    lake::Column key("entity", lake::DataType::kString);
    lake::Column weak("weak feature", lake::DataType::kDouble);
    for (size_t i = 0; i < n; ++i) {
      key.Append(lake::Value(keys[i]));
      weak.Append(lake::Value(rng.NextGaussian()));
    }
    (void)base.AddColumn(std::move(key));
    (void)base.AddColumn(std::move(weak));
  }
  std::vector<double> target(n);
  for (size_t i = 0; i < n; ++i) {
    double weak_v;
    base.column(1).cell(i).ToDouble(&weak_v);
    target[i] = 0.3 * weak_v + 2.0 * driver[i] + rng.NextGaussian() * 0.1;
  }

  lake::JosieJoinSearch join(&catalog);
  lake::DataAugmenter augmenter(&catalog, &join);
  auto report = augmenter.Augment(base, /*key_column=*/0,
                                  /*base_feature_columns=*/{1}, target);
  if (!report.ok()) {
    std::fprintf(stderr, "augmentation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("candidate features considered: %zu\n", report->candidates);
  std::printf("selected features:\n");
  for (const auto& f : report->selected) {
    std::printf("  %-28s coefficient=%+.3f\n", f.name.c_str(), f.coefficient);
  }
  std::printf("\ncross-validated R²: base=%.3f  augmented=%.3f\n",
              report->base_r2, report->augmented_r2);
  std::printf(report->augmented_r2 > report->base_r2
                  ? "augmentation improved the model.\n"
                  : "augmentation did not help on this run.\n");
  return 0;
}
