// Table understanding (§2.2) end to end: semantic type detection,
// unsupervised domain discovery, homograph detection, and InfoGather-style
// entity augmentation — the offline "understanding" half of Figure 1.
//
//   $ ./table_understanding

#include <cstdio>

#include "annotate/domain_discovery.h"
#include "annotate/semantic_type_detector.h"
#include "apps/homograph.h"
#include "apps/infogather.h"
#include "lakegen/generator.h"

int main() {
  lake::GeneratorOptions opts;
  opts.seed = 2026;
  opts.num_domains = 8;
  opts.num_templates = 5;
  opts.tables_per_template = 6;
  opts.homograph_count = 6;
  lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();
  std::printf("lake: %zu tables, %zu columns\n\n", lake.catalog.num_tables(),
              lake.catalog.num_columns());

  // --- Semantic type detection -----------------------------------------
  // Train on the first tables of each template (labels from the curated
  // KB), annotate a held-out table.
  lake::WordEmbedding words(lake::WordEmbedding::Options{.dim = 48});
  std::vector<lake::LabeledColumn> train;
  for (const auto& group : lake.unionable_groups) {
    for (size_t i = 0; i + 1 < group.size(); ++i) {
      const lake::Table& t = lake.catalog.table(group[i]);
      for (size_t c = 0; c < t.num_columns(); ++c) {
        if (t.column(c).IsNumeric()) continue;
        auto vote = lake.kb.ColumnType(t.column(c).DistinctStrings());
        if (vote.ok()) {
          train.push_back(lake::LabeledColumn{&t, c, vote.value().type});
        }
      }
    }
  }
  lake::SemanticTypeDetector detector(&words);
  if (!detector.Train(train).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  const lake::TableId held_out = lake.unionable_groups[0].back();
  const lake::Table& sample = lake.catalog.table(held_out);
  std::printf("== semantic types of held-out table '%s'\n",
              sample.name().c_str());
  for (size_t c = 0; c < sample.num_columns(); ++c) {
    auto ann = detector.AnnotateInContext(sample, c);
    if (!ann.ok()) continue;
    std::printf("  %-18s -> %-18s (confidence %.2f)\n",
                sample.column(c).name().c_str(),
                ann.value().type_label.c_str(), ann.value().confidence);
  }

  // --- Domain discovery --------------------------------------------------
  const auto domains = lake::DomainDiscovery().Discover(lake.catalog);
  std::printf("\n== discovered domains (top 5 of %zu)\n", domains.size());
  for (size_t d = 0; d < domains.size() && d < 5; ++d) {
    std::printf("  domain %zu: %zu values across %zu columns, e.g. \"%s\"\n",
                d, domains[d].values.size(),
                domains[d].member_columns.size(),
                domains[d].representative.c_str());
  }

  // --- Homograph detection -----------------------------------------------
  lake::HomographDetector::Options hopts;
  hopts.sample_sources = 0;
  const auto homographs =
      lake::HomographDetector(&lake.catalog, hopts).TopHomographs(5);
  std::printf("\n== homograph candidates (%zu planted)\n",
              lake.homographs.size());
  for (const auto& h : homographs) {
    std::printf("  %-18s centrality=%.0f, appears in %zu columns\n",
                h.value.c_str(), h.centrality, h.column_count);
  }

  // --- Entity augmentation ------------------------------------------------
  // Pick a few subject entities and ask for the second attribute of their
  // template by name.
  const lake::Table& source = lake.catalog.table(lake.unionable_groups[0][0]);
  std::vector<std::string> entities;
  for (size_t r = 0; r < 3 && r < source.num_rows(); ++r) {
    entities.push_back(source.column(0).cell(r).ToString());
  }
  const std::string attribute = source.column(1).name();
  lake::InfoGatherAugmenter augmenter(&lake.catalog);
  auto augmented = augmenter.AugmentByAttribute(entities, attribute);
  std::printf("\n== InfoGather: '%s' of %zu entities\n", attribute.c_str(),
              entities.size());
  if (augmented.ok()) {
    for (const auto& av : *augmented) {
      std::printf("  %-16s -> %-16s (confidence %.2f, %zu providers)\n",
                  av.entity.c_str(),
                  av.value.empty() ? "(unknown)" : av.value.c_str(),
                  av.confidence, av.providers);
    }
  }
  return 0;
}
