// The serving layer, end to end: a QueryService multiplexing concurrent
// keyword/join/union queries over one DiscoveryEngine, with a result
// cache, per-query deadlines, overload backpressure, and metrics.
//
// Walkthrough:
//   1. submit one query of each kind and print the answers,
//   2. repeat a query to show the cache hit (and the latency drop),
//   3. set a 0ms deadline to show deadline enforcement,
//   4. dump the metrics registry every component reported into.
//
//   $ ./serve_demo

#include <chrono>
#include <cstdio>
#include <vector>

#include "lakegen/generator.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"

namespace {

using lake::serve::QueryKind;
using lake::serve::QueryRequest;
using lake::serve::QueryResponse;
using lake::serve::QueryService;

void PrintResponse(const char* label, const lake::DataLakeCatalog& catalog,
                   const QueryResponse& r) {
  std::printf("%s: %s in %.2fms%s\n", label,
              r.status.ok() ? "ok" : r.status.ToString().c_str(),
              r.latency_ms, r.cache_hit ? " (cache hit)" : "");
  for (const auto& t : r.tables) {
    std::printf("  %-28s score=%.3f %s\n",
                catalog.table(t.table_id).name().c_str(), t.score,
                t.why.c_str());
  }
  for (const auto& c : r.columns) {
    const lake::Table& t = catalog.table(c.column.table_id);
    std::printf("  %-28s col=%-12s score=%.3f %s\n", t.name().c_str(),
                t.column(c.column.column_index).name().c_str(), c.score,
                c.why.c_str());
  }
}

}  // namespace

int main() {
  lake::GeneratorOptions gopts;
  gopts.seed = 19;
  gopts.num_domains = 8;
  gopts.num_templates = 4;
  gopts.tables_per_template = 5;
  lake::GeneratedLake lake = lake::LakeGenerator(gopts).Generate();

  lake::DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_tus = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  lake::DiscoveryEngine engine(&lake.catalog, &lake.kb, eopts);
  std::printf("lake: %zu tables, engine ready\n\n",
              lake.catalog.num_tables());

  QueryService::Options sopts;
  sopts.num_workers = 4;
  QueryService service(&engine, sopts);

  // 1. One query of each kind. Submit returns a future + cancel handle;
  //    Execute is the synchronous convenience wrapper.
  QueryRequest keyword;
  keyword.kind = QueryKind::kKeyword;
  keyword.keyword = lake.topic_of[0];
  keyword.k = 3;
  PrintResponse("keyword", lake.catalog, service.Execute(keyword));

  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.join_method = lake::JoinMethod::kJosie;
  join.values = lake.catalog.table(0).column(0).DistinctStrings();
  join.k = 3;
  std::printf("\n");
  PrintResponse("join", lake.catalog, service.Execute(join));

  QueryRequest un;
  un.kind = QueryKind::kUnion;
  un.union_method = lake::UnionMethod::kStarmie;
  un.union_table = &lake.catalog.table(0);
  un.exclude = 0;
  un.k = 3;
  std::printf("\n");
  PrintResponse("union", lake.catalog, service.Execute(un));

  // 2. The same join again: answered from the result cache.
  std::printf("\n");
  PrintResponse("join (repeat)", lake.catalog, service.Execute(join));

  // 3. An impossible deadline: the service fails the query with
  //    kDeadlineExceeded instead of running it, and never caches it.
  QueryRequest hurried = un;
  hurried.deadline = std::chrono::milliseconds(0);
  std::printf("\n");
  PrintResponse("union with 0ms deadline", lake.catalog,
                service.Execute(hurried));

  // 4. Everything above was measured.
  std::printf("\n== metrics\n%s", service.metrics().ToText().c_str());
  const auto cache = service.cache().GetStats();
  std::printf(
      "cache: %llu hits / %llu misses (rate %.2f), %llu entries, %llu "
      "bytes\n",
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), cache.hit_rate(),
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.bytes));
  return 0;
}
