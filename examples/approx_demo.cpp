// The sampling-based approximate discovery tier, end to end.
//
// Demonstrates the accuracy/latency knob the survey's future-directions
// section calls for:
//   - approximate top-k join search from bottom-k samples, every answer
//     carrying a confidence interval (or the exact value when the
//     adaptive verifier had to fall back),
//   - tightening the error budget: narrower intervals, more sampling
//     work, more exact fallbacks,
//   - the serving layer routing an approx_ok request to the cheap tier
//     and flagging the response approximate,
//   - agreement with the exact domain search on the same query.
//
//   $ ./approx_demo

#include <cstdio>

#include "approx/verifier.h"
#include "lakegen/benchmark_lakes.h"
#include "search/discovery_engine.h"
#include "serve/query_service.h"

namespace {

void PrintColumns(const lake::DataLakeCatalog& catalog,
                  const std::vector<lake::ColumnResult>& results) {
  for (const auto& r : results) {
    const lake::Table& t = catalog.table(r.column.table_id);
    std::printf("  %-22s %s\n", t.name().c_str(), r.why.c_str());
  }
}

}  // namespace

int main() {
  // A skewed-set lake: a few large columns, a long tail of small ones —
  // the shape where sampling pays off.
  lake::SkewedSetsOptions wopts;
  wopts.seed = 101;
  wopts.num_sets = 300;
  wopts.max_set_size = 4096;
  const lake::SkewedSetsWorkload workload =
      lake::MakeSkewedSetsWorkload(wopts);
  lake::DataLakeCatalog catalog;
  for (size_t s = 0; s < workload.sets.size(); ++s) {
    lake::Table t("set" + std::to_string(s));
    lake::Column c("values", lake::DataType::kString);
    for (const auto& v : workload.sets[s]) c.Append(lake::Value(v));
    if (!t.AddColumn(std::move(c)).ok()) return 1;
    if (!catalog.AddTable(std::move(t)).ok()) return 1;
  }
  std::printf("lake: %zu single-column tables\n", catalog.num_tables());

  lake::DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  const lake::DiscoveryEngine engine(&catalog, nullptr, eopts);
  const std::vector<std::string>& query = workload.queries[0];
  std::printf("query: %zu values\n\n", query.size());

  std::printf("== exact containment (the ground truth this approximates)\n");
  PrintColumns(catalog,
               engine.Joinable(query, lake::JoinMethod::kExactContainment, 5)
                   .value_or({}));

  for (double budget : {0.2, 0.05}) {
    lake::approx::ApproxQueryStats stats;
    std::printf("\n== approximate tier, error budget %.2f\n", budget);
    PrintColumns(catalog, engine
                              .Joinable(query, lake::JoinMethod::kApprox, 5,
                                        nullptr, budget, &stats)
                              .value_or({}));
    std::printf("  [%zu estimates, %zu interval decisions, %zu exact "
                "fallbacks]\n",
                stats.estimates, stats.interval_decisions,
                stats.exact_fallbacks);
  }

  // Through the serving layer: approx_ok lets the service route the join
  // to the cheap tier; the response is marked approximate and cached
  // under its own key.
  lake::serve::QueryService service(&engine, {});
  lake::serve::QueryRequest request;
  request.kind = lake::serve::QueryKind::kJoin;
  request.join_method = lake::JoinMethod::kJosie;  // what the client asked
  request.approx_ok = true;                        // what the client allows
  request.values = query;
  request.k = 5;
  const lake::serve::QueryResponse response = service.Execute(request);
  std::printf("\n== served with approx_ok: served_by=%s approx=%s\n",
              response.served_by.c_str(), response.approx ? "yes" : "no");
  PrintColumns(catalog, response.columns);
  return response.status.ok() && response.approx ? 0 : 1;
}
