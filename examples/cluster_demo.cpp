// Sharded, replicated serving, end to end: a ClusterEngine partitions a
// generated lake across shards with a consistent-hash ring, serves
// scatter-gather top-k identical to one unpartitioned engine, survives a
// replica kill without losing a result, degrades (instead of failing)
// when a whole shard dies, and rebalances online when a shard is added.
//
// Walkthrough:
//   1. build a 3-shard x 2-replica cluster and show the partition map,
//   2. keyword-search through the cluster-mode QueryService: merged
//      results carry (table, shard) provenance,
//   3. kill one replica per shard — answers unchanged (failover),
//   4. kill BOTH replicas of one shard — partial answer flagged degraded
//      with the missing shard listed, never a hung or failed query,
//   5. ingest a new table: it routes to its ring owner and is searchable,
//   6. add a fourth shard: ~1/4 of the tables migrate, nothing is lost.
//
//   $ ./cluster_demo

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"

namespace {

using lake::cluster::ClusterEngine;
using lake::cluster::TableQueryResponse;
using lake::serve::QueryKind;
using lake::serve::QueryRequest;
using lake::serve::QueryResponse;
using lake::serve::QueryService;

void PrintResponse(const char* label, const QueryResponse& r) {
  std::printf("%s: %s%s in %.2fms\n", label,
              r.status.ok() ? "ok" : r.status.ToString().c_str(),
              r.degraded ? " (degraded)" : "", r.latency_ms);
  for (size_t i = 0; i < r.tables.size(); ++i) {
    std::printf("  %-32s score=%.3f  shard=%u\n",
                i < r.table_names.size() ? r.table_names[i].c_str() : "?",
                r.tables[i].score,
                i < r.shards.size() ? r.shards[i] : 0);
  }
  for (uint32_t missing : r.missing_shards) {
    std::printf("  !! shard %u missing from this answer\n", missing);
  }
}

void PrintPartitionMap(const ClusterEngine& cluster) {
  std::printf("partition map (%zu shards, %zu replicas each):\n",
              cluster.num_shards(), cluster.num_replicas());
  for (const ClusterEngine::ShardHealth& sh : cluster.Health()) {
    std::printf("  shard %u: %zu tables, %zu/%zu replicas alive\n", sh.shard,
                sh.tables, sh.replicas_alive, sh.replicas.size());
  }
}

}  // namespace

int main() {
  lake::GeneratorOptions gopts;
  gopts.seed = 17;
  gopts.num_domains = 6;
  gopts.num_templates = 3;
  gopts.tables_per_template = 5;
  gopts.min_rows = 30;
  gopts.max_rows = 60;
  lake::GeneratedLake lake = lake::LakeGenerator(gopts).Generate();

  // --- 1. build the cluster --------------------------------------------
  ClusterEngine::Options copts;
  copts.num_shards = 3;
  copts.num_replicas = 2;
  copts.engine.base_options.build_pexeso = false;
  copts.engine.base_options.build_mate = false;
  copts.engine.base_options.build_correlated = false;
  copts.engine.base_options.build_santos = false;
  copts.engine.base_options.build_d3l = false;
  copts.engine.base_options.synthesize_kb = false;
  copts.engine.base_options.train_annotator = false;
  copts.engine.kb = &lake.kb;
  ClusterEngine cluster(lake.catalog, copts);
  std::printf("built a cluster over %zu tables\n", lake.catalog.num_tables());
  PrintPartitionMap(cluster);

  // --- 2. scatter-gather through the serving layer ---------------------
  QueryService service(&cluster, QueryService::Options{});
  QueryRequest req;
  req.kind = QueryKind::kKeyword;
  req.keyword = lake.topic_of[0];
  req.k = 5;
  std::printf("\nkeyword '%s' across all shards\n", req.keyword.c_str());
  PrintResponse("healthy", service.Execute(req));

  // --- 3. kill one replica per shard: failover, exact answers ----------
  std::printf("\nkilling replica 0 of every shard (siblings take over)\n");
  for (uint32_t s = 0; s < 3; ++s) (void)cluster.KillReplica(s, 0);
  req.bypass_cache = true;
  PrintResponse("one replica down per shard", service.Execute(req));

  // --- 4. kill a whole shard: degraded partial answer ------------------
  std::printf("\nkilling the second replica of shard 0 (whole shard down)\n");
  (void)cluster.KillReplica(0, 1);
  PrintResponse("shard 0 dark", service.Execute(req));
  for (uint32_t s = 0; s < 3; ++s) {
    (void)cluster.ReviveReplica(s, 0);
  }
  (void)cluster.ReviveReplica(0, 1);

  // --- 5. ingest routes to the ring owner ------------------------------
  lake::Table incoming = lake.catalog.table(0);
  incoming.set_name("streamed_orders_2026");
  lake::ingest::LiveEngine::Batch batch;
  batch.adds.push_back(std::move(incoming));
  (void)cluster.ApplyBatch(std::move(batch));
  std::printf("\ningested 'streamed_orders_2026' -> shard %u (ring owner); "
              "cluster now serves %zu tables\n",
              cluster.OwnerOf("streamed_orders_2026"),
              cluster.TotalVisibleTables());

  // --- 6. online rebalance ---------------------------------------------
  const auto stats = cluster.AddShard();
  if (stats.ok()) {
    std::printf("\nadded shard %u: moved %zu of %zu tables, %.1fms; "
                "no query ever saw a gap\n",
                stats->shard, stats->tables_moved, stats->tables_total,
                stats->duration_ms);
  }
  PrintPartitionMap(cluster);
  PrintResponse("after rebalance", service.Execute(req));
  return 0;
}
