// Joinable table search, end to end, on a generated data lake.
//
// Demonstrates the §2.4 lineage the survey covers, on one workload:
//   - exact Jaccard ranking and why it under-ranks large attributes,
//   - exact containment (domain search) fixing that bias,
//   - LSH Ensemble answering the same query from sketches,
//   - JOSIE exact top-k overlap with its work counters,
//   - PEXESO fuzzy (embedding) join on perturbed values,
//   - MATE composite-key join,
//   - correlated-column search (QCR sketches).
//
//   $ ./join_discovery

#include <cstdio>

#include "lakegen/benchmark_lakes.h"
#include "search/discovery_engine.h"

namespace {

void PrintColumns(const lake::DataLakeCatalog& catalog,
                  const std::vector<lake::ColumnResult>& results) {
  for (const auto& r : results) {
    const lake::Table& t = catalog.table(r.column.table_id);
    std::printf("  %-28s col=%-12s %s\n", t.name().c_str(),
                t.column(r.column.column_index).name().c_str(),
                r.why.c_str());
  }
}

}  // namespace

int main() {
  // A lake with planted structure: templates over shared domains.
  lake::GeneratedLake lake = lake::MakeUnionBenchmarkLake(
      /*seed=*/77, /*tables_per_template=*/5, /*distractors=*/0);
  std::printf("generated lake: %zu tables\n\n", lake.catalog.num_tables());
  lake::DiscoveryEngine engine(&lake.catalog, &lake.kb,
                               lake::DiscoveryEngine::Options{});

  // Query column: subject values of the first template's first table.
  const lake::TableId qt = lake.unionable_groups[0][0];
  const auto query = lake.catalog.table(qt).column(0).DistinctStrings();
  std::printf("query: %zu distinct values from %s.%s\n\n", query.size(),
              lake.catalog.table(qt).name().c_str(),
              lake.catalog.table(qt).column(0).name().c_str());

  std::printf("== exact Jaccard (biased toward small candidates)\n");
  PrintColumns(lake.catalog,
               engine.Joinable(query, lake::JoinMethod::kExactJaccard, 4)
                   .value_or({}));

  std::printf("\n== exact containment (domain search)\n");
  PrintColumns(lake.catalog,
               engine.Joinable(query, lake::JoinMethod::kExactContainment, 4)
                   .value_or({}));

  std::printf("\n== LSH Ensemble (sketched containment)\n");
  PrintColumns(lake.catalog,
               engine.Joinable(query, lake::JoinMethod::kLshEnsemble, 4)
                   .value_or({}));

  std::printf("\n== JOSIE (exact top-k overlap) with work counters\n");
  lake::JosieIndex::QueryStats stats;
  auto josie = engine.josie_join()->Search(query, 4, &stats);
  if (josie.ok()) {
    PrintColumns(lake.catalog, *josie);
    std::printf(
        "  [lists read: %zu, postings read: %zu, candidates: %zu, "
        "verified: %zu]\n",
        stats.lists_read, stats.posting_entries_read, stats.candidates_seen,
        stats.candidates_verified);
  }

  std::printf("\n== PEXESO (fuzzy embedding join on perturbed values)\n");
  std::vector<std::string> perturbed;
  for (size_t i = 0; i < query.size() && i < 40; ++i) {
    perturbed.push_back(i % 3 == 0 ? query[i] + "x" : query[i]);
  }
  PrintColumns(lake.catalog,
               engine.Joinable(perturbed, lake::JoinMethod::kPexeso, 3)
                   .value_or({}));

  std::printf("\n== MATE (composite-key join on two subject columns)\n");
  const lake::Table& full_query = lake.catalog.table(qt);
  auto mate = engine.mate_join()->Search(full_query, {0, 1}, 3);
  if (mate.ok()) {
    for (const auto& r : *mate) {
      if (r.table_id == qt) continue;  // self-match
      std::printf("  %-28s joinable_rows=%zu score=%.3f\n",
                  lake.catalog.table(r.table_id).name().c_str(),
                  r.joinable_rows, r.score);
    }
  }

  std::printf("\n== correlated join search (QCR sketches)\n");
  // Query pair: subject column + the table's numeric column.
  std::vector<std::string> keys;
  std::vector<double> nums;
  const lake::Table& qtable = lake.catalog.table(qt);
  int numeric_col = -1;
  for (size_t c = 0; c < qtable.num_columns(); ++c) {
    if (qtable.column(c).IsNumeric()) {
      numeric_col = static_cast<int>(c);
      break;
    }
  }
  if (numeric_col >= 0) {
    for (size_t r = 0; r < qtable.num_rows(); ++r) {
      double v;
      if (!qtable.column(numeric_col).cell(r).ToDouble(&v)) continue;
      keys.push_back(qtable.column(0).cell(r).ToString());
      nums.push_back(v);
    }
    auto corr = engine.correlated_join()->Search(keys, nums, 4);
    if (corr.ok()) {
      for (const auto& r : *corr) {
        if (r.table_id == qt) continue;
        std::printf("  %-28s corr=%+.3f containment=%.2f\n",
                    lake.catalog.table(r.table_id).name().c_str(),
                    r.est_correlation, r.est_containment);
      }
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
