// lakefind_cli — interactive/scriptable shell over the discovery engine.
//
//   $ ./lakefind_cli <csv-directory>        # interactive
//   $ echo "keyword city" | ./lakefind_cli <csv-directory>
//
// Commands:
//   info                       lake statistics
//   tables                     list tables
//   show <table>               preview a table
//   keyword <text...>          BM25 metadata search
//   join <table> <column>      joinable-column search (auto-planned)
//   union <method> <table>     unionable search (tus|santos|starmie|d3l)
//   annotate <table> <column>  query-time semantic type annotation
//   related <table>            linkage-graph neighbors
//   help / quit
//
// With no directory argument, a small demo lake is generated.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "lakegen/benchmark_lakes.h"
#include "nav/linkage_graph.h"
#include "search/discovery_engine.h"
#include "table/catalog.h"

namespace {

using lake::DataLakeCatalog;
using lake::DiscoveryEngine;
using lake::TableId;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  info | tables | show <table> | keyword <text...>\n"
      "  join <table> <column> | union <method> <table>\n"
      "  annotate <table> <column> | related <table> | help | quit\n");
}

int FindColumn(const lake::Table& table, const std::string& name) {
  const int idx = table.FindColumn(name);
  if (idx < 0) {
    std::printf("no column '%s' in '%s' (columns:", name.c_str(),
                table.name().c_str());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      std::printf(" %s", table.column(c).name().c_str());
    }
    std::printf(")\n");
  }
  return idx;
}

}  // namespace

int main(int argc, char** argv) {
  DataLakeCatalog catalog;
  lake::KnowledgeBase kb;
  if (argc > 1) {
    auto loaded = catalog.LoadDirectory(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu tables from %s\n", loaded->size(), argv[1]);
  } else {
    lake::GeneratedLake generated = lake::MakeUnionBenchmarkLake(
        /*seed=*/5, /*tables_per_template=*/4, /*distractors=*/0);
    kb = generated.kb;
    catalog = std::move(generated.catalog);
    std::printf("no directory given; generated a %zu-table demo lake\n",
                catalog.num_tables());
  }

  std::printf("building indexes...\n");
  DiscoveryEngine engine(&catalog, &kb, DiscoveryEngine::Options{});
  lake::LinkageGraph graph(&catalog);
  std::printf("ready. type 'help' for commands.\n");

  std::string line;
  while (std::printf("lakefind> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "info") {
      std::printf("%zu tables, %zu columns; KB: %zu entities, %zu facts\n",
                  catalog.num_tables(), catalog.num_columns(),
                  engine.kb().num_entities(),
                  engine.kb().num_relation_instances());
    } else if (cmd == "tables") {
      for (TableId t : catalog.AllTables()) {
        const lake::Table& table = catalog.table(t);
        std::printf("  %-32s %4zu x %zu\n", table.name().c_str(),
                    table.num_rows(), table.num_columns());
      }
    } else if (cmd == "show") {
      std::string name;
      in >> name;
      auto id = catalog.FindTable(name);
      if (!id.ok()) {
        std::printf("%s\n", id.status().ToString().c_str());
        continue;
      }
      std::printf("%s", catalog.table(*id).Preview(8).c_str());
    } else if (cmd == "keyword") {
      std::string rest;
      std::getline(in, rest);
      for (const auto& r : engine.Keyword(rest, 8)) {
        std::printf("  %-32s %.3f\n", catalog.table(r.table_id).name().c_str(),
                    r.score);
      }
    } else if (cmd == "join") {
      std::string tname, cname;
      in >> tname >> cname;
      auto id = catalog.FindTable(tname);
      if (!id.ok()) {
        std::printf("%s\n", id.status().ToString().c_str());
        continue;
      }
      const lake::Table& table = catalog.table(*id);
      const int col = FindColumn(table, cname);
      if (col < 0) continue;
      auto result =
          engine.JoinableAuto(table.column(col).DistinctStrings(), 8);
      if (!result.ok()) {
        std::printf("%s\n", result.status().ToString().c_str());
        continue;
      }
      std::printf("(planner chose method %d)\n",
                  static_cast<int>(result->method));
      for (const auto& r : result->results) {
        const lake::Table& hit = catalog.table(r.column.table_id);
        std::printf("  %-28s . %-16s %s\n", hit.name().c_str(),
                    hit.column(r.column.column_index).name().c_str(),
                    r.why.c_str());
      }
    } else if (cmd == "union") {
      std::string method_name, tname;
      in >> method_name >> tname;
      lake::UnionMethod method;
      if (method_name == "tus") method = lake::UnionMethod::kTus;
      else if (method_name == "santos") method = lake::UnionMethod::kSantos;
      else if (method_name == "starmie") method = lake::UnionMethod::kStarmie;
      else if (method_name == "d3l") method = lake::UnionMethod::kD3l;
      else {
        std::printf("unknown method '%s' (tus|santos|starmie|d3l)\n",
                    method_name.c_str());
        continue;
      }
      auto id = catalog.FindTable(tname);
      if (!id.ok()) {
        std::printf("%s\n", id.status().ToString().c_str());
        continue;
      }
      auto results = engine.Unionable(catalog.table(*id), method, 8, *id);
      if (!results.ok()) {
        std::printf("%s\n", results.status().ToString().c_str());
        continue;
      }
      for (const auto& r : *results) {
        std::printf("  %-32s %s\n", catalog.table(r.table_id).name().c_str(),
                    r.why.c_str());
      }
    } else if (cmd == "annotate") {
      std::string tname, cname;
      in >> tname >> cname;
      auto id = catalog.FindTable(tname);
      if (!id.ok()) {
        std::printf("%s\n", id.status().ToString().c_str());
        continue;
      }
      const lake::Table& table = catalog.table(*id);
      const int col = FindColumn(table, cname);
      if (col < 0) continue;
      auto ann = engine.AnnotateValues(table.column(col).DistinctStrings());
      if (!ann.ok()) {
        std::printf("%s\n", ann.status().ToString().c_str());
        continue;
      }
      std::printf("  %s (confidence %.2f)\n", ann->type_label.c_str(),
                  ann->confidence);
    } else if (cmd == "related") {
      std::string tname;
      in >> tname;
      auto id = catalog.FindTable(tname);
      if (!id.ok()) {
        std::printf("%s\n", id.status().ToString().c_str());
        continue;
      }
      for (const auto& [t, hops] : graph.RelatedTables(*id, 2)) {
        std::printf("  %-32s %d hop%s\n",
                    catalog.table(t).name().c_str(), hops,
                    hops == 1 ? "" : "s");
      }
    } else {
      std::printf("unknown command '%s'; try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
