// Data lake navigation (§2.6): linkage graph, offline organization, and
// RONIN-style online organization of search results.
//
//   $ ./navigation

#include <cstdio>

#include "embed/table_encoder.h"
#include "lakegen/generator.h"
#include "nav/linkage_graph.h"
#include "nav/organization.h"
#include "nav/ronin.h"
#include "search/keyword_search.h"

int main() {
  lake::GeneratorOptions opts;
  opts.seed = 99;
  opts.num_templates = 5;
  opts.tables_per_template = 6;
  lake::GeneratedLake lake = lake::LakeGenerator(opts).Generate();
  std::printf("lake: %zu tables\n\n", lake.catalog.num_tables());

  // --- Aurum-style linkage graph -------------------------------------
  lake::LinkageGraph graph(&lake.catalog);
  std::printf("linkage graph: %zu edges\n", graph.num_links());
  const lake::TableId anchor = 0;
  std::printf("tables related to '%s' within 1 hop:\n",
              lake.catalog.table(anchor).name().c_str());
  int shown = 0;
  for (const auto& [t, hops] : graph.RelatedTables(anchor, 1)) {
    std::printf("  %-32s (%d hop)\n", lake.catalog.table(t).name().c_str(),
                hops);
    if (++shown >= 5) break;
  }

  // --- Offline organization ------------------------------------------
  lake::WordEmbedding words;
  lake::ColumnEncoder columns(&words);
  lake::TableEncoder tables(&columns, &words);
  lake::LakeOrganization org(&lake.catalog, &tables);
  std::printf("\norganization (top levels):\n%s\n", org.ToString(2).c_str());

  // Navigate toward a topic: the user "wants something about <topic>".
  const lake::Vector topic = tables.Encode(lake.catalog.table(3));
  const auto path = org.Navigate(topic);
  std::printf("greedy navigation path length: %zu\n", path.size());
  const auto& leaf = org.nodes()[path.back()];
  if (leaf.table >= 0) {
    std::printf("navigation reached: %s\n",
                lake.catalog.table(static_cast<lake::TableId>(leaf.table))
                    .name()
                    .c_str());
  }

  // --- RONIN: organize search results online ---------------------------
  lake::KeywordSearchEngine keyword(&lake.catalog);
  const auto results = keyword.Search(lake.topic_of[0], 12);
  std::vector<lake::TableId> result_ids;
  for (const auto& r : results) result_ids.push_back(r.table_id);
  lake::RoninExplorer ronin(&lake.catalog, &tables);
  const auto tree = ronin.Organize(result_ids);
  std::printf("\nRONIN organization of %zu keyword results for '%s':\n%s",
              result_ids.size(), lake.topic_of[0].c_str(),
              ronin.ToString(tree).c_str());
  return 0;
}
