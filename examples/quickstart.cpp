// Quickstart: ingest a few CSV tables into a data lake catalog, build the
// discovery engine, and run each query type once.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API; the other examples go
// deeper into individual search flavors.

#include <cstdio>

#include "search/discovery_engine.h"
#include "table/catalog.h"
#include "table/csv.h"

namespace {

// A miniature "data lake": open-data style CSVs with inconsistent headers.
constexpr const char* kCityPopulation =
    "city,population\n"
    "springfield,167000\n"
    "riverton,82000\n"
    "lakewood,154000\n"
    "hilltop,23000\n";

constexpr const char* kCityMayors =
    "City,Mayor\n"
    "springfield,ana reyes\n"
    "riverton,li wei\n"
    "lakewood,joao silva\n";

constexpr const char* kCityBudget =
    "town,annual budget\n"
    "springfield,1200000\n"
    "riverton,430000\n"
    "hilltop,98000\n";

constexpr const char* kMovies =
    "title,year,director\n"
    "starfall,1999,kim doyle\n"
    "moonrise,2005,ana reyes\n";

}  // namespace

int main() {
  // 1. Ingest: parse CSVs (types are inferred) and register them.
  lake::DataLakeCatalog catalog;
  struct Source {
    const char* name;
    const char* csv;
  };
  const Source sources[] = {{"city_population", kCityPopulation},
                            {"city_mayors", kCityMayors},
                            {"city_budget", kCityBudget},
                            {"movies", kMovies}};
  for (const Source& s : sources) {
    auto table = lake::ReadCsvString(s.csv, s.name);
    if (!table.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", s.name,
                   table.status().ToString().c_str());
      return 1;
    }
    table->metadata().description = std::string("demo table ") + s.name;
    if (auto id = catalog.AddTable(std::move(table).value()); !id.ok()) {
      std::fprintf(stderr, "add %s: %s\n", s.name,
                   id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("lake: %zu tables, %zu columns\n\n", catalog.num_tables(),
              catalog.num_columns());

  // 2. Build the discovery engine (all Figure-1 components).
  lake::DiscoveryEngine engine(&catalog);

  // 3a. Keyword search over metadata.
  std::printf("== keyword search: \"city\"\n");
  for (const auto& r : engine.Keyword("city", 3)) {
    std::printf("  %-18s score=%.3f\n", catalog.table(r.table_id).name().c_str(),
                r.score);
  }

  // 3b. Joinable search: which lake columns join with these city names?
  std::printf("\n== joinable search (JOSIE, exact top-k overlap)\n");
  const std::vector<std::string> query = {"springfield", "riverton",
                                          "lakewood"};
  auto joinable = engine.Joinable(query, lake::JoinMethod::kJosie, 3);
  if (joinable.ok()) {
    for (const auto& r : *joinable) {
      const lake::Table& t = catalog.table(r.column.table_id);
      std::printf("  %s.%s  %s\n", t.name().c_str(),
                  t.column(r.column.column_index).name().c_str(),
                  r.why.c_str());
    }
  }

  // 3c. Unionable search: which tables extend city_population with rows?
  std::printf("\n== unionable search (TUS ensemble)\n");
  const lake::TableId q = catalog.FindTable("city_population").value();
  auto unionable = engine.Unionable(catalog.table(q), lake::UnionMethod::kTus,
                                    3, /*exclude=*/q);
  if (unionable.ok()) {
    for (const auto& r : *unionable) {
      std::printf("  %-18s %s\n", catalog.table(r.table_id).name().c_str(),
                  r.why.c_str());
    }
  }

  std::printf("\ndone.\n");
  return 0;
}
