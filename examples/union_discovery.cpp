// Unionable table search: TUS vs SANTOS vs Starmie on a lake with
// relationship-violating distractors.
//
// The lake generator plants templates (groups of genuinely unionable
// tables) and distractors that reuse the same column domains with broken
// column-to-column relationships — the exact failure mode SANTOS (§2.5)
// was designed to catch. This example runs all three union-search engines
// on the same queries and prints precision@k against ground truth.
//
//   $ ./union_discovery

#include <cstdio>

#include "lakegen/benchmark_lakes.h"
#include "search/discovery_engine.h"

int main() {
  lake::GeneratedLake lake = lake::MakeUnionBenchmarkLake(
      /*seed=*/55, /*tables_per_template=*/6, /*distractors=*/12);
  std::printf("lake: %zu tables (%zu distractors with broken relationships)\n\n",
              lake.catalog.num_tables(), lake.distractors.size());

  lake::DiscoveryEngine engine(&lake.catalog, &lake.kb,
                               lake::DiscoveryEngine::Options{});

  const size_t k = 5;
  struct MethodRow {
    const char* name;
    lake::UnionMethod method;
    double precision_sum = 0;
    double distractor_hits = 0;
  };
  MethodRow rows[] = {{"TUS (column ensemble)", lake::UnionMethod::kTus},
                      {"SANTOS (relationships)", lake::UnionMethod::kSantos},
                      {"Starmie (contextual)", lake::UnionMethod::kStarmie}};

  size_t queries = 0;
  for (size_t g = 0; g < lake.unionable_groups.size(); ++g) {
    const lake::TableId q = lake.unionable_groups[g][0];
    const lake::Table& query = lake.catalog.table(q);
    std::vector<lake::TableId> truth;
    for (lake::TableId t : lake.unionable_groups[g]) {
      if (t != q) truth.push_back(t);
    }
    ++queries;
    for (MethodRow& row : rows) {
      auto results = engine.Unionable(query, row.method, k, q);
      if (!results.ok()) continue;
      row.precision_sum += lake::PrecisionAtK(*results, truth, k);
      for (const auto& r : *results) {
        for (lake::TableId d : lake.distractors) {
          if (r.table_id == d) row.distractor_hits += 1;
        }
      }
    }
  }

  std::printf("%-26s  P@%zu    distractors in top-%zu (total)\n", "method", k,
              k);
  for (const MethodRow& row : rows) {
    std::printf("%-26s  %.3f   %.0f\n", row.name,
                row.precision_sum / queries, row.distractor_hits);
  }

  // Show one concrete query in detail.
  const lake::TableId q = lake.unionable_groups[0][0];
  std::printf("\nquery table preview:\n%s\n",
              lake.catalog.table(q).Preview(4).c_str());
  std::printf("SANTOS top-%zu:\n", k);
  for (const auto& r :
       engine.Unionable(lake.catalog.table(q), lake::UnionMethod::kSantos, k,
                        q)
           .value_or({})) {
    std::printf("  %-32s %s\n", lake.catalog.table(r.table_id).name().c_str(),
                r.why.c_str());
  }
  return 0;
}
