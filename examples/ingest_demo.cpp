// Online ingestion, end to end: a LiveEngine serving queries while new
// tables stream in through the IngestPipeline — no restart, no rebuild —
// then background compaction folding the delta into a fresh base, and a
// checkpoint/recover round trip.
//
// Walkthrough:
//   1. cold-start a LiveEngine over a generated lake and query it,
//   2. stream two CSVs through the pipeline and watch them become
//      discoverable (delta hits vs base hits),
//   3. tombstone a base table and watch it vanish immediately,
//   4. compact: the delta folds into a fresh base, answers unchanged,
//   5. checkpoint to a snapshot store and recover a fresh engine from it.
//
//   $ ./ingest_demo

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "ingest/compactor.h"
#include "ingest/live_engine.h"
#include "ingest/pipeline.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"
#include "store/snapshot.h"

namespace {

using lake::ingest::IngestPipeline;
using lake::ingest::LiveEngine;
using lake::serve::QueryKind;
using lake::serve::QueryRequest;
using lake::serve::QueryResponse;
using lake::serve::QueryService;

void PrintAnswer(const char* label, const LiveEngine& live,
                 const QueryResponse& r) {
  std::printf("%s: %s in %.2fms\n", label,
              r.status.ok() ? "ok" : r.status.ToString().c_str(),
              r.latency_ms);
  auto gen = live.Acquire();
  for (const auto& t : r.tables) {
    auto name = gen->TableName(t.table_id);
    std::printf("  %-32s score=%.3f%s\n",
                name.ok() ? name->c_str() : "<gone>", t.score,
                gen->IsDeltaId(t.table_id) ? "  [delta]" : "");
  }
}

void PrintHitCounters(QueryService& service) {
  std::printf("  provenance: base_hits=%llu delta_hits=%llu\n",
              static_cast<unsigned long long>(
                  service.metrics().GetCounter("serve.ingest.base_hits")
                      ->value()),
              static_cast<unsigned long long>(
                  service.metrics().GetCounter("serve.ingest.delta_hits")
                      ->value()));
}

}  // namespace

int main() {
  lake::GeneratorOptions gopts;
  gopts.seed = 29;
  gopts.num_domains = 6;
  gopts.num_templates = 3;
  gopts.tables_per_template = 4;
  lake::GeneratedLake lake = lake::LakeGenerator(gopts).Generate();
  auto catalog =
      std::make_shared<lake::DataLakeCatalog>(std::move(lake.catalog));

  const auto dir =
      std::filesystem::temp_directory_path() / "lakefind_ingest_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  lake::store::SnapshotStore store(dir.string());

  // 1. Cold start: LiveEngine builds the base index; QueryService in live
  //    mode acquires a generation per query, RCU-style.
  LiveEngine::Options lopts;
  lopts.base_options.build_pexeso = false;
  lopts.base_options.build_mate = false;
  lopts.base_options.build_correlated = false;
  lopts.base_options.build_santos = false;
  lopts.base_options.build_d3l = false;
  lopts.base_options.synthesize_kb = false;
  lopts.base_options.train_annotator = false;
  lopts.kb = &lake.kb;
  lopts.store = &store;
  LiveEngine live(catalog, lopts);
  QueryService::Options sopts;
  sopts.num_workers = 2;
  QueryService service(&live, sopts);

  const std::string topic = lake.topic_of[0];
  QueryRequest keyword;
  keyword.kind = QueryKind::kKeyword;
  keyword.keyword = topic;
  keyword.k = 5;
  keyword.bypass_cache = true;

  std::printf("lake: %zu base tables; querying \"%s\"\n\n",
              catalog->num_tables(), topic.c_str());
  PrintAnswer("before ingest", live, service.Execute(keyword));
  PrintHitCounters(service);

  // 2. Stream two CSVs in. The pipeline parses, type-infers, and indexes
  //    on its own worker thread, then publishes one new generation; the
  //    tables are discoverable the moment the future resolves.
  {
    IngestPipeline pipeline(&live);
    auto f1 = pipeline.SubmitCsvString(
        topic + "_name,rating,year\nalpha,4,2021\nbeta,5,2023\n",
        "streamed_" + topic + "_ratings");
    auto f2 = pipeline.SubmitCsvString(
        topic + "_name,city,count\ngamma,oslo,12\ndelta,lima,7\n",
        "streamed_" + topic + "_cities");
    if (!f1.get().ok() || !f2.get().ok()) {
      std::printf("ingest failed\n");
      return 1;
    }
  }
  std::printf("\nstreamed 2 CSVs (delta=%zu tables)\n",
              live.num_delta_tables());
  PrintAnswer("after ingest", live, service.Execute(keyword));
  PrintHitCounters(service);

  // 3. Remove a base table: a tombstone masks it instantly; the bytes are
  //    reclaimed by the next compaction.
  const std::string victim = catalog->table(0).name();
  if (live.RemoveTable(victim).ok()) {
    std::printf("\nremoved base table \"%s\" (tombstones=%zu)\n",
                victim.c_str(), live.num_tombstones());
  }

  // 4. Compact: fold delta + tombstones into a fresh immutable base. The
  //    heavy build runs off the serving path; the swap is atomic, and the
  //    result is bit-identical to a cold rebuild over the survivors.
  auto stats = live.Compact();
  if (stats.ok()) {
    std::printf(
        "compacted: %zu base + %zu delta - %zu tombstones -> %zu tables "
        "in %.1fms (generation %llu)\n",
        stats->input_base_tables, stats->input_delta_tables,
        stats->tombstones_cleared, stats->output_tables, stats->duration_ms,
        static_cast<unsigned long long>(stats->generation));
  }
  PrintAnswer("after compaction", live, service.Execute(keyword));

  // 5. Durability: checkpoint the live state, then recover a fresh engine
  //    from the newest committed snapshot generation. (The compaction in
  //    step 4 already auto-checkpointed — persist_after_compact — so this
  //    commits one more generation on top.)
  if (lake::Status s = live.Checkpoint(); !s.ok()) {
    std::printf("\ncheckpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  LiveEngine::RecoveryReport report;
  auto recovered = LiveEngine::Recover(&store, live.options(), &report);
  if (!recovered.ok()) {
    std::printf("\nrecover failed: %s\n", recovered.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\ncheckpoint + recover: generation=%llu tables=%zu index_sections="
      "%zu rebuilt=%zu deltas_replayed=%zu\n",
      static_cast<unsigned long long>(report.snapshot_generation),
      report.tables_loaded, report.index_sections_loaded,
      report.index_sections_rebuilt, report.deltas_replayed);
  std::filesystem::remove_all(dir);
  return 0;
}
