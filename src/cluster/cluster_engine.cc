#include "cluster/cluster_engine.h"

#include <algorithm>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "cluster/scrubber.h"
#include "cluster/topk_merge.h"
#include "ingest/generation.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace lake::cluster {
namespace {

using Clock = ClusterEngine::Clock;

std::string FailpointName(uint32_t shard, size_t replica) {
  return "cluster.exec." + std::to_string(shard) + "." +
         std::to_string(replica);
}

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Same failure taxonomy as the serving layer's breaker accounting:
/// infrastructure-shaped errors trip the replica's breaker, a caller's
/// cancellation does not.
bool IsBreakerFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

/// One shard's contribution to a scattered query.
template <typename Answer>
struct ShardOutcome {
  uint32_t shard = 0;
  Status status;
  Answer answer{};
  ShardTrace trace;
};

/// Runs one attempt against a routed replica and settles its breaker +
/// latency accounting: success and infrastructure failures feed the
/// breaker and the latency window; a cancelled attempt records neutrally
/// (a hedge loser's unwind time is not a service-latency sample, and the
/// caller's cancellation is not the replica's fault).
template <typename Answer, typename ShardFn>
Status RunAttempt(ReplicaSet& rs, const ReplicaSet::Route& route,
                  const CancelToken* cancel, const ShardFn& fn,
                  Answer* answer) {
  const Clock::time_point t0 = Clock::now();
  Status st = ExecFailpoint(FailpointName(rs.shard_id(), route.replica),
                            cancel);
  if (st.ok()) {
    Result<Answer> r = fn(*route.engine, cancel, rs.shard_id());
    st = r.ok() ? Status::OK() : r.status();
    if (r.ok()) *answer = std::move(r).value();
  }
  const auto now = ReplicaSet::Clock::now();
  const double latency_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  if (st.ok()) {
    rs.RecordOutcome(route.replica, true, now, latency_us);
  } else if (st.code() == StatusCode::kCancelled) {
    rs.RecordNeutral(route.replica, now);
  } else if (IsBreakerFailure(st.code())) {
    rs.RecordOutcome(route.replica, false, now, latency_us);
  }
  return st;
}

/// Shared state of one hedged attempt: the primary runs on the hedge pool
/// against its own CancelToken and parks its result here; the shard
/// worker either consumes it or, once the hedge wins, cancels it. The
/// race owns everything the primary touches except the ReplicaSet (whose
/// shared_ptr the primary lambda holds), so an abandoned primary finishes
/// harmlessly after the query has returned.
template <typename Answer>
struct HedgeRace {
  std::mutex mu;
  std::condition_variable cv;
  CancelToken token;  // the primary's private token
  bool done = false;
  Status status;
  Answer answer{};
};

/// Whether the first attempt of this sub-query should be hedged, and with
/// what delay. The delay is the primary's tracked `hedge_quantile`
/// latency clamped to [hedge_min_delay, hedge_max_delay]; with too few
/// samples it is hedge_max_delay (pessimistic: a cold replica earns no
/// early duplicates). Never hedge when the remaining deadline budget is
/// below the delay — the duplicate could not beat the deadline anyway.
bool HedgeEligible(const ReplicaSet& rs, const TailContext& tail,
                   const ReplicaSet::Route& route, const CancelToken* cancel,
                   std::chrono::nanoseconds* delay) {
  if (tail.hedge_pool == nullptr || rs.num_replicas() < 2) return false;
  const auto now = ReplicaSet::Clock::now();
  std::chrono::nanoseconds d = tail.hedge_max_delay;
  if (rs.LatencySamples(route.replica, now) >= tail.hedge_min_samples) {
    const double p_us =
        rs.LatencyQuantile(route.replica, tail.hedge_quantile, now);
    d = std::clamp(
        std::chrono::nanoseconds(static_cast<int64_t>(p_us * 1000.0)),
        tail.hedge_min_delay, tail.hedge_max_delay);
  }
  if (cancel != nullptr && cancel->has_deadline() && cancel->Remaining() <= d) {
    return false;
  }
  *delay = d;
  return true;
}

/// One hedged first attempt. The primary runs on the hedge pool; if it
/// has not answered within `hedge_delay`, the same read-only sub-query is
/// dispatched to a sibling replica (budget permitting) on the calling
/// shard worker. First successful response wins; the loser is cancelled
/// via its CancelToken. Both attempts record their own breaker/latency
/// outcomes, so the losing replica's slowness still lands in its window —
/// that is what the ejection machinery feeds on.
template <typename Answer, typename ShardFn>
Status RunHedgedAttempt(const std::shared_ptr<ReplicaSet>& rs,
                        const TailContext& tail,
                        std::chrono::nanoseconds hedge_delay,
                        const CancelToken* cancel, const ShardFn& fn,
                        const ReplicaSet::Route& primary, Answer* answer,
                        ShardTrace* trace) {
  auto race = std::make_shared<HedgeRace<Answer>>();
  if (cancel != nullptr && cancel->has_deadline()) {
    race->token.SetDeadline(Clock::now() + cancel->Remaining());
  }
  if (cancel != nullptr && cancel->cancelled()) race->token.Cancel();
  tail.hedge_pool->Async([race, rs, primary, fn] {
    Answer ans{};
    const Status st = RunAttempt(*rs, primary, &race->token, fn, &ans);
    {
      std::lock_guard<std::mutex> lock(race->mu);
      race->done = true;
      race->status = st;
      race->answer = std::move(ans);
    }
    race->cv.notify_all();
  });

  // Waits for the primary until `until`, propagating the caller's
  // cancellation/deadline into the primary's token as it goes.
  auto wait_until = [&](Clock::time_point until) {
    std::unique_lock<std::mutex> lock(race->mu);
    while (!race->done && Clock::now() < until) {
      if (cancel != nullptr && (cancel->cancelled() || cancel->Expired())) {
        race->token.Cancel();
      }
      race->cv.wait_for(lock, std::chrono::milliseconds(10),
                        [&] { return race->done; });
    }
    return race->done;
  };
  auto consume_primary = [&]() {
    std::lock_guard<std::mutex> lock(race->mu);
    *answer = std::move(race->answer);
    return race->status;
  };

  if (wait_until(Clock::now() + hedge_delay)) return consume_primary();

  // Primary is slow: hedge, if the budget and a sibling permit.
  ReplicaSet::Route sibling;
  const auto pick_now = ReplicaSet::Clock::now();
  if (tail.budget != nullptr && tail.budget->TryAcquire(pick_now)) {
    if (rs->Pick(pick_now, primary.replica, &sibling)) {
      trace->hedged = true;
      if (tail.hedges_dispatched != nullptr) {
        tail.hedges_dispatched->fetch_add(1, std::memory_order_relaxed);
      }
      if (tail.hedge_counter != nullptr) tail.hedge_counter->Add();
      CancelToken hedge_token;
      if (cancel != nullptr && cancel->has_deadline()) {
        hedge_token.SetDeadline(Clock::now() + cancel->Remaining());
      }
      Answer hedge_answer{};
      const Status hedge_status =
          RunAttempt(*rs, sibling, &hedge_token, fn, &hedge_answer);
      if (hedge_status.ok()) {
        // First response wins. If the primary finished OK while the hedge
        // ran, it already won the race; results are bit-identical either
        // way (same generation-pinned read over content-equal replicas),
        // only the accounting differs.
        std::unique_lock<std::mutex> lock(race->mu);
        if (race->done && race->status.ok()) {
          *answer = std::move(race->answer);
          return race->status;
        }
        race->token.Cancel();  // the losing primary unwinds at its next poll
        lock.unlock();
        if (tail.hedges_won != nullptr) {
          tail.hedges_won->fetch_add(1, std::memory_order_relaxed);
        }
        if (tail.hedge_win_counter != nullptr) tail.hedge_win_counter->Add();
        trace->hedge_won = true;
        trace->replica = sibling.replica;
        *answer = std::move(hedge_answer);
        return Status::OK();
      }
      // Hedge lost (error or cancellation): fall through and collect the
      // primary, which may still answer.
    }
  } else if (tail.budget_denied_counter != nullptr) {
    tail.budget_denied_counter->Add();
  }

  Clock::time_point until = Clock::time_point::max();
  if (cancel != nullptr && cancel->has_deadline()) {
    until = Clock::now() + cancel->Remaining();
  }
  bool done = wait_until(until);
  if (!done) {
    race->token.Cancel();
    done = wait_until(Clock::now() + std::chrono::milliseconds(250));
  }
  if (!done) {
    // Abandon the primary; it finishes into the race it owns.
    return Status::DeadlineExceeded("shard " + std::to_string(rs->shard_id()) +
                                    ": hedged primary exceeded its deadline");
  }
  return consume_primary();
}

/// Runs `fn` against one replica of `rs`, failing over to a sibling on an
/// infrastructure error (up to `max_attempts` total attempts). Each attempt
/// passes through the per-replica failpoint — the chaos-injection surface.
/// Tail tolerance hooks in at two points: every failover retry (attempt
/// > 0) draws from the shared retry/hedge budget and silently degrades —
/// exactly like an exhausted loop — when the budget refuses; and the first
/// attempt of a read is hedged when enabled (see RunHedgedAttempt).
/// Mutations never reach this path (ApplyBatch has its own quorum plan).
template <typename Answer, typename ShardFn>
void RunShardWithFailover(const std::shared_ptr<ReplicaSet>& rs,
                          const TailContext& tail, size_t max_attempts,
                          const CancelToken* cancel, const ShardFn& fn,
                          ShardOutcome<Answer>* out) {
  size_t exclude = std::numeric_limits<size_t>::max();
  out->status = Status::Unavailable("shard " + std::to_string(rs->shard_id()) +
                                    ": no live replica admits the call");
  out->trace.status = out->status;
  if (tail.budget != nullptr) {
    tail.budget->RecordRequest(RetryBudget::Clock::now());
  }
  for (size_t attempt = 0; attempt < std::max<size_t>(1, max_attempts);
       ++attempt) {
    if (attempt > 0 && tail.budget != nullptr &&
        !tail.budget->TryAcquire(RetryBudget::Clock::now())) {
      if (tail.budget_denied_counter != nullptr) {
        tail.budget_denied_counter->Add();
      }
      return;  // degrade exactly as an exhausted failover loop does
    }
    ReplicaSet::Route route;
    if (!rs->Pick(ReplicaSet::Clock::now(), exclude, &route)) return;
    ++out->trace.attempts;
    out->trace.replica = route.replica;

    Status st;
    std::chrono::nanoseconds hedge_delay{0};
    if (attempt == 0 && HedgeEligible(*rs, tail, route, cancel, &hedge_delay)) {
      st = RunHedgedAttempt(rs, tail, hedge_delay, cancel, fn, route,
                            &out->answer, &out->trace);
    } else {
      st = RunAttempt(*rs, route, cancel, fn, &out->answer);
    }
    out->status = st;
    out->trace.status = st;
    if (st.ok()) return;
    if (st.code() == StatusCode::kCancelled) return;  // caller's doing
    exclude = out->trace.replica;
  }
}

/// Fans `fn` out to every shard on the pool and gathers the per-shard
/// outcomes. Each shard gets its own CancelToken whose deadline is the
/// tighter of the caller's remaining budget and `shard_deadline`; a shard
/// that overruns is cancelled, given a short grace to unwind at its next
/// polling point, and then abandoned — the gather returns without it
/// (partial results), never hangs on it. Abandoned tasks own everything
/// they touch (ReplicaSet shared_ptr, token, a copy of `fn`), so they can
/// finish harmlessly after the query has returned.
template <typename Answer, typename ShardFn>
std::vector<ShardOutcome<Answer>> ScatterToShards(
    ThreadPool& pool, const std::vector<std::shared_ptr<ReplicaSet>>& shards,
    const TailContext& tail, size_t max_attempts,
    std::chrono::milliseconds shard_deadline, const CancelToken* cancel,
    const ShardFn& fn) {
  const Clock::time_point start = Clock::now();
  Clock::time_point deadline = Clock::time_point::max();
  bool has_deadline = false;
  if (cancel != nullptr && cancel->has_deadline()) {
    deadline =
        start + std::chrono::duration_cast<Clock::duration>(cancel->Remaining());
    has_deadline = true;
  }
  if (shard_deadline.count() > 0) {
    const Clock::time_point d = start + shard_deadline;
    deadline = has_deadline ? std::min(deadline, d) : d;
    has_deadline = true;
  }

  struct Pending {
    uint32_t shard;
    std::shared_ptr<CancelToken> token;
    std::future<ShardOutcome<Answer>> future;
  };
  std::vector<Pending> pending;
  pending.reserve(shards.size());
  for (const std::shared_ptr<ReplicaSet>& rs : shards) {
    auto token = std::make_shared<CancelToken>();
    if (has_deadline) token->SetDeadline(deadline);
    const bool cancelled_upstream = cancel != nullptr && cancel->cancelled();
    if (cancelled_upstream) token->Cancel();
    auto future =
        pool.Async([set = rs, token, tail, max_attempts, fn]() {
          ShardOutcome<Answer> out;
          out.shard = set->shard_id();
          out.trace.shard = set->shard_id();
          const Clock::time_point t0 = Clock::now();
          RunShardWithFailover(set, tail, max_attempts, token.get(), fn,
                               &out);
          out.trace.latency_ms = MsSince(t0);
          return out;
        });
    pending.push_back(Pending{rs->shard_id(), std::move(token),
                              std::move(future)});
  }

  std::vector<ShardOutcome<Answer>> outcomes;
  outcomes.reserve(pending.size());
  for (Pending& p : pending) {
    bool ready = true;
    if (has_deadline &&
        p.future.wait_until(deadline) != std::future_status::ready) {
      p.token->Cancel();
      ready = p.future.wait_for(std::chrono::milliseconds(250)) ==
              std::future_status::ready;
    }
    if (!ready) {
      ShardOutcome<Answer> timed_out;
      timed_out.shard = p.shard;
      timed_out.status = Status::DeadlineExceeded(
          "shard " + std::to_string(p.shard) +
          " exceeded its deadline budget");
      timed_out.trace.shard = p.shard;
      timed_out.trace.status = timed_out.status;
      timed_out.trace.latency_ms = MsSince(start);
      outcomes.push_back(std::move(timed_out));
      continue;
    }
    outcomes.push_back(p.future.get());
  }
  return outcomes;
}

// --- Hit mapping and merge glue -----------------------------------------

struct TableAnswer {
  std::vector<TableHit> hits;
  size_t delta_hits = 0;
};
struct ColumnAnswer {
  std::vector<ColumnHit> hits;
  size_t delta_hits = 0;
};

std::vector<TableHit> ToTableHits(const ingest::Generation& gen,
                                  uint32_t shard,
                                  const std::vector<TableResult>& results) {
  std::vector<TableHit> hits;
  hits.reserve(results.size());
  for (const TableResult& r : results) {
    Result<std::string> name = gen.TableName(r.table_id);
    if (!name.ok()) continue;
    hits.push_back(
        TableHit{std::move(name).value(), r.score, r.why, shard, r.table_id});
  }
  return hits;
}

std::vector<ColumnHit> ToColumnHits(const ingest::Generation& gen,
                                    uint32_t shard,
                                    const std::vector<ColumnResult>& results) {
  std::vector<ColumnHit> hits;
  hits.reserve(results.size());
  for (const ColumnResult& r : results) {
    Result<std::string> name = gen.TableName(r.column.table_id);
    if (!name.ok()) continue;
    hits.push_back(ColumnHit{std::move(name).value(), r.column.column_index,
                             r.score, r.why, shard, r.column.table_id});
  }
  return hits;
}

/// Deterministic cross-shard tie order: equal scores break by table name
/// (and column index), never by which shard answered first. This is what
/// makes the merged ranking independent of the partitioning.
bool HitTieLess(const TableHit& a, const TableHit& b) {
  return a.table < b.table;
}
bool HitTieLess(const ColumnHit& a, const ColumnHit& b) {
  if (a.table != b.table) return a.table < b.table;
  return a.column_index < b.column_index;
}

std::string HitKey(const TableHit& h) { return h.table; }
std::string HitKey(const ColumnHit& h) {
  return h.table + "\x1f" + std::to_string(h.column_index);
}

/// Merges per-shard outcomes into one response: N-way ranked merge, then
/// dedup by table identity (keep-first — during a rebalance hand-off a
/// moved table can briefly answer from two shards with identical scores),
/// then cut to k. Failed shards become missing-shard provenance and flip
/// `degraded`; only a total wipeout turns into an error status.
template <typename Hit, typename Answer>
ScatterResponse<Hit> BuildResponse(std::vector<ShardOutcome<Answer>> outcomes,
                                   size_t k) {
  ScatterResponse<Hit> resp;
  std::vector<std::vector<Hit>> lists;
  Status first_error;
  size_t failed = 0;
  for (ShardOutcome<Answer>& o : outcomes) {
    o.trace.results = o.answer.hits.size();
    resp.traces.push_back(o.trace);
    if (o.status.ok()) {
      lists.push_back(std::move(o.answer.hits));
    } else {
      ++failed;
      resp.degraded = true;
      resp.missing_shards.push_back(o.shard);
      if (first_error.ok()) first_error = o.status;
    }
  }
  std::sort(resp.missing_shards.begin(), resp.missing_shards.end());
  if (!outcomes.empty() && failed == outcomes.size()) {
    resp.status = first_error;
    return resp;
  }
  // Merge unbounded, dedup, then cut: a duplicate inside the first k must
  // not evict a distinct hit just past it.
  std::vector<Hit> merged = MergeRankedTopK(
      std::move(lists), std::numeric_limits<size_t>::max(),
      [](const Hit& a, const Hit& b) { return HitTieLess(a, b); });
  std::unordered_set<std::string> seen;
  seen.reserve(merged.size());
  resp.hits.reserve(std::min(k, merged.size()));
  for (Hit& h : merged) {
    if (!seen.insert(HitKey(h)).second) continue;
    resp.hits.push_back(std::move(h));
    if (resp.hits.size() >= k) break;
  }
  return resp;
}

/// The cluster's per-query metric handles (all optional), snapped out of
/// the engine so the recording helper can stay a file-local template over
/// the answer type.
struct ScatterMetrics {
  serve::Counter* total = nullptr;
  serve::Counter* degraded = nullptr;
  serve::Counter* failovers = nullptr;
  serve::CounterFamily* shard_queries = nullptr;
  serve::CounterFamily* shard_failovers = nullptr;
  serve::CounterFamily* shard_missing = nullptr;
  serve::CounterFamily* shard_delta_hits = nullptr;
};

template <typename Answer>
void RecordScatterMetrics(const ScatterMetrics& m,
                          const std::vector<ShardOutcome<Answer>>& outcomes) {
  if (m.total != nullptr) m.total->Add();
  bool degraded = false;
  for (const ShardOutcome<Answer>& o : outcomes) {
    if (m.shard_queries != nullptr) m.shard_queries->WithLabel(o.shard)->Add();
    const size_t retries = o.trace.attempts > 1 ? o.trace.attempts - 1 : 0;
    if (retries > 0) {
      if (m.failovers != nullptr) m.failovers->Add(retries);
      if (m.shard_failovers != nullptr) {
        m.shard_failovers->WithLabel(o.shard)->Add(retries);
      }
    }
    if (!o.status.ok()) {
      degraded = true;
      if (m.shard_missing != nullptr) m.shard_missing->WithLabel(o.shard)->Add();
    } else if (m.shard_delta_hits != nullptr && o.answer.delta_hits > 0) {
      m.shard_delta_hits->WithLabel(o.shard)->Add(o.answer.delta_hits);
    }
  }
  if (degraded && m.degraded != nullptr) m.degraded->Add();
}

bool ParseIndexSuffix(const std::string& name, const std::string& prefix,
                      uint32_t* out) {
  if (name.size() <= prefix.size() || name.rfind(prefix, 0) != 0) return false;
  uint32_t value = 0;
  for (size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Marker file RemoveShard leaves in a retired shard's store directory so
/// Recover never resurrects it with stale content.
constexpr const char* kRetiredMarker = "RETIRED";

/// True when one replica directory holds any recoverable state: a snapshot
/// envelope or a WAL segment. A replica that was constructed but never
/// checkpointed (an AddShard that died before its first checkpoint) has
/// neither — WAL segments are created lazily on first append.
bool ReplicaDirHasData(const std::filesystem::path& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (e.path().filename().string().rfind("snap-", 0) == 0) return true;
  }
  const fs::path wal = dir / "wal";
  if (fs::is_directory(wal, ec)) {
    for (const fs::directory_entry& e : fs::directory_iterator(wal, ec)) {
      if (e.path().filename().string().rfind("wal-", 0) == 0) return true;
    }
  }
  return false;
}

}  // namespace

// --- Construction --------------------------------------------------------

ReplicaSet* ClusterEngine::Topology::Find(uint32_t shard_id) const {
  for (const std::shared_ptr<ReplicaSet>& rs : shards) {
    if (rs->shard_id() == shard_id) return rs.get();
  }
  return nullptr;
}

ClusterEngine::ClusterEngine(Options options) : options_(std::move(options)) {
  options_.num_shards = std::max<size_t>(1, options_.num_shards);
  options_.num_replicas = std::max<size_t>(1, options_.num_replicas);
  options_.max_failover_attempts =
      std::max<size_t>(1, options_.max_failover_attempts);
  RetryBudget::Options bo;
  bo.ratio = options_.tail.budget_ratio;
  bo.min_tokens = options_.tail.budget_min_tokens;
  bo.window_slices = options_.tail.budget_window_slices;
  bo.slice_width = options_.tail.budget_slice_width;
  retry_budget_ = std::make_unique<RetryBudget>(bo);
  if (options_.tail.enable_hedging) {
    // Hedged primaries run here, one slot per shard: even with every
    // scatter worker blocked in a hedge wait, the primaries make progress.
    hedge_pool_ =
        std::make_unique<ThreadPool>(std::max<size_t>(2, options_.num_shards));
  }
  const size_t workers =
      options_.num_workers > 0 ? options_.num_workers : options_.num_shards;
  pool_ = std::make_unique<ThreadPool>(workers);
  InitMetrics();
}

ClusterEngine::ClusterEngine(const DataLakeCatalog& lake, Options options)
    : ClusterEngine(std::move(options)) {
  const size_t n = options_.num_shards;
  auto topo = std::make_shared<Topology>();
  topo->ring = HashRing(options_.ring);
  for (uint32_t s = 0; s < n; ++s) topo->ring.AddShard(s);
  next_shard_id_ = static_cast<uint32_t>(n);

  // Partition the lake by ring owner. Each slice is sorted by name before
  // indexing — the same invariant a compacted single-node base keeps — so
  // shard builds are deterministic functions of their content.
  std::vector<std::vector<TableId>> slices(n);
  for (TableId id : lake.AllTables()) {
    slices[topo->ring.OwnerOf(lake.table(id).name())].push_back(id);
  }
  std::vector<std::shared_ptr<const DataLakeCatalog>> catalogs(n);
  for (size_t s = 0; s < n; ++s) {
    std::sort(slices[s].begin(), slices[s].end(),
              [&lake](TableId a, TableId b) {
                return lake.table(a).name() < lake.table(b).name();
              });
    auto catalog = std::make_shared<DataLakeCatalog>();
    for (TableId id : slices[s]) catalog->AddTable(lake.table(id));
    catalogs[s] = std::move(catalog);
  }

  // Store/option wiring is serial (it mutates stores_); the expensive
  // per-shard index builds run in parallel on the pool.
  std::vector<ReplicaSet::Options> replica_options;
  replica_options.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    replica_options.push_back(ReplicaOptions(s));
  }
  topo->shards.resize(n);
  pool_->ParallelFor(n, [&](size_t s) {
    topo->shards[s] = std::make_shared<ReplicaSet>(
        static_cast<uint32_t>(s), catalogs[s],
        std::move(replica_options[s]));
  });
  Publish(std::move(topo));
  StartScrubber();
}

ClusterEngine::~ClusterEngine() {
  // Stop the scrub thread before the topology/pool it walks goes away.
  if (scrubber_ != nullptr) scrubber_->Stop();
}

void ClusterEngine::StartScrubber() {
  if (!options_.enable_scrubber) return;
  Scrubber::Options so;
  so.poll_interval_ms = options_.scrub_interval_ms;
  scrubber_ = std::make_unique<Scrubber>(this, so);
}

void ClusterEngine::Publish(std::shared_ptr<const Topology> topo) {
  topology_.store(std::move(topo), std::memory_order_release);
}

store::SnapshotStore* ClusterEngine::StoreFor(uint32_t shard, size_t replica) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(options_.store_root) /
                       ("shard-" + std::to_string(shard)) /
                       ("replica-" + std::to_string(replica));
  std::error_code ec;
  fs::create_directories(dir, ec);
  stores_.push_back(std::make_unique<store::SnapshotStore>(dir.string()));
  return stores_.back().get();
}

ReplicaSet::Options ClusterEngine::ReplicaOptions(uint32_t shard) {
  ReplicaSet::Options ro;
  ro.num_replicas = options_.num_replicas;
  ro.engine = options_.engine;
  ro.breaker = options_.breaker;
  ro.write_quorum = options_.write_quorum;
  ro.metrics = options_.metrics;
  ro.tail = ReplicaTailOptions();
  if (!options_.store_root.empty()) {
    ro.replica_stores.reserve(ro.num_replicas);
    for (size_t r = 0; r < ro.num_replicas; ++r) {
      ro.replica_stores.push_back(StoreFor(shard, r));
    }
  }
  return ro;
}

ReplicaSet::Options::Tail ClusterEngine::ReplicaTailOptions() const {
  ReplicaSet::Options::Tail t;
  t.latency_window = options_.tail.latency_window;
  t.eject_multiple = options_.tail.eject_multiple;
  t.eject_quantile = options_.tail.eject_quantile;
  t.eject_min_samples = options_.tail.eject_min_samples;
  t.eject_base = options_.tail.eject_base;
  t.eject_max = options_.tail.eject_max;
  t.eject_probes = options_.tail.eject_probes;
  return t;
}

TailContext ClusterEngine::TailCtx() const {
  TailContext t;
  t.budget = retry_budget_.get();
  t.hedge_pool = hedge_pool_.get();
  t.hedge_quantile = options_.tail.hedge_quantile;
  t.hedge_min_delay = std::chrono::duration_cast<std::chrono::nanoseconds>(
      options_.tail.hedge_min_delay);
  t.hedge_max_delay = std::chrono::duration_cast<std::chrono::nanoseconds>(
      options_.tail.hedge_max_delay);
  t.hedge_min_samples = options_.tail.hedge_min_samples;
  t.hedges_dispatched = &hedges_dispatched_;
  t.hedges_won = &hedges_won_;
  t.hedge_counter = hedge_counter_;
  t.hedge_win_counter = hedge_win_counter_;
  t.budget_denied_counter = budget_denied_counter_;
  return t;
}

ClusterEngine::TailStats ClusterEngine::tail_stats() const {
  TailStats s;
  s.budget_requests = retry_budget_->requests();
  s.budget_acquired = retry_budget_->acquired();
  s.budget_denied = retry_budget_->denied();
  s.hedges_dispatched = hedges_dispatched_.load(std::memory_order_relaxed);
  s.hedges_won = hedges_won_.load(std::memory_order_relaxed);
  return s;
}

void ClusterEngine::InitMetrics() {
  serve::MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  queries_total_ = m->GetCounter("cluster.queries");
  queries_degraded_ = m->GetCounter("cluster.queries.degraded");
  failovers_total_ = m->GetCounter("cluster.failovers");
  shard_queries_ = m->GetCounterFamily("cluster.shard.queries", "shard");
  shard_failovers_ = m->GetCounterFamily("cluster.shard.failovers", "shard");
  shard_missing_ = m->GetCounterFamily("cluster.shard.missing", "shard");
  shard_delta_hits_ =
      m->GetCounterFamily("cluster.shard.delta_hits", "shard");
  shard_tables_ = m->GetGaugeFamily("cluster.shard.tables", "shard");
  shard_replicas_alive_ =
      m->GetGaugeFamily("cluster.shard.replicas_alive", "shard");
  shard_replicas_serving_ =
      m->GetGaugeFamily("cluster.shard.replicas_serving", "shard");
  scrub_passes_ = m->GetCounter("cluster.repair.scrub_passes");
  repair_replicas_ =
      m->GetCounterFamily("cluster.repair.replicas_repaired", "shard");
  repair_tables_copied_ =
      m->GetCounterFamily("cluster.repair.tables_copied", "shard");
  repair_tables_dropped_ =
      m->GetCounterFamily("cluster.repair.tables_dropped", "shard");
  repair_failures_ = m->GetCounterFamily("cluster.repair.failures", "shard");
  hedge_counter_ = m->GetCounter("cluster.tail.hedges");
  hedge_win_counter_ = m->GetCounter("cluster.tail.hedge_wins");
  budget_denied_counter_ = m->GetCounter("cluster.tail.budget_denied");
}

Result<std::unique_ptr<ClusterEngine>> ClusterEngine::Recover(
    Options options) {
  namespace fs = std::filesystem;
  if (options.store_root.empty()) {
    return Status::FailedPrecondition("cluster Recover requires store_root");
  }
  std::error_code ec;
  if (!fs::is_directory(options.store_root, ec)) {
    return Status::NotFound("cluster store_root does not exist: " +
                            options.store_root);
  }
  std::vector<uint32_t> shard_ids;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(options.store_root, ec)) {
    uint32_t id = 0;
    if (ParseIndexSuffix(entry.path().filename().string(), "shard-", &id)) {
      shard_ids.push_back(id);
    }
  }
  if (ec) {
    return Status::IoError("scanning " + options.store_root + ": " +
                           ec.message());
  }
  if (shard_ids.empty()) {
    return Status::NotFound("no shard directories under " +
                            options.store_root);
  }
  std::sort(shard_ids.begin(), shard_ids.end());

  // Filter to the shards that are actually part of the cluster: skip
  // retired directories (RemoveShard completed) and directories where no
  // replica ever persisted anything (AddShard died before its first
  // checkpoint — the shard was never visible durably). Skipped ids still
  // advance the shard-id sequence below, so ids are never reused.
  std::vector<uint32_t> live_ids;
  for (uint32_t id : shard_ids) {
    const fs::path shard_dir =
        fs::path(options.store_root) / ("shard-" + std::to_string(id));
    if (fs::exists(shard_dir / kRetiredMarker, ec)) {
      LAKE_LOG(Info) << "cluster recover: skipping retired shard-" << id;
      continue;
    }
    bool any_data = false;
    for (size_t r = 0;; ++r) {
      const fs::path dir = shard_dir / ("replica-" + std::to_string(r));
      if (!fs::is_directory(dir, ec)) break;
      if (ReplicaDirHasData(dir)) {
        any_data = true;
        break;
      }
    }
    if (!any_data) {
      LAKE_LOG(Info) << "cluster recover: skipping empty shard-" << id
                     << " (aborted add)";
      continue;
    }
    live_ids.push_back(id);
  }
  if (live_ids.empty()) {
    return Status::NotFound("no live shard directories under " +
                            options.store_root);
  }

  std::unique_ptr<ClusterEngine> cluster(
      new ClusterEngine(std::move(options)));
  auto topo = std::make_shared<Topology>();
  topo->ring = HashRing(cluster->options_.ring);
  size_t max_replicas = 1;
  for (uint32_t id : live_ids) {
    std::vector<std::unique_ptr<ingest::LiveEngine>> replicas;
    for (size_t r = 0;; ++r) {
      const fs::path dir = fs::path(cluster->options_.store_root) /
                           ("shard-" + std::to_string(id)) /
                           ("replica-" + std::to_string(r));
      if (!fs::is_directory(dir, ec)) break;
      store::SnapshotStore* store = cluster->StoreFor(id, r);
      ingest::LiveEngine::Options engine_options = cluster->options_.engine;
      engine_options.store = store;
      Result<std::unique_ptr<ingest::LiveEngine>> live =
          ingest::LiveEngine::Recover(store, std::move(engine_options));
      if (!live.ok()) return live.status();
      replicas.push_back(std::move(live).value());
    }
    if (replicas.empty()) {
      return Status::IoError("shard-" + std::to_string(id) +
                             " has no replica directories");
    }
    max_replicas = std::max(max_replicas, replicas.size());
    topo->ring.AddShard(id);
    ReplicaSet::Options ro;
    ro.breaker = cluster->options_.breaker;
    ro.write_quorum = cluster->options_.write_quorum;
    ro.metrics = cluster->options_.metrics;
    ro.tail = cluster->ReplicaTailOptions();
    topo->shards.push_back(std::make_shared<ReplicaSet>(
        id, std::move(replicas), std::move(ro)));
  }
  cluster->options_.num_shards = live_ids.size();
  cluster->options_.num_replicas = max_replicas;
  cluster->next_shard_id_ = shard_ids.back() + 1;
  cluster->Publish(std::move(topo));

  // Migration-crash cleanup: a crash mid-rebalance can strand a table on a
  // shard the recovered ring does not assign it to (AddShard died between
  // the new shard's checkpoint and the donor removes; RemoveShard died
  // between the survivor copies and the RETIRED marker). The rebalance
  // ordering makes the ring owner's copy durable before any donor drop, so
  // completing the migration is always safe. Without this, duplicated
  // tables double-count in the distributed BM25 corpus statistics.
  cluster->SweepStrayCopies();

  cluster->StartScrubber();
  return std::move(cluster);
}

// --- Queries -------------------------------------------------------------

TableQueryResponse ClusterEngine::Keyword(const std::string& query, size_t k,
                                          const CancelToken* cancel) const {
  auto topo = topology();

  // Phase A (distributed IDF, step 1): pin one generation per shard and
  // gather its BM25 corpus contribution. This is the failure surface —
  // replica pick, failpoints, failover all happen here.
  struct Pinned {
    std::shared_ptr<const ingest::Generation> gen;
    Bm25Index::CorpusStats stats;
  };
  auto pinned = ScatterToShards<Pinned>(
      *pool_, topo->shards, TailCtx(), options_.max_failover_attempts,
      options_.shard_deadline, cancel,
      [query](const ingest::LiveEngine& engine, const CancelToken* token,
              uint32_t /*shard*/) -> Result<Pinned> {
        Pinned p;
        p.gen = engine.Acquire();
        p.stats = ingest::GatherKeywordStats(*p.gen, query);
        if (token != nullptr) {
          Status st = token->Check();
          if (!st.ok()) return st;
        }
        return p;
      });

  // Phase A (step 2): merge the per-shard stats into the global corpus
  // view every shard will score against.
  Bm25Index::CorpusStats global;
  for (const ShardOutcome<Pinned>& o : pinned) {
    if (o.status.ok()) global.Merge(o.answer.stats);
  }

  // Phase B: score each pinned generation with the global stats. Pure
  // compute over already-pinned immutable state — it cannot fail, so no
  // failover or deadline machinery here, and the scores come out
  // bit-identical to a single engine over the whole lake.
  std::vector<ShardOutcome<TableAnswer>> outcomes(pinned.size());
  std::vector<std::future<void>> scoring;
  scoring.reserve(pinned.size());
  for (size_t i = 0; i < pinned.size(); ++i) {
    ShardOutcome<Pinned>& in = pinned[i];
    ShardOutcome<TableAnswer>& out = outcomes[i];
    out.shard = in.shard;
    out.status = in.status;
    out.trace = in.trace;
    if (!in.status.ok()) continue;
    scoring.push_back(pool_->Async([&in, &out, &global, &query, k]() {
      ingest::MergeStats ms;
      std::vector<TableResult> results =
          ingest::MergedKeyword(*in.answer.gen, query, k, &ms, &global);
      out.answer.hits = ToTableHits(*in.answer.gen, in.shard, results);
      out.answer.delta_hits = ms.delta_results;
    }));
  }
  for (std::future<void>& f : scoring) f.get();

  RecordScatterMetrics(
      ScatterMetrics{queries_total_, queries_degraded_, failovers_total_,
                     shard_queries_, shard_failovers_, shard_missing_,
                     shard_delta_hits_},
      outcomes);
  return BuildResponse<TableHit>(std::move(outcomes), k);
}

ColumnQueryResponse ClusterEngine::Joinable(
    const std::vector<std::string>& query_values, JoinMethod method, size_t k,
    const CancelToken* cancel, double error_budget) const {
  auto topo = topology();
  auto outcomes = ScatterToShards<ColumnAnswer>(
      *pool_, topo->shards, TailCtx(), options_.max_failover_attempts,
      options_.shard_deadline, cancel,
      [query_values, method, k, error_budget](
          const ingest::LiveEngine& engine, const CancelToken* token,
          uint32_t shard) -> Result<ColumnAnswer> {
        std::shared_ptr<const ingest::Generation> gen = engine.Acquire();
        ingest::MergeStats ms;
        LAKE_ASSIGN_OR_RETURN(
            std::vector<ColumnResult> results,
            ingest::MergedJoinable(*gen, query_values, method, k, token, &ms,
                                   error_budget));
        ColumnAnswer a;
        a.hits = ToColumnHits(*gen, shard, results);
        a.delta_hits = ms.delta_results;
        return a;
      });
  RecordScatterMetrics(
      ScatterMetrics{queries_total_, queries_degraded_, failovers_total_,
                     shard_queries_, shard_failovers_, shard_missing_,
                     shard_delta_hits_},
      outcomes);
  return BuildResponse<ColumnHit>(std::move(outcomes), k);
}

TableQueryResponse ClusterEngine::Unionable(const Table& query,
                                            UnionMethod method, size_t k,
                                            const std::string& exclude_name,
                                            const CancelToken* cancel) const {
  auto topo = topology();
  auto outcomes = ScatterToShards<TableAnswer>(
      *pool_, topo->shards, TailCtx(), options_.max_failover_attempts,
      options_.shard_deadline, cancel,
      [query, exclude_name, method, k](
          const ingest::LiveEngine& engine, const CancelToken* token,
          uint32_t shard) -> Result<TableAnswer> {
        std::shared_ptr<const ingest::Generation> gen = engine.Acquire();
        // Resolve the excluded name to this shard's local id; only the
        // owning shard will find it.
        int64_t exclude = -1;
        if (!exclude_name.empty()) {
          Result<TableId> id = gen->FindTable(exclude_name);
          if (id.ok()) exclude = static_cast<int64_t>(*id);
        }
        ingest::MergeStats ms;
        LAKE_ASSIGN_OR_RETURN(
            std::vector<TableResult> results,
            ingest::MergedUnionable(*gen, query, method, k, exclude, token,
                                    &ms));
        TableAnswer a;
        a.hits = ToTableHits(*gen, shard, results);
        a.delta_hits = ms.delta_results;
        return a;
      });
  RecordScatterMetrics(
      ScatterMetrics{queries_total_, queries_degraded_, failovers_total_,
                     shard_queries_, shard_failovers_, shard_missing_,
                     shard_delta_hits_},
      outcomes);
  return BuildResponse<TableHit>(std::move(outcomes), k);
}

ColumnQueryResponse ClusterEngine::Correlated(
    const std::vector<std::string>& key_values,
    const std::vector<double>& numeric_values, size_t k,
    const CancelToken* cancel) const {
  auto topo = topology();
  auto outcomes = ScatterToShards<ColumnAnswer>(
      *pool_, topo->shards, TailCtx(), options_.max_failover_attempts,
      options_.shard_deadline, cancel,
      [key_values, numeric_values, k](
          const ingest::LiveEngine& engine, const CancelToken* /*token*/,
          uint32_t shard) -> Result<ColumnAnswer> {
        std::shared_ptr<const ingest::Generation> gen = engine.Acquire();
        const CorrelatedJoinSearch* corr = gen->base().correlated_join();
        if (corr == nullptr) {
          return Status::FailedPrecondition(
              "correlated join index not built on shard " +
              std::to_string(shard));
        }
        LAKE_ASSIGN_OR_RETURN(
            std::vector<CorrelatedJoinSearch::CorrelatedResult> results,
            corr->Search(key_values, numeric_values, k));
        ColumnAnswer a;
        a.hits.reserve(results.size());
        for (const CorrelatedJoinSearch::CorrelatedResult& r : results) {
          if (gen->delta().tombstones.count(r.table_id) != 0) continue;
          Result<std::string> name = gen->TableName(r.table_id);
          if (!name.ok()) continue;
          a.hits.push_back(ColumnHit{std::move(name).value(),
                                     r.numeric_column, r.score,
                                     "correlated join", shard, r.table_id});
        }
        return a;
      });
  RecordScatterMetrics(
      ScatterMetrics{queries_total_, queries_degraded_, failovers_total_,
                     shard_queries_, shard_failovers_, shard_missing_,
                     shard_delta_hits_},
      outcomes);
  return BuildResponse<ColumnHit>(std::move(outcomes), k);
}

// --- Ingest --------------------------------------------------------------

ingest::LiveEngine::BatchOutcome ClusterEngine::ApplyBatch(
    ingest::LiveEngine::Batch batch) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  auto topo = topology();

  struct Sub {
    ingest::LiveEngine::Batch batch;
    std::vector<size_t> add_index;
    std::vector<size_t> remove_index;
  };
  std::unordered_map<uint32_t, Sub> subs;
  for (size_t i = 0; i < batch.adds.size(); ++i) {
    Sub& sub = subs[topo->ring.OwnerOf(batch.adds[i].name())];
    sub.batch.adds.push_back(std::move(batch.adds[i]));
    sub.add_index.push_back(i);
  }
  for (size_t i = 0; i < batch.removes.size(); ++i) {
    Sub& sub = subs[topo->ring.OwnerOf(batch.removes[i])];
    sub.batch.removes.push_back(std::move(batch.removes[i]));
    sub.remove_index.push_back(i);
  }

  std::vector<std::pair<uint32_t, Sub*>> flat;
  flat.reserve(subs.size());
  for (auto& [shard, sub] : subs) flat.push_back({shard, &sub});

  std::vector<std::optional<Result<TableId>>> adds(batch.adds.size());
  std::vector<Status> removes(batch.removes.size(), Status::OK());
  bool published = false;
  std::mutex out_mu;
  pool_->ParallelFor(flat.size(), [&](size_t i) {
    auto [shard, sub] = flat[i];
    ReplicaSet* rs = topo->Find(shard);
    ingest::LiveEngine::BatchOutcome outcome =
        rs->ApplyBatch(std::move(sub->batch));
    std::lock_guard<std::mutex> out_lock(out_mu);
    for (size_t j = 0; j < sub->add_index.size(); ++j) {
      adds[sub->add_index[j]] = std::move(outcome.adds[j]);
    }
    for (size_t j = 0; j < sub->remove_index.size(); ++j) {
      removes[sub->remove_index[j]] = std::move(outcome.removes[j]);
    }
    if (outcome.published) published = true;
  });

  ingest::LiveEngine::BatchOutcome out;
  out.adds.reserve(adds.size());
  for (std::optional<Result<TableId>>& a : adds) {
    out.adds.push_back(std::move(*a));
  }
  out.removes = std::move(removes);
  out.published = published;
  BumpVersion();
  return out;
}

// --- Topology changes ----------------------------------------------------

Result<ClusterEngine::RebalanceStats> ClusterEngine::AddShard() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  const Clock::time_point start = Clock::now();
  auto old_topo = topology();
  const uint32_t id = next_shard_id_++;
  HashRing new_ring = old_topo->ring;
  new_ring.AddShard(id);

  RebalanceStats stats;
  stats.shard = id;

  // Collect the tables whose owning arc moved to the new shard.
  std::vector<Table> moved;
  std::vector<std::pair<ReplicaSet*, std::vector<std::string>>> donors;
  for (const std::shared_ptr<ReplicaSet>& rs : old_topo->shards) {
    std::vector<Table> tables = rs->VisibleTables();
    std::vector<std::string> names;
    for (Table& t : tables) {
      ++stats.tables_total;
      if (new_ring.OwnerOf(t.name()) != id) continue;
      names.push_back(t.name());
      moved.push_back(std::move(t));
    }
    if (!names.empty()) donors.push_back({rs.get(), std::move(names)});
  }
  stats.tables_moved = moved.size();

  // Build the new shard off the serving path (sorted by name, like every
  // shard base), then publish it alongside the donors.
  std::sort(moved.begin(), moved.end(), [](const Table& a, const Table& b) {
    return a.name() < b.name();
  });
  auto catalog = std::make_shared<DataLakeCatalog>();
  for (Table& t : moved) catalog->AddTable(std::move(t));
  auto added = std::make_shared<ReplicaSet>(
      id, std::shared_ptr<const DataLakeCatalog>(catalog), ReplicaOptions(id));

  // Make the new shard durable BEFORE it becomes the ring owner and the
  // donors shed their copies. Without this, a crash after the donor
  // removes would recover a cluster whose only copy of the moved tables
  // was the new shard's never-persisted memory — acknowledged loss. On
  // failure the topology is unchanged (the old ring keeps serving) and
  // the orphan replica directories are skipped by Recover, since no
  // checkpoint committed.
  if (!options_.store_root.empty()) {
    for (size_t r = 0; r < added->num_replicas(); ++r) {
      Status persisted = added->replica(r)->Checkpoint();
      if (!persisted.ok()) {
        return Status::IoError(
            "add-shard checkpoint of shard-" + std::to_string(id) +
            " replica " + std::to_string(r) +
            " failed (topology unchanged): " + persisted.ToString());
      }
    }
  }

  auto topo = std::make_shared<Topology>();
  topo->ring = std::move(new_ring);
  topo->shards = old_topo->shards;
  topo->shards.push_back(std::move(added));
  Publish(topo);
  BumpVersion();

  // Drop the moved tables from their donors. Until this finishes a moved
  // table answers from both owners with identical scores; the gather's
  // by-name dedup hides the overlap, and no moment exists where it
  // answers from neither. A donor remove that fails its quorum leaves a
  // duplicate, not a loss (the new owner serves it), so failures retry
  // and then fall through to the stray-copy sweep instead of aborting.
  for (auto& [rs, names] : donors) {
    std::vector<std::string> pending = std::move(names);
    for (int attempt = 0; attempt < 3 && !pending.empty(); ++attempt) {
      ingest::LiveEngine::Batch b;
      b.removes = pending;
      ingest::LiveEngine::BatchOutcome outcome = rs->ApplyBatch(std::move(b));
      std::vector<std::string> still;
      for (size_t i = 0; i < outcome.removes.size(); ++i) {
        const Status& st = outcome.removes[i];
        if (st.ok() || st.code() == StatusCode::kNotFound) continue;
        still.push_back(pending[i]);
      }
      pending = std::move(still);
    }
    if (!pending.empty()) {
      LAKE_LOG(Warning) << "add-shard: donor shard " << rs->shard_id()
                        << " kept " << pending.size()
                        << " duplicate table(s); SweepStrayCopies will "
                           "reclaim them";
    }
  }
  BumpVersion();
  stats.duration_ms = MsSince(start);
  return stats;
}

Result<ClusterEngine::RebalanceStats> ClusterEngine::RemoveShard(
    uint32_t shard) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  const Clock::time_point start = Clock::now();
  auto old_topo = topology();
  ReplicaSet* victim = old_topo->Find(shard);
  if (victim == nullptr) {
    return Status::NotFound("no such shard: " + std::to_string(shard));
  }
  if (old_topo->shards.size() <= 1) {
    return Status::FailedPrecondition("cannot remove the last shard");
  }
  HashRing new_ring = old_topo->ring;
  new_ring.RemoveShard(shard);

  RebalanceStats stats;
  stats.shard = shard;
  for (const std::shared_ptr<ReplicaSet>& rs : old_topo->shards) {
    stats.tables_total += rs->replica(0)->Acquire()->visible_table_count();
  }

  // Re-home the victim's tables BEFORE retiring it: each moved table is
  // briefly visible on two shards (dedup hides it), never on none.
  std::vector<Table> tables = victim->VisibleTables();
  stats.tables_moved = tables.size();
  std::unordered_map<uint32_t, ingest::LiveEngine::Batch> batches;
  for (Table& t : tables) {
    batches[new_ring.OwnerOf(t.name())].adds.push_back(std::move(t));
  }
  // Every re-home must be ACKNOWLEDGED by its receiving quorum before the
  // victim may retire — an unacked copy would silently vanish with the
  // victim. On any failure the whole removal aborts: already-acked copies
  // are rolled back best-effort (a leftover duplicate is harmless — the
  // gather dedups it and SweepStrayCopies/Recover reclaims it), the ring
  // keeps the victim, and nothing was lost.
  std::vector<uint32_t> receivers;
  std::vector<std::pair<uint32_t, std::vector<std::string>>> acked_copies;
  Status rehome_failure = Status::OK();
  for (auto& [owner, b] : batches) {
    receivers.push_back(owner);
    std::vector<std::string> names;
    for (const Table& t : b.adds) names.push_back(t.name());
    ingest::LiveEngine::BatchOutcome outcome =
        old_topo->Find(owner)->ApplyBatch(std::move(b));
    std::vector<std::string> acked;
    for (size_t i = 0; i < outcome.adds.size(); ++i) {
      const Result<TableId>& r = outcome.adds[i];
      if (r.ok() || r.status().code() == StatusCode::kAlreadyExists) {
        acked.push_back(names[i]);
      } else if (rehome_failure.ok()) {
        rehome_failure = r.status();
      }
    }
    if (!acked.empty()) acked_copies.push_back({owner, std::move(acked)});
    if (!rehome_failure.ok()) break;
  }
  if (!rehome_failure.ok()) {
    for (auto& [owner, names] : acked_copies) {
      ingest::LiveEngine::Batch undo;
      undo.removes = std::move(names);
      old_topo->Find(owner)->ApplyBatch(std::move(undo));
    }
    return Status::Unavailable(
        "remove-shard re-home was not acknowledged (topology unchanged): " +
        rehome_failure.ToString());
  }

  if (!options_.store_root.empty()) {
    // Durability ordering: (1) the survivors' copies become durable, then
    // (2) the victim's directory is marked RETIRED, then (3) the topology
    // publishes. A crash after (1) but before (2) recovers the victim as
    // owner and drops the survivor copies (migration undone, nothing
    // lost); a crash after (2) recovers without the victim and the
    // survivors own their copies. No window loses a table or resurrects
    // the removed shard.
    for (uint32_t owner : receivers) {
      ReplicaSet* rs = old_topo->Find(owner);
      for (size_t r = 0; r < rs->num_replicas(); ++r) {
        Status persisted = rs->replica(r)->Checkpoint();
        if (!persisted.ok()) {
          return Status::IoError(
              "remove-shard checkpoint of survivor shard-" +
              std::to_string(owner) + " replica " + std::to_string(r) +
              " failed (topology unchanged): " + persisted.ToString());
        }
      }
    }
    namespace fs = std::filesystem;
    const fs::path marker = fs::path(options_.store_root) /
                            ("shard-" + std::to_string(shard)) /
                            kRetiredMarker;
    std::ofstream out(marker, std::ios::trunc);
    out << "retired by RemoveShard\n";
    out.close();
    if (!out) {
      return Status::IoError("cannot write retirement marker " +
                             marker.string() +
                             " (topology unchanged; duplicate copies will "
                             "be dropped on recovery)");
    }
  }

  auto topo = std::make_shared<Topology>();
  topo->ring = std::move(new_ring);
  for (const std::shared_ptr<ReplicaSet>& rs : old_topo->shards) {
    if (rs->shard_id() != shard) topo->shards.push_back(rs);
  }
  Publish(topo);
  BumpVersion();
  stats.duration_ms = MsSince(start);
  return stats;
}

// --- Health / chaos ------------------------------------------------------

Status ClusterEngine::KillReplica(uint32_t shard, size_t replica) {
  auto topo = topology();
  ReplicaSet* rs = topo->Find(shard);
  if (rs == nullptr) {
    return Status::NotFound("no such shard: " + std::to_string(shard));
  }
  if (replica >= rs->num_replicas()) {
    return Status::OutOfRange("no such replica: " + std::to_string(replica));
  }
  rs->Kill(replica);
  return Status::OK();
}

Status ClusterEngine::ReviveReplica(uint32_t shard, size_t replica) {
  auto topo = topology();
  ReplicaSet* rs = topo->Find(shard);
  if (rs == nullptr) {
    return Status::NotFound("no such shard: " + std::to_string(shard));
  }
  if (replica >= rs->num_replicas()) {
    return Status::OutOfRange("no such replica: " + std::to_string(replica));
  }
  rs->Revive(replica);
  return Status::OK();
}

std::vector<ClusterEngine::ShardHealth> ClusterEngine::Health() const {
  auto topo = topology();
  std::vector<ShardHealth> out;
  if (topo == nullptr) return out;
  const auto now = serve::CircuitBreaker::Clock::now();
  out.reserve(topo->shards.size());
  for (const std::shared_ptr<ReplicaSet>& rs : topo->shards) {
    ShardHealth h;
    h.shard = rs->shard_id();
    h.tables = rs->replica(0)->Acquire()->visible_table_count();
    h.replicas_alive = rs->num_alive();
    h.replicas.reserve(rs->num_replicas());
    for (size_t r = 0; r < rs->num_replicas(); ++r) {
      ReplicaHealth rh;
      rh.replica = r;
      rh.alive = rs->alive(r);
      rh.stale = rs->stale(r);
      rh.content_digest = rs->replica(r)->content_digest();
      rh.breaker_state = rs->breaker(r)->state(now);
      rh.breaker_trips = rs->breaker(r)->trips();
      const auto tail_now = ReplicaSet::Clock::now();
      rh.latency_p95_us = rs->LatencyQuantile(r, 0.95, tail_now);
      rh.latency_samples = rs->LatencySamples(r, tail_now);
      rh.slow_ejected = rs->slow_ejected(r);
      rh.slow_ejections = rs->slow_ejections(r);
      if (rh.slow_ejected) ++h.replicas_ejected;
      // Pick's actual eligibility: dead, stale, and breaker-open replicas
      // are all skipped, so none of them may report as serving.
      rh.serving = rh.alive && !rh.stale &&
                   rh.breaker_state != serve::CircuitBreaker::State::kOpen;
      if (rh.serving) ++h.replicas_serving;
      if (rh.stale) ++h.replicas_stale;
      if (!h.replicas.empty() &&
          rh.content_digest != h.replicas.front().content_digest) {
        h.digests_agree = false;
      }
      h.replicas.push_back(rh);
    }
    if (shard_tables_ != nullptr) {
      shard_tables_->WithLabel(h.shard)->Set(h.tables);
    }
    if (shard_replicas_alive_ != nullptr) {
      shard_replicas_alive_->WithLabel(h.shard)->Set(h.replicas_alive);
    }
    if (shard_replicas_serving_ != nullptr) {
      shard_replicas_serving_->WithLabel(h.shard)->Set(h.replicas_serving);
    }
    out.push_back(std::move(h));
  }
  return out;
}

// --- Anti-entropy --------------------------------------------------------

ClusterEngine::ScrubReport ClusterEngine::ScrubOnce() {
  const Clock::time_point start = Clock::now();
  ScrubReport report;
  auto topo = topology();
  if (topo == nullptr) return report;
  for (const std::shared_ptr<ReplicaSet>& rs : topo->shards) {
    ++report.shards_checked;
    // Cheap pre-check without the write lock: no stale flags and all
    // digests equal is the steady state, and costs R atomic loads.
    bool suspect = rs->num_stale() > 0;
    const uint64_t first = rs->replica(0)->content_digest();
    for (size_t i = 1; !suspect && i < rs->num_replicas(); ++i) {
      if (rs->replica(i)->content_digest() != first) suspect = true;
    }
    if (!suspect) continue;
    ++report.shards_divergent;
    // Serialize with the write path (and other scrub passes) so repair
    // diffs a quiescent shard; queries keep reading the published
    // generations throughout.
    std::lock_guard<std::mutex> lock(mutate_mu_);
    RepairShard(*rs, &report);
  }
  if (scrub_passes_ != nullptr) scrub_passes_->Add();
  report.duration_ms = MsSince(start);
  return report;
}

void ClusterEngine::RepairShard(ReplicaSet& rs, ScrubReport* report) {
  const size_t r = rs.num_replicas();
  std::vector<uint64_t> digests(r);
  for (size_t i = 0; i < r; ++i) {
    digests[i] = rs.replica(i)->content_digest();
  }

  // Canonical digest = majority vote among non-stale replicas (quorum
  // writes keep them digest-equal, so the vote is only load-bearing after
  // divergent recoveries), ties toward the lowest replica index. An
  // all-stale shard — unreachable through the public write path — falls
  // back to voting among everyone rather than repairing toward nothing.
  std::vector<size_t> voters;
  for (size_t i = 0; i < r; ++i) {
    if (!rs.stale(i)) voters.push_back(i);
  }
  if (voters.empty()) {
    for (size_t i = 0; i < r; ++i) voters.push_back(i);
  }
  std::map<uint64_t, size_t> counts;
  for (size_t i : voters) ++counts[digests[i]];
  size_t source = voters.front();
  for (size_t i : voters) {
    if (counts[digests[i]] > counts[digests[source]]) source = i;
  }
  const uint64_t canonical = digests[source];

  for (size_t d = 0; d < r; ++d) {
    if (digests[d] == canonical) {
      // Content already matches the canonical copy (e.g. a stale replica
      // that kept receiving writes and caught back up): re-admit.
      if (rs.stale(d)) {
        rs.ClearStale(d);
        ++report->replicas_repaired;
        if (repair_replicas_ != nullptr) {
          repair_replicas_->WithLabel(rs.shard_id())->Add();
        }
      }
      continue;
    }
    // Exclude the divergent replica from reads BEFORE touching it — a
    // divergence found by digest comparison (bit-flipped recovery, dropped
    // delta section) was never marked by the write path.
    rs.MarkStale(d);

    // Drill down to per-table digests and build the minimal repair batch:
    // drop tables the canonical copy lacks, re-copy tables whose digest
    // differs or that are missing. Removes run before adds within one
    // LiveEngine batch, so a stale copy is replaced in a single publish.
    const std::map<std::string, uint32_t> want =
        rs.replica(source)->TableDigests();
    const std::map<std::string, uint32_t> have = rs.replica(d)->TableDigests();
    ingest::LiveEngine::Batch fix;
    std::vector<std::string> copies;
    for (const auto& [name, digest] : have) {
      if (want.count(name) == 0) fix.removes.push_back(name);
    }
    for (const auto& [name, digest] : want) {
      auto it = have.find(name);
      if (it != have.end() && it->second == digest) continue;
      if (it != have.end()) fix.removes.push_back(name);
      copies.push_back(name);
    }
    // Copy-then-publish: read the tables from the canonical replica's
    // published generation (RCU — no locks against its readers), apply to
    // the divergent replica as one batch through its own publish path.
    std::shared_ptr<const ingest::Generation> gen =
        rs.replica(source)->Acquire();
    for (const std::string& name : copies) {
      Result<TableId> id = gen->FindTable(name);
      if (!id.ok()) continue;
      Result<const Table*> table = gen->FindTableById(id.value());
      if (!table.ok()) continue;
      fix.adds.push_back(*table.value());
    }
    const size_t copied = fix.adds.size();
    const size_t dropped = fix.removes.size();
    report->tables_dropped += dropped;
    report->tables_copied += copied;
    if (repair_tables_dropped_ != nullptr) {
      repair_tables_dropped_->WithLabel(rs.shard_id())->Add(dropped);
      repair_tables_copied_->WithLabel(rs.shard_id())->Add(copied);
    }
    rs.replica(d)->ApplyBatch(std::move(fix));

    // Verify before re-admitting; a replica that still disagrees stays
    // stale and the next pass retries (counted as a repair failure).
    if (rs.replica(d)->content_digest() == canonical) {
      rs.ClearStale(d);
      ++report->replicas_repaired;
      if (repair_replicas_ != nullptr) {
        repair_replicas_->WithLabel(rs.shard_id())->Add();
      }
      LAKE_LOG(Info) << "shard " << rs.shard_id() << ": repaired replica "
                     << d << " (" << copied << " copied, " << dropped
                     << " dropped)";
    } else {
      ++report->replicas_unrepaired;
      if (repair_failures_ != nullptr) {
        repair_failures_->WithLabel(rs.shard_id())->Add();
      }
      LAKE_LOG(Warning) << "shard " << rs.shard_id() << ": replica " << d
                        << " still divergent after repair; will retry";
    }
  }
}

// --- Durability ----------------------------------------------------------

Status ClusterEngine::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  if (options_.store_root.empty()) {
    return Status::FailedPrecondition("cluster has no store_root");
  }
  auto topo = topology();
  std::vector<Status> statuses(topo->shards.size(), Status::OK());
  pool_->ParallelFor(topo->shards.size(), [&](size_t i) {
    ReplicaSet& rs = *topo->shards[i];
    for (size_t r = 0; r < rs.num_replicas(); ++r) {
      Status st = rs.replica(r)->Checkpoint();
      if (!st.ok() && statuses[i].ok()) statuses[i] = st;
    }
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ClusterEngine::CompactAll() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  auto topo = topology();
  if (topo == nullptr) return Status::OK();
  std::vector<Status> statuses(topo->shards.size(), Status::OK());
  pool_->ParallelFor(topo->shards.size(), [&](size_t i) {
    ReplicaSet& rs = *topo->shards[i];
    for (size_t r = 0; r < rs.num_replicas(); ++r) {
      Result<ingest::LiveEngine::CompactionStats> stats =
          rs.replica(r)->Compact();
      if (!stats.ok() && statuses[i].ok()) statuses[i] = stats.status();
    }
  });
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

std::vector<Table> ClusterEngine::VisibleTables() const {
  std::vector<Table> out;
  auto topo = topology();
  if (topo == nullptr) return out;
  std::unordered_set<std::string> seen;
  for (const std::shared_ptr<ReplicaSet>& rs : topo->shards) {
    for (Table& t : rs->VisibleTables()) {
      if (seen.insert(t.name()).second) out.push_back(std::move(t));
    }
  }
  std::sort(out.begin(), out.end(), [](const Table& a, const Table& b) {
    return a.name() < b.name();
  });
  return out;
}

size_t ClusterEngine::SweepStrayCopies() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  auto topo = topology();
  if (topo == nullptr) return 0;
  size_t swept = 0;
  for (const std::shared_ptr<ReplicaSet>& rs : topo->shards) {
    std::vector<Table> tables = rs->VisibleTables();
    ingest::LiveEngine::Batch drop;
    for (Table& t : tables) {
      const uint32_t owner = topo->ring.OwnerOf(t.name());
      if (owner == rs->shard_id()) continue;
      if (topo->Find(owner) == nullptr) continue;  // ring only maps live shards
      // Drop unconditionally. Acked adds are durable on the owner before
      // any donor sheds its copy, so if the owner lacks this table it was
      // removed after the stray was orphaned; moving it back would
      // resurrect an acknowledged remove.
      drop.removes.push_back(t.name());
    }
    if (!drop.removes.empty()) {
      LAKE_LOG(Info) << "cluster: shard " << rs->shard_id() << " dropping "
                     << drop.removes.size()
                     << " stray table(s) from an interrupted rebalance";
      swept += drop.removes.size();
      rs->ApplyBatch(std::move(drop));
    }
  }
  if (swept > 0) BumpVersion();
  return swept;
}

std::map<std::string, uint32_t> ClusterEngine::VisibleTableDigests() const {
  std::map<std::string, uint32_t> out;
  auto topo = topology();
  if (topo == nullptr) return out;
  for (const std::shared_ptr<ReplicaSet>& rs : topo->shards) {
    // Authoritative copy: the first non-stale replica (same rule as
    // ReplicaSet::VisibleTables); an all-stale shard falls back to
    // replica 0.
    size_t source = 0;
    for (size_t r = 0; r < rs->num_replicas(); ++r) {
      if (!rs->stale(r)) {
        source = r;
        break;
      }
    }
    for (const auto& [name, digest] : rs->replica(source)->TableDigests()) {
      out[name] = digest;
    }
  }
  return out;
}

// --- Introspection -------------------------------------------------------

size_t ClusterEngine::num_shards() const {
  auto topo = topology();
  return topo == nullptr ? 0 : topo->shards.size();
}

size_t ClusterEngine::TotalVisibleTables() const {
  auto topo = topology();
  if (topo == nullptr) return 0;
  size_t total = 0;
  for (const std::shared_ptr<ReplicaSet>& rs : topo->shards) {
    total += rs->replica(0)->Acquire()->visible_table_count();
  }
  return total;
}

uint32_t ClusterEngine::OwnerOf(const std::string& name) const {
  return topology()->ring.OwnerOf(name);
}

}  // namespace lake::cluster
