#include "cluster/scrubber.h"

#include <chrono>

namespace lake::cluster {

Scrubber::Scrubber(ClusterEngine* cluster, Options options)
    : cluster_(cluster), options_(options) {
  thread_ = std::thread([this] { Loop(); });
}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::TriggerNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trigger_ = true;
  }
  cv_.notify_one();
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  pass_cv_.notify_all();
  thread_.join();
}

uint64_t Scrubber::passes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return passes_;
}

ClusterEngine::ScrubReport Scrubber::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

ClusterEngine::ScrubReport Scrubber::RunPassAndWait() {
  std::unique_lock<std::mutex> lock(mu_);
  // A pass executing right now snapshotted digests before this call; wait
  // for one more completion beyond it so the returned pass began here.
  const uint64_t target = passes_ + (running_ ? 2 : 1);
  trigger_ = true;
  cv_.notify_one();
  pass_cv_.wait(lock, [&] { return passes_ >= target || stop_; });
  return last_report_;
}

void Scrubber::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stop_ || trigger_; });
      if (stop_) return;
      trigger_ = false;
      running_ = true;
    }
    ClusterEngine::ScrubReport report = cluster_->ScrubOnce();
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ = false;
      last_report_ = report;
      ++passes_;
    }
    pass_cv_.notify_all();
  }
}

}  // namespace lake::cluster
