#ifndef LAKE_CLUSTER_RETRY_BUDGET_H_
#define LAKE_CLUSTER_RETRY_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace lake::cluster {

/// Global retry/hedge budget for a cluster engine: hedged reads and
/// failover retries together draw from one pool sized as a fraction of
/// the recent *primary* sub-query volume (gRPC/SRE-style ratio budget),
/// so a sick cluster cannot melt itself by amplifying every slow or
/// failing request into duplicated work — the classic metastable-failure
/// trigger. Volume and spend are tracked over a rolling time window; a
/// small burst floor keeps failover alive on a cold or low-traffic
/// cluster. Budget-exhausted requests simply skip the extra attempt and
/// degrade exactly as an exhausted failover loop does today.
class RetryBudget {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Extra attempts (hedges + retries) allowed per primary sub-query
    /// in the window.
    double ratio = 0.1;
    /// Burst floor: this many extra attempts are always allowed per
    /// window regardless of volume.
    uint64_t min_tokens = 10;
    /// Rolling window = `window_slices * slice_width`.
    size_t window_slices = 8;
    std::chrono::milliseconds slice_width{1000};
  };

  RetryBudget();  // default Options
  explicit RetryBudget(Options options);

  /// Accounts one primary (non-duplicated) sub-query dispatch.
  void RecordRequest(Clock::time_point now);

  /// Tries to reserve one extra attempt (hedge or failover retry).
  /// Returns false — caller must skip the duplicate work — when the
  /// window's extra attempts would exceed ratio * volume + min_tokens.
  bool TryAcquire(Clock::time_point now);

  /// Lifetime counters (cheap, for health/metrics/tests).
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  uint64_t acquired() const { return acquired_.load(std::memory_order_relaxed); }
  uint64_t denied() const { return denied_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  struct Slice {
    uint64_t tick = UINT64_MAX;
    uint64_t requests = 0;
    uint64_t extras = 0;
  };

  uint64_t TickOf(Clock::time_point now) const;
  bool LiveAt(const Slice& slice, uint64_t tick) const;
  Slice& SliceFor(uint64_t tick);

  Options options_;
  mutable std::mutex mu_;
  std::vector<Slice> slices_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> acquired_{0};
  std::atomic<uint64_t> denied_{0};
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_RETRY_BUDGET_H_
