#ifndef LAKE_CLUSTER_CLUSTER_ENGINE_H_
#define LAKE_CLUSTER_CLUSTER_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/replica_set.h"
#include "cluster/retry_budget.h"
#include "cluster/ring.h"
#include "ingest/live_engine.h"
#include "serve/metrics.h"
#include "util/cancel.h"
#include "util/thread_pool.h"
#include "util/windowed_quantile.h"

namespace lake::cluster {

class Scrubber;

/// Hedging/budget state one scattered query carries into its per-shard
/// tasks (snapped out of the engine like the metric handles, so the shard
/// runners stay free templates in the .cc). Pointers alias engine members
/// that outlive the scatter pool — abandoned shard tasks may touch them
/// after the query returns, never after the engine dies.
struct TailContext {
  RetryBudget* budget = nullptr;
  /// Non-null iff hedging is enabled; primaries of hedged attempts run
  /// here so a saturated scatter pool cannot starve its own hedges.
  ThreadPool* hedge_pool = nullptr;
  double hedge_quantile = 0.95;
  std::chrono::nanoseconds hedge_min_delay{0};
  std::chrono::nanoseconds hedge_max_delay{0};
  uint64_t hedge_min_samples = 0;
  std::atomic<uint64_t>* hedges_dispatched = nullptr;
  std::atomic<uint64_t>* hedges_won = nullptr;
  serve::Counter* hedge_counter = nullptr;
  serve::Counter* hedge_win_counter = nullptr;
  serve::Counter* budget_denied_counter = nullptr;
};

/// A ranked table hit with cluster provenance. Tables are identified by
/// name (the stable identity — ids are shard- and generation-local);
/// `local_id` is the lake-visible id within the owning shard's generation.
struct TableHit {
  std::string table;
  double score = 0;
  std::string why;
  uint32_t shard = 0;
  TableId local_id = 0;
};

/// A ranked column hit with cluster provenance.
struct ColumnHit {
  std::string table;
  size_t column_index = 0;
  double score = 0;
  std::string why;
  uint32_t shard = 0;
  TableId local_id = 0;
};

/// Per-shard execution record of one scattered query.
struct ShardTrace {
  uint32_t shard = 0;
  size_t replica = 0;  // replica of the final attempt (or winning hedge)
  size_t attempts = 0; // 1 = no failover (a hedge is not a failover)
  Status status;
  size_t results = 0;
  double latency_ms = 0;
  bool hedged = false;     // a duplicate read was dispatched to a sibling
  bool hedge_won = false;  // ... and its answer was the one used
};

/// One scattered query's merged answer. `degraded` is true when at least
/// one shard could not answer in time (its id is in `missing_shards`) and
/// the hits are therefore partial; status stays OK unless EVERY shard
/// failed. This is the "slow shard costs coverage, never a hung query"
/// contract.
template <typename Hit>
struct ScatterResponse {
  Status status;
  std::vector<Hit> hits;
  bool degraded = false;
  std::vector<uint32_t> missing_shards;
  std::vector<ShardTrace> traces;
};

using TableQueryResponse = ScatterResponse<TableHit>;
using ColumnQueryResponse = ScatterResponse<ColumnHit>;

/// Sharded, replicated serving over N in-process LiveEngine shards — the
/// scale-out layer the survey's future-directions section calls for.
///
///   - *Partitioning*: a consistent-hash ring over table names assigns
///     each table to exactly one shard; the shard indexes only its slice,
///     so index build parallelizes across shards and each shard's indexes
///     stay small.
///   - *Replication*: R replicas per shard, content-identical (mutations
///     apply to all), each guarded by a circuit breaker; reads round-robin
///     across healthy replicas and fail over on error (hedged retry on a
///     sibling), so one dead replica costs nothing but a retry.
///   - *Scatter-gather*: queries fan out to every shard on a thread pool
///     with a per-shard deadline budget, per-shard top-k lists come back,
///     and the N-way merge in topk_merge.h (score desc, ties by table
///     name) produces an answer identical to one unpartitioned engine over
///     the same lake. Keyword search runs the distributed-IDF two-phase
///     protocol (gather per-shard BM25 corpus stats, merge, score with the
///     global stats) so even corpus-dependent BM25 scores match exactly.
///   - *Topology as RCU*: the ring + replica sets are published as one
///     immutable Topology snapshot behind an atomic shared_ptr; queries
///     acquire it once and never observe a half-rebalanced cluster.
class ClusterEngine {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    size_t num_shards = 2;
    size_t num_replicas = 1;
    HashRing::Options ring;
    /// LiveEngine options template for every replica (store/WAL wiring is
    /// overridden per replica when `store_root` is set).
    ingest::LiveEngine::Options engine;
    /// Scatter/build pool width; 0 = one worker per shard.
    size_t num_workers = 0;
    /// Per-(shard,replica) breaker options.
    serve::CircuitBreaker::Options breaker;
    /// Budget each shard gets per query (also capped by the caller's
    /// remaining deadline); 0 = caller's deadline only. A shard that
    /// exceeds it is reported missing and the query degrades to partial.
    std::chrono::milliseconds shard_deadline{0};
    /// Max attempts per shard per query (1 = no failover).
    size_t max_failover_attempts = 2;
    /// Durability root: per-replica SnapshotStores (checkpoints + WAL) at
    /// "<store_root>/shard-<s>/replica-<r>". Empty = none.
    std::string store_root;
    /// Replicas per shard that must apply (and agree on) a mutation batch
    /// before it acks; 0 = majority (R/2 + 1). See ReplicaSet::Options.
    size_t write_quorum = 0;
    /// Run the background anti-entropy scrubber (digest comparison +
    /// divergence repair) on this cadence. Off by default; ScrubOnce() is
    /// always available for explicit passes.
    bool enable_scrubber = false;
    uint64_t scrub_interval_ms = 100;
    /// Optional metrics sink (cluster.* metrics, per-shard labeled
    /// families).
    serve::MetricsRegistry* metrics = nullptr;

    /// Tail tolerance. Per-replica latency tracking and the retry/hedge
    /// budget are always on (cheap); hedged reads and slow-outlier
    /// ejection are opt-in.
    struct Tail {
      /// Hedged reads: when a read sub-query's primary replica has not
      /// answered within a delay derived from its tracked p95, dispatch
      /// the same sub-query to a sibling replica; first response wins and
      /// the loser is cancelled. Mutations never pass through this path.
      bool enable_hedging = false;
      /// Quantile of the primary's tracked latency that sets the hedge
      /// delay.
      double hedge_quantile = 0.95;
      /// Clamp for the derived hedge delay. Until the primary has
      /// hedge_min_samples in its window, the delay is hedge_max_delay.
      std::chrono::milliseconds hedge_min_delay{1};
      std::chrono::milliseconds hedge_max_delay{50};
      uint64_t hedge_min_samples = 16;
      /// Retry/hedge budget (shared by hedges and failover retries):
      /// extra attempts allowed per primary sub-query over the rolling
      /// window, plus a burst floor. See RetryBudget.
      double budget_ratio = 0.1;
      uint64_t budget_min_tokens = 10;
      size_t budget_window_slices = 8;
      std::chrono::milliseconds budget_slice_width{1000};
      /// Slow-outlier ejection knobs, forwarded to every ReplicaSet
      /// (see ReplicaSet::Options::Tail). 0 disables ejection.
      double eject_multiple = 0;
      double eject_quantile = 0.95;
      uint64_t eject_min_samples = 32;
      std::chrono::milliseconds eject_base{1000};
      std::chrono::milliseconds eject_max{8000};
      size_t eject_probes = 3;
      /// Per-replica latency window shape, forwarded to every ReplicaSet.
      WindowedQuantile::Options latency_window;
    };
    Tail tail;
  };

  /// Builds a cluster over `lake`: partitions the tables by ring owner and
  /// builds every shard's indexes in parallel on the pool.
  ClusterEngine(const DataLakeCatalog& lake, Options options);

  /// Rebuilds a cluster from per-replica snapshot stores under
  /// `options.store_root` (written by Checkpoint of a cluster built with
  /// the same store_root). Shard directories are discovered by scanning;
  /// directories holding a RETIRED marker (RemoveShard) or containing no
  /// committed snapshot and no WAL in any replica (an AddShard that died
  /// before its first checkpoint) are skipped, though their ids still
  /// advance the shard-id sequence so ids are never reused. After the
  /// topology is rebuilt, tables stranded on a non-owner shard by a crash
  /// mid-rebalance are dropped (the ring owner always holds a durable copy
  /// first, so this completes the migration instead of double-counting
  /// BM25 corpus statistics).
  static Result<std::unique_ptr<ClusterEngine>> Recover(Options options);

  ~ClusterEngine();

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  // --- Query surface (mirrors LiveEngine's merged queries) --------------

  TableQueryResponse Keyword(const std::string& query, size_t k,
                             const CancelToken* cancel = nullptr) const;

  /// `error_budget` applies to JoinMethod::kApprox only: each shard's
  /// approximate tier sizes its confidence intervals with it (<= 0 keeps
  /// the engine default).
  ColumnQueryResponse Joinable(const std::vector<std::string>& query_values,
                               JoinMethod method, size_t k,
                               const CancelToken* cancel = nullptr,
                               double error_budget = -1) const;

  /// `exclude_name` drops a self-match by table name (empty = none) —
  /// cluster callers cannot use ids, which are shard-local.
  TableQueryResponse Unionable(const Table& query, UnionMethod method,
                               size_t k, const std::string& exclude_name = "",
                               const CancelToken* cancel = nullptr) const;

  /// Correlated numeric search, scattered to every shard's base engine
  /// (base-only, like single-node serving).
  ColumnQueryResponse Correlated(const std::vector<std::string>& key_values,
                                 const std::vector<double>& numeric_values,
                                 size_t k,
                                 const CancelToken* cancel = nullptr) const;

  // --- Ingest -----------------------------------------------------------

  /// Routes each op to its owning shard (by table name) and applies the
  /// per-shard sub-batches in parallel; every replica of a shard applies
  /// its sub-batch. The outcome is stitched back into Batch order.
  ingest::LiveEngine::BatchOutcome ApplyBatch(ingest::LiveEngine::Batch batch);

  // --- Topology ---------------------------------------------------------

  struct RebalanceStats {
    uint32_t shard = 0;      // shard added or removed
    size_t tables_moved = 0;
    size_t tables_total = 0; // visible tables cluster-wide before the move
    double duration_ms = 0;
  };

  /// Adds one shard and migrates the tables the new ring assigns to it
  /// (~1/N of the lake). Queries keep serving throughout; during the brief
  /// hand-off window a moved table may be visible on both shards, which
  /// the gather's by-name dedup hides. With a store_root the new shard is
  /// checkpointed BEFORE it is published and the donors shed their copies,
  /// so a crash at any point recovers to a consistent topology (either the
  /// move never happened, or the new shard owns its slice durably).
  Result<RebalanceStats> AddShard();

  /// Removes a shard, redistributing its tables to the survivors. With a
  /// store_root the receiving survivors are checkpointed and then the
  /// victim's store directory is marked RETIRED before the new topology
  /// publishes — Recover skips retired directories, so a removed shard can
  /// never resurrect with stale content.
  Result<RebalanceStats> RemoveShard(uint32_t shard);

  // --- Health / chaos ---------------------------------------------------

  /// Marks one replica dead for the read path (mutations still apply, so
  /// Revive needs no resync).
  Status KillReplica(uint32_t shard, size_t replica);
  Status ReviveReplica(uint32_t shard, size_t replica);

  struct ReplicaHealth {
    size_t replica = 0;
    bool alive = true;
    /// Content diverged from the quorum; excluded from reads until the
    /// scrubber repairs it (see ReplicaSet::MarkStale).
    bool stale = false;
    /// Actually eligible for Pick right now: alive, not stale, and the
    /// breaker is not open. THIS is the health signal — `alive` alone
    /// reports a breaker-tripped replica as healthy while Pick skips it.
    bool serving = true;
    /// Rolled-up content digest (LiveEngine::content_digest).
    uint64_t content_digest = 0;
    serve::CircuitBreaker::State breaker_state =
        serve::CircuitBreaker::State::kClosed;
    uint64_t breaker_trips = 0;
    /// Tracked service-latency p95 (microseconds) over the decayed
    /// window; 0 when the window is empty.
    double latency_p95_us = 0;
    uint64_t latency_samples = 0;
    /// Ejected (or probing) by the slow-outlier state machine; skipped by
    /// Pick's first pass but still a last-resort fallback, so `serving`
    /// stays true — ejection trims the tail, it never removes capacity.
    bool slow_ejected = false;
    uint64_t slow_ejections = 0;
  };
  struct ShardHealth {
    uint32_t shard = 0;
    size_t tables = 0;          // visible tables on the shard
    size_t replicas_alive = 0;
    size_t replicas_serving = 0;
    size_t replicas_stale = 0;
    size_t replicas_ejected = 0;  // slow-outlier ejected/probing
    /// All replica content digests are equal (replication is converged).
    bool digests_agree = true;
    std::vector<ReplicaHealth> replicas;
  };

  /// Per-shard health; also refreshes the cluster.shard.* labeled gauges.
  std::vector<ShardHealth> Health() const;

  /// Lifetime tail-tolerance counters (tests, bench, health surface).
  struct TailStats {
    uint64_t budget_requests = 0;  // primary sub-queries accounted
    uint64_t budget_acquired = 0;  // extra attempts granted (hedge+retry)
    uint64_t budget_denied = 0;    // extra attempts refused by the budget
    uint64_t hedges_dispatched = 0;
    uint64_t hedges_won = 0;
  };
  TailStats tail_stats() const;

  // --- Anti-entropy ------------------------------------------------------

  struct ScrubReport {
    size_t shards_checked = 0;
    /// Shards where stale flags or digest disagreement triggered repair.
    size_t shards_divergent = 0;
    /// Replicas brought back to digest equality and re-admitted to reads.
    size_t replicas_repaired = 0;
    /// Replicas still divergent after repair (left stale; next pass
    /// retries).
    size_t replicas_unrepaired = 0;
    size_t tables_copied = 0;   // repaired by copy from the canonical peer
    size_t tables_dropped = 0;  // extra/outdated copies removed
    double duration_ms = 0;
  };

  /// One anti-entropy pass: per shard, compare replica content digests
  /// (plus stale flags); on disagreement drill down to per-table digests
  /// and repair each divergent replica by copying only the differing
  /// tables from a majority-agreeing peer (copy-then-publish through the
  /// replica's own RCU generation path), then re-admit it once its digest
  /// matches. Runs on the Scrubber's cadence when enable_scrubber is set;
  /// tests and operators call it directly for deterministic passes.
  ScrubReport ScrubOnce();

  /// Background scrubber (null unless options.enable_scrubber).
  Scrubber* scrubber() { return scrubber_.get(); }

  // --- Durability -------------------------------------------------------

  /// Checkpoints every replica through its own store (shard-parallel).
  /// FailedPrecondition without a store_root.
  Status Checkpoint();

  /// Compacts every replica of every shard (shard-parallel): folds each
  /// delta into a fresh base built over the survivors, which also restores
  /// exact single-engine BM25 statistics after removes. Returns the first
  /// failure but attempts every replica regardless — a replica whose
  /// compaction fails keeps serving its current generation.
  Status CompactAll();

  /// Name → content digest of every visible table cluster-wide (each
  /// shard's authoritative copy, from its first non-stale replica). The
  /// chaos invariant checker diffs this against its oracle; rebalance
  /// dual-visibility windows collapse because the map is keyed by name.
  std::map<std::string, uint32_t> VisibleTableDigests() const;

  /// Copies of every visible table cluster-wide, sorted by name and
  /// deduplicated (a table mid-migration counts once). The chaos checker
  /// builds its single-node oracle engine from exactly this corpus.
  std::vector<Table> VisibleTables() const;

  /// Drops tables stranded on a shard the current ring does not assign
  /// them to (a rebalance that was interrupted by a crash or a failed
  /// quorum write). Strays are dropped unconditionally: every acknowledged
  /// add is durable on its ring owner before any donor sheds its copy
  /// (AddShard checkpoints the new shard before publishing the ring;
  /// RemoveShard re-homes with quorum acks before the RETIRED marker), so
  /// an owner that lacks a stray's table proves the table was removed
  /// after the stray was orphaned — re-adding it would resurrect an
  /// acknowledged remove. Returns the number of stray copies dropped.
  /// Recover runs it automatically; the chaos harness runs it at quiesce.
  size_t SweepStrayCopies();

  // --- Introspection ----------------------------------------------------

  size_t num_shards() const;
  size_t num_replicas() const { return options_.num_replicas; }
  /// Visible tables across all shards.
  size_t TotalVisibleTables() const;
  /// Owning shard of a table name under the current topology.
  uint32_t OwnerOf(const std::string& name) const;
  /// Mutation/topology sequence, mixed into serving-layer cache keys.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  const Options& options() const { return options_; }

 private:
  /// One immutable published topology (RCU like LiveEngine generations).
  struct Topology {
    HashRing ring;
    std::vector<std::shared_ptr<ReplicaSet>> shards;

    ReplicaSet* Find(uint32_t shard_id) const;
  };

  explicit ClusterEngine(Options options);  // Recover() shell

  std::shared_ptr<const Topology> topology() const {
    return topology_.load(std::memory_order_acquire);
  }
  void Publish(std::shared_ptr<const Topology> topo);

  /// Creates (and owns) the SnapshotStore for one replica directory; null
  /// when store_root is empty.
  store::SnapshotStore* StoreFor(uint32_t shard, size_t replica);

  ReplicaSet::Options ReplicaOptions(uint32_t shard);
  /// Tail knobs forwarded into every ReplicaSet (both build paths).
  ReplicaSet::Options::Tail ReplicaTailOptions() const;
  /// Snapshot of the tail-tolerance state one scattered query carries.
  TailContext TailCtx() const;
  void InitMetrics();
  /// Starts the background scrubber when options_.enable_scrubber.
  void StartScrubber();
  /// Repairs every divergent replica of one shard toward the canonical
  /// (majority non-stale) digest. Caller holds mutate_mu_.
  void RepairShard(ReplicaSet& rs, ScrubReport* report);
  void BumpVersion() {
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

  Options options_;

  /// Serializes mutations and topology changes (ApplyBatch, Add/Remove
  /// Shard, Checkpoint); queries only read the published topology.
  mutable std::mutex mutate_mu_;
  uint32_t next_shard_id_ = 0;
  /// Owned per-replica stores, keyed "shard-<s>/replica-<r>" (stores must
  /// outlive the engines using them; never shrunk).
  std::vector<std::unique_ptr<store::SnapshotStore>> stores_;

  std::atomic<std::shared_ptr<const Topology>> topology_;
  std::atomic<uint64_t> version_{0};

  // Metric handles (null without a registry).
  serve::Counter* queries_total_ = nullptr;
  serve::Counter* queries_degraded_ = nullptr;
  serve::Counter* failovers_total_ = nullptr;
  serve::CounterFamily* shard_queries_ = nullptr;
  serve::CounterFamily* shard_failovers_ = nullptr;
  serve::CounterFamily* shard_missing_ = nullptr;
  serve::CounterFamily* shard_delta_hits_ = nullptr;
  serve::GaugeFamily* shard_tables_ = nullptr;
  serve::GaugeFamily* shard_replicas_alive_ = nullptr;
  serve::GaugeFamily* shard_replicas_serving_ = nullptr;
  serve::Counter* scrub_passes_ = nullptr;
  serve::CounterFamily* repair_replicas_ = nullptr;
  serve::CounterFamily* repair_tables_copied_ = nullptr;
  serve::CounterFamily* repair_tables_dropped_ = nullptr;
  serve::CounterFamily* repair_failures_ = nullptr;
  serve::Counter* hedge_counter_ = nullptr;
  serve::Counter* hedge_win_counter_ = nullptr;
  serve::Counter* budget_denied_counter_ = nullptr;

  /// Tail tolerance: the shared retry/hedge budget, the dedicated hedge
  /// pool (hedged primaries run here so a saturated scatter pool cannot
  /// starve its own hedges), and lifetime hedge counters. Declared before
  /// pool_: abandoned scatter tasks drain with pool_ and may still touch
  /// these during teardown.
  std::unique_ptr<RetryBudget> retry_budget_;
  std::unique_ptr<ThreadPool> hedge_pool_;
  mutable std::atomic<uint64_t> hedges_dispatched_{0};
  mutable std::atomic<uint64_t> hedges_won_{0};

  /// Scatter/build/ingest pool. Drained before the replica sets and
  /// stores it references are torn down.
  mutable std::unique_ptr<ThreadPool> pool_;
  /// Last member: the scrub thread stops before anything it touches dies.
  std::unique_ptr<Scrubber> scrubber_;
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_CLUSTER_ENGINE_H_
