#ifndef LAKE_CLUSTER_REPLICA_SET_H_
#define LAKE_CLUSTER_REPLICA_SET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ingest/live_engine.h"
#include "serve/circuit_breaker.h"
#include "serve/metrics.h"

namespace lake::cluster {

/// R replicas of one shard: identical LiveEngines over the shard's slice
/// of the lake, each guarded by its own circuit breaker and a liveness
/// flag. The read path picks one healthy replica per query (round-robin
/// across queries) and fails over to a sibling when an attempt fails.
///
/// The write path is a quorum protocol, not blind fan-out: every replica
/// attempts the batch (failpoint "cluster.apply.<shard>.<replica>" injects
/// per-replica apply failures), the per-replica outcomes + post-apply
/// content digests are compared, and the largest agreeing group wins. The
/// batch acks iff that group has at least W members (write_quorum, default
/// majority). A replica that failed to apply or disagreed with the winning
/// group is marked *stale*: excluded from Pick like a dead replica until
/// the anti-entropy scrubber repairs it back to digest equality and
/// re-admits it. The serving invariant this buys: every replica a query
/// can read is digest-equal to the winning group's content.
///
/// Kill/Revive model *serving-path* failure (a replica that stops
/// answering): a killed replica is skipped by Pick but still applies
/// mutations, so revival needs no resync. Durability of the data itself is
/// the WAL/checkpoint layer's job (per-replica SnapshotStores).
class ReplicaSet {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    size_t num_replicas = 1;
    /// LiveEngine options template. `engine.store` is ignored; per-replica
    /// stores arrive via `replica_stores`.
    ingest::LiveEngine::Options engine;
    /// Per-replica SnapshotStores (checkpoints + WAL), parallel to replica
    /// index; empty or null entries disable durability for that replica.
    /// Not owned.
    std::vector<store::SnapshotStore*> replica_stores;
    serve::CircuitBreaker::Options breaker;
    /// Replicas that must apply a batch — and agree on its outcome and
    /// post-apply digest — before it acks. 0 = majority (R/2 + 1); values
    /// above R clamp to R. 1 turns quorum off (any single success acks).
    size_t write_quorum = 0;
    /// Optional metrics sink (cluster.apply.* counters,
    /// serve.replica.stale gauge). Not owned.
    serve::MetricsRegistry* metrics = nullptr;
  };

  /// Builds R replicas over `catalog` (one shared immutable cold-start
  /// base engine, so construction cost is one index build, not R).
  ReplicaSet(uint32_t shard_id, std::shared_ptr<const DataLakeCatalog> catalog,
             Options options);

  /// Wraps already-recovered engines (ClusterEngine::Recover);
  /// `options.num_replicas` / `engine` / `replica_stores` are ignored —
  /// the engines arrive fully built.
  ReplicaSet(uint32_t shard_id,
             std::vector<std::unique_ptr<ingest::LiveEngine>> replicas,
             Options options);

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  uint32_t shard_id() const { return shard_id_; }
  size_t num_replicas() const { return replicas_.size(); }

  /// Write-path failpoint of one replica: "cluster.apply.<shard>.<replica>"
  /// (the read path's sibling is "cluster.exec.<shard>.<replica>").
  static std::string ApplyFailpointName(uint32_t shard, size_t replica);

  // --- Read path --------------------------------------------------------

  struct Route {
    size_t replica = 0;
    const ingest::LiveEngine* engine = nullptr;
    serve::CircuitBreaker::Permit permit =
        serve::CircuitBreaker::Permit::kAllowed;
  };

  /// Picks a live, non-stale replica whose breaker admits a call, rotating
  /// the starting replica across calls so load spreads. `exclude` skips
  /// one replica (the one that just failed; SIZE_MAX = none). False when
  /// no replica is available — the shard is effectively down for this
  /// query.
  bool Pick(Clock::time_point now, size_t exclude, Route* route);

  /// Feeds an attempt's outcome into the routed replica's breaker.
  void RecordOutcome(size_t replica, bool success, Clock::time_point now);

  // --- Health -----------------------------------------------------------

  void Kill(size_t replica) { alive_[replica]->store(false); }
  void Revive(size_t replica) { alive_[replica]->store(true); }
  bool alive(size_t replica) const { return alive_[replica]->load(); }
  size_t num_alive() const;

  /// Stale = content diverged from the quorum (failed/disagreeing apply,
  /// or a digest mismatch found by the scrubber): excluded from Pick and
  /// from quorum votes until repair verifies digest equality and clears
  /// the flag. Stale replicas still receive writes best-effort so repair
  /// diffs stay small.
  void MarkStale(size_t replica);
  void ClearStale(size_t replica);
  bool stale(size_t replica) const { return stale_[replica]->load(); }
  size_t num_stale() const;

  serve::CircuitBreaker* breaker(size_t replica) {
    return breakers_[replica].get();
  }
  ingest::LiveEngine* replica(size_t i) { return replicas_[i].get(); }
  const ingest::LiveEngine* replica(size_t i) const {
    return replicas_[i].get();
  }

  // --- Write path -------------------------------------------------------

  /// Effective W: options.write_quorum clamped to [1, R]; 0 = majority.
  size_t write_quorum() const;

  /// Quorum write (see class comment). Every replica — killed and stale
  /// ones included — attempts the batch; non-stale replicas vote with
  /// (outcome, post-apply digest); the largest agreeing group wins ties by
  /// lowest replica index. Acks with the winning group's outcome when the
  /// group reaches W; otherwise every op reports kUnavailable and nothing
  /// is acknowledged (all-replica failure fail-stops the write path with
  /// no replica marked stale — they all still agree on the old state).
  /// Voters outside the winning group are marked stale either way.
  ingest::LiveEngine::BatchOutcome ApplyBatch(ingest::LiveEngine::Batch batch);

  /// Visible tables of this shard (the first non-stale replica's current
  /// generation), copied; rebalance and tests use this as the shard's
  /// authoritative content.
  std::vector<Table> VisibleTables() const;

 private:
  void InitMetrics(serve::MetricsRegistry* metrics);
  void ExportStaleGauge();

  uint32_t shard_id_;
  size_t write_quorum_option_ = 0;
  std::vector<std::unique_ptr<ingest::LiveEngine>> replicas_;
  std::vector<std::unique_ptr<serve::CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> alive_;
  std::vector<std::unique_ptr<std::atomic<bool>>> stale_;
  std::atomic<size_t> next_replica_{0};

  // Metric handles (null without a registry).
  serve::Counter* outcome_mismatch_ = nullptr;
  serve::Counter* replica_failures_ = nullptr;
  serve::Counter* quorum_failures_ = nullptr;
  serve::Gauge* stale_gauge_ = nullptr;
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_REPLICA_SET_H_
