#ifndef LAKE_CLUSTER_REPLICA_SET_H_
#define LAKE_CLUSTER_REPLICA_SET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ingest/live_engine.h"
#include "serve/circuit_breaker.h"
#include "serve/metrics.h"
#include "util/windowed_quantile.h"

namespace lake::cluster {

/// R replicas of one shard: identical LiveEngines over the shard's slice
/// of the lake, each guarded by its own circuit breaker and a liveness
/// flag. The read path picks one healthy replica per query (round-robin
/// across queries) and fails over to a sibling when an attempt fails.
///
/// The write path is a quorum protocol, not blind fan-out: every replica
/// attempts the batch (failpoint "cluster.apply.<shard>.<replica>" injects
/// per-replica apply failures), the per-replica outcomes + post-apply
/// content digests are compared, and the largest agreeing group wins. The
/// batch acks iff that group has at least W members (write_quorum, default
/// majority). A replica that failed to apply or disagreed with the winning
/// group is marked *stale*: excluded from Pick like a dead replica until
/// the anti-entropy scrubber repairs it back to digest equality and
/// re-admits it. The serving invariant this buys: every replica a query
/// can read is digest-equal to the winning group's content.
///
/// Kill/Revive model *serving-path* failure (a replica that stops
/// answering): a killed replica is skipped by Pick but still applies
/// mutations, so revival needs no resync. Durability of the data itself is
/// the WAL/checkpoint layer's job (per-replica SnapshotStores).
class ReplicaSet {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    size_t num_replicas = 1;
    /// LiveEngine options template. `engine.store` is ignored; per-replica
    /// stores arrive via `replica_stores`.
    ingest::LiveEngine::Options engine;
    /// Per-replica SnapshotStores (checkpoints + WAL), parallel to replica
    /// index; empty or null entries disable durability for that replica.
    /// Not owned.
    std::vector<store::SnapshotStore*> replica_stores;
    serve::CircuitBreaker::Options breaker;
    /// Replicas that must apply a batch — and agree on its outcome and
    /// post-apply digest — before it acks. 0 = majority (R/2 + 1); values
    /// above R clamp to R. 1 turns quorum off (any single success acks).
    size_t write_quorum = 0;
    /// Optional metrics sink (cluster.apply.* counters,
    /// serve.replica.stale gauge). Not owned.
    serve::MetricsRegistry* metrics = nullptr;

    /// Tail tolerance: per-replica latency tracking is always on (cheap);
    /// slow-outlier *ejection* activates when `eject_multiple > 0`.
    struct Tail {
      /// Shape of the per-replica decayed latency window.
      WindowedQuantile::Options latency_window;
      /// Eject a replica whose tracked `eject_quantile` exceeds this
      /// multiple of the median of its admitted peers' quantiles.
      /// 0 disables ejection.
      double eject_multiple = 0;
      double eject_quantile = 0.95;
      /// Both the replica and at least one peer need this many windowed
      /// samples before an ejection verdict counts.
      uint64_t eject_min_samples = 32;
      /// First ejection duration; doubles per consecutive re-ejection
      /// (shared Backoff schedule), capped at eject_max.
      std::chrono::milliseconds eject_base{1000};
      std::chrono::milliseconds eject_max{8000};
      /// Probe successes required before the re-admit verdict runs.
      size_t eject_probes = 3;
    };
    Tail tail;
  };

  /// Builds R replicas over `catalog` (one shared immutable cold-start
  /// base engine, so construction cost is one index build, not R).
  ReplicaSet(uint32_t shard_id, std::shared_ptr<const DataLakeCatalog> catalog,
             Options options);

  /// Wraps already-recovered engines (ClusterEngine::Recover);
  /// `options.num_replicas` / `engine` / `replica_stores` are ignored —
  /// the engines arrive fully built.
  ReplicaSet(uint32_t shard_id,
             std::vector<std::unique_ptr<ingest::LiveEngine>> replicas,
             Options options);

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  uint32_t shard_id() const { return shard_id_; }
  size_t num_replicas() const { return replicas_.size(); }

  /// Write-path failpoint of one replica: "cluster.apply.<shard>.<replica>"
  /// (the read path's sibling is "cluster.exec.<shard>.<replica>").
  static std::string ApplyFailpointName(uint32_t shard, size_t replica);

  // --- Read path --------------------------------------------------------

  struct Route {
    size_t replica = 0;
    const ingest::LiveEngine* engine = nullptr;
    serve::CircuitBreaker::Permit permit =
        serve::CircuitBreaker::Permit::kAllowed;
  };

  /// Picks a live, non-stale replica whose breaker admits a call, rotating
  /// the starting replica across calls so load spreads. `exclude` skips
  /// one replica (the one that just failed; SIZE_MAX = none). Slow-ejected
  /// replicas are skipped on the first pass; if *only* ejected replicas
  /// remain pickable, the second pass admits them anyway — ejection trims
  /// the tail, it never makes a shard unavailable (the "last healthy
  /// replica is never ejected" floor, enforced at both eject time and pick
  /// time). False when no replica is available — the shard is effectively
  /// down for this query.
  bool Pick(Clock::time_point now, size_t exclude, Route* route);

  /// Feeds an attempt's outcome into the routed replica's breaker, and —
  /// when `latency_us >= 0` — its service latency into the replica's
  /// decayed quantile window, where the slow-outlier ejection check runs.
  /// Cancelled attempts must go through RecordNeutral instead: a hedge
  /// loser's unwind time is not a service-latency sample.
  void RecordOutcome(size_t replica, bool success, Clock::time_point now,
                     double latency_us);
  void RecordOutcome(size_t replica, bool success, Clock::time_point now) {
    RecordOutcome(replica, success, now, /*latency_us=*/-1);
  }

  /// Cancelled attempt: releases breaker and ejection probe slots without
  /// biasing the failure window or the latency quantile either way.
  void RecordNeutral(size_t replica, Clock::time_point now);

  // --- Health -----------------------------------------------------------

  void Kill(size_t replica) { alive_[replica]->store(false); }
  void Revive(size_t replica) { alive_[replica]->store(true); }
  bool alive(size_t replica) const { return alive_[replica]->load(); }
  size_t num_alive() const;

  /// Stale = content diverged from the quorum (failed/disagreeing apply,
  /// or a digest mismatch found by the scrubber): excluded from Pick and
  /// from quorum votes until repair verifies digest equality and clears
  /// the flag. Stale replicas still receive writes best-effort so repair
  /// diffs stay small.
  void MarkStale(size_t replica);
  void ClearStale(size_t replica);
  bool stale(size_t replica) const { return stale_[replica]->load(); }
  size_t num_stale() const;

  // --- Tail tolerance ---------------------------------------------------

  /// Tracked latency quantile of one replica (microseconds) over the
  /// decayed window; 0 when the window is empty.
  double LatencyQuantile(size_t replica, double q, Clock::time_point now) const;
  /// Latency samples currently inside the replica's window.
  uint64_t LatencySamples(size_t replica, Clock::time_point now) const;
  /// True while the replica sits in the ejected or probing state of the
  /// slow-outlier state machine.
  bool slow_ejected(size_t replica) const;
  /// Lifetime count of slow-outlier ejections of one replica.
  uint64_t slow_ejections(size_t replica) const;
  size_t num_ejected() const;

  serve::CircuitBreaker* breaker(size_t replica) {
    return breakers_[replica].get();
  }
  ingest::LiveEngine* replica(size_t i) { return replicas_[i].get(); }
  const ingest::LiveEngine* replica(size_t i) const {
    return replicas_[i].get();
  }

  // --- Write path -------------------------------------------------------

  /// Effective W: options.write_quorum clamped to [1, R]; 0 = majority.
  size_t write_quorum() const;

  /// Quorum write (see class comment). Every replica — killed and stale
  /// ones included — attempts the batch; non-stale replicas vote with
  /// (outcome, post-apply digest); the largest agreeing group wins ties by
  /// lowest replica index. Acks with the winning group's outcome when the
  /// group reaches W; otherwise every op reports kUnavailable and nothing
  /// is acknowledged (all-replica failure fail-stops the write path with
  /// no replica marked stale — they all still agree on the old state).
  /// Voters outside the winning group are marked stale either way.
  ingest::LiveEngine::BatchOutcome ApplyBatch(ingest::LiveEngine::Batch batch);

  /// Visible tables of this shard (the first non-stale replica's current
  /// generation), copied; rebalance and tests use this as the shard's
  /// authoritative content.
  std::vector<Table> VisibleTables() const;

 private:
  /// Slow-outlier ejection state machine, mirroring the circuit breaker
  /// but keyed on *latency* instead of failures:
  ///   kAdmitted --(quantile > multiple x peer median)--> kEjected
  ///   kEjected  --(backoff elapsed)-->                   kProbing
  ///   kProbing  --(probes fast again)-->                 kAdmitted
  ///   kProbing  --(probes still slow)-->                 kEjected (longer)
  /// The window is reset on eject->probe so the re-admit verdict judges
  /// only probe samples, not the stale slowness that caused the ejection.
  struct TailState {
    enum class Eject { kAdmitted, kEjected, kProbing };
    explicit TailState(WindowedQuantile::Options window) : latency(window) {}
    WindowedQuantile latency;
    Eject state = Eject::kAdmitted;
    Clock::time_point readmit_at{};
    uint64_t consecutive_ejects = 0;
    size_t probes_in_flight = 0;
    size_t probe_successes = 0;
    uint64_t ejections = 0;  // lifetime
  };
  enum class TailPermit { kSkip, kGranted, kProbe };

  void InitMetrics(serve::MetricsRegistry* metrics);
  void ExportStaleGauge();
  void ExportEjectedGaugeLocked();
  /// Admission decision of the ejection state machine for one candidate.
  TailPermit TailAllow(size_t candidate, Clock::time_point now);
  /// Returns an unused probe slot (breaker denied after tail granted).
  void TailReleaseProbe(size_t replica);
  /// Median of the admitted peers' tracked quantiles; 0 when fewer than
  /// one peer qualifies (the eject-time floor). Caller holds tail_mu_.
  double PeerMedianLocked(size_t replica, Clock::time_point now) const;
  void EvaluateEjectionLocked(size_t replica, Clock::time_point now);

  uint32_t shard_id_;
  size_t write_quorum_option_ = 0;
  Options::Tail tail_options_;
  std::vector<std::unique_ptr<ingest::LiveEngine>> replicas_;
  std::vector<std::unique_ptr<serve::CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> alive_;
  std::vector<std::unique_ptr<std::atomic<bool>>> stale_;
  std::atomic<size_t> next_replica_{0};

  mutable std::mutex tail_mu_;  // guards TailState fields (not `latency`)
  std::vector<std::unique_ptr<TailState>> tail_;

  // Metric handles (null without a registry).
  serve::Counter* outcome_mismatch_ = nullptr;
  serve::Counter* replica_failures_ = nullptr;
  serve::Counter* quorum_failures_ = nullptr;
  serve::Gauge* stale_gauge_ = nullptr;
  serve::Counter* eject_counter_ = nullptr;
  serve::Gauge* ejected_gauge_ = nullptr;
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_REPLICA_SET_H_
