#ifndef LAKE_CLUSTER_REPLICA_SET_H_
#define LAKE_CLUSTER_REPLICA_SET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "ingest/live_engine.h"
#include "serve/circuit_breaker.h"

namespace lake::cluster {

/// R replicas of one shard: identical LiveEngines over the shard's slice
/// of the lake, each guarded by its own circuit breaker and a liveness
/// flag. The read path picks one healthy replica per query (round-robin
/// across queries) and fails over to a sibling when an attempt fails; the
/// write path applies every accepted mutation to every replica, so
/// replicas only ever diverge in health, never in content.
///
/// Kill/Revive model *serving-path* failure (a replica that stops
/// answering): a killed replica is skipped by Pick but still applies
/// mutations, so revival needs no resync. Durability of the data itself is
/// the WAL/checkpoint layer's job (per-replica SnapshotStores).
class ReplicaSet {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    size_t num_replicas = 1;
    /// LiveEngine options template. `engine.store` is ignored; per-replica
    /// stores arrive via `replica_stores`.
    ingest::LiveEngine::Options engine;
    /// Per-replica SnapshotStores (checkpoints + WAL), parallel to replica
    /// index; empty or null entries disable durability for that replica.
    /// Not owned.
    std::vector<store::SnapshotStore*> replica_stores;
    serve::CircuitBreaker::Options breaker;
  };

  /// Builds R replicas over `catalog` (one shared immutable cold-start
  /// base engine, so construction cost is one index build, not R).
  ReplicaSet(uint32_t shard_id, std::shared_ptr<const DataLakeCatalog> catalog,
             Options options);

  /// Wraps already-recovered engines (ClusterEngine::Recover).
  ReplicaSet(uint32_t shard_id,
             std::vector<std::unique_ptr<ingest::LiveEngine>> replicas,
             serve::CircuitBreaker::Options breaker);

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  uint32_t shard_id() const { return shard_id_; }
  size_t num_replicas() const { return replicas_.size(); }

  // --- Read path --------------------------------------------------------

  struct Route {
    size_t replica = 0;
    const ingest::LiveEngine* engine = nullptr;
    serve::CircuitBreaker::Permit permit =
        serve::CircuitBreaker::Permit::kAllowed;
  };

  /// Picks a live replica whose breaker admits a call, rotating the
  /// starting replica across calls so load spreads. `exclude` skips one
  /// replica (the one that just failed; SIZE_MAX = none). False when no
  /// replica is available — the shard is effectively down for this query.
  bool Pick(Clock::time_point now, size_t exclude, Route* route);

  /// Feeds an attempt's outcome into the routed replica's breaker.
  void RecordOutcome(size_t replica, bool success, Clock::time_point now);

  // --- Health -----------------------------------------------------------

  void Kill(size_t replica) { alive_[replica]->store(false); }
  void Revive(size_t replica) { alive_[replica]->store(true); }
  bool alive(size_t replica) const { return alive_[replica]->load(); }
  size_t num_alive() const;

  serve::CircuitBreaker* breaker(size_t replica) {
    return breakers_[replica].get();
  }
  ingest::LiveEngine* replica(size_t i) { return replicas_[i].get(); }
  const ingest::LiveEngine* replica(size_t i) const {
    return replicas_[i].get();
  }

  // --- Write path -------------------------------------------------------

  /// Applies the batch to every replica (killed ones included — see class
  /// comment) and returns replica 0's outcome; replicas accept and reject
  /// identically because their state is identical.
  ingest::LiveEngine::BatchOutcome ApplyBatch(ingest::LiveEngine::Batch batch);

  /// Visible tables of this shard (replica 0's current generation),
  /// copied; rebalance and tests use this as the shard's authoritative
  /// content.
  std::vector<Table> VisibleTables() const;

 private:
  uint32_t shard_id_;
  std::vector<std::unique_ptr<ingest::LiveEngine>> replicas_;
  std::vector<std::unique_ptr<serve::CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> alive_;
  std::atomic<size_t> next_replica_{0};
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_REPLICA_SET_H_
