#include "cluster/retry_budget.h"

#include <algorithm>

namespace lake::cluster {

RetryBudget::RetryBudget() : RetryBudget(Options()) {}

RetryBudget::RetryBudget(Options options) : options_(options) {
  options_.ratio = std::max(0.0, options_.ratio);
  options_.window_slices = std::max<size_t>(1, options_.window_slices);
  if (options_.slice_width.count() <= 0) {
    options_.slice_width = std::chrono::milliseconds(1);
  }
  slices_.resize(options_.window_slices);
}

uint64_t RetryBudget::TickOf(Clock::time_point now) const {
  return static_cast<uint64_t>(now.time_since_epoch() / options_.slice_width);
}

bool RetryBudget::LiveAt(const Slice& slice, uint64_t tick) const {
  return slice.tick != UINT64_MAX && slice.tick <= tick &&
         slice.tick + options_.window_slices > tick;
}

RetryBudget::Slice& RetryBudget::SliceFor(uint64_t tick) {
  Slice& slice = slices_[tick % slices_.size()];
  if (slice.tick != tick) slice = Slice{tick, 0, 0};
  return slice;
}

void RetryBudget::RecordRequest(Clock::time_point now) {
  const uint64_t tick = TickOf(now);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++SliceFor(tick).requests;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

bool RetryBudget::TryAcquire(Clock::time_point now) {
  const uint64_t tick = TickOf(now);
  bool granted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t volume = 0, extras = 0;
    for (const Slice& slice : slices_) {
      if (LiveAt(slice, tick)) {
        volume += slice.requests;
        extras += slice.extras;
      }
    }
    const double cap = options_.ratio * static_cast<double>(volume) +
                       static_cast<double>(options_.min_tokens);
    if (static_cast<double>(extras + 1) <= cap) {
      ++SliceFor(tick).extras;
      granted = true;
    }
  }
  if (granted) {
    acquired_.fetch_add(1, std::memory_order_relaxed);
  } else {
    denied_.fetch_add(1, std::memory_order_relaxed);
  }
  return granted;
}

}  // namespace lake::cluster
