#ifndef LAKE_CLUSTER_RING_H_
#define LAKE_CLUSTER_RING_H_

#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

namespace lake::cluster {

/// Consistent-hash ring assigning table names to shards. Each shard
/// contributes `virtual_nodes` points on a 64-bit ring; a name is owned by
/// the first point at or clockwise past its hash. Names (not ids) are
/// hashed because names are the stable table identity across generations
/// and compactions — a table never changes owner except when the shard set
/// changes, and adding or removing one shard moves only the ~1/N of names
/// whose owning arc changed (minimal movement).
///
/// Copyable value type; ClusterEngine snapshots it into each published
/// topology, so readers never see a half-updated ring. Not internally
/// synchronized.
class HashRing {
 public:
  struct Options {
    /// Virtual nodes per shard; more points = better balance at the cost
    /// of a larger sorted array (lookup stays O(log(N*vnodes))).
    size_t virtual_nodes = 64;
    /// Ring hash seed; all members of one cluster must agree.
    uint64_t seed = 0x7a11e5;
  };

  HashRing() : HashRing(Options{}) {}
  explicit HashRing(Options options) : options_(options) {}

  /// Adds a shard's virtual nodes. Adding a present shard is a no-op.
  void AddShard(uint32_t shard);

  /// Removes a shard's virtual nodes. Removing an absent shard is a no-op.
  void RemoveShard(uint32_t shard);

  bool HasShard(uint32_t shard) const { return shards_.count(shard) != 0; }
  size_t num_shards() const { return shards_.size(); }

  /// Sorted shard ids.
  std::vector<uint32_t> shards() const {
    return std::vector<uint32_t>(shards_.begin(), shards_.end());
  }

  /// Owning shard of a table name. Requires a non-empty ring.
  uint32_t OwnerOf(std::string_view name) const;

  /// Fraction of the hash space each shard owns, aligned with shards()
  /// order (sums to 1; balance diagnostics and tests).
  std::vector<double> OwnershipFractions() const;

  const Options& options() const { return options_; }

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
  };

  Options options_;
  std::vector<Point> points_;  // sorted by (hash, shard)
  std::set<uint32_t> shards_;
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_RING_H_
