#ifndef LAKE_CLUSTER_TOPK_MERGE_H_
#define LAKE_CLUSTER_TOPK_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace lake::cluster {

/// N-way merge of ranked result lists into one top-k, shared by the
/// ingest base+delta merge (N = 2) and the cluster scatter-gather merge
/// (N = shards). Results only need a `double score` member (TableResult,
/// ColumnResult, and the cluster hit types all qualify).
///
/// Ordering invariant: descending score; equal scores keep *source order*
/// — list i beats list j for i < j, and within one list the original
/// order is preserved. The base+delta merge relies on this to prefer the
/// base side on ties (its corpus statistics are the better-calibrated
/// side).
template <typename R>
std::vector<R> MergeRankedTopK(std::vector<std::vector<R>> lists, size_t k) {
  std::vector<R> all;
  size_t total = 0;
  for (const std::vector<R>& l : lists) total += l.size();
  all.reserve(total);
  for (std::vector<R>& l : lists) {
    for (R& r : l) all.push_back(std::move(r));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const R& a, const R& b) { return a.score > b.score; });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Tie-broken variant: equal scores are ordered by `tie_less` instead of
/// source order, so the merged ranking is independent of how results were
/// partitioned across sources. The cluster merge uses table-name
/// tie-break, which makes an N-shard scatter-gather answer byte-identical
/// to the same query over one unpartitioned engine regardless of shard
/// count or gather completion order.
template <typename R, typename TieLess>
std::vector<R> MergeRankedTopK(std::vector<std::vector<R>> lists, size_t k,
                               TieLess tie_less) {
  std::vector<R> all;
  size_t total = 0;
  for (const std::vector<R>& l : lists) total += l.size();
  all.reserve(total);
  for (std::vector<R>& l : lists) {
    for (R& r : l) all.push_back(std::move(r));
  }
  std::sort(all.begin(), all.end(), [&](const R& a, const R& b) {
    if (a.score != b.score) return a.score > b.score;
    return tie_less(a, b);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

/// Two-way convenience wrapper preserving the original base+delta call
/// shape: ties prefer `first`, then `second`.
template <typename R>
std::vector<R> MergeRankedTopK(std::vector<R> first, std::vector<R> second,
                               size_t k) {
  std::vector<std::vector<R>> lists;
  lists.reserve(2);
  lists.push_back(std::move(first));
  lists.push_back(std::move(second));
  return MergeRankedTopK(std::move(lists), k);
}

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_TOPK_MERGE_H_
