#ifndef LAKE_CLUSTER_SCRUBBER_H_
#define LAKE_CLUSTER_SCRUBBER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "cluster/cluster_engine.h"

namespace lake::cluster {

/// Background anti-entropy thread (the cluster-layer sibling of
/// ingest::Compactor): runs ClusterEngine::ScrubOnce on a fixed cadence —
/// compare replica content digests per shard, drill down to per-table
/// digests on mismatch, repair divergent replicas from a majority-agreeing
/// peer, re-admit them. One scrubber per cluster; the steady-state pass is
/// R atomic digest loads per shard, so the cadence can be aggressive.
class Scrubber {
 public:
  struct Options {
    /// Pass cadence.
    uint64_t poll_interval_ms = 100;
  };

  /// `cluster` must outlive the scrubber.
  Scrubber(ClusterEngine* cluster, Options options);
  explicit Scrubber(ClusterEngine* cluster) : Scrubber(cluster, Options{}) {}
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Requests an immediate pass and wakes the thread; returns without
  /// waiting for it to finish.
  void TriggerNow();

  /// Triggers a pass that STARTS after this call (an in-flight pass may
  /// have missed just-injected divergence), blocks until it completes,
  /// and returns its report. Deterministic convergence wait for tests
  /// and benches.
  ClusterEngine::ScrubReport RunPassAndWait();

  /// Stops the thread (idempotent; also run by the destructor). An
  /// in-progress pass finishes first.
  void Stop();

  uint64_t passes() const;
  ClusterEngine::ScrubReport last_report() const;

 private:
  void Loop();

  ClusterEngine* cluster_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the loop (trigger/stop)
  std::condition_variable pass_cv_;  // signals pass completion to waiters
  bool stop_ = false;
  bool trigger_ = false;
  bool running_ = false;  // a pass is executing outside the lock
  uint64_t passes_ = 0;
  ClusterEngine::ScrubReport last_report_;

  std::thread thread_;
};

}  // namespace lake::cluster

#endif  // LAKE_CLUSTER_SCRUBBER_H_
