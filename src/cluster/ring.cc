#include "cluster/ring.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace lake::cluster {

void HashRing::AddShard(uint32_t shard) {
  if (!shards_.insert(shard).second) return;
  points_.reserve(points_.size() + options_.virtual_nodes);
  for (size_t v = 0; v < options_.virtual_nodes; ++v) {
    const uint64_t h = Hash64(
        HashCombine(Hash64(static_cast<uint64_t>(shard), options_.seed), v));
    points_.push_back(Point{h, shard});
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              return a.shard < b.shard;
            });
}

void HashRing::RemoveShard(uint32_t shard) {
  if (shards_.erase(shard) == 0) return;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard](const Point& p) {
                                 return p.shard == shard;
                               }),
                points_.end());
}

uint32_t HashRing::OwnerOf(std::string_view name) const {
  LAKE_CHECK(!points_.empty());
  const uint64_t h = Hash64(name, options_.seed);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, uint64_t value) {
                               return p.hash < value;
                             });
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->shard;
}

std::vector<double> HashRing::OwnershipFractions() const {
  std::vector<double> fractions(shards_.size(), 0.0);
  if (points_.empty()) return fractions;
  const std::vector<uint32_t> ids = shards();
  auto index_of = [&ids](uint32_t shard) {
    return static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), shard) - ids.begin());
  };
  constexpr double kSpace = 18446744073709551616.0;  // 2^64
  // A point owns the arc ending at it; the first point also owns the
  // wraparound arc from the last point.
  uint64_t prev = points_.back().hash;
  for (const Point& p : points_) {
    const uint64_t arc = p.hash - prev;  // mod 2^64 via unsigned wrap
    fractions[index_of(p.shard)] += static_cast<double>(arc) / kSpace;
    prev = p.hash;
  }
  return fractions;
}

}  // namespace lake::cluster
