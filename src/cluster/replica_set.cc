#include "cluster/replica_set.h"

#include <algorithm>
#include <utility>

namespace lake::cluster {

ReplicaSet::ReplicaSet(uint32_t shard_id,
                       std::shared_ptr<const DataLakeCatalog> catalog,
                       Options options)
    : shard_id_(shard_id) {
  const size_t r = std::max<size_t>(1, options.num_replicas);
  // One shared immutable base engine: replicas are content-identical by
  // construction, so indexing the shard once is enough. Each replica keeps
  // its own delta/WAL state on top.
  auto base = std::make_shared<const DiscoveryEngine>(
      catalog.get(), options.engine.kb, options.engine.base_options);
  replicas_.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    ingest::LiveEngine::Options engine_options = options.engine;
    engine_options.store = i < options.replica_stores.size()
                               ? options.replica_stores[i]
                               : nullptr;
    engine_options.enable_wal =
        engine_options.enable_wal && engine_options.store != nullptr;
    replicas_.push_back(std::make_unique<ingest::LiveEngine>(
        catalog, base, std::move(engine_options)));
  }
  breakers_.reserve(r);
  alive_.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    breakers_.push_back(
        std::make_unique<serve::CircuitBreaker>(options.breaker));
    alive_.push_back(std::make_unique<std::atomic<bool>>(true));
  }
}

ReplicaSet::ReplicaSet(
    uint32_t shard_id,
    std::vector<std::unique_ptr<ingest::LiveEngine>> replicas,
    serve::CircuitBreaker::Options breaker)
    : shard_id_(shard_id), replicas_(std::move(replicas)) {
  breakers_.reserve(replicas_.size());
  alive_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    breakers_.push_back(std::make_unique<serve::CircuitBreaker>(breaker));
    alive_.push_back(std::make_unique<std::atomic<bool>>(true));
  }
}

bool ReplicaSet::Pick(Clock::time_point now, size_t exclude, Route* route) {
  const size_t r = replicas_.size();
  const size_t start = next_replica_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < r; ++i) {
    const size_t candidate = (start + i) % r;
    if (candidate == exclude || !alive(candidate)) continue;
    const serve::CircuitBreaker::Permit permit =
        breakers_[candidate]->Allow(now);
    if (permit == serve::CircuitBreaker::Permit::kDenied) continue;
    route->replica = candidate;
    route->engine = replicas_[candidate].get();
    route->permit = permit;
    return true;
  }
  return false;
}

void ReplicaSet::RecordOutcome(size_t replica, bool success,
                               Clock::time_point now) {
  if (success) {
    breakers_[replica]->RecordSuccess(now);
  } else {
    breakers_[replica]->RecordFailure(now);
  }
}

size_t ReplicaSet::num_alive() const {
  size_t n = 0;
  for (const auto& a : alive_) {
    if (a->load()) ++n;
  }
  return n;
}

ingest::LiveEngine::BatchOutcome ReplicaSet::ApplyBatch(
    ingest::LiveEngine::Batch batch) {
  // Secondary replicas get copies; the primary consumes the original.
  for (size_t i = 1; i < replicas_.size(); ++i) {
    ingest::LiveEngine::Batch copy;
    copy.adds = batch.adds;
    copy.removes = batch.removes;
    replicas_[i]->ApplyBatch(std::move(copy));
  }
  return replicas_[0]->ApplyBatch(std::move(batch));
}

std::vector<Table> ReplicaSet::VisibleTables() const {
  std::shared_ptr<const ingest::Generation> gen = replicas_[0]->Acquire();
  std::vector<Table> out;
  out.reserve(gen->visible_table_count());
  const DataLakeCatalog& base = gen->base_catalog();
  for (TableId id : base.AllTables()) {
    if (gen->delta().tombstones.count(id)) continue;
    out.push_back(base.table(id));
  }
  if (gen->delta().catalog != nullptr) {
    const DataLakeCatalog& delta = *gen->delta().catalog;
    for (TableId id : delta.AllTables()) out.push_back(delta.table(id));
  }
  return out;
}

}  // namespace lake::cluster
