#include "cluster/replica_set.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "util/backoff.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace lake::cluster {

namespace {

/// Canonical signature of a BatchOutcome: per-op accept/reject decisions
/// and assigned ids. Replicas in identical states decide identically, so
/// any signature difference is divergence (and vice versa: a replica that
/// silently diverged earlier betrays itself by deciding differently).
std::string OutcomeSignature(const ingest::LiveEngine::BatchOutcome& o) {
  std::ostringstream sig;
  for (const Result<TableId>& add : o.adds) {
    if (add.ok()) {
      sig << '+' << add.value() << ';';
    } else {
      sig << '!' << static_cast<int>(add.status().code()) << ';';
    }
  }
  sig << '|';
  for (const Status& remove : o.removes) {
    sig << (remove.ok() ? 0 : static_cast<int>(remove.code())) << ';';
  }
  return std::move(sig).str();
}

}  // namespace

std::string ReplicaSet::ApplyFailpointName(uint32_t shard, size_t replica) {
  return "cluster.apply." + std::to_string(shard) + "." +
         std::to_string(replica);
}

ReplicaSet::ReplicaSet(uint32_t shard_id,
                       std::shared_ptr<const DataLakeCatalog> catalog,
                       Options options)
    : shard_id_(shard_id),
      write_quorum_option_(options.write_quorum),
      tail_options_(options.tail) {
  const size_t r = std::max<size_t>(1, options.num_replicas);
  // One shared immutable base engine: replicas are content-identical by
  // construction, so indexing the shard once is enough. Each replica keeps
  // its own delta/WAL state on top.
  auto base = std::make_shared<const DiscoveryEngine>(
      catalog.get(), options.engine.kb, options.engine.base_options);
  replicas_.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    ingest::LiveEngine::Options engine_options = options.engine;
    engine_options.store = i < options.replica_stores.size()
                               ? options.replica_stores[i]
                               : nullptr;
    engine_options.enable_wal =
        engine_options.enable_wal && engine_options.store != nullptr;
    replicas_.push_back(std::make_unique<ingest::LiveEngine>(
        catalog, base, std::move(engine_options)));
  }
  breakers_.reserve(r);
  alive_.reserve(r);
  stale_.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    breakers_.push_back(
        std::make_unique<serve::CircuitBreaker>(options.breaker));
    alive_.push_back(std::make_unique<std::atomic<bool>>(true));
    stale_.push_back(std::make_unique<std::atomic<bool>>(false));
    tail_.push_back(std::make_unique<TailState>(tail_options_.latency_window));
  }
  InitMetrics(options.metrics);
}

ReplicaSet::ReplicaSet(
    uint32_t shard_id,
    std::vector<std::unique_ptr<ingest::LiveEngine>> replicas,
    Options options)
    : shard_id_(shard_id),
      write_quorum_option_(options.write_quorum),
      tail_options_(options.tail),
      replicas_(std::move(replicas)) {
  breakers_.reserve(replicas_.size());
  alive_.reserve(replicas_.size());
  stale_.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    breakers_.push_back(
        std::make_unique<serve::CircuitBreaker>(options.breaker));
    alive_.push_back(std::make_unique<std::atomic<bool>>(true));
    stale_.push_back(std::make_unique<std::atomic<bool>>(false));
    tail_.push_back(std::make_unique<TailState>(tail_options_.latency_window));
  }
  InitMetrics(options.metrics);
}

void ReplicaSet::InitMetrics(serve::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  outcome_mismatch_ = metrics->GetCounter("cluster.apply.outcome_mismatch");
  replica_failures_ =
      metrics->GetCounterFamily("cluster.apply.replica_failures", "shard")
          ->WithLabel(static_cast<uint64_t>(shard_id_));
  quorum_failures_ =
      metrics->GetCounterFamily("cluster.apply.quorum_failures", "shard")
          ->WithLabel(static_cast<uint64_t>(shard_id_));
  stale_gauge_ = metrics->GetGaugeFamily("serve.replica.stale", "shard")
                     ->WithLabel(static_cast<uint64_t>(shard_id_));
  eject_counter_ = metrics->GetCounterFamily("cluster.tail.ejections", "shard")
                       ->WithLabel(static_cast<uint64_t>(shard_id_));
  ejected_gauge_ =
      metrics->GetGaugeFamily("cluster.replica.ejected", "shard")
          ->WithLabel(static_cast<uint64_t>(shard_id_));
}

void ReplicaSet::ExportStaleGauge() {
  if (stale_gauge_ != nullptr) stale_gauge_->Set(num_stale());
}

void ReplicaSet::ExportEjectedGaugeLocked() {
  if (ejected_gauge_ == nullptr) return;
  size_t n = 0;
  for (const auto& t : tail_) {
    if (t->state != TailState::Eject::kAdmitted) ++n;
  }
  ejected_gauge_->Set(n);
}

bool ReplicaSet::Pick(Clock::time_point now, size_t exclude, Route* route) {
  const size_t r = replicas_.size();
  const size_t start = next_replica_.fetch_add(1, std::memory_order_relaxed);
  // Pass 1 skips slow-ejected replicas; pass 2 is the availability floor:
  // when only ejected replicas remain, a slow answer beats no answer.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < r; ++i) {
      const size_t candidate = (start + i) % r;
      if (candidate == exclude || !alive(candidate) || stale(candidate)) {
        continue;
      }
      bool tail_probe = false;
      if (pass == 0) {
        const TailPermit tail_permit = TailAllow(candidate, now);
        if (tail_permit == TailPermit::kSkip) continue;
        tail_probe = tail_permit == TailPermit::kProbe;
      }
      const serve::CircuitBreaker::Permit permit =
          breakers_[candidate]->Allow(now);
      if (permit == serve::CircuitBreaker::Permit::kDenied) {
        if (tail_probe) TailReleaseProbe(candidate);
        continue;
      }
      route->replica = candidate;
      route->engine = replicas_[candidate].get();
      route->permit = permit;
      return true;
    }
    if (tail_options_.eject_multiple <= 0) break;  // pass 2 can't differ
  }
  return false;
}

ReplicaSet::TailPermit ReplicaSet::TailAllow(size_t candidate,
                                             Clock::time_point now) {
  if (tail_options_.eject_multiple <= 0) return TailPermit::kGranted;
  std::lock_guard<std::mutex> lock(tail_mu_);
  TailState& t = *tail_[candidate];
  switch (t.state) {
    case TailState::Eject::kAdmitted:
      return TailPermit::kGranted;
    case TailState::Eject::kEjected:
      if (now < t.readmit_at) return TailPermit::kSkip;
      // Ejection served: start probing from a clean window so the
      // re-admit verdict judges probe samples, not the old slowness.
      t.state = TailState::Eject::kProbing;
      t.probes_in_flight = 1;
      t.probe_successes = 0;
      t.latency.Reset();
      return TailPermit::kProbe;
    case TailState::Eject::kProbing:
      if (t.probes_in_flight >= 1) return TailPermit::kSkip;
      ++t.probes_in_flight;
      return TailPermit::kProbe;
  }
  return TailPermit::kGranted;
}

void ReplicaSet::TailReleaseProbe(size_t replica) {
  std::lock_guard<std::mutex> lock(tail_mu_);
  TailState& t = *tail_[replica];
  if (t.probes_in_flight > 0) --t.probes_in_flight;
}

double ReplicaSet::PeerMedianLocked(size_t replica,
                                    Clock::time_point now) const {
  std::vector<double> peer_quantiles;
  for (size_t j = 0; j < replicas_.size(); ++j) {
    if (j == replica || !alive(j) || stale(j)) continue;
    if (tail_[j]->state != TailState::Eject::kAdmitted) continue;
    if (tail_[j]->latency.count(now) < tail_options_.eject_min_samples) {
      continue;
    }
    peer_quantiles.push_back(
        tail_[j]->latency.Quantile(tail_options_.eject_quantile, now));
  }
  if (peer_quantiles.empty()) return 0;
  std::sort(peer_quantiles.begin(), peer_quantiles.end());
  return peer_quantiles[peer_quantiles.size() / 2];
}

void ReplicaSet::EvaluateEjectionLocked(size_t replica,
                                        Clock::time_point now) {
  TailState& t = *tail_[replica];
  if (t.latency.count(now) < tail_options_.eject_min_samples) return;
  // The floor: PeerMedianLocked only counts admitted, live, non-stale
  // peers with enough signal — no qualified peer means this replica may
  // be the last healthy one, so it is never ejected on a solo verdict.
  const double median = PeerMedianLocked(replica, now);
  if (median <= 0) return;
  const double own = t.latency.Quantile(tail_options_.eject_quantile, now);
  if (own <= tail_options_.eject_multiple * median) return;
  t.state = TailState::Eject::kEjected;
  const uint64_t base_ms =
      static_cast<uint64_t>(tail_options_.eject_base.count());
  const uint64_t max_ms =
      static_cast<uint64_t>(tail_options_.eject_max.count());
  t.readmit_at = now + std::chrono::milliseconds(BackoffDelay(
                           std::max<uint64_t>(1, base_ms), max_ms,
                           t.consecutive_ejects + 1));
  ++t.consecutive_ejects;
  ++t.ejections;
  if (eject_counter_ != nullptr) eject_counter_->Add();
  ExportEjectedGaugeLocked();
  LAKE_LOG(Warning) << "shard " << shard_id_ << " replica " << replica
                    << ": slow-outlier ejected (p"
                    << static_cast<int>(tail_options_.eject_quantile * 100)
                    << " " << own << "us vs peer median " << median << "us)";
}

void ReplicaSet::RecordOutcome(size_t replica, bool success,
                               Clock::time_point now, double latency_us) {
  if (success) {
    breakers_[replica]->RecordSuccess(now);
  } else {
    breakers_[replica]->RecordFailure(now);
  }
  if (latency_us >= 0) tail_[replica]->latency.Record(latency_us, now);
  if (tail_options_.eject_multiple <= 0) return;
  std::lock_guard<std::mutex> lock(tail_mu_);
  TailState& t = *tail_[replica];
  switch (t.state) {
    case TailState::Eject::kAdmitted:
      EvaluateEjectionLocked(replica, now);
      return;
    case TailState::Eject::kEjected:
      return;  // straggler from before the ejection
    case TailState::Eject::kProbing: {
      if (t.probes_in_flight > 0) --t.probes_in_flight;
      if (!success) return;  // breaker judges failures; keep probing
      if (++t.probe_successes < tail_options_.eject_probes) return;
      // Verdict: the probe window holds only post-ejection samples. Still
      // an outlier -> re-eject with a doubled ejection; recovered (or not
      // provably slow) -> re-admit.
      const double median = PeerMedianLocked(replica, now);
      const double own =
          t.latency.Quantile(tail_options_.eject_quantile, now);
      if (median > 0 && own > tail_options_.eject_multiple * median) {
        t.state = TailState::Eject::kEjected;
        const uint64_t base_ms =
            static_cast<uint64_t>(tail_options_.eject_base.count());
        const uint64_t max_ms =
            static_cast<uint64_t>(tail_options_.eject_max.count());
        t.readmit_at =
            now + std::chrono::milliseconds(BackoffDelay(
                      std::max<uint64_t>(1, base_ms), max_ms,
                      t.consecutive_ejects + 1));
        ++t.consecutive_ejects;
        ++t.ejections;
        if (eject_counter_ != nullptr) eject_counter_->Add();
      } else {
        t.state = TailState::Eject::kAdmitted;
        t.consecutive_ejects = 0;
      }
      t.probes_in_flight = 0;
      t.probe_successes = 0;
      ExportEjectedGaugeLocked();
      return;
    }
  }
}

void ReplicaSet::RecordNeutral(size_t replica, Clock::time_point now) {
  breakers_[replica]->RecordNeutral(now);
  if (tail_options_.eject_multiple <= 0) return;
  std::lock_guard<std::mutex> lock(tail_mu_);
  TailState& t = *tail_[replica];
  if (t.state == TailState::Eject::kProbing && t.probes_in_flight > 0) {
    --t.probes_in_flight;
  }
}

double ReplicaSet::LatencyQuantile(size_t replica, double q,
                                   Clock::time_point now) const {
  return tail_[replica]->latency.Quantile(q, now);
}

uint64_t ReplicaSet::LatencySamples(size_t replica,
                                    Clock::time_point now) const {
  return tail_[replica]->latency.count(now);
}

bool ReplicaSet::slow_ejected(size_t replica) const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  return tail_[replica]->state != TailState::Eject::kAdmitted;
}

uint64_t ReplicaSet::slow_ejections(size_t replica) const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  return tail_[replica]->ejections;
}

size_t ReplicaSet::num_ejected() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  size_t n = 0;
  for (const auto& t : tail_) {
    if (t->state != TailState::Eject::kAdmitted) ++n;
  }
  return n;
}

size_t ReplicaSet::num_alive() const {
  size_t n = 0;
  for (const auto& a : alive_) {
    if (a->load()) ++n;
  }
  return n;
}

void ReplicaSet::MarkStale(size_t replica) {
  stale_[replica]->store(true);
  ExportStaleGauge();
}

void ReplicaSet::ClearStale(size_t replica) {
  stale_[replica]->store(false);
  ExportStaleGauge();
}

size_t ReplicaSet::num_stale() const {
  size_t n = 0;
  for (const auto& s : stale_) {
    if (s->load()) ++n;
  }
  return n;
}

size_t ReplicaSet::write_quorum() const {
  const size_t r = replicas_.size();
  const size_t w =
      write_quorum_option_ == 0 ? r / 2 + 1 : write_quorum_option_;
  return std::min(std::max<size_t>(1, w), r);
}

ingest::LiveEngine::BatchOutcome ReplicaSet::ApplyBatch(
    ingest::LiveEngine::Batch batch) {
  const size_t r = replicas_.size();

  struct Attempt {
    bool applied = false;  // engine accepted and published the batch
    bool voter = false;    // was non-stale going in, counts toward quorum
    ingest::LiveEngine::BatchOutcome outcome;
    uint64_t digest = 0;  // post-apply content digest
  };
  std::vector<Attempt> attempts(r);

  for (size_t i = 0; i < r; ++i) {
    Attempt& attempt = attempts[i];
    attempt.voter = !stale(i);
    // Injected per-replica apply failure: the replica misses the batch
    // entirely, as if its apply thread died mid-write.
    if (FailpointHit(ApplyFailpointName(shard_id_, i))) {
      if (attempt.voter && replica_failures_ != nullptr) {
        replica_failures_->Add();
      }
      continue;
    }
    ingest::LiveEngine::Batch copy;
    if (i + 1 < r) {
      copy.adds = batch.adds;
      copy.removes = batch.removes;
    } else {
      copy = std::move(batch);  // last replica consumes the original
    }
    attempt.outcome = replicas_[i]->ApplyBatch(std::move(copy));
    // published == false means the engine rejected the whole batch
    // atomically (WAL fail-stop, injected publish fault) — a real apply
    // failure, not a per-op rejection.
    attempt.applied = attempt.outcome.published;
    if (attempt.applied) {
      attempt.digest = replicas_[i]->content_digest();
    } else if (attempt.voter && replica_failures_ != nullptr) {
      replica_failures_->Add();
    }
  }

  // Group the voters that applied by (outcome signature, digest); the
  // winning group is the largest, ties broken toward the group containing
  // the lowest replica index (so a 1-vs-1 split trusts replica 0, and the
  // mismatch still fires in R=2 configs).
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < r; ++i) {
    if (!attempts[i].voter || !attempts[i].applied) continue;
    groups[OutcomeSignature(attempts[i].outcome) + '#' +
           std::to_string(attempts[i].digest)]
        .push_back(i);
  }
  std::vector<size_t> winners;
  for (const auto& [key, members] : groups) {
    if (members.size() > winners.size() ||
        (members.size() == winners.size() && !winners.empty() &&
         members.front() < winners.front())) {
      winners = members;
    }
  }
  if (groups.size() > 1) {
    size_t disagreeing = 0;
    for (const auto& [key, members] : groups) {
      if (members != winners) disagreeing += members.size();
    }
    if (outcome_mismatch_ != nullptr) outcome_mismatch_->Add(disagreeing);
    LAKE_LOG(Warning) << "shard " << shard_id_ << ": " << disagreeing
                      << " replica(s) returned a divergent batch outcome; "
                         "marking stale";
  }

  // All-replica failure: no voter applied, so every replica still agrees
  // on the OLD state — fail-stop the write, mark nobody stale.
  if (winners.empty()) {
    if (quorum_failures_ != nullptr) quorum_failures_->Add();
    const Status failed = Status::Unavailable(
        "shard " + std::to_string(shard_id_) +
        ": batch applied on no replica (write path fail-stopped)");
    ingest::LiveEngine::BatchOutcome outcome;
    // `batch` may have been consumed by the last replica's attempt; size
    // the statuses from whichever attempt recorded them, else the batch.
    const Attempt& shape = attempts[r - 1];
    const size_t num_adds =
        shape.outcome.adds.empty() ? batch.adds.size()
                                   : shape.outcome.adds.size();
    const size_t num_removes = shape.outcome.removes.empty()
                                   ? batch.removes.size()
                                   : shape.outcome.removes.size();
    outcome.adds.assign(num_adds, failed);
    outcome.removes.assign(num_removes, failed);
    return outcome;
  }

  // Everyone who voted but is not in the winning group — failed applies
  // and divergent outcomes alike — is now stale: excluded from reads until
  // the scrubber repairs it back to the winners' digest.
  std::vector<bool> winner(r, false);
  for (size_t i : winners) winner[i] = true;
  for (size_t i = 0; i < r; ++i) {
    if (attempts[i].voter && !winner[i]) MarkStale(i);
  }

  const size_t w = write_quorum();
  if (winners.size() < w) {
    // Too few agreeing replicas to ack. The winners keep the unacked
    // write (they are the largest agreeing group, so anti-entropy will
    // converge the others TO them — an unacknowledged write may surface
    // later, it is never silently half-applied across the quorum).
    if (quorum_failures_ != nullptr) quorum_failures_->Add();
    const Status failed = Status::Unavailable(
        "shard " + std::to_string(shard_id_) + ": write quorum not met (" +
        std::to_string(winners.size()) + " of " + std::to_string(r) +
        " agree, need " + std::to_string(w) + ")");
    ingest::LiveEngine::BatchOutcome outcome;
    const ingest::LiveEngine::BatchOutcome& won =
        attempts[winners.front()].outcome;
    outcome.adds.assign(won.adds.size(), failed);
    outcome.removes.assign(won.removes.size(), failed);
    return outcome;
  }

  return std::move(attempts[winners.front()].outcome);
}

std::vector<Table> ReplicaSet::VisibleTables() const {
  // Prefer a non-stale replica as the authoritative copy; all-stale (not
  // reachable through the public write path) falls back to replica 0.
  size_t source = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!stale(i)) {
      source = i;
      break;
    }
  }
  std::shared_ptr<const ingest::Generation> gen =
      replicas_[source]->Acquire();
  std::vector<Table> out;
  out.reserve(gen->visible_table_count());
  const DataLakeCatalog& base = gen->base_catalog();
  for (TableId id : base.AllTables()) {
    if (gen->delta().tombstones.count(id)) continue;
    out.push_back(base.table(id));
  }
  if (gen->delta().catalog != nullptr) {
    const DataLakeCatalog& delta = *gen->delta().catalog;
    for (TableId id : delta.AllTables()) out.push_back(delta.table(id));
  }
  return out;
}

}  // namespace lake::cluster
