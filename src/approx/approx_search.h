#ifndef LAKE_APPROX_APPROX_SEARCH_H_
#define LAKE_APPROX_APPROX_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "approx/estimator.h"
#include "approx/verifier.h"
#include "search/query.h"
#include "table/catalog.h"
#include "util/cancel.h"

namespace lake::approx {

/// Sampling-based approximate joinable-column search — the cheap tier of
/// the accuracy/latency knob (ROADMAP item 3, the survey's scalability
/// gap). Ranks lake columns by containment |Q ∩ C| / |Q| like the exact
/// domain search, but from bottom-k value samples with confidence
/// intervals instead of full posting-list or set scans:
///
///   1. Screen every column at `min_sample` resolution (one cheap interval
///      each).
///   2. Keep the candidates whose upper bound reaches the running k-th
///      best lower bound — no column that could be in the top-k is ever
///      dropped (with per-interval probability >= 1 - error_budget).
///   3. Double surviving candidates' sample sizes in rounds, re-tightening
///      the boundary each time.
///   4. Candidates whose interval still straddles the final top-k boundary
///      at the widest sample are settled by exact verification (the
///      subsystem invariant: no straddling interval ever decides).
///
/// Every returned result carries its interval in `why` (or the exact
/// value when fallback verified it), so approximate answers are always
/// distinguishable from exact ones downstream.
class ApproxJoinSearch {
 public:
  struct Options {
    ApproxEstimator::Options estimator;
    /// Screening resolution (pass 1) and the doubling ceiling; the
    /// ceiling is clamped to estimator.max_sample.
    size_t min_sample = 64;
    size_t max_sample = 1024;
    /// Default per-estimate error budget when the caller passes none.
    double error_budget = 0.1;
    /// Refinement-pool cap as a multiple of k (keeps pathological lakes —
    /// every column similar — from degrading to a full exact scan).
    size_t candidate_factor = 8;
  };

  explicit ApproxJoinSearch(const DataLakeCatalog* catalog)
      : ApproxJoinSearch(catalog, Options{}) {}
  ApproxJoinSearch(const DataLakeCatalog* catalog, Options options);

  /// Top-k columns by (approximately) largest containment of the query.
  /// `error_budget` <= 0 uses Options::error_budget. `cancel` is polled
  /// between refinement rounds. Results' `why` strings carry the interval
  /// ("~containment=0.61 ci=[0.44,0.78] n=128") or the exact fallback
  /// value ("containment=0.63 (exact fallback)").
  Result<std::vector<ColumnResult>> Search(
      const std::vector<std::string>& query_values, size_t k,
      double error_budget = -1, ApproxQueryStats* stats = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// All columns whose containment clears `threshold`, each decided by the
  /// adaptive verifier (interval or exact fallback), capped at `k`.
  Result<std::vector<ColumnResult>> SearchThreshold(
      const std::vector<std::string>& query_values, double threshold,
      size_t k, double error_budget = -1, ApproxQueryStats* stats = nullptr,
      const CancelToken* cancel = nullptr) const;

  size_t num_indexed_columns() const { return estimator_.num_indexed_columns(); }
  const std::vector<ColumnRef>& indexed_columns() const {
    return estimator_.indexed_columns();
  }
  const ApproxEstimator& estimator() const { return estimator_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  ApproxEstimator estimator_;
};

}  // namespace lake::approx

#endif  // LAKE_APPROX_APPROX_SEARCH_H_
