#include "approx/verifier.h"

#include <algorithm>

#include "util/failpoint.h"

namespace lake::approx {

AdaptiveVerifier::AdaptiveVerifier(const ApproxEstimator* estimator,
                                   Options options)
    : estimator_(estimator), options_(options) {
  options_.min_sample = std::max<size_t>(1, options_.min_sample);
  options_.max_sample =
      std::max(options_.min_sample,
               std::min(options_.max_sample, estimator_->options().max_sample));
}

Result<Verdict> AdaptiveVerifier::VerifyContainment(
    const HashedSet& query, size_t index, double threshold,
    ApproxQueryStats* stats, const CancelToken* cancel) const {
  Verdict verdict;
  ApproxQueryStats local;
  size_t s = options_.min_sample;
  for (;;) {
    LAKE_RETURN_IF_ERROR(ExecFailpoint("approx.sample", cancel));
    if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
    verdict.estimate = estimator_->EstimateContainment(
        query, index, s, options_.error_budget);
    ++local.estimates;
    ++verdict.rounds;
    if (!verdict.estimate.Straddles(threshold)) break;
    // An exact degenerate interval that straddles is impossible (lo == hi
    // either clears or misses), so reaching here means more sample can
    // still help — unless we are already at the ceiling.
    if (s >= options_.max_sample || verdict.estimate.exact) {
      // Straddling at the widest sample: the interval is not allowed to
      // decide. Fall back to exact verification.
      if (options_.exact_fallback) {
        LAKE_RETURN_IF_ERROR(ExecFailpoint("approx.verify", cancel));
        if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
        const double exact = estimator_->ExactContainment(query, index);
        verdict.estimate.point = exact;
        verdict.estimate.lo = verdict.estimate.hi = exact;
        verdict.estimate.exact = true;
        verdict.exact = true;
        verdict.accepted = exact >= threshold;
        ++local.exact_fallbacks;
        local.rounds += verdict.rounds;
        if (stats != nullptr) stats->Merge(local);
        return verdict;
      }
      break;  // unsettled: decide on the point estimate, exact = false
    }
    s = std::min(options_.max_sample, s * 2);
  }
  // Interval-settled (or unsettled with fallback disabled): either way the
  // decision came without touching the catalog.
  if (!verdict.estimate.Straddles(threshold)) {
    verdict.accepted = verdict.estimate.lo >= threshold;
  } else {
    verdict.accepted = verdict.estimate.point >= threshold;
  }
  if (verdict.estimate.exact) verdict.exact = true;
  ++local.interval_decisions;
  local.rounds += verdict.rounds;
  local.sum_width += verdict.estimate.width();
  local.max_width = std::max(local.max_width, verdict.estimate.width());
  local.sum_sample_size += verdict.estimate.sample_size;
  if (stats != nullptr) stats->Merge(local);
  return verdict;
}

}  // namespace lake::approx
