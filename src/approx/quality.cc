#include "approx/quality.h"

#include <algorithm>
#include <cmath>

namespace lake::approx {

namespace {

/// Upper-tail standard normal quantile z_alpha for the supported levels.
double NormalQuantile(double alpha) {
  return alpha <= 0.01 ? 2.326 : 1.645;  // 99% : 95%
}

/// Wilson–Hilferty approximation to the chi-square upper quantile with k
/// degrees of freedom: k * (1 - 2/(9k) + z * sqrt(2/(9k)))^3.
double ChiSquareCritical(size_t dof, double alpha) {
  const double k = static_cast<double>(dof);
  const double z = NormalQuantile(alpha);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

}  // namespace

QualityCheck ChiSquareUniformity(const std::vector<uint64_t>& hashes,
                                 size_t bins, double alpha) {
  QualityCheck check;
  check.n = hashes.size();
  if (bins < 2 || hashes.empty()) return check;
  std::vector<size_t> counts(bins, 0);
  // Bin by the hash's high bits: bin = floor(h / 2^64 * bins), computed
  // without 128-bit arithmetic by scaling the top 53 bits.
  for (uint64_t h : hashes) {
    const double u =
        static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
    size_t b = static_cast<size_t>(u * static_cast<double>(bins));
    if (b >= bins) b = bins - 1;
    ++counts[b];
  }
  const double expected =
      static_cast<double>(hashes.size()) / static_cast<double>(bins);
  double x2 = 0;
  for (size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    x2 += d * d / expected;
  }
  check.statistic = x2;
  check.critical_value = ChiSquareCritical(bins - 1, alpha);
  check.passed = x2 <= check.critical_value;
  return check;
}

QualityCheck KolmogorovSmirnovUniform(const std::vector<uint64_t>& hashes,
                                      double alpha) {
  QualityCheck check;
  check.n = hashes.size();
  if (hashes.empty()) return check;
  std::vector<uint64_t> sorted = hashes;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d_max = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double u =
        static_cast<double>(sorted[i] >> 11) / 9007199254740992.0;
    const double d_plus = (static_cast<double>(i) + 1.0) / n - u;
    const double d_minus = u - static_cast<double>(i) / n;
    d_max = std::max({d_max, d_plus, d_minus});
  }
  check.statistic = d_max;
  const double c = alpha <= 0.01 ? 1.628 : 1.358;
  check.critical_value = c / std::sqrt(n);
  check.passed = d_max <= check.critical_value;
  return check;
}

}  // namespace lake::approx
