#ifndef LAKE_APPROX_QUALITY_H_
#define LAKE_APPROX_QUALITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lake::approx {

/// Outcome of one goodness-of-fit test against the uniform distribution.
/// The approximate tier's guarantees rest on value hashes being uniform on
/// [0, 2^64); these checks let the test suite (and operators debugging a
/// suspicious lake) verify that assumption on real samples instead of
/// trusting it.
struct QualityCheck {
  /// Test statistic (chi-square X^2 or KS sup-distance D_n).
  double statistic = 0;
  /// Rejection threshold at the requested significance level.
  double critical_value = 0;
  /// True when statistic <= critical_value (sample looks uniform).
  bool passed = false;
  size_t n = 0;
};

/// Pearson chi-square test that `hashes` are uniform over [0, 2^64),
/// binned into `bins` equal-width cells. The critical value at
/// significance `alpha` (supported: 0.05, 0.01) uses the Wilson–Hilferty
/// cube-root approximation to the chi-square quantile — accurate to a few
/// parts per thousand for the bin counts used here, and dependency-free.
QualityCheck ChiSquareUniformity(const std::vector<uint64_t>& hashes,
                                 size_t bins = 64, double alpha = 0.05);

/// One-sample Kolmogorov–Smirnov test that `hashes` are uniform over
/// [0, 2^64). Critical value is the large-n asymptotic c(alpha) / sqrt(n)
/// (c = 1.358 at alpha = 0.05, 1.628 at alpha = 0.01).
QualityCheck KolmogorovSmirnovUniform(const std::vector<uint64_t>& hashes,
                                      double alpha = 0.05);

}  // namespace lake::approx

#endif  // LAKE_APPROX_QUALITY_H_
