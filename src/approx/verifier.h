#ifndef LAKE_APPROX_VERIFIER_H_
#define LAKE_APPROX_VERIFIER_H_

#include <cstddef>
#include <cstdint>

#include "approx/estimator.h"
#include "util/cancel.h"
#include "util/status.h"

namespace lake::approx {

/// Per-query work accounting for the approximate tier, threaded from the
/// estimator loops up to the serving layer's approx.* metrics.
struct ApproxQueryStats {
  /// Estimator invocations (one interval computed per invocation).
  size_t estimates = 0;
  /// Candidates settled by exact verification because their interval still
  /// straddled the decision threshold at the widest sample.
  size_t exact_fallbacks = 0;
  /// Candidates settled by interval alone (accepted or rejected).
  size_t interval_decisions = 0;
  /// Sample-doubling rounds across all candidates.
  size_t rounds = 0;
  /// Sum / max of final interval widths (exact fallbacks count as 0).
  double sum_width = 0;
  double max_width = 0;
  /// Sum of final per-candidate sample sizes (mean = sum / decisions).
  size_t sum_sample_size = 0;

  void Merge(const ApproxQueryStats& other) {
    estimates += other.estimates;
    exact_fallbacks += other.exact_fallbacks;
    interval_decisions += other.interval_decisions;
    rounds += other.rounds;
    sum_width += other.sum_width;
    if (other.max_width > max_width) max_width = other.max_width;
    sum_sample_size += other.sum_sample_size;
  }
  size_t decisions() const { return interval_decisions + exact_fallbacks; }
};

/// Accept/reject decision for one candidate column against a containment
/// threshold, with the evidence that settled it.
struct Verdict {
  bool accepted = false;
  /// True when exact verification (not the interval) decided.
  bool exact = false;
  /// Final estimate; for exact verdicts lo == hi == the exact value.
  IntervalEstimate estimate;
  size_t rounds = 0;
};

/// Decides "is containment(Q, C) >= threshold?" from interval estimates,
/// escalating the sample size only as far as the decision needs:
///
///   1. Estimate at `min_sample`; if [lo, hi] clears the threshold on
///      either side, decide immediately.
///   2. While the interval straddles the threshold, double the sample
///      (prefixes of the estimator's stored bottom-k, so doubling costs
///      one more estimate, never a re-sampling pass).
///   3. At `max_sample`, if the interval still straddles, fall back to
///      exact verification (the subsystem invariant: an approximate
///      answer is never allowed to decide a threshold its interval
///      straddles).
///
/// Failpoints: `approx.sample` is hit once per estimate round and
/// `approx.verify` before each exact fallback, so chaos schedules can
/// inject hangs or errors into both phases.
class AdaptiveVerifier {
 public:
  struct Options {
    size_t min_sample = 64;
    /// Doubling ceiling; clamped to the estimator's stored sample width.
    size_t max_sample = 1024;
    /// Per-decision error budget delta: the interval covers the truth with
    /// probability >= 1 - delta, so an interval-decided verdict is wrong
    /// with probability <= delta.
    double error_budget = 0.1;
    /// Allow exact fallback; when false a straddling interval returns an
    /// unsettled verdict (accepted = point >= threshold, exact = false)
    /// rather than touching the catalog — bench-only escape hatch.
    bool exact_fallback = true;
  };

  explicit AdaptiveVerifier(const ApproxEstimator* estimator)
      : AdaptiveVerifier(estimator, Options{}) {}
  AdaptiveVerifier(const ApproxEstimator* estimator, Options options);

  /// Verifies containment(Q, column `index`) >= threshold. `query` must
  /// come from the estimator's QuerySet. Fails only on injected faults or
  /// cancellation.
  Result<Verdict> VerifyContainment(const HashedSet& query, size_t index,
                                    double threshold,
                                    ApproxQueryStats* stats = nullptr,
                                    const CancelToken* cancel = nullptr) const;

  const Options& options() const { return options_; }
  const ApproxEstimator& estimator() const { return *estimator_; }

 private:
  const ApproxEstimator* estimator_;
  Options options_;
};

}  // namespace lake::approx

#endif  // LAKE_APPROX_VERIFIER_H_
