#include "approx/oracle.h"

#include <algorithm>

#include "text/normalizer.h"
#include "util/top_k.h"

namespace lake::approx {

namespace {

std::set<std::string> NormalizedSet(const std::vector<std::string>& values) {
  std::set<std::string> out;
  for (const std::string& v : values) {
    std::string norm = NormalizeValue(v);
    if (!norm.empty()) out.insert(std::move(norm));
  }
  return out;
}

size_t CountIn(const std::set<std::string>& a, const std::set<std::string>& b,
               size_t* probes) {
  size_t matches = 0;
  for (const std::string& v : a) {
    if (probes != nullptr) ++*probes;
    if (b.count(v) != 0) ++matches;
  }
  return matches;
}

}  // namespace

DiscoveryOracle::DiscoveryOracle(const DataLakeCatalog* catalog) {
  // Eligibility mirrors ApproxEstimator's defaults (>= 2 distinct values,
  // numeric columns included) so oracle and estimator rank the same pool.
  catalog->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    std::set<std::string> values = NormalizedSet(col.DistinctStrings());
    if (values.size() < 2) return;
    refs_.push_back(ref);
    columns_.push_back(std::move(values));
  });
}

size_t DiscoveryOracle::ExactDistinct(const std::vector<std::string>& values) {
  return NormalizedSet(values).size();
}

double DiscoveryOracle::ExactJaccard(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  const std::set<std::string> sa = NormalizedSet(a);
  const std::set<std::string> sb = NormalizedSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t inter = CountIn(sa, sb, nullptr);
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiscoveryOracle::ExactContainment(const std::vector<std::string>& a,
                                         const std::vector<std::string>& b) {
  const std::set<std::string> sa = NormalizedSet(a);
  if (sa.empty()) return 0;
  const std::set<std::string> sb = NormalizedSet(b);
  return static_cast<double>(CountIn(sa, sb, nullptr)) /
         static_cast<double>(sa.size());
}

size_t DiscoveryOracle::ExactOverlap(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  return CountIn(NormalizedSet(a), NormalizedSet(b), nullptr);
}

std::vector<ColumnResult> DiscoveryOracle::TopKByContainment(
    const std::vector<std::string>& query_values, size_t k,
    Stats* stats) const {
  Stats local;
  const std::set<std::string> query = NormalizedSet(query_values);
  TopK<size_t> top(k);
  for (size_t i = 0; i < columns_.size(); ++i) {
    ++local.candidates_checked;
    double score = 0;
    if (!query.empty()) {
      score = static_cast<double>(
                  CountIn(query, columns_[i], &local.probes)) /
              static_cast<double>(query.size());
    }
    if (score <= 0) continue;
    top.Push(score, i);
  }
  std::vector<ColumnResult> results;
  for (auto& [score, index] : top.Take()) {
    results.push_back(
        ColumnResult{refs_[index], score, "oracle containment"});
  }
  if (stats != nullptr) *stats = local;
  return results;
}

std::vector<ColumnResult> DiscoveryOracle::TopKByOverlap(
    const std::vector<std::string>& query_values, size_t k,
    Stats* stats) const {
  Stats local;
  const std::set<std::string> query = NormalizedSet(query_values);
  TopK<size_t> top(k);
  for (size_t i = 0; i < columns_.size(); ++i) {
    ++local.candidates_checked;
    const double score =
        static_cast<double>(CountIn(query, columns_[i], &local.probes));
    if (score <= 0) continue;
    top.Push(score, i);
  }
  std::vector<ColumnResult> results;
  for (auto& [score, index] : top.Take()) {
    results.push_back(ColumnResult{refs_[index], score, "oracle overlap"});
  }
  if (stats != nullptr) *stats = local;
  return results;
}

double DiscoveryOracle::ContainmentOf(
    const std::vector<std::string>& query_values, size_t index) const {
  const std::set<std::string> query = NormalizedSet(query_values);
  if (query.empty()) return 0;
  return static_cast<double>(CountIn(query, columns_[index], nullptr)) /
         static_cast<double>(query.size());
}

}  // namespace lake::approx
