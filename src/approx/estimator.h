#ifndef LAKE_APPROX_ESTIMATOR_H_
#define LAKE_APPROX_ESTIMATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sketch/set_ops.h"
#include "table/catalog.h"
#include "util/status.h"

namespace lake::approx {

/// One interval estimate with a distribution-free guarantee: with
/// probability >= 1 - delta (the caller's error budget), the true value
/// lies in [lo, hi]. `exact` marks degenerate intervals where the sample
/// covered the whole column (lo == hi == point, no probability involved).
/// The subsystem invariant is that every approximate answer carries one of
/// these — a consumer can always see how much it is being asked to trust.
struct IntervalEstimate {
  double point = 0;
  double lo = 0;
  double hi = 1;
  /// Bernoulli trials behind the estimate (query hashes inside the
  /// exactly-known sample region); 0 means the sample taught nothing and
  /// the interval is the vacuous [0, 1].
  size_t trials = 0;
  /// Sample-size prefix used (bottom-s hashes of the column).
  size_t sample_size = 0;
  bool exact = false;

  double width() const { return hi - lo; }
  /// True when the interval cannot decide `threshold` — the adaptive
  /// verifier's trigger for sample doubling and, ultimately, exact
  /// fallback.
  bool Straddles(double threshold) const {
    return lo < threshold && threshold <= hi;
  }
};

/// Sampling-based estimator of containment / overlap / join size between a
/// query value set and every eligible lake column, built from seeded
/// bottom-k value samples (the KMV construction from src/sketch, stored
/// wide once and consumed as prefixes).
///
/// Sampling model: every value is hashed with one shared seeded hash; a
/// column keeps its `max_sample` smallest distinct hashes. The bottom-s
/// prefix of that sample is itself the bottom-s sketch, so one stored
/// sample serves every requested resolution — this is what makes the
/// adaptive verifier's progressive doubling free of re-sampling passes.
/// For a sample prefix of size s with s-th smallest hash tau, the column's
/// hash set below tau is known *exactly*; query hashes below tau are a
/// uniform random subsample of the query (hashes are uniform), so the
/// fraction of them found in the column is a binomial estimator of
/// containment, and a Hoeffding bound gives the confidence interval:
///
///   half_width = sqrt(ln(2 / delta) / (2 * trials))
///
/// Determinism: the sampling hash seed is derived from Options::seed via
/// Rng::Fork("approx.sample") — never from clocks or random_device — so a
/// rebuilt estimator over the same catalog reproduces every interval
/// bit-for-bit (the chaos determinism contract).
class ApproxEstimator {
 public:
  struct Options {
    /// Widest stored sample per column (the verifier's doubling ceiling).
    size_t max_sample = 1024;
    /// Columns with fewer distinct values are not joinable keys (mirrors
    /// the exact engines' eligibility rule).
    size_t min_distinct = 2;
    bool include_numeric = true;
    /// Root seed; the hash seed is forked from it (tag "approx.sample").
    uint64_t seed = 0x5eedab1e;
  };

  explicit ApproxEstimator(const DataLakeCatalog* catalog)
      : ApproxEstimator(catalog, Options{}) {}
  ApproxEstimator(const DataLakeCatalog* catalog, Options options);

  /// Hashes + normalizes query values under this estimator's seed. All
  /// Estimate*/Exact* calls must use a query set built here (the sampling
  /// universe must match the column samples).
  HashedSet QuerySet(const std::vector<std::string>& query_values) const;

  /// Containment |Q ∩ C| / |Q| of the query in column `index`, from the
  /// bottom-`sample_size` prefix of the column's sample, at confidence
  /// 1 - error_budget.
  IntervalEstimate EstimateContainment(const HashedSet& query, size_t index,
                                       size_t sample_size,
                                       double error_budget) const;

  /// Overlap |Q ∩ C| (JOSIE's ranking function; also the join size over
  /// distinct keys): the containment interval scaled by |Q|.
  IntervalEstimate EstimateOverlap(const HashedSet& query, size_t index,
                                   size_t sample_size,
                                   double error_budget) const;

  /// Exact containment of the query in column `index`, recomputed from the
  /// catalog (the verifier's fallback: O(column) instead of O(sample)).
  double ExactContainment(const HashedSet& query, size_t index) const;

  size_t num_indexed_columns() const { return refs_.size(); }
  const std::vector<ColumnRef>& indexed_columns() const { return refs_; }
  /// Exact distinct count of column `index` (profiled at build).
  size_t cardinality(size_t index) const { return cardinalities_[index]; }
  const Options& options() const { return options_; }
  uint64_t hash_seed() const { return hash_seed_; }

 private:
  const DataLakeCatalog* catalog_;
  Options options_;
  uint64_t hash_seed_;
  std::vector<ColumnRef> refs_;
  /// Ascending bottom-max_sample distinct hashes per column.
  std::vector<std::vector<uint64_t>> samples_;
  std::vector<size_t> cardinalities_;
};

/// Hoeffding half-width for `trials` Bernoulli trials at confidence
/// 1 - error_budget (exposed for tests and the calibration suite).
double HoeffdingHalfWidth(size_t trials, double error_budget);

}  // namespace lake::approx

#endif  // LAKE_APPROX_ESTIMATOR_H_
