#ifndef LAKE_APPROX_ORACLE_H_
#define LAKE_APPROX_ORACLE_H_

#include <set>
#include <string>
#include <vector>

#include "search/query.h"
#include "table/catalog.h"

namespace lake::approx {

/// Brute-force ground truth for the approximate tier's test suite. The
/// oracle shares NO code with the estimators it judges: values are kept as
/// normalized strings in std::set (no hashing, no sketches, no sampling),
/// and every measure is a literal double loop over the operands. Slow by
/// design — its only job is to be obviously correct.
class DiscoveryOracle {
 public:
  struct Stats {
    /// Candidate columns examined by the last TopKBy* call.
    size_t candidates_checked = 0;
    /// Value membership probes performed.
    size_t probes = 0;
  };

  explicit DiscoveryOracle(const DataLakeCatalog* catalog);

  /// --- Set measures over raw value lists (normalization applied) ---
  static size_t ExactDistinct(const std::vector<std::string>& values);
  static double ExactJaccard(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);
  /// |A ∩ B| / |A|; 0 when A is empty.
  static double ExactContainment(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b);
  static size_t ExactOverlap(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

  /// --- Catalog-wide brute force (every eligible column, no pruning) ---
  std::vector<ColumnResult> TopKByContainment(
      const std::vector<std::string>& query_values, size_t k,
      Stats* stats = nullptr) const;
  std::vector<ColumnResult> TopKByOverlap(
      const std::vector<std::string>& query_values, size_t k,
      Stats* stats = nullptr) const;
  /// Containment of the query in one specific indexed column.
  double ContainmentOf(const std::vector<std::string>& query_values,
                       size_t index) const;

  size_t num_indexed_columns() const { return refs_.size(); }
  const std::vector<ColumnRef>& indexed_columns() const { return refs_; }
  size_t cardinality(size_t index) const { return columns_[index].size(); }

 private:
  std::vector<ColumnRef> refs_;
  /// Normalized distinct values per eligible column.
  std::vector<std::set<std::string>> columns_;
};

}  // namespace lake::approx

#endif  // LAKE_APPROX_ORACLE_H_
