#include "approx/approx_search.h"

#include <algorithm>
#include <cstdio>

#include "util/failpoint.h"

namespace lake::approx {

namespace {

struct Candidate {
  size_t index = 0;
  IntervalEstimate est;
};

std::string IntervalWhy(const IntervalEstimate& est) {
  char buf[96];
  if (est.exact) {
    std::snprintf(buf, sizeof(buf), "containment=%.3f (exact)", est.point);
  } else {
    std::snprintf(buf, sizeof(buf), "~containment=%.3f ci=[%.3f,%.3f] n=%zu",
                  est.point, est.lo, est.hi, est.sample_size);
  }
  return buf;
}

/// k-th largest lower bound among candidates — the provisional top-k
/// boundary. Below k candidates there is no boundary (everyone is in).
double TopKBoundary(const std::vector<Candidate>& cands, size_t k) {
  if (k == 0 || cands.size() <= k) return 0.0;
  std::vector<double> los;
  los.reserve(cands.size());
  for (const Candidate& c : cands) los.push_back(c.est.lo);
  std::nth_element(los.begin(), los.begin() + (k - 1), los.end(),
                   std::greater<double>());
  return los[k - 1];
}

}  // namespace

ApproxJoinSearch::ApproxJoinSearch(const DataLakeCatalog* catalog,
                                   Options options)
    : options_(options), estimator_(catalog, options.estimator) {
  options_.min_sample = std::max<size_t>(1, options_.min_sample);
  options_.max_sample =
      std::max(options_.min_sample,
               std::min(options_.max_sample, estimator_.options().max_sample));
  if (options_.candidate_factor == 0) options_.candidate_factor = 1;
  if (!(options_.error_budget > 0) || options_.error_budget >= 1) {
    options_.error_budget = 0.1;
  }
}

Result<std::vector<ColumnResult>> ApproxJoinSearch::Search(
    const std::vector<std::string>& query_values, size_t k,
    double error_budget, ApproxQueryStats* stats,
    const CancelToken* cancel) const {
  std::vector<ColumnResult> results;
  if (k == 0 || estimator_.num_indexed_columns() == 0) return results;
  const double eb = error_budget > 0 ? error_budget : options_.error_budget;
  const HashedSet query = estimator_.QuerySet(query_values);
  ApproxQueryStats local;

  // Pass 1: screen every column at the cheapest resolution. Columns whose
  // upper bound is already 0 (exact empty intersections) are discarded.
  size_t s = options_.min_sample;
  LAKE_RETURN_IF_ERROR(ExecFailpoint("approx.sample", cancel));
  std::vector<Candidate> cands;
  for (size_t i = 0; i < estimator_.num_indexed_columns(); ++i) {
    if (cancel != nullptr && ShouldCheck(i)) {
      LAKE_RETURN_IF_ERROR(cancel->Check());
    }
    Candidate c;
    c.index = i;
    c.est = estimator_.EstimateContainment(query, i, s, eb);
    ++local.estimates;
    if (c.est.hi > 0) cands.push_back(c);
  }
  ++local.rounds;

  // Refinement: drop candidates that provably miss the top-k boundary,
  // then double the sample for the survivors and re-tighten. The pool is
  // additionally capped so adversarially uniform lakes cannot force a
  // near-full rescan every round. Eviction order is by UPPER bound, not
  // point estimate: a huge column screened at the cheapest resolution may
  // have almost no trials yet (point 0, hi near 1), and it is exactly the
  // candidate that could still be in the top-k — evicting by point would
  // silently drop it (and with it the screening-pass recall guarantee).
  const size_t cap = std::max(k, k * options_.candidate_factor);
  auto prune = [&](double boundary) {
    if (boundary > 0) {
      cands.erase(std::remove_if(cands.begin(), cands.end(),
                                 [&](const Candidate& c) {
                                   return c.est.hi < boundary;
                                 }),
                  cands.end());
    }
    if (cands.size() > cap) {
      std::sort(cands.begin(), cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.est.hi != b.est.hi) return a.est.hi > b.est.hi;
                  if (a.est.point != b.est.point) return a.est.point > b.est.point;
                  return a.index < b.index;
                });
      cands.resize(cap);
    }
  };
  prune(TopKBoundary(cands, k));
  while (s < options_.max_sample && cands.size() > k) {
    s = std::min(options_.max_sample, s * 2);
    LAKE_RETURN_IF_ERROR(ExecFailpoint("approx.sample", cancel));
    if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
    bool any_open = false;
    for (Candidate& c : cands) {
      if (c.est.exact) continue;
      c.est = estimator_.EstimateContainment(query, c.index, s, eb);
      ++local.estimates;
      any_open = true;
    }
    ++local.rounds;
    prune(TopKBoundary(cands, k));
    if (!any_open) break;
  }

  // Settle: any candidate whose interval still straddles the final top-k
  // boundary is verified exactly — the invariant that a straddling interval
  // never decides. Everyone else is decided by their interval.
  const double boundary = TopKBoundary(cands, k);
  for (Candidate& c : cands) {
    if (!c.est.exact && c.est.Straddles(boundary)) {
      LAKE_RETURN_IF_ERROR(ExecFailpoint("approx.verify", cancel));
      if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
      const double exact = estimator_.ExactContainment(query, c.index);
      c.est.point = c.est.lo = c.est.hi = exact;
      c.est.exact = true;
      ++local.exact_fallbacks;
    } else {
      ++local.interval_decisions;
      local.sum_width += c.est.width();
      local.max_width = std::max(local.max_width, c.est.width());
    }
    local.sum_sample_size += c.est.sample_size;
  }

  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.est.point != b.est.point) return a.est.point > b.est.point;
              return a.index < b.index;
            });
  for (const Candidate& c : cands) {
    if (results.size() >= k) break;
    if (c.est.exact && c.est.point <= 0) continue;
    ColumnResult r;
    r.column = estimator_.indexed_columns()[c.index];
    r.score = c.est.point;
    r.why = IntervalWhy(c.est);
    results.push_back(std::move(r));
  }
  if (stats != nullptr) stats->Merge(local);
  return results;
}

Result<std::vector<ColumnResult>> ApproxJoinSearch::SearchThreshold(
    const std::vector<std::string>& query_values, double threshold, size_t k,
    double error_budget, ApproxQueryStats* stats,
    const CancelToken* cancel) const {
  std::vector<ColumnResult> results;
  if (k == 0 || estimator_.num_indexed_columns() == 0) return results;
  AdaptiveVerifier::Options vopts;
  vopts.min_sample = options_.min_sample;
  vopts.max_sample = options_.max_sample;
  vopts.error_budget = error_budget > 0 ? error_budget : options_.error_budget;
  AdaptiveVerifier verifier(&estimator_, vopts);
  const HashedSet query = estimator_.QuerySet(query_values);
  for (size_t i = 0; i < estimator_.num_indexed_columns(); ++i) {
    LAKE_ASSIGN_OR_RETURN(
        Verdict v, verifier.VerifyContainment(query, i, threshold, stats,
                                              cancel));
    if (!v.accepted) continue;
    ColumnResult r;
    r.column = estimator_.indexed_columns()[i];
    r.score = v.estimate.point;
    r.why = IntervalWhy(v.estimate);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const ColumnResult& a, const ColumnResult& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.column.table_id != b.column.table_id) {
                return a.column.table_id < b.column.table_id;
              }
              return a.column.column_index < b.column.column_index;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace lake::approx
