#include "approx/estimator.h"

#include <algorithm>
#include <cmath>

#include "text/normalizer.h"
#include "util/hash.h"
#include "util/random.h"

namespace lake::approx {

namespace {

std::vector<std::string> NormalizedDistinct(const Column& col) {
  std::vector<std::string> out;
  for (const std::string& v : col.DistinctStrings()) {
    std::string norm = NormalizeValue(v);
    if (!norm.empty()) out.push_back(std::move(norm));
  }
  return out;
}

/// Sorted, deduplicated hashes of normalized values under `seed`.
std::vector<uint64_t> HashValues(const std::vector<std::string>& values,
                                 uint64_t seed) {
  std::vector<uint64_t> hashes;
  hashes.reserve(values.size());
  for (const std::string& v : values) hashes.push_back(Hash64(v, seed));
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return hashes;
}

}  // namespace

double HoeffdingHalfWidth(size_t trials, double error_budget) {
  if (trials == 0) return 1.0;
  const double delta = std::clamp(error_budget, 1e-12, 1.0 - 1e-12);
  return std::sqrt(std::log(2.0 / delta) /
                   (2.0 * static_cast<double>(trials)));
}

ApproxEstimator::ApproxEstimator(const DataLakeCatalog* catalog,
                                 Options options)
    : catalog_(catalog), options_(options) {
  if (options_.max_sample == 0) options_.max_sample = 1;
  // Determinism contract: the sampling seed is a forked seeded stream, so
  // every random choice in this subsystem traces back to Options::seed.
  hash_seed_ = Rng(options_.seed).Fork("approx.sample").Next();
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (!options_.include_numeric && col.IsNumeric()) return;
    std::vector<uint64_t> hashes =
        HashValues(NormalizedDistinct(col), hash_seed_);
    if (hashes.size() < options_.min_distinct) return;
    refs_.push_back(ref);
    cardinalities_.push_back(hashes.size());
    if (hashes.size() > options_.max_sample) {
      hashes.resize(options_.max_sample);  // bottom-k: smallest hashes
    }
    hashes.shrink_to_fit();
    samples_.push_back(std::move(hashes));
  });
}

HashedSet ApproxEstimator::QuerySet(
    const std::vector<std::string>& query_values) const {
  std::vector<std::string> norm;
  norm.reserve(query_values.size());
  for (const std::string& v : query_values) {
    std::string nv = NormalizeValue(v);
    if (!nv.empty()) norm.push_back(std::move(nv));
  }
  return HashedSet::FromValues(norm, hash_seed_);
}

IntervalEstimate ApproxEstimator::EstimateContainment(
    const HashedSet& query, size_t index, size_t sample_size,
    double error_budget) const {
  IntervalEstimate est;
  const std::vector<uint64_t>& sample = samples_[index];
  const std::vector<uint64_t>& q = query.hashes();
  const size_t s = std::min(std::max<size_t>(sample_size, 1), sample.size());
  est.sample_size = s;
  if (q.empty()) {
    // Empty query: containment is 0 by the engines' convention.
    est.point = est.lo = est.hi = 0;
    est.exact = true;
    return est;
  }

  // The sample is the whole column when the column has <= max_sample
  // distinct values — membership is then known for every query hash and
  // the answer is exact, not probabilistic.
  if (sample.size() == cardinalities_[index] && s == sample.size()) {
    // Probe the smaller side into the larger: the lake's long tail of tiny
    // columns must cost O(|column| log |query|), not O(|query|), or the
    // screening pass over every column re-inherits the exact scan's cost.
    size_t matches = 0;
    if (sample.size() < q.size()) {
      for (uint64_t h : sample) {
        if (std::binary_search(q.begin(), q.end(), h)) ++matches;
      }
    } else {
      for (uint64_t h : q) {
        if (std::binary_search(sample.begin(), sample.end(), h)) ++matches;
      }
    }
    est.point = static_cast<double>(matches) / static_cast<double>(q.size());
    est.lo = est.hi = est.point;
    est.trials = q.size();
    est.exact = true;
    return est;
  }

  // Exactly-known region: hashes strictly below tau (the s-th smallest
  // column hash). The column's hashes below tau are precisely the sample
  // prefix below tau; query hashes below tau are a uniform subsample of
  // the query.
  const uint64_t tau = sample[s - 1];
  const auto q_end = std::lower_bound(q.begin(), q.end(), tau);
  const size_t trials = static_cast<size_t>(q_end - q.begin());
  est.trials = trials;
  if (trials == 0) {
    // The sample taught nothing about this query; the vacuous interval
    // straddles every threshold, which is what drives the verifier to
    // double the sample (raising tau and with it the trial count).
    est.point = 0;
    est.lo = 0;
    est.hi = 1;
    return est;
  }
  size_t matches = 0;
  auto it = sample.begin();
  for (auto qi = q.begin(); qi != q_end; ++qi) {
    it = std::lower_bound(it, sample.end(), *qi);
    if (it != sample.end() && *it == *qi) ++matches;
  }
  est.point = static_cast<double>(matches) / static_cast<double>(trials);
  const double hw = HoeffdingHalfWidth(trials, error_budget);
  est.lo = std::max(0.0, est.point - hw);
  est.hi = std::min(1.0, est.point + hw);
  return est;
}

IntervalEstimate ApproxEstimator::EstimateOverlap(const HashedSet& query,
                                                  size_t index,
                                                  size_t sample_size,
                                                  double error_budget) const {
  IntervalEstimate est =
      EstimateContainment(query, index, sample_size, error_budget);
  const double scale = static_cast<double>(query.size());
  est.point *= scale;
  est.lo *= scale;
  est.hi *= scale;
  return est;
}

double ApproxEstimator::ExactContainment(const HashedSet& query,
                                         size_t index) const {
  if (query.empty()) return 0;
  const ColumnRef& ref = refs_[index];
  const Column& col = catalog_->table(ref.table_id).column(ref.column_index);
  // One streaming pass over the column: hash each value and mark which
  // query hashes it covers. No column-side sort or hash-vector build —
  // the fallback's cost is what bounds the approximate tier's worst case,
  // so it stays O(|column| * (normalize + hash + log |query|)).
  const std::vector<uint64_t>& qh = query.hashes();  // sorted, deduplicated
  std::vector<char> matched(qh.size(), 0);
  for (const std::string& v : col.DistinctStrings()) {
    const std::string norm = NormalizeValue(v);
    if (norm.empty()) continue;
    const uint64_t h = Hash64(norm, hash_seed_);
    const auto it = std::lower_bound(qh.begin(), qh.end(), h);
    if (it != qh.end() && *it == h) matched[it - qh.begin()] = 1;
  }
  size_t matches = 0;
  for (char m : matched) matches += m;
  return static_cast<double>(matches) / static_cast<double>(qh.size());
}

}  // namespace lake::approx
