#ifndef LAKE_SKETCH_HLL_H_
#define LAKE_SKETCH_HLL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lake {

/// HyperLogLog cardinality estimator (Flajolet et al.) with small-range
/// linear-counting correction. Profiles column cardinality at ingest time;
/// precision p gives 2^p one-byte registers and ~1.04/sqrt(2^p) error.
class HllSketch {
 public:
  /// p in [4, 18].
  explicit HllSketch(int precision = 12);

  void Update(uint64_t value_hash);

  static HllSketch Build(const std::vector<std::string>& values,
                         int precision = 12, uint64_t seed = 0);

  int precision() const { return p_; }
  size_t num_registers() const { return registers_.size(); }

  /// Estimated distinct count.
  double Estimate() const;

  /// Union (pointwise max of registers).
  Result<HllSketch> Merge(const HllSketch& other) const;

 private:
  int p_;
  std::vector<uint8_t> registers_;
};

}  // namespace lake

#endif  // LAKE_SKETCH_HLL_H_
