#include "sketch/hll.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/hash.h"
#include "util/logging.h"

namespace lake {

HllSketch::HllSketch(int precision) : p_(precision) {
  LAKE_CHECK(p_ >= 4 && p_ <= 18);
  registers_.assign(static_cast<size_t>(1) << p_, 0);
}

void HllSketch::Update(uint64_t value_hash) {
  const size_t idx = value_hash >> (64 - p_);
  const uint64_t rest = value_hash << p_;
  // Rank = position of leftmost 1-bit in the remaining 64-p bits, 1-based;
  // all-zero remainder gets the maximum rank.
  const int rank =
      rest == 0 ? (64 - p_ + 1) : (std::countl_zero(rest) + 1);
  registers_[idx] =
      std::max(registers_[idx], static_cast<uint8_t>(rank));
}

HllSketch HllSketch::Build(const std::vector<std::string>& values,
                           int precision, uint64_t seed) {
  HllSketch sketch(precision);
  for (const std::string& v : values) sketch.Update(Hash64(v, seed));
  return sketch;
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) alpha = 0.673;
  else if (registers_.size() == 32) alpha = 0.697;
  else if (registers_.size() == 64) alpha = 0.709;
  else alpha = 0.7213 / (1.0 + 1.079 / m);

  double sum = 0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;

  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

Result<HllSketch> HllSketch::Merge(const HllSketch& other) const {
  if (p_ != other.p_) return Status::InvalidArgument("HLL precisions differ");
  HllSketch out(p_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    out.registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return out;
}

}  // namespace lake
