#ifndef LAKE_SKETCH_KMV_H_
#define LAKE_SKETCH_KMV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lake {

/// K-Minimum-Values (bottom-k) sketch (Bar-Yossef et al.). Keeps the k
/// smallest distinct value hashes; supports distinct-count estimation and
/// mergeable set operations. Used by the profiler and as the sampling
/// backbone of the correlation sketch (QCR).
class KmvSketch {
 public:
  /// Sketch retaining at most k hashes (k >= 1).
  explicit KmvSketch(size_t k);

  /// Folds one value hash into the sketch.
  void Update(uint64_t value_hash);

  /// Convenience builder over raw values.
  static KmvSketch Build(const std::vector<std::string>& values, size_t k,
                         uint64_t seed = 0);

  size_t k() const { return k_; }
  /// Number of retained hashes (== min(k, distinct values seen)).
  size_t size() const { return hashes_.size(); }
  /// Retained hashes in ascending order.
  const std::vector<uint64_t>& hashes() const { return hashes_; }
  /// True when fewer than k distinct values were seen (sketch is exact).
  bool IsExact() const { return hashes_.size() < k_; }

  /// Estimated number of distinct values: exact when undersaturated,
  /// (k-1) / u_k otherwise (u_k = k-th smallest hash mapped to (0,1)).
  double EstimateDistinct() const;

  /// Sketch of the union (merge of bottom-k candidate pools).
  Result<KmvSketch> Merge(const KmvSketch& other) const;

  /// Jaccard estimate from the union sketch's k smallest values: the
  /// fraction of them present in both inputs (the standard KMV estimator).
  Result<double> EstimateJaccard(const KmvSketch& other) const;

  /// Containment |A∩B|/|A| estimate via Jaccard + cardinality estimates.
  Result<double> EstimateContainment(const KmvSketch& other) const;

 private:
  size_t k_;
  std::vector<uint64_t> hashes_;  // ascending, deduplicated
};

}  // namespace lake

#endif  // LAKE_SKETCH_KMV_H_
