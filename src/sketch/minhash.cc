#include "sketch/minhash.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"

namespace lake {

namespace {
constexpr uint64_t kEmpty = std::numeric_limits<uint64_t>::max();
}  // namespace

MinHashSignature::MinHashSignature(size_t num_hashes)
    : mins_(num_hashes, kEmpty) {}

void MinHashSignature::Update(uint64_t value_hash) {
  // Permutation i rehashes the value hash with seed i. Mix64-based
  // rehashing is a full-avalanche 64-bit function, so the induced orders
  // are effectively independent.
  for (size_t i = 0; i < mins_.size(); ++i) {
    const uint64_t h = Hash64(value_hash, /*seed=*/i + 1);
    mins_[i] = std::min(mins_[i], h);
  }
}

MinHashSignature MinHashSignature::Build(const std::vector<std::string>& values,
                                         size_t num_hashes, uint64_t seed) {
  MinHashSignature sig(num_hashes);
  for (const std::string& v : values) sig.Update(Hash64(v, seed));
  return sig;
}

MinHashSignature MinHashSignature::BuildFromHashes(
    const std::vector<uint64_t>& hashes, size_t num_hashes) {
  MinHashSignature sig(num_hashes);
  for (uint64_t h : hashes) sig.Update(h);
  return sig;
}

Result<double> MinHashSignature::EstimateJaccard(
    const MinHashSignature& other) const {
  if (mins_.size() != other.mins_.size()) {
    return Status::InvalidArgument("signature widths differ");
  }
  if (mins_.empty()) return Status::InvalidArgument("empty signature");
  size_t match = 0;
  for (size_t i = 0; i < mins_.size(); ++i) {
    if (mins_[i] == other.mins_[i]) ++match;
  }
  return static_cast<double>(match) / mins_.size();
}

Result<double> MinHashSignature::EstimateContainment(
    const MinHashSignature& other, size_t my_cardinality,
    size_t other_cardinality) const {
  LAKE_ASSIGN_OR_RETURN(double j, EstimateJaccard(other));
  if (my_cardinality == 0) return 0.0;
  // |A∩B| = J * |A∪B| = J/(1+J) * (|A| + |B|).
  const double inter =
      j / (1.0 + j) * static_cast<double>(my_cardinality + other_cardinality);
  return std::min(1.0, inter / static_cast<double>(my_cardinality));
}

Result<MinHashSignature> MinHashSignature::Merge(
    const MinHashSignature& other) const {
  if (mins_.size() != other.mins_.size()) {
    return Status::InvalidArgument("signature widths differ");
  }
  MinHashSignature out(mins_.size());
  for (size_t i = 0; i < mins_.size(); ++i) {
    out.mins_[i] = std::min(mins_[i], other.mins_[i]);
  }
  return out;
}

}  // namespace lake
