#ifndef LAKE_SKETCH_CORRELATION_SKETCH_H_
#define LAKE_SKETCH_CORRELATION_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lake {

/// Correlation sketch in the style of Santos et al., "A Sketch-based Index
/// for Correlated Dataset Search" (ICDE 2022), the QCR scheme cited by the
/// survey for joinable-and-correlated table search.
///
/// A sketch summarizes a (join key, numeric value) column pair by keeping
/// the n pairs whose *key hashes* are smallest (a KMV/bottom-k coordinated
/// sample). Because key hashing is consistent across tables, two sketches
/// can be joined on key hash to obtain a uniform sample of the join result,
/// from which correlation is estimated — either Pearson's r on the paired
/// sample or the robust Quadrant-Count-Ratio (QCR) estimator the paper
/// recommends for heavy-tailed data.
class CorrelationSketch {
 public:
  struct KeyedValue {
    uint64_t key_hash;
    double value;
  };

  /// Sketch retaining at most `max_pairs` keyed values.
  explicit CorrelationSketch(size_t max_pairs);

  /// Adds one (key, value) observation. Duplicate keys keep the first
  /// observed value (consistent, deterministic tie handling).
  void Update(uint64_t key_hash, double value);

  /// Builds from parallel key/value arrays (sizes must match; shorter is
  /// used). Values paired with empty keys are skipped.
  static CorrelationSketch Build(const std::vector<std::string>& keys,
                                 const std::vector<double>& values,
                                 size_t max_pairs, uint64_t seed = 0);

  size_t size() const { return entries_.size(); }
  size_t max_pairs() const { return max_pairs_; }
  const std::vector<KeyedValue>& entries() const { return entries_; }

  /// Number of sample pairs shared with `other` (join-sample size). A small
  /// join sample means the key overlap is low and any correlation estimate
  /// is unreliable.
  size_t JoinSampleSize(const CorrelationSketch& other) const;

  /// Estimated key containment of *this* in `other` from the coordinated
  /// sample (fraction of this sketch's sampled keys present in other).
  double EstimateKeyContainment(const CorrelationSketch& other) const;

  /// Pearson correlation over the joined sample. Error when fewer than 3
  /// shared keys or zero variance.
  Result<double> EstimatePearson(const CorrelationSketch& other) const;

  /// Quadrant-Count-Ratio over the joined sample: the signed fraction of
  /// points in concordant minus discordant quadrants around the sample
  /// medians. Robust to outliers; in [-1, 1]. Error when fewer than 3
  /// shared keys.
  Result<double> EstimateQcr(const CorrelationSketch& other) const;

 private:
  /// Joined (x, y) pairs for keys present in both sketches.
  std::vector<std::pair<double, double>> JoinSample(
      const CorrelationSketch& other) const;

  size_t max_pairs_;
  std::vector<KeyedValue> entries_;  // ascending by key_hash
};

/// Exact Pearson correlation of two equal-length vectors (ground truth in
/// tests and benchmarks). Error on length < 2 or zero variance.
Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y);

}  // namespace lake

#endif  // LAKE_SKETCH_CORRELATION_SKETCH_H_
