#ifndef LAKE_SKETCH_SET_OPS_H_
#define LAKE_SKETCH_SET_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lake {

/// A column's value set represented as sorted, deduplicated 64-bit value
/// hashes. This is the exact (non-sketched) ground-truth representation all
/// estimators are validated against.
class HashedSet {
 public:
  HashedSet() = default;

  /// Builds from raw values (hashes, sorts, dedups).
  static HashedSet FromValues(const std::vector<std::string>& values,
                              uint64_t seed = 0);

  /// Builds from precomputed hashes (takes ownership; sorts, dedups).
  static HashedSet FromHashes(std::vector<uint64_t> hashes);

  size_t size() const { return hashes_.size(); }
  bool empty() const { return hashes_.empty(); }
  const std::vector<uint64_t>& hashes() const { return hashes_; }

  /// |A ∩ B| by sorted-merge.
  size_t IntersectionSize(const HashedSet& other) const;

  /// Jaccard |A∩B| / |A∪B|; 1.0 when both empty.
  double Jaccard(const HashedSet& other) const;

  /// Containment of *this* in `other`: |A∩B| / |A| (the LSH Ensemble /
  /// JOSIE relevance measure for joinable domain search); 0 when A empty.
  double ContainmentIn(const HashedSet& other) const;

  /// Overlap |A∩B| (JOSIE's ranking function).
  size_t Overlap(const HashedSet& other) const { return IntersectionSize(other); }

 private:
  std::vector<uint64_t> hashes_;
};

}  // namespace lake

#endif  // LAKE_SKETCH_SET_OPS_H_
