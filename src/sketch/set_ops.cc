#include "sketch/set_ops.h"

#include <algorithm>

#include "util/hash.h"

namespace lake {

HashedSet HashedSet::FromValues(const std::vector<std::string>& values,
                                uint64_t seed) {
  std::vector<uint64_t> hashes;
  hashes.reserve(values.size());
  for (const std::string& v : values) hashes.push_back(Hash64(v, seed));
  return FromHashes(std::move(hashes));
}

HashedSet HashedSet::FromHashes(std::vector<uint64_t> hashes) {
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  HashedSet out;
  out.hashes_ = std::move(hashes);
  return out;
}

size_t HashedSet::IntersectionSize(const HashedSet& other) const {
  size_t count = 0, i = 0, j = 0;
  const auto& a = hashes_;
  const auto& b = other.hashes_;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

double HashedSet::Jaccard(const HashedSet& other) const {
  if (empty() && other.empty()) return 1.0;
  const size_t inter = IntersectionSize(other);
  const size_t uni = size() + other.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

double HashedSet::ContainmentIn(const HashedSet& other) const {
  if (empty()) return 0.0;
  return static_cast<double>(IntersectionSize(other)) / size();
}

}  // namespace lake
