#ifndef LAKE_SKETCH_SIMHASH_H_
#define LAKE_SKETCH_SIMHASH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lake {

/// 64-bit SimHash (Charikar) of a weighted token multiset. Hamming
/// proximity of fingerprints approximates cosine similarity of the token
/// frequency vectors; used as a cheap format/metadata similarity signal.
class SimHash {
 public:
  SimHash() = default;

  /// Fingerprint over tokens with unit weights.
  static uint64_t Fingerprint(const std::vector<std::string>& tokens,
                              uint64_t seed = 0);

  /// Fingerprint with per-token weights (sizes must match; extra weights
  /// ignored).
  static uint64_t WeightedFingerprint(const std::vector<std::string>& tokens,
                                      const std::vector<double>& weights,
                                      uint64_t seed = 0);

  /// Hamming distance between fingerprints (0..64).
  static int HammingDistance(uint64_t a, uint64_t b);

  /// Similarity in [0,1]: 1 - hamming/64.
  static double Similarity(uint64_t a, uint64_t b);
};

}  // namespace lake

#endif  // LAKE_SKETCH_SIMHASH_H_
