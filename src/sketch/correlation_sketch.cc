#include "sketch/correlation_sketch.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace lake {

CorrelationSketch::CorrelationSketch(size_t max_pairs)
    : max_pairs_(std::max<size_t>(1, max_pairs)) {}

void CorrelationSketch::Update(uint64_t key_hash, double value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key_hash,
      [](const KeyedValue& e, uint64_t h) { return e.key_hash < h; });
  if (it != entries_.end() && it->key_hash == key_hash) return;  // first wins
  if (entries_.size() < max_pairs_) {
    entries_.insert(it, KeyedValue{key_hash, value});
    return;
  }
  if (key_hash >= entries_.back().key_hash) return;
  entries_.insert(it, KeyedValue{key_hash, value});
  entries_.pop_back();
}

CorrelationSketch CorrelationSketch::Build(const std::vector<std::string>& keys,
                                           const std::vector<double>& values,
                                           size_t max_pairs, uint64_t seed) {
  CorrelationSketch sketch(max_pairs);
  const size_t n = std::min(keys.size(), values.size());
  for (size_t i = 0; i < n; ++i) {
    if (keys[i].empty()) continue;
    sketch.Update(Hash64(keys[i], seed), values[i]);
  }
  return sketch;
}

std::vector<std::pair<double, double>> CorrelationSketch::JoinSample(
    const CorrelationSketch& other) const {
  std::vector<std::pair<double, double>> out;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].key_hash == other.entries_[j].key_hash) {
      out.emplace_back(entries_[i].value, other.entries_[j].value);
      ++i;
      ++j;
    } else if (entries_[i].key_hash < other.entries_[j].key_hash) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

size_t CorrelationSketch::JoinSampleSize(const CorrelationSketch& other) const {
  return JoinSample(other).size();
}

double CorrelationSketch::EstimateKeyContainment(
    const CorrelationSketch& other) const {
  if (entries_.empty()) return 0.0;
  // Restrict to the coordinated region: keys below min(max kept hash) are a
  // uniform sample of both key sets.
  const uint64_t cutoff =
      std::min(entries_.back().key_hash, other.entries_.empty()
                                             ? 0
                                             : other.entries_.back().key_hash);
  size_t mine = 0, shared = 0;
  size_t j = 0;
  for (const KeyedValue& e : entries_) {
    if (e.key_hash > cutoff) break;
    ++mine;
    while (j < other.entries_.size() &&
           other.entries_[j].key_hash < e.key_hash) {
      ++j;
    }
    if (j < other.entries_.size() && other.entries_[j].key_hash == e.key_hash) {
      ++shared;
    }
  }
  return mine == 0 ? 0.0 : static_cast<double>(shared) / mine;
}

Result<double> CorrelationSketch::EstimatePearson(
    const CorrelationSketch& other) const {
  const auto sample = JoinSample(other);
  if (sample.size() < 3) {
    return Status::FailedPrecondition("join sample too small");
  }
  std::vector<double> x(sample.size()), y(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    x[i] = sample[i].first;
    y[i] = sample[i].second;
  }
  return PearsonCorrelation(x, y);
}

Result<double> CorrelationSketch::EstimateQcr(
    const CorrelationSketch& other) const {
  const auto sample = JoinSample(other);
  if (sample.size() < 3) {
    return Status::FailedPrecondition("join sample too small");
  }
  std::vector<double> xs(sample.size()), ys(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    xs[i] = sample[i].first;
    ys[i] = sample[i].second;
  }
  auto median = [](std::vector<double> v) {
    const size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    return v[mid];
  };
  const double mx = median(xs);
  const double my = median(ys);
  int64_t concordant = 0, discordant = 0;
  for (const auto& [x, y] : sample) {
    const double dx = x - mx;
    const double dy = y - my;
    if (dx == 0 || dy == 0) continue;  // on a median axis: uncounted
    if ((dx > 0) == (dy > 0)) ++concordant;
    else ++discordant;
  }
  const int64_t counted = concordant + discordant;
  if (counted == 0) return 0.0;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(counted);
}

Result<double> PearsonCorrelation(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("length mismatch");
  }
  if (x.size() < 2) return Status::InvalidArgument("need >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) {
    return Status::FailedPrecondition("zero variance");
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace lake
