#ifndef LAKE_SKETCH_MINHASH_H_
#define LAKE_SKETCH_MINHASH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lake {

/// Classic k-permutation MinHash signature (Broder). Permutation i is the
/// ordering induced by Hash64(value, seed_i); signature[i] is the minimum.
/// The fraction of agreeing positions is an unbiased Jaccard estimator,
/// and signatures are the substrate for MinHash-LSH and LSH Ensemble.
class MinHashSignature {
 public:
  MinHashSignature() = default;

  /// Signature with `num_hashes` positions, all initialized to "empty".
  explicit MinHashSignature(size_t num_hashes);

  /// Folds one value hash into every position (streaming build).
  void Update(uint64_t value_hash);

  /// Convenience: builds a signature over a value set.
  static MinHashSignature Build(const std::vector<std::string>& values,
                                size_t num_hashes, uint64_t seed = 0);
  static MinHashSignature BuildFromHashes(const std::vector<uint64_t>& hashes,
                                          size_t num_hashes);

  size_t num_hashes() const { return mins_.size(); }
  const std::vector<uint64_t>& values() const { return mins_; }
  uint64_t value(size_t i) const { return mins_[i]; }

  /// Unbiased Jaccard estimate: fraction of matching positions. Signatures
  /// must be the same width (checked).
  Result<double> EstimateJaccard(const MinHashSignature& other) const;

  /// Containment estimate of *this* in `other` derived from the Jaccard
  /// estimate and the exact set cardinalities (|A∩B| = J/(1+J) * (|A|+|B|)).
  Result<double> EstimateContainment(const MinHashSignature& other,
                                     size_t my_cardinality,
                                     size_t other_cardinality) const;

  /// Signature of the union of the underlying sets (pointwise min).
  Result<MinHashSignature> Merge(const MinHashSignature& other) const;

 private:
  std::vector<uint64_t> mins_;
};

}  // namespace lake

#endif  // LAKE_SKETCH_MINHASH_H_
