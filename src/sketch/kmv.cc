#include "sketch/kmv.h"

#include <algorithm>

#include "util/hash.h"

namespace lake {

KmvSketch::KmvSketch(size_t k) : k_(std::max<size_t>(1, k)) {}

void KmvSketch::Update(uint64_t value_hash) {
  // Sorted-insert with cap; columns are small enough that the O(k) insert
  // is dominated by hashing cost, and keeping the vector sorted makes
  // merges and estimates allocation-free.
  auto it = std::lower_bound(hashes_.begin(), hashes_.end(), value_hash);
  if (it != hashes_.end() && *it == value_hash) return;  // duplicate
  if (hashes_.size() < k_) {
    hashes_.insert(it, value_hash);
    return;
  }
  if (value_hash >= hashes_.back()) return;  // not among k smallest
  hashes_.insert(it, value_hash);
  hashes_.pop_back();
}

KmvSketch KmvSketch::Build(const std::vector<std::string>& values, size_t k,
                           uint64_t seed) {
  KmvSketch sketch(k);
  for (const std::string& v : values) sketch.Update(Hash64(v, seed));
  return sketch;
}

double KmvSketch::EstimateDistinct() const {
  if (IsExact()) return static_cast<double>(hashes_.size());
  const double u_k = HashToUnit(hashes_.back());
  if (u_k <= 0) return static_cast<double>(hashes_.size());
  return static_cast<double>(k_ - 1) / u_k;
}

Result<KmvSketch> KmvSketch::Merge(const KmvSketch& other) const {
  if (k_ != other.k_) return Status::InvalidArgument("KMV sizes differ");
  KmvSketch out(k_);
  std::vector<uint64_t> merged;
  merged.reserve(hashes_.size() + other.hashes_.size());
  std::merge(hashes_.begin(), hashes_.end(), other.hashes_.begin(),
             other.hashes_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > k_) merged.resize(k_);
  out.hashes_ = std::move(merged);
  return out;
}

Result<double> KmvSketch::EstimateJaccard(const KmvSketch& other) const {
  if (k_ != other.k_) return Status::InvalidArgument("KMV sizes differ");
  if (hashes_.empty() && other.hashes_.empty()) return 1.0;
  LAKE_ASSIGN_OR_RETURN(KmvSketch uni, Merge(other));
  size_t in_both = 0;
  for (uint64_t h : uni.hashes_) {
    const bool in_a = std::binary_search(hashes_.begin(), hashes_.end(), h);
    const bool in_b =
        std::binary_search(other.hashes_.begin(), other.hashes_.end(), h);
    if (in_a && in_b) ++in_both;
  }
  return uni.hashes_.empty()
             ? 0.0
             : static_cast<double>(in_both) / uni.hashes_.size();
}

Result<double> KmvSketch::EstimateContainment(const KmvSketch& other) const {
  LAKE_ASSIGN_OR_RETURN(double j, EstimateJaccard(other));
  const double a = EstimateDistinct();
  const double b = other.EstimateDistinct();
  if (a <= 0) return 0.0;
  const double inter = j / (1.0 + j) * (a + b);
  return std::min(1.0, inter / a);
}

}  // namespace lake
