#include "sketch/simhash.h"

#include <array>
#include <bit>

#include "util/hash.h"

namespace lake {

uint64_t SimHash::Fingerprint(const std::vector<std::string>& tokens,
                              uint64_t seed) {
  return WeightedFingerprint(tokens, {}, seed);
}

uint64_t SimHash::WeightedFingerprint(const std::vector<std::string>& tokens,
                                      const std::vector<double>& weights,
                                      uint64_t seed) {
  std::array<double, 64> acc{};
  for (size_t t = 0; t < tokens.size(); ++t) {
    const uint64_t h = Hash64(tokens[t], seed);
    const double w = t < weights.size() ? weights[t] : 1.0;
    for (int b = 0; b < 64; ++b) {
      acc[b] += ((h >> b) & 1) ? w : -w;
    }
  }
  uint64_t fp = 0;
  for (int b = 0; b < 64; ++b) {
    if (acc[b] > 0) fp |= (1ULL << b);
  }
  return fp;
}

int SimHash::HammingDistance(uint64_t a, uint64_t b) {
  return std::popcount(a ^ b);
}

double SimHash::Similarity(uint64_t a, uint64_t b) {
  return 1.0 - HammingDistance(a, b) / 64.0;
}

}  // namespace lake
