#include "text/qgram.h"

#include <algorithm>

#include "util/hash.h"

namespace lake {

std::vector<std::string> QGrams(std::string_view s, size_t q) {
  std::vector<std::string> out;
  if (q == 0) return out;
  if (s.size() <= q) {
    if (!s.empty()) out.emplace_back(s);
    return out;
  }
  out.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    out.emplace_back(s.substr(i, q));
  }
  return out;
}

std::vector<uint64_t> QGramHashes(std::string_view s, size_t q,
                                  uint64_t seed) {
  std::vector<uint64_t> out;
  if (q == 0) return out;
  if (s.size() <= q) {
    if (!s.empty()) out.push_back(Hash64(s, seed));
    return out;
  }
  out.reserve(s.size() - q + 1);
  for (size_t i = 0; i + q <= s.size(); ++i) {
    out.push_back(Hash64(s.substr(i, q), seed));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  const std::vector<uint64_t> ha = QGramHashes(a, q);
  const std::vector<uint64_t> hb = QGramHashes(b, q);
  if (ha.empty() && hb.empty()) return 1.0;
  if (ha.empty() || hb.empty()) return 0.0;
  size_t inter = 0, i = 0, j = 0;
  while (i < ha.size() && j < hb.size()) {
    if (ha[i] == hb[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (ha[i] < hb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = ha.size() + hb.size() - inter;
  return static_cast<double>(inter) / uni;
}

}  // namespace lake
