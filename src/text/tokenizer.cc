#include "text/tokenizer.h"

#include <array>
#include <cctype>

namespace lake {

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      cur += static_cast<char>(std::tolower(uc));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

bool IsStopword(std::string_view token) {
  static constexpr std::array<std::string_view, 48> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
      "for",  "from", "has",  "he",   "in",   "is",   "it",   "its",
      "of",   "on",   "or",   "that", "the",  "to",   "was",  "were",
      "will", "with", "this", "but",  "they", "have", "had",  "what",
      "when", "where", "who", "which", "why",  "how",  "all",  "each",
      "if",   "their", "them", "then", "there", "these", "we",  "you"};
  for (std::string_view w : kStopwords) {
    if (token == w) return true;
  }
  return false;
}

std::vector<std::string> TokenizeWordsNoStopwords(std::string_view text) {
  std::vector<std::string> tokens = TokenizeWords(text);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& t : tokens) {
    if (!IsStopword(t)) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace lake
