#ifndef LAKE_TEXT_TOKENIZER_H_
#define LAKE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace lake {

/// Splits text into lower-cased alphanumeric word tokens. Non-alphanumeric
/// bytes separate tokens; pure punctuation is dropped. Used by keyword
/// search, embeddings, and the NL unionability measure.
std::vector<std::string> TokenizeWords(std::string_view text);

/// TokenizeWords with common English stopwords removed (keyword search).
std::vector<std::string> TokenizeWordsNoStopwords(std::string_view text);

/// True for the ~50 most common English stopwords.
bool IsStopword(std::string_view token);

}  // namespace lake

#endif  // LAKE_TEXT_TOKENIZER_H_
