#include "text/normalizer.h"

#include <cctype>

#include "util/string_util.h"

namespace lake {

namespace {
std::string CollapseSpaces(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}
}  // namespace

std::string NormalizeValue(std::string_view raw) {
  return CollapseSpaces(ToLowerAscii(TrimAscii(raw)));
}

std::string NormalizeAttributeName(std::string_view raw) {
  std::string mapped(raw);
  for (char& c : mapped) {
    if (c == '_' || c == '-' || c == '.') c = ' ';
  }
  return NormalizeValue(mapped);
}

}  // namespace lake
