#ifndef LAKE_TEXT_QGRAM_H_
#define LAKE_TEXT_QGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lake {

/// Character q-grams of `s` (with `q >= 1`). Strings shorter than q yield
/// the whole string as a single gram. Used for format-similarity features
/// (Bogatu et al.'s D3L formatting metric) and fuzzy string comparison.
std::vector<std::string> QGrams(std::string_view s, size_t q);

/// Hashed q-gram set (deterministic), avoiding string materialization.
std::vector<uint64_t> QGramHashes(std::string_view s, size_t q,
                                  uint64_t seed = 0);

/// Jaccard similarity of the q-gram hash sets of two strings.
double QGramJaccard(std::string_view a, std::string_view b, size_t q);

}  // namespace lake

#endif  // LAKE_TEXT_QGRAM_H_
