#include "text/vocabulary.h"

#include <algorithm>
#include <numeric>

namespace lake {

uint32_t Vocabulary::GetOrAdd(std::string_view token) {
  auto it = ids_.find(std::string(token));
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(tokens_.size());
  tokens_.emplace_back(token);
  frequencies_.push_back(0);
  ids_.emplace(tokens_.back(), id);
  return id;
}

int64_t Vocabulary::Find(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  if (it == ids_.end()) return -1;
  return it->second;
}

std::vector<uint32_t> Vocabulary::IdsByAscendingFrequency() const {
  std::vector<uint32_t> ids(tokens_.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
    if (frequencies_[a] != frequencies_[b]) {
      return frequencies_[a] < frequencies_[b];
    }
    return a < b;
  });
  return ids;
}

}  // namespace lake
