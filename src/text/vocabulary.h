#ifndef LAKE_TEXT_VOCABULARY_H_
#define LAKE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace lake {

/// Bidirectional string<->dense-id dictionary. Discovery indexes (inverted
/// lists, JOSIE) operate on integer token ids; the vocabulary is built once
/// over the lake and shared by all indexes.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `token`, interning it if new.
  uint32_t GetOrAdd(std::string_view token);

  /// Id lookup without interning; returns -1 when absent.
  int64_t Find(std::string_view token) const;

  /// Inverse lookup. Id must be valid.
  const std::string& token(uint32_t id) const { return tokens_[id]; }

  size_t size() const { return tokens_.size(); }

  /// Number of lake sets each token appears in (document frequency). Filled
  /// by callers via IncrementFrequency; used for token-ordering in JOSIE
  /// (rarest-first prefix filtering).
  uint64_t frequency(uint32_t id) const { return frequencies_[id]; }
  void IncrementFrequency(uint32_t id) { ++frequencies_[id]; }
  /// Restores a persisted frequency (index deserialization).
  void SetFrequency(uint32_t id, uint64_t frequency) {
    frequencies_[id] = frequency;
  }

  /// Token ids sorted by ascending frequency (rare first), breaking ties by
  /// id. This is the canonical JOSIE global token order.
  std::vector<uint32_t> IdsByAscendingFrequency() const;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> tokens_;
  std::vector<uint64_t> frequencies_;
};

}  // namespace lake

#endif  // LAKE_TEXT_VOCABULARY_H_
