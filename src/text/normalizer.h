#ifndef LAKE_TEXT_NORMALIZER_H_
#define LAKE_TEXT_NORMALIZER_H_

#include <string>
#include <string_view>

namespace lake {

/// Canonicalizes a raw cell value for set-semantics comparison: trims,
/// lower-cases (ASCII), and collapses internal whitespace runs to single
/// spaces. All joinability/unionability measures compare normalized values,
/// matching the preprocessing in TUS/JOSIE-style systems.
std::string NormalizeValue(std::string_view raw);

/// Canonicalizes an attribute name: normalization plus mapping punctuation
/// ('_', '-', '.') to spaces, so "customer_id", "Customer-ID" and
/// "customer id" agree.
std::string NormalizeAttributeName(std::string_view raw);

}  // namespace lake

#endif  // LAKE_TEXT_NORMALIZER_H_
