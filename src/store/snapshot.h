#ifndef LAKE_STORE_SNAPSHOT_H_
#define LAKE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace lake::store {

/// Crash-safe persistence for the system's indexes and catalog.
///
/// Snapshot envelope (all integers little-endian):
///
///   header   fixed32 magic "LKS1" (0x31534b4c), fixed32 version (=1),
///            varint section_count
///   section  varint name_len, name bytes,
///            fixed64 payload_size,
///            fixed32 meta_crc    = CRC32C(name || le64(payload_size)),
///            fixed32 payload_crc = CRC32C(payload),
///            payload bytes
///
/// Every section is independently checksummed so a reader can load the
/// sections that verify and quarantine the rest: one flipped bit never
/// poisons a whole snapshot. The framing itself (name + size) carries its
/// own CRC, so a corrupted length prefix is detected instead of walking
/// the reader into garbage; framing damage in section i still leaves
/// sections 0..i-1 loadable.
constexpr uint32_t kSnapshotMagic = 0x31534b4c;  // "LKS1"
constexpr uint32_t kSnapshotVersion = 1;

/// Writes `bytes` to `path` atomically: temp file in the same directory →
/// write → fsync → rename → fsync(dir). Readers never observe a partial
/// file; a crash leaves either the old file or the new one. Failpoints
/// `<failpoint_prefix>.write`, `.fsync`, and `.rename` let tests inject
/// torn writes, ENOSPC, and crashes between the steps.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const std::string& failpoint_prefix = "atomic_write");

/// Accumulates named sections and serializes them into one envelope.
class SnapshotWriter {
 public:
  /// Adds a raw payload section. Names must be unique per snapshot.
  void AddSection(std::string name, std::string payload);

  /// Convenience: builds the payload with a BinaryWriter over a fresh
  /// buffer; `fn`'s error aborts the add.
  Status AddSection(std::string name,
                    const std::function<Status(BinaryWriter*)>& fn);

  /// The complete envelope (header + all sections).
  std::string Serialize() const;

  /// Serializes and writes atomically (see AtomicWriteFile); failpoint
  /// prefix "snapshot".
  Status WriteToFile(const std::string& path) const;

  size_t num_sections() const { return sections_.size(); }

 private:
  struct Section {
    std::string name;
    std::string payload;
  };
  std::vector<Section> sections_;
};

/// Parses an envelope held in memory and serves CRC-verified sections.
/// Parsing validates magic/version and walks section framing; payload
/// CRCs are checked lazily per ReadSection, so one corrupt section does
/// not block access to the healthy ones.
class SnapshotReader {
 public:
  struct SectionInfo {
    std::string name;
    uint64_t offset = 0;  // payload offset within the envelope
    uint64_t size = 0;    // payload size
    uint32_t payload_crc = 0;
  };

  /// Parses an envelope from memory (takes ownership of the bytes).
  /// Fails only when the header (magic/version) is unreadable; damaged
  /// section framing truncates `sections()` and is reported by
  /// `framing_status()` while earlier sections stay readable.
  static Result<SnapshotReader> Parse(std::string bytes);

  /// Reads a whole file, then Parse.
  static Result<SnapshotReader> OpenFile(const std::string& path);

  /// Sections with intact framing, in file order.
  const std::vector<SectionInfo>& sections() const { return sections_; }

  bool has_section(std::string_view name) const;

  /// The payload of `name`, verified against its CRC32C. NotFound for
  /// unknown/unframed sections, IoError("section checksum mismatch") for
  /// corrupt payloads.
  Result<std::string> ReadSection(std::string_view name) const;

  /// OK when every declared section framed correctly; the parse error
  /// otherwise (sections after the damage are unreachable).
  const Status& framing_status() const { return framing_status_; }

 private:
  std::string bytes_;
  std::vector<SectionInfo> sections_;
  Status framing_status_;
};

/// Generation-numbered snapshot directory with a MANIFEST commit point:
///
///   <dir>/snap-<generation>.lks   envelope files
///   <dir>/MANIFEST                text: "LAKE-MANIFEST v1" header, then
///                                 one "<generation> <filename> <size>"
///                                 line per retained generation, oldest
///                                 first; rewritten atomically
///
/// A generation exists once its envelope file is durably renamed AND the
/// MANIFEST lists it — the MANIFEST rename is the commit point. Recovery
/// (OpenLatest) walks the MANIFEST newest-first and returns the first
/// generation whose envelope still parses, so a crash mid-commit (torn
/// envelope write, failed fsync, failed rename) always falls back to the
/// last fully-committed generation. A missing/garbled MANIFEST degrades
/// to a directory scan over snap-*.lks.
class SnapshotStore {
 public:
  struct Options {
    /// Committed generations retained (older envelopes are pruned). Two
    /// generations keep a full fallback while bounding disk use.
    size_t keep_generations = 2;
  };

  explicit SnapshotStore(std::string dir) : SnapshotStore(std::move(dir), Options{}) {}
  SnapshotStore(std::string dir, Options options);

  /// Commits `snapshot` as the next generation. On any failure the store
  /// is unchanged and the previous generation remains current.
  Result<uint64_t> Commit(const SnapshotWriter& snapshot);

  struct Opened {
    uint64_t generation = 0;
    SnapshotReader reader;
  };

  /// The newest committed generation whose envelope parses. NotFound when
  /// no generation is recoverable.
  Result<Opened> OpenLatest() const;

  /// A specific retained generation.
  Result<Opened> OpenGeneration(uint64_t generation) const;

  /// Retained generations per the MANIFEST (directory scan fallback),
  /// ascending. Entries are not validated beyond listing.
  std::vector<uint64_t> Generations() const;

  /// Outcome of the most recent directory scan (Generations/OpenLatest
  /// fall back to a scan when the MANIFEST is missing or garbled). A
  /// failed scan — permissions, deleted directory, I/O error — used to be
  /// silently indistinguishable from an empty store; now it is logged and
  /// surfaced here, and OpenLatest reports IoError instead of NotFound.
  Status last_scan_status() const;

  const std::string& dir() const { return dir_; }

  static std::string SnapshotFileName(uint64_t generation);

 private:
  std::string ManifestPath() const;
  std::string SnapshotPath(uint64_t generation) const;
  /// Parses MANIFEST lines into generations (malformed lines skipped).
  std::vector<uint64_t> ReadManifest() const;
  /// Lists snap-*.lks generations; records iteration failures in
  /// last_scan_status_ instead of pretending the store is empty.
  std::vector<uint64_t> ScanDirectory() const;

  std::string dir_;
  Options options_;
  mutable std::mutex scan_mu_;
  mutable Status last_scan_status_;
};

}  // namespace lake::store

#endif  // LAKE_STORE_SNAPSHOT_H_
