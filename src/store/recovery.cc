#include "store/recovery.h"

#include <algorithm>
#include <chrono>

#include "util/backoff.h"
#include "util/logging.h"

namespace lake::store {

RecoveryManager::RecoveryManager(SnapshotStore* store, Options options)
    : store_(store), options_(std::move(options)) {}

uint64_t RecoveryManager::Now() const {
  if (options_.now_ms) return options_.now_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t RecoveryManager::BackoffMs(uint64_t attempts) const {
  // attempts=1 → initial, doubling per attempt, capped.
  return BackoffDelay(options_.backoff_initial_ms, options_.backoff_max_ms,
                      attempts);
}

void RecoveryManager::Register(std::string section, SectionLoader loader) {
  std::lock_guard<std::mutex> lock(mu_);
  sections_[std::move(section)] = Registered{std::move(loader), false, Status::OK(), 0, 0};
}

Status RecoveryManager::TryLoad(const std::string& section,
                                const SectionLoader& loader) {
  std::vector<uint64_t> generations = store_->Generations();
  if (generations.empty()) {
    return Status::NotFound("no committed snapshot in " + store_->dir());
  }
  Status last = Status::NotFound("section " + section +
                                 " absent from every generation");
  // Newest first; a corrupt newest copy falls back to an older one.
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<SnapshotStore::Opened> opened = store_->OpenGeneration(*it);
    if (!opened.ok()) {
      last = opened.status();
      continue;
    }
    Result<std::string> payload = opened->reader.ReadSection(section);
    if (!payload.ok()) {
      last = payload.status();
      continue;
    }
    Status loaded = loader(*payload);
    if (loaded.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      recovered_generation_ = std::max(recovered_generation_, *it);
      return Status::OK();
    }
    last = loaded;
    LAKE_LOG(Warning) << "section " << section << " from generation " << *it
                      << " rejected: " << loaded.ToString();
  }
  return last;
}

Status RecoveryManager::RecoverAll() {
  // Snapshot the registration list, then run loaders without the lock
  // (loaders may be slow and may not re-enter the manager).
  std::vector<std::pair<std::string, SectionLoader>> todo;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, reg] : sections_) {
      if (!reg.loaded) todo.emplace_back(name, reg.loader);
    }
  }

  Status overall = Status::OK();
  for (const auto& [name, loader] : todo) {
    const Status status = TryLoad(name, loader);
    std::lock_guard<std::mutex> lock(mu_);
    Registered& reg = sections_[name];
    reg.attempts += 1;
    if (status.ok()) {
      reg.loaded = true;
      reg.last_status = Status::OK();
      sections_loaded_ += 1;
    } else {
      reg.last_status = status;
      reg.next_retry_ms = Now() + BackoffMs(reg.attempts);
      LAKE_LOG(Warning) << "quarantining section " << name << ": "
                        << status.ToString();
      if (overall.ok()) overall = status;
    }
  }
  return overall;
}

size_t RecoveryManager::RetryQuarantined() {
  const uint64_t now = Now();
  std::vector<std::pair<std::string, SectionLoader>> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, reg] : sections_) {
      if (!reg.loaded && reg.attempts > 0 && now >= reg.next_retry_ms) {
        due.emplace_back(name, reg.loader);
      }
    }
  }

  size_t recovered = 0;
  for (const auto& [name, loader] : due) {
    const Status status = TryLoad(name, loader);
    std::lock_guard<std::mutex> lock(mu_);
    Registered& reg = sections_[name];
    reg.attempts += 1;
    retry_attempts_ += 1;
    if (status.ok()) {
      reg.loaded = true;
      reg.last_status = Status::OK();
      sections_loaded_ += 1;
      recovered += 1;
      LAKE_LOG(Info) << "section " << name << " recovered after "
                     << reg.attempts << " attempts";
    } else {
      reg.last_status = status;
      reg.next_retry_ms = Now() + BackoffMs(reg.attempts);
    }
  }
  return recovered;
}

bool RecoveryManager::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, reg] : sections_) {
    (void)name;
    if (!reg.loaded) return true;
  }
  return false;
}

std::vector<RecoveryManager::QuarantineEntry> RecoveryManager::quarantined()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QuarantineEntry> out;
  for (const auto& [name, reg] : sections_) {
    if (reg.loaded || reg.attempts == 0) continue;  // untried ≠ quarantined
    out.push_back(QuarantineEntry{name, reg.last_status, reg.attempts,
                                  reg.next_retry_ms});
  }
  return out;
}

uint64_t RecoveryManager::sections_loaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sections_loaded_;
}

uint64_t RecoveryManager::retry_attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_attempts_;
}

uint64_t RecoveryManager::recovered_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_generation_;
}

}  // namespace lake::store
