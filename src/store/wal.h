#ifndef LAKE_STORE_WAL_H_
#define LAKE_STORE_WAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace lake::store {

/// Write-ahead log closing the snapshot store's one loss window: every
/// mutation acknowledged between two checkpoints used to live only in
/// memory, so a crash silently lost acknowledged ingest work. With the
/// WAL, a mutation is appended (and synced, per policy) *before* it is
/// applied and acknowledged; recovery replays the records past the last
/// checkpoint's durable LSN on top of the loaded snapshot.
///
/// On-disk layout: a directory of segment files
///
///   <dir>/wal-<first_lsn>.log
///
/// each a sequence of records framed as (integers little-endian):
///
///   fixed32 payload_len
///   fixed64 lsn
///   fixed32 crc = CRC32C(le32(payload_len) || le64(lsn) || payload)
///   payload bytes
///
/// The CRC covers the framing, so a flipped bit in the length prefix is
/// detected instead of walking the reader into garbage. LSNs are assigned
/// densely (1, 2, 3, ...) and must be strictly increasing within a
/// replay; the first record that fails its CRC, runs past the end of the
/// segment, or breaks monotonicity ends the log — everything before it
/// replays, everything after is a torn tail and is discarded. That makes
/// a crash mid-append recover to exactly the last complete record.
constexpr uint32_t kWalRecordHeaderBytes = 4 + 8 + 4;

/// Appends records to segment files. NOT thread-safe: the owner (e.g.
/// LiveEngine, which already serializes mutations) must serialize calls.
class WalWriter {
 public:
  /// When an appended record becomes durable.
  enum class SyncPolicy {
    /// Never fsync on append (only on rotation/close). Max loss window:
    /// everything since the last checkpoint. Cheapest.
    kNone,
    /// fsync after every append. Zero acknowledged loss; each append pays
    /// a device flush.
    kEveryAppend,
    /// fsync when `group_commit_interval` has elapsed since the last
    /// sync. Max loss window: one interval of acknowledged records.
    kGroupCommit,
  };

  struct Options {
    SyncPolicy sync = SyncPolicy::kEveryAppend;
    /// Size-based rotation threshold; a record never spans segments.
    uint64_t segment_max_bytes = 8ull << 20;
    std::chrono::milliseconds group_commit_interval{5};
  };

  /// Counters for metrics export; monotonic within one writer.
  struct Stats {
    uint64_t appends = 0;
    uint64_t bytes_appended = 0;  // framing + payload
    uint64_t fsyncs = 0;
    uint64_t rotations = 0;
  };

  /// Opens `dir` (created if missing) and positions the writer after the
  /// highest LSN found in existing segments (torn tails tolerated), so a
  /// reopened log continues the sequence. Appends go to a fresh segment —
  /// an existing torn tail is never appended after.
  static Result<std::unique_ptr<WalWriter>> Open(std::string dir,
                                                 Options options);

  /// Opens with an explicit next LSN (recovery already scanned the log).
  static Result<std::unique_ptr<WalWriter>> OpenAt(std::string dir,
                                                   Options options,
                                                   uint64_t next_lsn);

  /// Best-effort final fsync, then closes the segment.
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and applies the sync policy; returns its LSN.
  /// On any failure (injected via failpoints "wal.append.write",
  /// "wal.append.fsync", "wal.rotate", or real I/O errors) the record is
  /// rolled back (the segment is truncated to its pre-append size) so an
  /// unacknowledged record is never replayed; if the rollback itself
  /// fails the writer goes dead and every later Append fails — the log
  /// never interleaves valid records after a torn one.
  Result<uint64_t> Append(std::string_view payload);

  /// Forces everything appended so far to disk (no-op when clean).
  Status Sync();

  /// Deletes segments whose every record is <= `durable_lsn` (covered by
  /// a committed snapshot). The active segment is never deleted.
  Status GarbageCollect(uint64_t durable_lsn);

  /// Records acknowledged but not yet fsynced — the live loss-window
  /// gauge. Records at or below the durable (checkpoint) LSN are excluded:
  /// the snapshot covers them even if the log was never synced.
  uint64_t unsynced_records() const;

  /// Checkpoint floor: records at or below it are durable via the
  /// snapshot store regardless of log syncs.
  void set_durable_lsn(uint64_t lsn);
  uint64_t durable_lsn() const { return durable_lsn_; }

  uint64_t last_lsn() const { return next_lsn_ - 1; }
  const Stats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }
  bool dead() const { return dead_; }

  static std::string SegmentFileName(uint64_t first_lsn);
  /// (first_lsn, path) per segment in `dir`, ascending by first LSN.
  static std::vector<std::pair<uint64_t, std::string>> ListSegments(
      const std::string& dir);

 private:
  WalWriter(std::string dir, Options options, uint64_t next_lsn)
      : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn) {}

  /// Opens a fresh segment named by next_lsn_.
  Status OpenSegment();
  /// Closes the active segment (best-effort fsync first).
  void CloseSegment();
  /// Undoes a partially appended record; a failed rollback kills the
  /// writer (see Append).
  void RollbackTo(uint64_t offset);

  std::string dir_;
  Options options_;
  uint64_t next_lsn_ = 1;

  int fd_ = -1;
  uint64_t segment_bytes_ = 0;
  uint64_t synced_lsn_ = 0;   // highest LSN known flushed to disk
  uint64_t durable_lsn_ = 0;  // highest LSN covered by a checkpoint
  std::chrono::steady_clock::time_point last_sync_time_{};
  bool dead_ = false;
  Stats stats_;
};

/// Replays a WAL directory. Stateless; all methods are static.
class WalReader {
 public:
  struct ReplayStats {
    uint64_t records_replayed = 0;  // delivered to the callback
    uint64_t records_skipped = 0;   // valid but <= after_lsn
    uint64_t segments_read = 0;
    uint64_t last_lsn = 0;          // LSN of the last valid record
    /// Bytes discarded at/after the first invalid record (torn tail).
    uint64_t truncated_bytes = 0;
    /// False when a torn/corrupt tail was cut (truncated_bytes > 0).
    bool clean = true;
  };

  /// Walks every segment in order and invokes `fn(lsn, payload)` for each
  /// valid record with lsn > after_lsn. Stops at the first invalid record
  /// (CRC/length/monotonicity failure): the remainder of the log is
  /// counted into `truncated_bytes`, never delivered, and never an error
  /// — a torn tail is an expected crash artifact, not corruption of
  /// replayed state. A non-OK status from `fn` aborts the replay and is
  /// returned. Reads pass through failpoint "wal.replay.read" (short
  /// read, bit flip, error). A missing directory replays zero records.
  static Result<ReplayStats> Replay(
      const std::string& dir, uint64_t after_lsn,
      const std::function<Status(uint64_t lsn, std::string_view payload)>&
          fn);

  /// Highest valid LSN present in `dir` (0 when empty/missing); used by
  /// WalWriter::Open to continue the sequence.
  static uint64_t MaxLsn(const std::string& dir);
};

}  // namespace lake::store

#endif  // LAKE_STORE_WAL_H_
