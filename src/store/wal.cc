#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lake::store {

namespace {

namespace fs = std::filesystem;

void PutLe32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutLe64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

uint32_t GetLe32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

uint64_t GetLe64(const char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

/// CRC over the whole frame: length and LSN first (as written), then the
/// payload, so a lying length prefix fails the check.
uint32_t RecordCrc(uint32_t payload_len, uint64_t lsn,
                   std::string_view payload) {
  char head[12];
  PutLe32(head, payload_len);
  PutLe64(head + 4, lsn);
  uint32_t crc = Crc32cExtend(0, head, sizeof(head));
  return Crc32cExtend(crc, payload.data(), payload.size());
}

/// One frame, ready for a single FullWrite.
std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string frame(kWalRecordHeaderBytes + payload.size(), '\0');
  PutLe32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutLe64(frame.data() + 4, lsn);
  PutLe32(frame.data() + 12,
          RecordCrc(static_cast<uint32_t>(payload.size()), lsn, payload));
  std::memcpy(frame.data() + kWalRecordHeaderBytes, payload.data(),
              payload.size());
  return frame;
}

/// Sanity cap on one record; the framing CRC catches random corruption,
/// this catches a "valid-looking" huge length before any allocation.
constexpr uint32_t kMaxRecordPayload = 1u << 30;

}  // namespace

// --- WalWriter -----------------------------------------------------------

std::string WalWriter::SegmentFileName(uint64_t first_lsn) {
  return StrFormat("wal-%020llu.log",
                   static_cast<unsigned long long>(first_lsn));
}

std::vector<std::pair<uint64_t, std::string>> WalWriter::ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return segments;
  const fs::directory_iterator end;
  while (it != end) {
    const std::string name = it->path().filename().string();
    unsigned long long first = 0;
    if (std::sscanf(name.c_str(), "wal-%llu.log", &first) == 1 &&
        name == SegmentFileName(first)) {
      segments.emplace_back(first, it->path().string());
    }
    it.increment(ec);
    if (ec) break;
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string dir,
                                                   Options options) {
  const uint64_t max_lsn = WalReader::MaxLsn(dir);
  return OpenAt(std::move(dir), options, max_lsn + 1);
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenAt(std::string dir,
                                                     Options options,
                                                     uint64_t next_lsn) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create WAL dir " + dir + ": " +
                           ec.message());
  }
  auto writer = std::unique_ptr<WalWriter>(
      new WalWriter(std::move(dir), options, std::max<uint64_t>(1, next_lsn)));
  writer->synced_lsn_ = writer->next_lsn_ - 1;  // nothing pending yet
  writer->last_sync_time_ = std::chrono::steady_clock::now();
  // Segments at/past the restart point are dead: replay decided their
  // records are unusable (or they are empty crash leftovers). Removing
  // them now keeps them from shadowing the segment the next Append
  // creates under the same or a lower first-LSN name.
  for (const auto& [first, path] : ListSegments(writer->dir_)) {
    if (first >= writer->next_lsn_) {
      std::error_code remove_ec;
      fs::remove(path, remove_ec);
      if (remove_ec) {
        return Status::IoError("cannot remove dead WAL segment " + path +
                               ": " + remove_ec.message());
      }
    }
  }
  // The segment is opened lazily on first Append: recovery can hold a
  // writer without leaving an empty segment behind.
  return writer;
}

WalWriter::~WalWriter() { CloseSegment(); }

Status WalWriter::OpenSegment() {
  const std::string path = dir_ + "/" + SegmentFileName(next_lsn_);
  // O_TRUNC: an empty segment left by a crash right after rotation (or a
  // recovery that replayed everything) is safely overwritten — its name
  // means "first LSN", and that LSN has not been written anywhere else.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot create WAL segment " + path + ": " +
                           std::strerror(errno));
  }
  segment_bytes_ = 0;
  return Status::OK();
}

void WalWriter::CloseSegment() {
  if (fd_ < 0) return;
  if (synced_lsn_ < last_lsn()) {
    (void)FsyncRetry(fd_);  // best effort; destructor cannot report
  }
  ::close(fd_);
  fd_ = -1;
}

void WalWriter::RollbackTo(uint64_t offset) {
  if (fd_ >= 0 && ::ftruncate(fd_, static_cast<off_t>(offset)) == 0) {
    segment_bytes_ = offset;
    return;
  }
  // The segment may now hold a torn record we cannot remove; appending
  // after it would hide valid records behind the tear at replay. Refuse
  // all further appends instead.
  dead_ = true;
  LAKE_LOG(Error) << "WAL rollback failed; writer is now dead: " << dir_;
}

Result<uint64_t> WalWriter::Append(std::string_view payload) {
  if (dead_) {
    return Status::IoError("WAL writer is dead (earlier torn append)");
  }
  if (payload.size() > kMaxRecordPayload) {
    return Status::InvalidArgument("WAL record too large");
  }

  const std::string frame = EncodeRecord(next_lsn_, payload);

  // Size-based rotation, before the write so a record never spans
  // segments. Rotation syncs and closes the old segment uncondition-
  // ally — its records must not regress when the new segment appears.
  if (fd_ >= 0 && segment_bytes_ > 0 &&
      segment_bytes_ + frame.size() > options_.segment_max_bytes) {
    if (FailpointHit("wal.rotate").has_value()) {
      return Status::IoError("injected fault at wal.rotate");
    }
    LAKE_RETURN_IF_ERROR(Sync());
    ::close(fd_);
    fd_ = -1;
    ++stats_.rotations;
  }
  if (fd_ < 0) {
    LAKE_RETURN_IF_ERROR(OpenSegment());
  }

  const uint64_t pre_append = segment_bytes_;

  // Failpoint: torn write (a prefix persists and the writer dies, like a
  // crash mid-write), ENOSPC, or generic error (both transient — nothing
  // persists and the writer survives, like a real failed write after its
  // rollback).
  if (std::optional<FaultSpec> fault = FailpointHit("wal.append.write")) {
    if (fault->kind == FaultSpec::Kind::kTornWrite) {
      const size_t keep = std::min<size_t>(frame.size(), fault->arg);
      if (keep > 0) {
        (void)FullWrite(fd_, frame.data(), keep);
        segment_bytes_ += keep;
      }
      // The torn bytes stay on disk and the writer refuses all further
      // appends — replay must see exactly what a SIGKILL here leaves.
      dead_ = true;
      return Status::IoError("injected torn write at wal.append.write");
    }
    return Status::IoError(
        fault->kind == FaultSpec::Kind::kEnospc
            ? "no space left on device (injected): WAL append"
            : "injected fault at wal.append.write");
  }

  Status written = FullWrite(fd_, frame.data(), frame.size());
  if (!written.ok()) {
    RollbackTo(pre_append);
    return written;
  }
  segment_bytes_ += frame.size();

  const uint64_t lsn = next_lsn_++;
  ++stats_.appends;
  stats_.bytes_appended += frame.size();

  // Sync policy. A failed sync un-acknowledges the record: it is rolled
  // back so a crash cannot resurrect a batch the caller saw fail.
  Status synced = Status::OK();
  switch (options_.sync) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kEveryAppend:
      synced = Sync();
      break;
    case SyncPolicy::kGroupCommit: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_sync_time_ >= options_.group_commit_interval) {
        synced = Sync();
      }
      break;
    }
  }
  if (!synced.ok()) {
    --next_lsn_;
    --stats_.appends;
    stats_.bytes_appended -= frame.size();
    RollbackTo(pre_append);
    return synced;
  }
  return lsn;
}

Status WalWriter::Sync() {
  if (fd_ < 0 || synced_lsn_ >= last_lsn()) {
    last_sync_time_ = std::chrono::steady_clock::now();
    return Status::OK();
  }
  if (FailpointHit("wal.append.fsync").has_value()) {
    return Status::IoError("injected fault at wal.append.fsync");
  }
  LAKE_RETURN_IF_ERROR(FsyncRetry(fd_));
  ++stats_.fsyncs;
  synced_lsn_ = last_lsn();
  last_sync_time_ = std::chrono::steady_clock::now();
  return Status::OK();
}

uint64_t WalWriter::unsynced_records() const {
  const uint64_t floor = std::max(synced_lsn_, durable_lsn_);
  return last_lsn() > floor ? last_lsn() - floor : 0;
}

void WalWriter::set_durable_lsn(uint64_t lsn) {
  durable_lsn_ = std::max(durable_lsn_, lsn);
}

Status WalWriter::GarbageCollect(uint64_t durable_lsn) {
  set_durable_lsn(durable_lsn);
  std::vector<std::pair<uint64_t, std::string>> segments = ListSegments(dir_);
  // Segment i's records all precede segment i+1's first LSN; the last
  // segment is (potentially) active and always survives.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first <= durable_lsn + 1) {
      std::error_code ec;
      fs::remove(segments[i].second, ec);
      if (ec) {
        LAKE_LOG(Warning) << "WAL GC: cannot remove " << segments[i].second
                          << ": " << ec.message();
      }
    }
  }
  return Status::OK();
}

// --- WalReader -----------------------------------------------------------

Result<WalReader::ReplayStats> WalReader::Replay(
    const std::string& dir, uint64_t after_lsn,
    const std::function<Status(uint64_t, std::string_view)>& fn) {
  ReplayStats stats;
  const std::vector<std::pair<uint64_t, std::string>> segments =
      WalWriter::ListSegments(dir);

  // LSNs are assigned densely, so a valid log is one unbroken +1 chain
  // anchored at the first segment's name (its declared first LSN). A
  // parse failure ends the current *segment* (its tail is torn), but the
  // next segment may legitimately continue the chain: a writer that
  // reopened after a crash starts a fresh segment past the torn tail.
  // A chain break (gap or regression) ends the whole log — records past
  // a gap cannot be applied without the missing mutations. Anchoring at
  // the declared first LSN (not "whatever parses first") means a fully
  // destroyed first segment kills the rest of the log too, instead of
  // letting a later segment restart the chain at an arbitrary LSN.
  uint64_t prev_lsn = segments.empty() ? 0 : segments[0].first - 1;
  bool dead = false;
  for (size_t s = 0; s < segments.size(); ++s) {
    if (dead) {
      std::error_code ec;
      const uint64_t size = fs::file_size(segments[s].second, ec);
      stats.truncated_bytes += ec ? 0 : size;
      continue;
    }

    std::ifstream file(segments[s].second, std::ios::binary);
    if (!file) {
      return Status::IoError("cannot open WAL segment " + segments[s].second);
    }
    // Fault-injecting wrapper: the "wal.replay.read" failpoint turns this
    // read into a short read, bit flip, or hard error.
    FaultInjectingIStream in(&file, "wal.replay.read");
    std::string bytes;
    {
      std::ostringstream buf;
      buf << in.rdbuf();
      bytes = std::move(buf).str();
    }
    if (file.bad()) {
      return Status::IoError("read failed: " + segments[s].second);
    }
    ++stats.segments_read;

    size_t off = 0;
    while (off < bytes.size()) {
      if (bytes.size() - off < kWalRecordHeaderBytes) {
        break;  // torn header: end of this segment's trusted bytes
      }
      const uint32_t len = GetLe32(bytes.data() + off);
      const uint64_t lsn = GetLe64(bytes.data() + off + 4);
      const uint32_t crc = GetLe32(bytes.data() + off + 12);
      if (len > kMaxRecordPayload ||
          bytes.size() - off - kWalRecordHeaderBytes < len) {
        break;  // torn payload (or lying length; checked before hashing)
      }
      const std::string_view payload(bytes.data() + off +
                                         kWalRecordHeaderBytes,
                                     len);
      if (RecordCrc(len, lsn, payload) != crc) {
        break;  // corrupt record: end of this segment's trusted bytes
      }
      if (lsn != prev_lsn + 1) {
        dead = true;  // chain break: the rest of the log is unusable
        break;
      }
      prev_lsn = lsn;
      stats.last_lsn = lsn;
      if (lsn > after_lsn) {
        LAKE_RETURN_IF_ERROR(fn(lsn, payload));
        ++stats.records_replayed;
      } else {
        ++stats.records_skipped;
      }
      off += kWalRecordHeaderBytes + len;
    }
    stats.truncated_bytes += bytes.size() - off;
  }
  stats.clean = stats.truncated_bytes == 0;
  return stats;
}

uint64_t WalReader::MaxLsn(const std::string& dir) {
  Result<ReplayStats> stats =
      Replay(dir, UINT64_MAX, [](uint64_t, std::string_view) {
        return Status::OK();
      });
  return stats.ok() ? stats->last_lsn : 0;
}

}  // namespace lake::store
