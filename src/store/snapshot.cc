#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lake::store {

namespace {

namespace fs = std::filesystem;

/// CRC over a section's framing: name bytes followed by the payload size
/// as little-endian 64-bit, so a flipped bit in either is caught before
/// the reader trusts the length.
uint32_t FramingCrc(std::string_view name, uint64_t payload_size) {
  uint32_t crc = Crc32cExtend(0, name.data(), name.size());
  char le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<char>((payload_size >> (8 * i)) & 0xff);
  }
  return Crc32cExtend(crc, le, sizeof(le));
}

Status CloseAndError(int fd, const std::string& tmp, std::string msg) {
  if (fd >= 0) ::close(fd);
  std::error_code ec;
  fs::remove(tmp, ec);  // best effort: don't leave torn temp files behind
  return Status::IoError(std::move(msg));
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const std::string& failpoint_prefix) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }

  // Failpoint: torn write (only a prefix persists) or ENOSPC mid-write.
  size_t to_write = bytes.size();
  if (auto fault = FailpointHit(failpoint_prefix + ".write")) {
    switch (fault->kind) {
      case FaultSpec::Kind::kTornWrite:
        to_write = std::min<size_t>(to_write, fault->arg);
        break;
      case FaultSpec::Kind::kEnospc:
      case FaultSpec::Kind::kError:
        to_write = std::min<size_t>(to_write, fault->arg);
        break;
      default:
        break;
    }
    if (!FullWrite(fd, bytes.data(), to_write).ok()) {
      return CloseAndError(fd, tmp, "write failed: " + tmp);
    }
    ::close(fd);
    // The torn temp file is deliberately left on disk: it simulates a
    // crash mid-checkpoint, and recovery must ignore it.
    return Status::IoError(
        fault->kind == FaultSpec::Kind::kEnospc
            ? "no space left on device (injected): " + tmp
            : "torn write (injected): " + tmp);
  }

  // EINTR-safe full write: POSIX lets ::write persist a prefix; treating
  // that as success would commit a torn file under a valid rename.
  Status written = FullWrite(fd, bytes.data(), bytes.size());
  if (!written.ok()) {
    return CloseAndError(fd, tmp, written.message() + ": " + tmp);
  }

  if (FailpointHit(failpoint_prefix + ".fsync").has_value() ||
      !FsyncRetry(fd).ok()) {
    return CloseAndError(fd, tmp, "fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return Status::IoError("close failed: " + tmp);
  }

  if (FailpointHit(failpoint_prefix + ".rename").has_value() ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }

  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = fs::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

// --- SnapshotWriter ------------------------------------------------------

void SnapshotWriter::AddSection(std::string name, std::string payload) {
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

Status SnapshotWriter::AddSection(
    std::string name, const std::function<Status(BinaryWriter*)>& fn) {
  std::ostringstream buf;
  BinaryWriter w(&buf);
  LAKE_RETURN_IF_ERROR(fn(&w));
  if (!w.ok()) return Status::IoError("section payload write failed: " + name);
  AddSection(std::move(name), std::move(buf).str());
  return Status::OK();
}

std::string SnapshotWriter::Serialize() const {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteFixed32(kSnapshotMagic);
  w.WriteFixed32(kSnapshotVersion);
  w.WriteVarint(sections_.size());
  for (const Section& s : sections_) {
    w.WriteString(s.name);
    w.WriteFixed64(s.payload.size());
    w.WriteFixed32(FramingCrc(s.name, s.payload.size()));
    w.WriteFixed32(Crc32c(s.payload));
    out.write(s.payload.data(),
              static_cast<std::streamsize>(s.payload.size()));
  }
  return std::move(out).str();
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  return AtomicWriteFile(path, Serialize(), "snapshot");
}

// --- SnapshotReader ------------------------------------------------------

Result<SnapshotReader> SnapshotReader::Parse(std::string bytes) {
  SnapshotReader reader;
  reader.bytes_ = std::move(bytes);

  std::istringstream in(reader.bytes_);
  BinaryReader r(&in);
  LAKE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadFixed32());
  if (magic != kSnapshotMagic) {
    return Status::IoError("not a snapshot envelope (bad magic)");
  }
  LAKE_ASSIGN_OR_RETURN(uint32_t version, r.ReadFixed32());
  if (version != kSnapshotVersion) {
    return Status::IoError("unsupported snapshot version " +
                           std::to_string(version));
  }
  LAKE_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  if (count > (1ULL << 20)) {
    return Status::IoError("implausible section count");
  }

  // Walk section framing. The first framing failure stops the walk:
  // the byte stream beyond a lying length prefix cannot be trusted, but
  // everything before it stays loadable.
  for (uint64_t i = 0; i < count; ++i) {
    auto fail = [&](std::string msg) {
      reader.framing_status_ = Status::IoError(std::move(msg));
    };
    auto name = r.ReadString();
    if (!name.ok()) {
      fail("section " + std::to_string(i) + ": " + name.status().message());
      break;
    }
    auto size = r.ReadFixed64();
    if (!size.ok()) {
      fail("section " + std::to_string(i) + ": " + size.status().message());
      break;
    }
    auto meta_crc = r.ReadFixed32();
    auto payload_crc = r.ReadFixed32();
    if (!meta_crc.ok() || !payload_crc.ok()) {
      fail("section " + std::to_string(i) + ": truncated section header");
      break;
    }
    if (*meta_crc != FramingCrc(*name, *size)) {
      fail("section " + std::to_string(i) + " (" + *name +
           "): framing checksum mismatch");
      break;
    }
    const uint64_t offset = static_cast<uint64_t>(in.tellg());
    if (offset + *size > reader.bytes_.size()) {
      fail("section " + *name + ": payload extends past end of file");
      break;
    }
    reader.sections_.push_back(
        SectionInfo{std::move(*name), offset, *size, *payload_crc});
    in.seekg(static_cast<std::streamoff>(offset + *size));
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::OpenFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return Parse(std::move(buf).str());
}

bool SnapshotReader::has_section(std::string_view name) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [&](const SectionInfo& s) { return s.name == name; });
}

Result<std::string> SnapshotReader::ReadSection(std::string_view name) const {
  for (const SectionInfo& s : sections_) {
    if (s.name != name) continue;
    std::string payload = bytes_.substr(s.offset, s.size);
    if (Crc32c(payload) != s.payload_crc) {
      return Status::IoError("section checksum mismatch: " +
                             std::string(name));
    }
    return payload;
  }
  return Status::NotFound("no section named " + std::string(name));
}

// --- SnapshotStore -------------------------------------------------------

SnapshotStore::SnapshotStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
}

std::string SnapshotStore::SnapshotFileName(uint64_t generation) {
  return StrFormat("snap-%06llu.lks",
                   static_cast<unsigned long long>(generation));
}

std::string SnapshotStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

std::string SnapshotStore::SnapshotPath(uint64_t generation) const {
  return dir_ + "/" + SnapshotFileName(generation);
}

std::vector<uint64_t> SnapshotStore::ReadManifest() const {
  std::ifstream in(ManifestPath());
  if (!in) return {};
  std::string line;
  if (!std::getline(in, line) || line != "LAKE-MANIFEST v1") return {};
  std::vector<uint64_t> generations;
  while (std::getline(in, line)) {
    unsigned long long gen = 0;
    char name[256];
    unsigned long long size = 0;
    if (std::sscanf(line.c_str(), "%llu %255s %llu", &gen, name, &size) != 3) {
      continue;  // tolerate garbled lines; the envelope CRCs are the truth
    }
    generations.push_back(gen);
  }
  std::sort(generations.begin(), generations.end());
  generations.erase(std::unique(generations.begin(), generations.end()),
                    generations.end());
  return generations;
}

std::vector<uint64_t> SnapshotStore::ScanDirectory() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  Status scan_status = Status::OK();
  if (ec) {
    // A store we cannot list is not the same as an empty one: recovery
    // deciding "no snapshot exists" off a permissions error would start a
    // fresh lineage and shadow every committed generation.
    scan_status = Status::IoError("cannot scan snapshot dir " + dir_ + ": " +
                                  ec.message());
    LAKE_LOG(Warning) << scan_status.ToString();
  } else {
    const fs::directory_iterator end;
    while (it != end) {
      const std::string name = it->path().filename().string();
      unsigned long long gen = 0;
      if (std::sscanf(name.c_str(), "snap-%llu.lks", &gen) == 1 &&
          name == SnapshotFileName(gen)) {
        generations.push_back(gen);
      }
      it.increment(ec);
      if (ec) {
        scan_status = Status::IoError("snapshot dir scan failed mid-walk in " +
                                      dir_ + ": " + ec.message());
        LAKE_LOG(Warning) << scan_status.ToString();
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(scan_mu_);
    last_scan_status_ = scan_status;
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

Status SnapshotStore::last_scan_status() const {
  std::lock_guard<std::mutex> lock(scan_mu_);
  return last_scan_status_;
}

std::vector<uint64_t> SnapshotStore::Generations() const {
  std::vector<uint64_t> generations = ReadManifest();
  if (generations.empty()) generations = ScanDirectory();
  return generations;
}

Result<uint64_t> SnapshotStore::Commit(const SnapshotWriter& snapshot) {
  // Next generation follows everything ever seen on disk, so a failed or
  // pruned generation number is never reused.
  uint64_t next = 1;
  for (uint64_t gen : ReadManifest()) next = std::max(next, gen + 1);
  for (uint64_t gen : ScanDirectory()) next = std::max(next, gen + 1);

  const std::string bytes = snapshot.Serialize();
  LAKE_RETURN_IF_ERROR(
      AtomicWriteFile(SnapshotPath(next), bytes, "store.snap"));

  // Commit point: rewrite the MANIFEST listing the retained generations.
  std::vector<uint64_t> retained = ReadManifest();
  retained.push_back(next);
  std::sort(retained.begin(), retained.end());
  retained.erase(std::unique(retained.begin(), retained.end()),
                 retained.end());
  std::vector<uint64_t> pruned;
  while (retained.size() > std::max<size_t>(1, options_.keep_generations)) {
    pruned.push_back(retained.front());
    retained.erase(retained.begin());
  }

  std::string manifest = "LAKE-MANIFEST v1\n";
  for (uint64_t gen : retained) {
    std::error_code ec;
    const uint64_t size = fs::file_size(SnapshotPath(gen), ec);
    manifest += StrFormat("%llu %s %llu\n",
                          static_cast<unsigned long long>(gen),
                          SnapshotFileName(gen).c_str(),
                          static_cast<unsigned long long>(ec ? 0 : size));
  }
  Status committed =
      AtomicWriteFile(ManifestPath(), manifest, "store.manifest");
  if (!committed.ok()) {
    // The new envelope is on disk but never became current; remove it so
    // the store's state matches the (old) MANIFEST.
    std::error_code ec;
    fs::remove(SnapshotPath(next), ec);
    return committed;
  }

  for (uint64_t gen : pruned) {
    std::error_code ec;
    fs::remove(SnapshotPath(gen), ec);  // best effort
  }
  return next;
}

Result<SnapshotStore::Opened> SnapshotStore::OpenLatest() const {
  std::vector<uint64_t> generations = Generations();
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    Result<SnapshotReader> reader = SnapshotReader::OpenFile(SnapshotPath(*it));
    if (reader.ok()) {
      return Opened{*it, std::move(reader).value()};
    }
    LAKE_LOG(Warning) << "snapshot generation " << *it
                      << " unreadable, falling back: "
                      << reader.status().ToString();
  }
  if (generations.empty()) {
    // "Nothing found" via an unscannable directory is an I/O failure, not
    // an empty store — callers must not cold-start over it.
    Status scan = last_scan_status();
    if (!scan.ok()) return scan;
  }
  return Status::NotFound("no committed snapshot in " + dir_);
}

Result<SnapshotStore::Opened> SnapshotStore::OpenGeneration(
    uint64_t generation) const {
  LAKE_ASSIGN_OR_RETURN(SnapshotReader reader,
                        SnapshotReader::OpenFile(SnapshotPath(generation)));
  return Opened{generation, std::move(reader)};
}

}  // namespace lake::store
