#ifndef LAKE_STORE_RECOVERY_H_
#define LAKE_STORE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "store/snapshot.h"
#include "util/status.h"

namespace lake::store {

/// Degraded-mode recovery driver: loads registered snapshot sections from
/// a SnapshotStore, quarantining (instead of failing startup on) sections
/// that are corrupt in every retained generation, and retrying quarantined
/// sections with capped exponential backoff.
///
/// Per-section generation fallback: a section is tried in the newest
/// generation first; if its payload fails CRC or its loader rejects it,
/// older retained generations are consulted before quarantining, so one
/// flipped bit in the newest checkpoint costs at most staleness, not a
/// modality.
///
/// Thread-safety: the manager's own state is mutex-protected, so serving
/// threads may poll `degraded()` / `quarantined()` concurrently. The
/// registered loaders, however, typically mutate an engine; RecoverAll and
/// RetryQuarantined must not run concurrently with queries against that
/// engine (run them at startup or between query waves).
class RecoveryManager {
 public:
  struct Options {
    uint64_t backoff_initial_ms = 100;
    uint64_t backoff_max_ms = 60'000;
    /// Injectable clock (milliseconds, monotonic) so backoff is testable
    /// deterministically; defaults to steady_clock.
    std::function<uint64_t()> now_ms;
  };

  /// One quarantined section: why it failed, how often it was tried, and
  /// when the next retry is allowed.
  struct QuarantineEntry {
    std::string section;
    Status status;
    uint64_t attempts = 0;
    uint64_t next_retry_ms = 0;
  };

  /// Loads one section's verified payload into its owner; a non-OK return
  /// quarantines the section (the loader must leave the owner unusable
  /// for that modality, never half-loaded).
  using SectionLoader = std::function<Status(const std::string& payload)>;

  explicit RecoveryManager(SnapshotStore* store)
      : RecoveryManager(store, Options{}) {}
  RecoveryManager(SnapshotStore* store, Options options);

  /// Registers a section to recover. Call before RecoverAll.
  void Register(std::string section, SectionLoader loader);

  /// Attempts every registered section (newest generation first, falling
  /// back per-section to older retained generations). Failures quarantine
  /// the section; the system starts degraded instead of not at all.
  /// Returns OK iff every section loaded.
  Status RecoverAll();

  /// Retries quarantined sections whose backoff has expired; returns how
  /// many recovered. Cheap no-op when nothing is due.
  size_t RetryQuarantined();

  bool degraded() const;
  std::vector<QuarantineEntry> quarantined() const;

  /// Counters for metrics/health export.
  uint64_t sections_loaded() const;
  uint64_t retry_attempts() const;
  /// Generation the most recent successful section load came from
  /// (0 before any load).
  uint64_t recovered_generation() const;

 private:
  struct Registered {
    SectionLoader loader;
    bool loaded = false;
    // Quarantine state (meaningful while !loaded after an attempt).
    Status last_status;
    uint64_t attempts = 0;
    uint64_t next_retry_ms = 0;
  };

  /// Tries to load one section across retained generations. Caller holds
  /// no lock; engine loaders run here.
  Status TryLoad(const std::string& section, const SectionLoader& loader);

  uint64_t Now() const;
  uint64_t BackoffMs(uint64_t attempts) const;

  SnapshotStore* store_;
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Registered> sections_;
  uint64_t sections_loaded_ = 0;
  uint64_t retry_attempts_ = 0;
  uint64_t recovered_generation_ = 0;
};

}  // namespace lake::store

#endif  // LAKE_STORE_RECOVERY_H_
