#include "lakegen/generator.h"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace lake {

namespace {

constexpr std::array<const char*, 16> kTopics = {
    "city",    "person",  "company", "country", "product", "team",
    "movie",   "school",  "river",   "airline", "disease", "species",
    "artist",  "museum",  "league",  "vehicle"};

constexpr std::array<const char*, 4> kNameSuffixes = {"", " name", " code",
                                                      " label"};

const char kConsonants[] = "bcdfgklmnprstvz";
const char kVowels[] = "aeiou";

}  // namespace

std::string LakeGenerator::MakeValue(Rng& rng,
                                     const std::vector<std::string>& syllables) {
  const size_t parts = 2 + rng.NextBounded(2);  // 2-3 syllables
  std::string out;
  for (size_t i = 0; i < parts; ++i) {
    out += syllables[rng.NextBounded(syllables.size())];
  }
  return out;
}

LakeGenerator::DomainData LakeGenerator::MakeDomain(Rng& rng, int index) {
  DomainData d;
  d.topic = kTopics[index % kTopics.size()];
  if (index >= static_cast<int>(kTopics.size())) {
    d.topic += std::to_string(index / kTopics.size());
  }
  // Domain-specific syllable alphabet: values from one domain share
  // morphology, values from different domains rarely share n-grams, which
  // is what gives the subword embeddings their domain structure. The
  // syllables must be *distinct* — duplicates shrink the combinatorial
  // value space — and the alphabet grows if the requested vocabulary
  // exceeds what the alphabet can spell (2-3 syllable combinations).
  std::unordered_set<std::string> syllable_set;
  std::vector<std::string> syllables;
  auto add_syllable = [&] {
    for (;;) {
      std::string syl;
      syl += kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)];
      syl += kVowels[rng.NextBounded(sizeof(kVowels) - 1)];
      if (rng.NextBool(0.5)) {
        syl += kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)];
      }
      if (syllable_set.insert(syl).second) {
        syllables.push_back(std::move(syl));
        return;
      }
    }
  };
  for (size_t s = 0; s < options_.syllables_per_domain; ++s) add_syllable();
  auto capacity = [&] {
    const size_t n = syllables.size();
    return n * n + n * n * n;  // 2- and 3-syllable combinations
  };
  while (capacity() < options_.values_per_domain * 2) add_syllable();

  std::unordered_set<std::string> seen;
  while (d.values.size() < options_.values_per_domain) {
    std::string v = MakeValue(rng, syllables);
    if (seen.insert(v).second) d.values.push_back(std::move(v));
  }
  return d;
}

LakeGenerator::TemplateData LakeGenerator::MakeTemplate(
    Rng& rng, const std::vector<DomainData>& domains) {
  TemplateData t;
  const size_t span = options_.max_string_columns >= options_.min_string_columns
                          ? options_.max_string_columns -
                                options_.min_string_columns + 1
                          : 1;
  const size_t string_cols =
      options_.min_string_columns + rng.NextBounded(span);
  // Sample distinct domains.
  std::vector<int> pool(domains.size());
  for (size_t i = 0; i < pool.size(); ++i) pool[i] = static_cast<int>(i);
  rng.Shuffle(pool);
  for (size_t c = 0; c < string_cols && c < pool.size(); ++c) {
    t.string_domains.push_back(pool[c]);
    std::string name = domains[pool[c]].topic;
    name += kNameSuffixes[rng.NextBounded(kNameSuffixes.size())];
    t.attr_names.push_back(std::move(name));
  }
  t.numeric_columns = options_.numeric_columns;
  for (size_t n = 0; n < t.numeric_columns; ++n) {
    t.attr_names.push_back("metric " + std::to_string(n + 1));
  }
  // Planted functional relationships subject -> each attribute domain.
  const size_t subject_size = domains[t.string_domains[0]].values.size();
  for (size_t c = 1; c < t.string_domains.size(); ++c) {
    const size_t object_size = domains[t.string_domains[c]].values.size();
    std::vector<size_t> rel(subject_size);
    for (size_t s = 0; s < subject_size; ++s) {
      rel[s] = rng.NextBounded(object_size);
    }
    t.relation_maps.push_back(std::move(rel));
  }
  return t;
}

Table LakeGenerator::InstantiateTable(Rng& rng,
                                      const std::vector<DomainData>& domains,
                                      const TemplateData& tmpl,
                                      const std::string& name,
                                      bool break_relationships) {
  const size_t rows =
      options_.min_rows +
      rng.NextBounded(options_.max_rows - options_.min_rows + 1);
  const DomainData& subject = domains[tmpl.string_domains[0]];
  const ZipfSampler zipf(subject.values.size(), options_.zipf_s);

  // A distractor reuses the template's domains but with freshly shuffled
  // relationships, so columns still look unionable while the table's
  // semantics (who relates to what) are wrong.
  std::vector<std::vector<size_t>> rels = tmpl.relation_maps;
  if (break_relationships) {
    for (size_t c = 1; c < tmpl.string_domains.size(); ++c) {
      const size_t object_size = domains[tmpl.string_domains[c]].values.size();
      for (size_t& v : rels[c - 1]) v = rng.NextBounded(object_size);
    }
  }

  Table table(name);
  std::vector<Column> cols;
  for (size_t c = 0; c < tmpl.string_domains.size(); ++c) {
    cols.emplace_back(tmpl.attr_names[c], DataType::kString);
  }
  for (size_t n = 0; n < tmpl.numeric_columns; ++n) {
    cols.emplace_back(tmpl.attr_names[tmpl.string_domains.size() + n],
                      DataType::kDouble);
  }

  for (size_t r = 0; r < rows; ++r) {
    const size_t subj_idx = zipf.Sample(rng);
    cols[0].Append(Value(subject.values[subj_idx]));
    for (size_t c = 1; c < tmpl.string_domains.size(); ++c) {
      const DomainData& obj = domains[tmpl.string_domains[c]];
      size_t obj_idx = rels[c - 1][subj_idx];
      if (rng.NextBool(options_.relationship_noise)) {
        obj_idx = rng.NextBounded(obj.values.size());
      }
      cols[c].Append(Value(obj.values[obj_idx]));
    }
    for (size_t n = 0; n < tmpl.numeric_columns; ++n) {
      // Numeric value tied to the subject so same-template numeric columns
      // correlate through the join key.
      const double base =
          static_cast<double>((subj_idx * 37 + n * 11) % 1000);
      cols[tmpl.string_domains.size() + n].Append(
          Value(base + rng.NextGaussian() * 5.0));
    }
  }
  for (Column& c : cols) LAKE_CHECK(table.AddColumn(std::move(c)).ok());
  return table;
}

GeneratedLake LakeGenerator::Generate() {
  Rng rng(options_.seed);
  GeneratedLake out;

  // Domains.
  std::vector<DomainData> domains;
  domains.reserve(options_.num_domains);
  for (size_t d = 0; d < options_.num_domains; ++d) {
    domains.push_back(MakeDomain(rng, static_cast<int>(d)));
  }

  // Templates.
  std::vector<TemplateData> templates;
  templates.reserve(options_.num_templates);
  for (size_t t = 0; t < options_.num_templates; ++t) {
    templates.push_back(MakeTemplate(rng, domains));
    out.topic_of.push_back(domains[templates.back().string_domains[0]].topic);
  }

  // Homograph injection: the same string planted in two *different* domains
  // that templates actually realize, at popular Zipf ranks so the value
  // shows up in generated tables (DomainNet's detection target).
  std::vector<size_t> used_domains;
  {
    std::unordered_set<size_t> seen;
    for (const TemplateData& t : templates) {
      for (int d : t.string_domains) {
        if (seen.insert(d).second) used_domains.push_back(d);
      }
    }
  }
  for (size_t h = 0;
       h < options_.homograph_count && used_domains.size() >= 2; ++h) {
    const size_t da = used_domains[rng.NextBounded(used_domains.size())];
    size_t db = used_domains[rng.NextBounded(used_domains.size())];
    while (db == da) db = used_domains[rng.NextBounded(used_domains.size())];
    // Popular ranks get sampled into nearly every table of the template.
    const size_t popular = std::max<size_t>(1, options_.values_per_domain / 10);
    const std::string& v = domains[da].values[rng.NextBounded(popular)];
    domains[db].values[rng.NextBounded(popular)] = v;
    out.homographs.push_back(v);
  }

  // Curated KB: types + entities + a kb_coverage sample of the planted
  // relations.
  for (const DomainData& d : domains) {
    const std::string type = "type:" + d.topic;
    out.kb.AddType(type, "type:thing");
    for (const std::string& v : d.values) out.kb.AddEntity(v, type);
  }
  for (size_t ti = 0; ti < templates.size(); ++ti) {
    const TemplateData& tmpl = templates[ti];
    const DomainData& subj = domains[tmpl.string_domains[0]];
    for (size_t c = 1; c < tmpl.string_domains.size(); ++c) {
      const DomainData& obj = domains[tmpl.string_domains[c]];
      const std::string pred = "rel:" + subj.topic + "|" + obj.topic;
      for (size_t s = 0; s < subj.values.size(); ++s) {
        if (!rng.NextBool(options_.kb_coverage)) continue;
        out.kb.AddRelation(subj.values[s], pred,
                           obj.values[tmpl.relation_maps[c - 1][s]]);
      }
    }
  }

  // Tables.
  out.unionable_groups.resize(templates.size());
  for (size_t ti = 0; ti < templates.size(); ++ti) {
    for (size_t n = 0; n < options_.tables_per_template; ++n) {
      const std::string name = StrFormat("%s_tbl_%zu_%zu",
                                         out.topic_of[ti].c_str(), ti, n);
      Table table =
          InstantiateTable(rng, domains, templates[ti], name,
                           /*break_relationships=*/false);
      table.metadata().description =
          "synthetic table about " + out.topic_of[ti];
      table.metadata().tags = {out.topic_of[ti], "synthetic"};
      auto id = out.catalog.AddTable(std::move(table));
      LAKE_CHECK(id.ok());
      out.unionable_groups[ti].push_back(id.value());
      out.template_of[id.value()] = static_cast<int>(ti);
    }
  }
  for (size_t d = 0; d < options_.distractor_tables; ++d) {
    const size_t ti = d % templates.size();
    const std::string name =
        StrFormat("%s_distractor_%zu", out.topic_of[ti].c_str(), d);
    Table table = InstantiateTable(rng, domains, templates[ti], name,
                                   /*break_relationships=*/true);
    table.metadata().description =
        "synthetic table about " + out.topic_of[ti];
    table.metadata().tags = {out.topic_of[ti], "synthetic"};
    auto id = out.catalog.AddTable(std::move(table));
    LAKE_CHECK(id.ok());
    out.distractors.push_back(id.value());
    out.template_of[id.value()] = static_cast<int>(ti);
  }
  return out;
}

}  // namespace lake
