#ifndef LAKE_LAKEGEN_BENCHMARK_LAKES_H_
#define LAKE_LAKEGEN_BENCHMARK_LAKES_H_

#include <string>
#include <vector>

#include "lakegen/generator.h"

namespace lake {

/// Set-search workload with the cardinality skew that motivates LSH
/// Ensemble (E2/E3): lake sets whose sizes follow a power law over several
/// orders of magnitude, plus query sets planted to be contained in some of
/// them.
struct SkewedSetsWorkload {
  std::vector<std::vector<std::string>> sets;  // lake value sets
  std::vector<std::vector<std::string>> queries;
  /// Exact containment of query q in set s, [q][s] (ground truth).
  std::vector<std::vector<double>> containment;
};

struct SkewedSetsOptions {
  uint64_t seed = 17;
  size_t num_sets = 400;
  size_t min_set_size = 8;
  size_t max_set_size = 4096;
  double size_skew = 1.2;  // power-law exponent of set sizes
  size_t num_queries = 20;
  size_t query_size = 64;
  size_t universe_size = 20000;
};

SkewedSetsWorkload MakeSkewedSetsWorkload(const SkewedSetsOptions& options);

/// Correlated-join workload (E9): one query (key, value) column pair and
/// lake column pairs with planted Pearson correlations to the query's
/// values over overlapping key sets.
struct CorrelatedWorkload {
  std::vector<std::string> query_keys;
  std::vector<double> query_values;
  /// Per lake pair: keys, values, the planted correlation, and the planted
  /// key containment of the query in the pair.
  struct LakePair {
    std::string table_name;
    std::vector<std::string> keys;
    std::vector<double> values;
    double planted_correlation;
    double planted_containment;
  };
  std::vector<LakePair> pairs;
};

struct CorrelatedOptions {
  uint64_t seed = 23;
  size_t query_rows = 400;
  size_t num_pairs = 24;
  double min_containment = 0.3;
};

CorrelatedWorkload MakeCorrelatedWorkload(const CorrelatedOptions& options);

/// Builds a catalog from the correlated workload (each pair becomes a
/// two-column table) so CorrelatedJoinSearch can index it.
DataLakeCatalog CatalogFromCorrelatedWorkload(const CorrelatedWorkload& w);

/// Standard mid-size union-search benchmark lake shared by E6/E7 and the
/// integration tests: several templates, distractors, homographs.
GeneratedLake MakeUnionBenchmarkLake(uint64_t seed = 7,
                                     size_t tables_per_template = 8,
                                     size_t distractors = 12);

}  // namespace lake

#endif  // LAKE_LAKEGEN_BENCHMARK_LAKES_H_
