#ifndef LAKE_LAKEGEN_GENERATOR_H_
#define LAKE_LAKEGEN_GENERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "annotate/knowledge_base.h"
#include "table/catalog.h"
#include "util/random.h"

namespace lake {

/// Options of the synthetic data lake generator — the library's substitute
/// for real open-data corpora (DESIGN.md substitution 2). The generator
/// plants every structure the discovery algorithms exploit, with ground
/// truth exposed for evaluation:
///  - semantic *domains* with distinct surface morphology (so hash/subword
///    embeddings cluster by domain, mirroring how fastText clusters real
///    vocabulary);
///  - table *templates* (schemas over domains); tables instantiated from
///    the same template are unionable ground truth;
///  - *functional relationships* between a template's subject domain and
///    its attribute domains, realized consistently across tables — the
///    signal SANTOS grounds; optional *distractor* tables reuse the same
///    domains but break the relationships (column-only union search
///    cannot tell them apart; relationship-aware search can);
///  - Zipfian value popularity and widely skewed column cardinalities
///    (the regime motivating LSH Ensemble);
///  - optional *homographs*: identical strings planted in two unrelated
///    domains (DomainNet's target);
///  - a curated KnowledgeBase over the domains (types, entities, and the
///    planted relations), standing in for YAGO.
struct GeneratorOptions {
  uint64_t seed = 7;
  size_t num_domains = 12;
  size_t values_per_domain = 300;
  size_t syllables_per_domain = 8;
  size_t num_templates = 6;
  size_t min_string_columns = 2;   // per template, incl. subject
  size_t max_string_columns = 4;
  size_t numeric_columns = 1;      // per template
  size_t tables_per_template = 8;
  size_t min_rows = 40;
  size_t max_rows = 160;
  double zipf_s = 1.0;             // value-popularity skew within a domain
  /// Probability a relationship cell is replaced by domain noise.
  double relationship_noise = 0.05;
  size_t distractor_tables = 0;    // relationship-violating tables
  size_t homograph_count = 0;
  /// Fraction of planted relation instances covered by the curated KB.
  double kb_coverage = 0.6;
};

/// A generated lake plus every piece of ground truth the benchmarks score
/// against.
struct GeneratedLake {
  DataLakeCatalog catalog;
  KnowledgeBase kb;

  /// Per template: the ids of its (genuinely unionable) tables.
  std::vector<std::vector<TableId>> unionable_groups;
  /// Table -> template id; distractors map to the template they imitate.
  std::unordered_map<TableId, int> template_of;
  /// Relationship-violating tables (not members of unionable_groups).
  std::vector<TableId> distractors;
  /// Strings planted into two unrelated domains.
  std::vector<std::string> homographs;
  /// Topic word of each template's subject domain (keyword-search truth:
  /// tables of template i are the relevant set for query topic_of[i]).
  std::vector<std::string> topic_of;
};

/// Deterministic synthetic lake generator. One instance generates one
/// lake; all randomness derives from options.seed.
class LakeGenerator {
 public:
  explicit LakeGenerator(GeneratorOptions options) : options_(options) {}

  /// Generates the lake, its curated KB, and all ground truth.
  GeneratedLake Generate();

 private:
  struct DomainData {
    std::string topic;                 // e.g. "city"
    std::vector<std::string> values;   // vocabulary
  };

  struct TemplateData {
    std::vector<int> string_domains;   // [0] is the subject domain
    std::vector<std::string> attr_names;
    size_t numeric_columns;
    // relation_maps[i][subject value index] = value index in domain
    // string_domains[i+1] (the planted functional relationship).
    std::vector<std::vector<size_t>> relation_maps;
  };

  std::string MakeValue(Rng& rng, const std::vector<std::string>& syllables);
  DomainData MakeDomain(Rng& rng, int index);
  TemplateData MakeTemplate(Rng& rng, const std::vector<DomainData>& domains);
  Table InstantiateTable(Rng& rng, const std::vector<DomainData>& domains,
                         const TemplateData& tmpl, const std::string& name,
                         bool break_relationships);

  GeneratorOptions options_;
};

}  // namespace lake

#endif  // LAKE_LAKEGEN_GENERATOR_H_
