#include "lakegen/benchmark_lakes.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sketch/set_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lake {

SkewedSetsWorkload MakeSkewedSetsWorkload(const SkewedSetsOptions& options) {
  Rng rng(options.seed);
  SkewedSetsWorkload w;

  auto value_name = [](size_t i) { return "v" + std::to_string(i); };

  // Power-law set sizes: size = min * (max/min)^(u^skew) spreads sizes
  // over the full range with a heavy small-size mode, mimicking the
  // attribute-cardinality skew of open-data lakes.
  w.sets.reserve(options.num_sets);
  for (size_t s = 0; s < options.num_sets; ++s) {
    const double u = std::pow(rng.NextUnit(), options.size_skew);
    const size_t size = static_cast<size_t>(
        options.min_set_size *
        std::pow(static_cast<double>(options.max_set_size) /
                     options.min_set_size,
                 u));
    std::unordered_set<size_t> members;
    std::vector<std::string> set;
    while (set.size() < size) {
      const size_t v = rng.NextBounded(options.universe_size);
      if (members.insert(v).second) set.push_back(value_name(v));
    }
    w.sets.push_back(std::move(set));
  }

  // Queries: each drawn mostly from one random lake set (planting high
  // containment there) plus random universe values. Hosts must be at
  // least as large as the query so the planted containment is realized.
  std::vector<size_t> host_pool;
  for (size_t s = 0; s < w.sets.size(); ++s) {
    if (w.sets[s].size() >= options.query_size) host_pool.push_back(s);
  }
  if (host_pool.empty()) host_pool.push_back(0);
  for (size_t q = 0; q < options.num_queries; ++q) {
    const std::vector<std::string>& host =
        w.sets[host_pool[rng.NextBounded(host_pool.size())]];
    std::unordered_set<std::string> members;
    std::vector<std::string> query;
    const size_t from_host =
        std::min(host.size(), options.query_size * 3 / 4);
    while (query.size() < from_host) {
      const std::string& v = host[rng.NextBounded(host.size())];
      if (members.insert(v).second) query.push_back(v);
    }
    while (query.size() < options.query_size) {
      const std::string v = value_name(rng.NextBounded(options.universe_size));
      if (members.insert(v).second) query.push_back(v);
    }
    w.queries.push_back(std::move(query));
  }

  // Exact containment ground truth.
  std::vector<HashedSet> lake_sets;
  lake_sets.reserve(w.sets.size());
  for (const auto& s : w.sets) lake_sets.push_back(HashedSet::FromValues(s));
  w.containment.resize(w.queries.size());
  for (size_t q = 0; q < w.queries.size(); ++q) {
    const HashedSet qs = HashedSet::FromValues(w.queries[q]);
    w.containment[q].resize(w.sets.size());
    for (size_t s = 0; s < w.sets.size(); ++s) {
      w.containment[q][s] = qs.ContainmentIn(lake_sets[s]);
    }
  }
  return w;
}

CorrelatedWorkload MakeCorrelatedWorkload(const CorrelatedOptions& options) {
  Rng rng(options.seed);
  CorrelatedWorkload w;

  auto key_name = [](size_t i) { return "key" + std::to_string(i); };

  // Query: keys 0..rows-1 with standard-normal values.
  w.query_keys.reserve(options.query_rows);
  w.query_values.reserve(options.query_rows);
  for (size_t r = 0; r < options.query_rows; ++r) {
    w.query_keys.push_back(key_name(r));
    w.query_values.push_back(rng.NextGaussian());
  }

  // Lake pairs: share a planted fraction of the query's keys; values are
  // rho * query_value + sqrt(1-rho^2) * noise, the textbook construction
  // for a target Pearson correlation.
  for (size_t p = 0; p < options.num_pairs; ++p) {
    CorrelatedWorkload::LakePair pair;
    pair.table_name = StrFormat("corr_pair_%zu", p);
    // Spread planted correlations over [-0.95, 0.95].
    pair.planted_correlation =
        -0.95 + 1.9 * static_cast<double>(p) /
                    std::max<size_t>(1, options.num_pairs - 1);
    pair.planted_containment =
        options.min_containment +
        (1.0 - options.min_containment) * rng.NextUnit();
    const size_t shared = static_cast<size_t>(
        pair.planted_containment * static_cast<double>(options.query_rows));
    const double rho = pair.planted_correlation;
    for (size_t r = 0; r < shared; ++r) {
      pair.keys.push_back(w.query_keys[r]);
      pair.values.push_back(rho * w.query_values[r] +
                            std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                                rng.NextGaussian());
    }
    // Non-shared keys pad the pair (outside the query's key space).
    const size_t extra = options.query_rows / 2;
    for (size_t r = 0; r < extra; ++r) {
      pair.keys.push_back(StrFormat("pair%zu_only_%zu", p, r));
      pair.values.push_back(rng.NextGaussian());
    }
    w.pairs.push_back(std::move(pair));
  }
  return w;
}

DataLakeCatalog CatalogFromCorrelatedWorkload(const CorrelatedWorkload& w) {
  DataLakeCatalog catalog;
  for (const auto& pair : w.pairs) {
    Table table(pair.table_name);
    Column keys("join key", DataType::kString);
    Column values("metric", DataType::kDouble);
    for (size_t r = 0; r < pair.keys.size(); ++r) {
      keys.Append(Value(pair.keys[r]));
      values.Append(Value(pair.values[r]));
    }
    LAKE_CHECK(table.AddColumn(std::move(keys)).ok());
    LAKE_CHECK(table.AddColumn(std::move(values)).ok());
    LAKE_CHECK(catalog.AddTable(std::move(table)).ok());
  }
  return catalog;
}

GeneratedLake MakeUnionBenchmarkLake(uint64_t seed,
                                     size_t tables_per_template,
                                     size_t distractors) {
  GeneratorOptions options;
  options.seed = seed;
  options.num_domains = 14;
  options.values_per_domain = 250;
  options.num_templates = 6;
  options.tables_per_template = tables_per_template;
  options.distractor_tables = distractors;
  options.homograph_count = 6;
  LakeGenerator generator(options);
  return generator.Generate();
}

}  // namespace lake
