#ifndef LAKE_INGEST_PIPELINE_H_
#define LAKE_INGEST_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ingest/live_engine.h"
#include "table/table.h"
#include "util/status.h"

namespace lake::ingest {

/// Asynchronous front door of the ingest subsystem: accepts raw CSVs (file
/// or text) or pre-built Tables, and runs parse → type inference → stats →
/// index append on ONE worker thread so serving threads never pay for
/// ingestion. Consecutive submissions are coalesced into batches (up to
/// `batch_max_tables`, waiting at most `batch_max_delay_ms` for stragglers)
/// so a burst of N tables costs one generation publish, not N.
///
/// The queue is bounded and fail-fast: Submit* returns Overloaded
/// immediately when the queue is full, mirroring the serving layer's
/// admission policy — backpressure belongs at the edge, not in an
/// unbounded buffer.
class IngestPipeline {
 public:
  struct Options {
    /// Maximum queued submissions before Submit* fails fast.
    size_t queue_capacity = 1024;
    /// Batch coalescing: publish after this many tables...
    size_t batch_max_tables = 8;
    /// ...or after the oldest queued submission has waited this long.
    uint64_t batch_max_delay_ms = 20;
    /// Checkpoint through the engine's store every N applied batches
    /// (0 = never; failures are logged, not fatal).
    size_t checkpoint_every_batches = 0;
  };

  /// `engine` must outlive the pipeline.
  IngestPipeline(LiveEngine* engine, Options options);
  explicit IngestPipeline(LiveEngine* engine)
      : IngestPipeline(engine, Options{}) {}
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  // --- Submission (any thread, non-blocking) ----------------------------
  //
  // The future resolves once the table is published (discoverable) or
  // rejected. Overloaded futures resolve immediately.

  /// Parse `path` on the worker; table name = basename without extension.
  std::future<Result<TableId>> SubmitCsvFile(std::string path);

  /// Parse CSV text on the worker.
  std::future<Result<TableId>> SubmitCsvString(std::string csv,
                                               std::string table_name);

  /// Ingest an already-parsed table (stats/annotation still run on the
  /// worker via the engine's catalog add).
  std::future<Result<TableId>> SubmitTable(Table table);

  /// Remove a table by name (base tables are tombstoned until compaction).
  std::future<Status> SubmitRemove(std::string name);

  /// Blocks until everything submitted before the call is published.
  void Flush();

  // --- Introspection ----------------------------------------------------

  size_t queue_depth() const;
  uint64_t batches_applied() const;
  const Options& options() const { return options_; }

 private:
  struct Item {
    enum class Kind { kCsvFile, kCsvString, kTable, kRemove };
    Kind kind;
    std::string payload;  // path | csv text | (unused) | remove name
    std::string name;     // table name for kCsvString
    Table table;          // kTable only
    std::promise<Result<TableId>> add_promise;   // add kinds
    std::promise<Status> remove_promise;         // kRemove
  };

  /// Enqueues or fails fast; wakes the worker.
  bool TryEnqueue(Item item);
  void WorkerLoop();
  /// Drains up to batch_max_tables items (FIFO) into `out`; returns false
  /// when shutting down with an empty queue. Called on the worker.
  bool NextBatch(std::vector<Item>* out);
  void ApplyBatch(std::vector<Item> items);

  LiveEngine* engine_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // worker waits for work/shutdown
  std::condition_variable idle_cv_;   // Flush waits for drain
  std::deque<Item> queue_;
  size_t in_flight_ = 0;  // items popped but not yet published
  bool stop_ = false;
  uint64_t batches_applied_ = 0;

  serve::Gauge* queue_depth_gauge_ = nullptr;
  serve::LatencyHistogram* parse_latency_ = nullptr;

  std::thread worker_;
};

}  // namespace lake::ingest

#endif  // LAKE_INGEST_PIPELINE_H_
