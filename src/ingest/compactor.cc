#include "ingest/compactor.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace lake::ingest {

Compactor::Compactor(LiveEngine* engine, Options options)
    : engine_(engine),
      options_(options),
      backoff_(Backoff::Options{options.backoff_initial_ms,
                                options.backoff_max_ms, /*jitter=*/0}) {
  thread_ = std::thread([this] { Loop(); });
}

Compactor::~Compactor() { Stop(); }

void Compactor::TriggerNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trigger_ = true;
  }
  cv_.notify_one();
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
}

uint64_t Compactor::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

uint64_t Compactor::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

LiveEngine::CompactionStats Compactor::last_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_stats_;
}

uint64_t Compactor::backoff_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backoff_ms_;
}

void Compactor::Loop() {
  while (true) {
    bool forced = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stop_ || trigger_; });
      if (stop_) return;
      forced = trigger_;
      trigger_ = false;
      // Graceful degradation after a failed build (ENOSPC, injected
      // fault): the old generation keeps serving and retries are spaced
      // by capped exponential backoff instead of hammering a full disk
      // every poll tick. An explicit TriggerNow() bypasses the gate so
      // tests and operators can force a retry.
      if (!forced && backoff_ms_ != 0 &&
          std::chrono::steady_clock::now() < next_attempt_) {
        continue;
      }
    }
    if (!forced && !engine_->CompactionNeeded(options_.max_delta_tables,
                                              options_.max_tombstone_ratio)) {
      continue;
    }
    Result<LiveEngine::CompactionStats> stats = engine_->Compact();
    std::lock_guard<std::mutex> lock(mu_);
    if (stats.ok()) {
      ++runs_;
      last_stats_ = stats.value();
      backoff_.Reset();
      backoff_ms_ = 0;
    } else {
      ++failures_;
      backoff_ms_ = backoff_.NextDelayMs();
      next_attempt_ = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(backoff_ms_);
      LAKE_LOG(Warning) << "compaction failed (retry in " << backoff_ms_
                        << " ms): " << stats.status().ToString();
    }
  }
}

}  // namespace lake::ingest
