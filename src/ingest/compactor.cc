#include "ingest/compactor.h"

#include <chrono>

#include "util/logging.h"

namespace lake::ingest {

Compactor::Compactor(LiveEngine* engine, Options options)
    : engine_(engine), options_(options) {
  thread_ = std::thread([this] { Loop(); });
}

Compactor::~Compactor() { Stop(); }

void Compactor::TriggerNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trigger_ = true;
  }
  cv_.notify_one();
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
}

uint64_t Compactor::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

uint64_t Compactor::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

LiveEngine::CompactionStats Compactor::last_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_stats_;
}

void Compactor::Loop() {
  while (true) {
    bool forced = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return stop_ || trigger_; });
      if (stop_) return;
      forced = trigger_;
      trigger_ = false;
    }
    if (!forced && !engine_->CompactionNeeded(options_.max_delta_tables,
                                              options_.max_tombstone_ratio)) {
      continue;
    }
    Result<LiveEngine::CompactionStats> stats = engine_->Compact();
    std::lock_guard<std::mutex> lock(mu_);
    if (stats.ok()) {
      ++runs_;
      last_stats_ = stats.value();
    } else {
      ++failures_;
      LAKE_LOG(Warning) << "compaction failed: " << stats.status().ToString();
    }
  }
}

}  // namespace lake::ingest
