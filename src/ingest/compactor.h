#ifndef LAKE_INGEST_COMPACTOR_H_
#define LAKE_INGEST_COMPACTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "ingest/live_engine.h"
#include "util/backoff.h"

namespace lake::ingest {

/// Background compaction policy thread: watches the engine's delta size
/// and tombstone ratio and folds the delta into a fresh base when either
/// threshold trips (LiveEngine::Compact — the heavy build runs off the
/// serving path; queries and ingestion continue against the old
/// generation until the atomic swap). One compactor per engine.
class Compactor {
 public:
  struct Options {
    /// Compact when the delta holds at least this many tables.
    size_t max_delta_tables = 64;
    /// ...or when tombstones exceed this fraction of the base.
    double max_tombstone_ratio = 0.2;
    /// Threshold poll cadence.
    uint64_t poll_interval_ms = 50;
    /// First retry delay after a failed compaction (e.g. ENOSPC during the
    /// build). Doubles per consecutive failure up to `backoff_max_ms`, and
    /// resets on the first success. The current generation keeps serving
    /// the whole time — a failed build never publishes anything.
    uint64_t backoff_initial_ms = 100;
    /// Retry delay ceiling.
    uint64_t backoff_max_ms = 5000;
  };

  /// `engine` must outlive the compactor.
  Compactor(LiveEngine* engine, Options options);
  explicit Compactor(LiveEngine* engine) : Compactor(engine, Options{}) {}
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Requests an immediate compaction regardless of thresholds and wakes
  /// the thread; returns without waiting for it to finish.
  void TriggerNow();

  /// Stops the thread (idempotent; also run by the destructor). An
  /// in-progress compaction finishes first.
  void Stop();

  uint64_t runs() const;
  uint64_t failures() const;
  LiveEngine::CompactionStats last_stats() const;
  /// Current retry delay; 0 when the last attempt succeeded (no backoff).
  uint64_t backoff_ms() const;

 private:
  void Loop();

  LiveEngine* engine_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool trigger_ = false;
  uint64_t runs_ = 0;
  uint64_t failures_ = 0;
  LiveEngine::CompactionStats last_stats_;
  Backoff backoff_;          // shared capped-exponential retry schedule
  uint64_t backoff_ms_ = 0;  // 0 = healthy, else current retry delay
  std::chrono::steady_clock::time_point next_attempt_{};  // gate while backing off

  std::thread thread_;
};

}  // namespace lake::ingest

#endif  // LAKE_INGEST_COMPACTOR_H_
