#ifndef LAKE_INGEST_GENERATION_H_
#define LAKE_INGEST_GENERATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "search/discovery_engine.h"
#include "table/catalog.h"

namespace lake::ingest {

/// The mutable half of one generation's LSM split: the tables ingested
/// since the last compaction (the "memtable"), a small DiscoveryEngine
/// built over just those tables, and the tombstones masking removed base
/// tables. Immutable once published; readers share it by shared_ptr.
///
/// Delta table ids are local to `catalog` (dense 0..n-1); their
/// lake-visible ids are `base_table_count + local`, so base and delta
/// results occupy disjoint id ranges within one generation. Ids are
/// generation-scoped — a compaction re-densifies them — so table *names*
/// are the stable identity across generations.
struct DeltaPart {
  /// Owns copies of the delta tables (the catalog owns its storage).
  std::unique_ptr<DataLakeCatalog> catalog;
  /// Memtable engine over `catalog`; null when the delta is empty. Built
  /// with the cheap delta options (see LiveEngine::Options), so its
  /// construction is O(delta), never O(lake).
  std::unique_ptr<DiscoveryEngine> engine;
  /// Base-local ids of removed-but-not-yet-compacted base tables. Query
  /// merging filters these out of base results.
  std::unordered_set<TableId> tombstones;
  /// Names behind `tombstones`, kept for compaction and persistence.
  std::vector<std::string> tombstone_names;

  size_t num_tables() const {
    return catalog == nullptr ? 0 : catalog->num_tables();
  }
};

/// One immutable published state of a live lake: an immutable base
/// (catalog + fully-indexed DiscoveryEngine) plus the current DeltaPart.
/// Readers Acquire() a generation from LiveEngine and query it without
/// locks; the shared_ptrs keep every referenced structure alive until the
/// last in-flight query drains, RCU-style.
class Generation {
 public:
  /// Compaction generation (bumped by each base swap).
  uint64_t number() const { return number_; }
  /// Publish sequence (bumped by every delta publish AND every swap);
  /// cache keys mix this in so stale results are never served.
  uint64_t version() const { return version_; }

  const DataLakeCatalog& base_catalog() const { return *base_catalog_; }
  const DiscoveryEngine& base() const { return *base_engine_; }
  const DeltaPart& delta() const { return *delta_; }
  bool has_delta() const { return delta_->engine != nullptr; }

  size_t base_table_count() const { return base_catalog_->num_tables(); }
  /// Tables visible to queries: base minus tombstones plus delta.
  size_t visible_table_count() const {
    return base_table_count() - delta_->tombstones.size() +
           delta_->num_tables();
  }

  /// True when a lake-visible id names a delta table in this generation.
  bool IsDeltaId(TableId id) const { return id >= base_table_count(); }

  /// Name of a lake-visible table id (base or delta range); NotFound for
  /// out-of-range or tombstoned ids.
  Result<std::string> TableName(TableId id) const;

  /// The table behind a lake-visible id (pointer valid while this
  /// generation is held); NotFound for out-of-range or tombstoned ids.
  Result<const Table*> FindTableById(TableId id) const;

  /// Lake-visible id of a name (delta shadows tombstoned base names).
  Result<TableId> FindTable(const std::string& name) const;

 private:
  friend class LiveEngine;
  Generation(uint64_t number, uint64_t version,
             std::shared_ptr<const DataLakeCatalog> base_catalog,
             std::shared_ptr<const DiscoveryEngine> base_engine,
             std::shared_ptr<const DeltaPart> delta)
      : number_(number),
        version_(version),
        base_catalog_(std::move(base_catalog)),
        base_engine_(std::move(base_engine)),
        delta_(std::move(delta)) {}

  uint64_t number_ = 0;
  uint64_t version_ = 0;
  std::shared_ptr<const DataLakeCatalog> base_catalog_;
  std::shared_ptr<const DiscoveryEngine> base_engine_;
  std::shared_ptr<const DeltaPart> delta_;
};

/// How much of a merged answer came from each side (delta-hit counters
/// for metrics and the ingest demo).
struct MergeStats {
  size_t base_results = 0;
  size_t delta_results = 0;
  size_t tombstone_filtered = 0;
};

/// Base+delta merged top-k queries over one acquired generation. Base
/// results are filtered against the tombstone set, delta results are
/// remapped into the lake-visible id range, and the two ranked lists are
/// merged by score via the shared N-way merge in cluster/topk_merge.h
/// (ties prefer base — its corpus statistics are the better-calibrated
/// side). Methods the delta engine does not build (the heavyweight long
/// tail: PEXESO, SANTOS, D3L, ...) serve base-only until the next
/// compaction folds the delta in.
///
/// `corpus` (optional) scores both sides against external BM25 corpus
/// statistics — the cluster's distributed-IDF protocol; null keeps each
/// side's own stats (the single-node behavior).
std::vector<TableResult> MergedKeyword(
    const Generation& gen, const std::string& query, size_t k,
    MergeStats* stats = nullptr,
    const Bm25Index::CorpusStats* corpus = nullptr);

/// This generation's BM25 corpus contribution for `query`: base plus
/// delta stats summed. Tombstoned base tables still count (they leave the
/// corpus only at compaction), so exact cross-shard score equality holds
/// on compacted generations.
Bm25Index::CorpusStats GatherKeywordStats(const Generation& gen,
                                          const std::string& query);

/// `error_budget` and `approx_stats` apply to JoinMethod::kApprox only and
/// are forwarded to both sides' approximate tiers (see
/// DiscoveryEngine::Joinable).
Result<std::vector<ColumnResult>> MergedJoinable(
    const Generation& gen, const std::vector<std::string>& query_values,
    JoinMethod method, size_t k, const CancelToken* cancel = nullptr,
    MergeStats* stats = nullptr, double error_budget = -1,
    approx::ApproxQueryStats* approx_stats = nullptr);

Result<std::vector<TableResult>> MergedUnionable(
    const Generation& gen, const Table& query, UnionMethod method, size_t k,
    int64_t exclude = -1, const CancelToken* cancel = nullptr,
    MergeStats* stats = nullptr);

}  // namespace lake::ingest

#endif  // LAKE_INGEST_GENERATION_H_
