#include "ingest/live_engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_set>

#include "cluster/topk_merge.h"
#include "table/csv.h"
#include "table/table_meta.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace lake::ingest {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Merges two ranked lists (already filtered/remapped) into one top-k via
/// the shared N-way merge; list order (base first) makes score ties prefer
/// the base side.
using cluster::MergeRankedTopK;

constexpr uint64_t kStateFormatVersion = 1;
/// Format of the "ingest/wal" snapshot section (varint format, varint
/// durable LSN) and of each WAL record payload.
constexpr uint64_t kWalFormatVersion = 1;

/// One visible table's contribution to the rollup: 64 bits derived from
/// (name, digest) so the rollup can XOR contributions in and out in any
/// order. The name is folded in twice (with different chaining) so
/// swapping the digests of two tables cannot cancel out.
uint64_t MixTableDigest(const std::string& name, uint32_t digest) {
  const unsigned char le[4] = {
      static_cast<unsigned char>(digest & 0xff),
      static_cast<unsigned char>((digest >> 8) & 0xff),
      static_cast<unsigned char>((digest >> 16) & 0xff),
      static_cast<unsigned char>((digest >> 24) & 0xff)};
  const uint32_t lo = Crc32cExtend(Crc32c(name.data(), name.size()), le, 4);
  const uint32_t hi = Crc32cExtend(lo, name.data(), name.size());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

}  // namespace

uint32_t TableContentDigest(const Table& table) {
  const std::string& name = table.name();
  uint32_t crc = Crc32c(name.data(), name.size());
  const std::string csv = WriteCsvString(table);
  crc = Crc32cExtend(crc, csv.data(), csv.size());
  if (HasMetadata(table.metadata())) {
    const std::string meta = SerializeTableMetadata(table.metadata());
    crc = Crc32cExtend(crc, meta.data(), meta.size());
  }
  return crc;
}

// ---------------------------------------------------------------------------
// Generation: id resolution
// ---------------------------------------------------------------------------

Result<std::string> Generation::TableName(TableId id) const {
  LAKE_ASSIGN_OR_RETURN(const Table* table, FindTableById(id));
  return table->name();
}

Result<const Table*> Generation::FindTableById(TableId id) const {
  const size_t base_count = base_table_count();
  if (id < base_count) {
    if (delta_->tombstones.count(id)) {
      return Status::NotFound("table id " + std::to_string(id) +
                              " is tombstoned");
    }
    return &base_catalog_->table(id);
  }
  const size_t local = id - base_count;
  if (delta_->catalog == nullptr || local >= delta_->catalog->num_tables()) {
    return Status::NotFound("table id " + std::to_string(id) +
                            " out of range");
  }
  return &delta_->catalog->table(static_cast<TableId>(local));
}

Result<TableId> Generation::FindTable(const std::string& name) const {
  if (delta_->catalog != nullptr) {
    Result<TableId> local = delta_->catalog->FindTable(name);
    if (local.ok()) {
      return static_cast<TableId>(base_table_count() + local.value());
    }
  }
  LAKE_ASSIGN_OR_RETURN(TableId id, base_catalog_->FindTable(name));
  if (delta_->tombstones.count(id)) {
    return Status::NotFound("table " + name + " (removed)");
  }
  return id;
}

// ---------------------------------------------------------------------------
// Merged queries
// ---------------------------------------------------------------------------

namespace {

/// Drops tombstoned base hits and counts survivors into `stats`.
std::vector<TableResult> FilterBaseTables(std::vector<TableResult> results,
                                          const DeltaPart& delta,
                                          MergeStats* stats) {
  std::vector<TableResult> out;
  out.reserve(results.size());
  for (TableResult& r : results) {
    if (delta.tombstones.count(r.table_id)) {
      if (stats != nullptr) ++stats->tombstone_filtered;
      continue;
    }
    out.push_back(std::move(r));
  }
  if (stats != nullptr) stats->base_results += out.size();
  return out;
}

std::vector<ColumnResult> FilterBaseColumns(std::vector<ColumnResult> results,
                                            const DeltaPart& delta,
                                            MergeStats* stats) {
  std::vector<ColumnResult> out;
  out.reserve(results.size());
  for (ColumnResult& r : results) {
    if (delta.tombstones.count(r.column.table_id)) {
      if (stats != nullptr) ++stats->tombstone_filtered;
      continue;
    }
    out.push_back(std::move(r));
  }
  if (stats != nullptr) stats->base_results += out.size();
  return out;
}

/// Over-fetch factor for the base side: tombstoned hits are filtered
/// post-hoc, so ask for enough extras to still fill k.
size_t BaseK(const Generation& gen, size_t k) {
  return k + gen.delta().tombstones.size();
}

}  // namespace

std::vector<TableResult> MergedKeyword(const Generation& gen,
                                       const std::string& query, size_t k,
                                       MergeStats* stats,
                                       const Bm25Index::CorpusStats* corpus) {
  std::vector<TableResult> base = FilterBaseTables(
      gen.base().Keyword(query, BaseK(gen, k), corpus), gen.delta(), stats);
  std::vector<TableResult> delta;
  if (gen.has_delta()) {
    delta = gen.delta().engine->Keyword(query, k, corpus);
    const TableId offset = static_cast<TableId>(gen.base_table_count());
    for (TableResult& r : delta) r.table_id += offset;
    if (stats != nullptr) stats->delta_results += delta.size();
  }
  return MergeRankedTopK(std::move(base), std::move(delta), k);
}

Bm25Index::CorpusStats GatherKeywordStats(const Generation& gen,
                                          const std::string& query) {
  Bm25Index::CorpusStats stats = gen.base().KeywordStats(query);
  if (gen.has_delta()) stats.Merge(gen.delta().engine->KeywordStats(query));
  return stats;
}

Result<std::vector<ColumnResult>> MergedJoinable(
    const Generation& gen, const std::vector<std::string>& query_values,
    JoinMethod method, size_t k, const CancelToken* cancel, MergeStats* stats,
    double error_budget, approx::ApproxQueryStats* approx_stats) {
  LAKE_ASSIGN_OR_RETURN(
      std::vector<ColumnResult> raw,
      gen.base().Joinable(query_values, method, BaseK(gen, k), cancel,
                          error_budget, approx_stats));
  std::vector<ColumnResult> base =
      FilterBaseColumns(std::move(raw), gen.delta(), stats);

  std::vector<ColumnResult> delta;
  if (gen.has_delta()) {
    Result<std::vector<ColumnResult>> delta_result =
        gen.delta().engine->Joinable(query_values, method, k, cancel,
                                     error_budget, approx_stats);
    if (delta_result.ok()) {
      delta = std::move(delta_result).value();
      const TableId offset = static_cast<TableId>(gen.base_table_count());
      for (ColumnResult& r : delta) r.column.table_id += offset;
      if (stats != nullptr) stats->delta_results += delta.size();
    } else if (delta_result.status().code() !=
               StatusCode::kFailedPrecondition) {
      // FailedPrecondition means the memtable does not build this method
      // (serve base-only until compaction); anything else is a real error.
      return delta_result.status();
    }
  }
  return MergeRankedTopK(std::move(base), std::move(delta), k);
}

Result<std::vector<TableResult>> MergedUnionable(
    const Generation& gen, const Table& query, UnionMethod method, size_t k,
    int64_t exclude, const CancelToken* cancel, MergeStats* stats) {
  const int64_t base_count = static_cast<int64_t>(gen.base_table_count());
  const int64_t base_exclude = exclude < base_count ? exclude : -1;
  const int64_t delta_exclude =
      exclude >= base_count ? exclude - base_count : -1;

  LAKE_ASSIGN_OR_RETURN(std::vector<TableResult> raw,
                        gen.base().Unionable(query, method, BaseK(gen, k),
                                             base_exclude, cancel));
  std::vector<TableResult> base =
      FilterBaseTables(std::move(raw), gen.delta(), stats);

  std::vector<TableResult> delta;
  if (gen.has_delta()) {
    Result<std::vector<TableResult>> delta_result =
        gen.delta().engine->Unionable(query, method, k, delta_exclude,
                                      cancel);
    if (delta_result.ok()) {
      delta = std::move(delta_result).value();
      const TableId offset = static_cast<TableId>(base_count);
      for (TableResult& r : delta) r.table_id += offset;
      if (stats != nullptr) stats->delta_results += delta.size();
    } else if (delta_result.status().code() !=
               StatusCode::kFailedPrecondition) {
      return delta_result.status();
    }
  }
  return MergeRankedTopK(std::move(base), std::move(delta), k);
}

// ---------------------------------------------------------------------------
// LiveEngine
// ---------------------------------------------------------------------------

namespace {

/// WAL record payload — exactly one *accepted* mutation batch:
///
///   varint format (= kWalFormatVersion)
///   varint num_removes, then per remove: string name
///   varint num_adds,    then per add:    string name, string csv,
///                                        varint has_meta, (string meta)?
///
/// Only accepted ops are logged: replaying the record through ApplyBatch
/// re-derives the same decisions, and rejected ops carried no state.
std::string EncodeWalBatch(const std::vector<std::string>& removes,
                           const std::vector<const Table*>& adds) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteVarint(kWalFormatVersion);
  w.WriteVarint(removes.size());
  for (const std::string& name : removes) w.WriteString(name);
  w.WriteVarint(adds.size());
  for (const Table* table : adds) {
    w.WriteString(table->name());
    w.WriteString(WriteCsvString(*table));
    const bool has_meta = HasMetadata(table->metadata());
    w.WriteVarint(has_meta ? 1 : 0);
    if (has_meta) w.WriteString(SerializeTableMetadata(table->metadata()));
  }
  return std::move(out).str();
}

Result<LiveEngine::Batch> DecodeWalBatch(std::string_view payload) {
  std::istringstream in{std::string(payload)};
  BinaryReader r(&in);
  LiveEngine::Batch batch;
  LAKE_ASSIGN_OR_RETURN(uint64_t format, r.ReadVarint());
  if (format != kWalFormatVersion) {
    return Status::IoError("unknown WAL batch format " +
                           std::to_string(format));
  }
  LAKE_ASSIGN_OR_RETURN(uint64_t num_removes, r.ReadVarint());
  for (uint64_t i = 0; i < num_removes; ++i) {
    LAKE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    batch.removes.push_back(std::move(name));
  }
  LAKE_ASSIGN_OR_RETURN(uint64_t num_adds, r.ReadVarint());
  for (uint64_t i = 0; i < num_adds; ++i) {
    LAKE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    LAKE_ASSIGN_OR_RETURN(std::string csv, r.ReadString());
    LAKE_ASSIGN_OR_RETURN(Table table, ReadCsvString(csv, name));
    LAKE_ASSIGN_OR_RETURN(uint64_t has_meta, r.ReadVarint());
    if (has_meta != 0) {
      LAKE_ASSIGN_OR_RETURN(std::string meta_bytes, r.ReadString());
      LAKE_ASSIGN_OR_RETURN(TableMetadata meta,
                            ParseTableMetadata(meta_bytes));
      table.metadata() = std::move(meta);
    }
    batch.adds.push_back(std::move(table));
  }
  return batch;
}

}  // namespace

DiscoveryEngine::Options LiveEngine::Options::DefaultDeltaOptions() {
  DiscoveryEngine::Options opts;
  // Memtable modalities whose scores merge against the base: exact
  // overlap/containment (JOSIE, exact join, LSH Ensemble), BM25 keyword,
  // and the shared-embedding-space union methods (TUS, Starmie).
  opts.build_pexeso = false;
  opts.build_mate = false;
  opts.build_correlated = false;
  opts.build_santos = false;
  opts.build_d3l = false;
  // No per-batch KB synthesis or annotator training: both are O(lake)
  // analysis passes, not serving structures.
  opts.synthesize_kb = false;
  opts.train_annotator = false;
  return opts;
}

LiveEngine::LiveEngine(std::shared_ptr<const DataLakeCatalog> base_catalog,
                       std::shared_ptr<const DiscoveryEngine> base_engine,
                       Options options)
    : options_(std::move(options)),
      base_catalog_(std::move(base_catalog)),
      base_engine_(std::move(base_engine)) {
  options_.delta_options.embedding_dim = options_.base_options.embedding_dim;
  InitMetrics();
  // Seed the content digest from the base: one O(lake) pass here, then
  // every mutation maintains it incrementally.
  for (TableId id : base_catalog_->AllTables()) {
    AddTableDigest(base_catalog_->table(id));
  }
  if (options_.enable_wal) {
    // Fail-stop on an unopenable log: wal_ stays null and every mutation
    // is rejected, rather than acknowledging work a crash would lose.
    Status opened = OpenWal(/*next_lsn=*/0);
    if (!opened.ok()) {
      LAKE_LOG(Warning) << "WAL open failed (mutations fail-stop): "
                        << opened.ToString();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  Publish();
}

LiveEngine::LiveEngine(std::shared_ptr<const DataLakeCatalog> base_catalog,
                       Options options)
    : LiveEngine(base_catalog,
                 std::make_shared<const DiscoveryEngine>(
                     base_catalog.get(), options.kb, options.base_options),
                 options) {}

void LiveEngine::InitMetrics() {
  if (options_.metrics == nullptr) return;
  serve::MetricsRegistry& m = *options_.metrics;
  tables_added_ = m.GetCounter("ingest.tables.added");
  tables_removed_ = m.GetCounter("ingest.tables.removed");
  publishes_ = m.GetCounter("ingest.publishes");
  compactions_counter_ = m.GetCounter("ingest.compactions");
  compaction_failures_ = m.GetCounter("ingest.compaction.failures");
  delta_tables_gauge_ = m.GetGauge("ingest.delta.tables");
  tombstones_gauge_ = m.GetGauge("ingest.tombstones");
  generation_gauge_ = m.GetGauge("ingest.generation");
  publish_latency_ = m.GetHistogram("ingest.publish_ms");
  compaction_latency_ = m.GetHistogram("ingest.compaction_ms");
  wal_appends_ = m.GetCounter("ingest.wal.appends");
  wal_bytes_ = m.GetCounter("ingest.wal.bytes");
  wal_fsyncs_ = m.GetCounter("ingest.wal.fsyncs");
  wal_replayed_ = m.GetCounter("ingest.wal.replayed_records");
  wal_truncated_bytes_ = m.GetCounter("ingest.wal.truncated_tail_bytes");
  wal_unsynced_gauge_ = m.GetGauge("ingest.wal.unsynced_records");
}

std::string LiveEngine::WalDir() const {
  return options_.store != nullptr ? options_.store->dir() + "/wal"
                                   : std::string();
}

Status LiveEngine::OpenWal(uint64_t next_lsn) {
  if (options_.store == nullptr) {
    return Status::FailedPrecondition("WAL requires a snapshot store");
  }
  Result<std::unique_ptr<store::WalWriter>> writer =
      next_lsn == 0
          ? store::WalWriter::Open(WalDir(), options_.wal_options)
          : store::WalWriter::OpenAt(WalDir(), options_.wal_options,
                                     next_lsn);
  if (!writer.ok()) return writer.status();
  wal_ = std::move(writer).value();
  wal_exported_ = store::WalWriter::Stats{};
  return Status::OK();
}

// A torn append kills the WalWriter permanently (fail-stop: the torn bytes
// stay on disk and that writer never appends again). Without intervention
// the engine would keep serving reads but reject every later mutation —
// un-repairable by the scrubber and indistinguishable from a stuck replica.
// Roll the log instead: reopen with a directory scan, which tolerates the
// torn tail and continues the dense LSN chain in a fresh segment, exactly
// as crash recovery would. Replay chains across the torn tail (see
// wal_test ReplayChainsAcrossTornTailIntoNextSegment), so no acknowledged
// record is at risk. The batch that hit the torn write stays rejected.
void LiveEngine::RollWal() {
  const uint64_t durable = wal_->durable_lsn();
  wal_.reset();
  Status reopened = OpenWal(/*next_lsn=*/0);
  if (!reopened.ok()) {
    // Fail-stop per batch: wal_ stays null and later batches are rejected
    // with FailedPrecondition until a checkpoint/recover cycle reopens it.
    LAKE_LOG(Warning) << "ingest: WAL roll after dead writer failed: "
                      << reopened.ToString();
    return;
  }
  wal_->set_durable_lsn(durable);
  LAKE_LOG(Warning)
      << "ingest: WAL writer died (torn append); rolled to a fresh segment";
}

void LiveEngine::ExportWalMetrics() {
  if (wal_ == nullptr) return;
  if (wal_unsynced_gauge_ != nullptr) {
    wal_unsynced_gauge_->Set(wal_->unsynced_records());
  }
  if (wal_appends_ == nullptr) return;
  const store::WalWriter::Stats& s = wal_->stats();
  wal_appends_->Add(s.appends - wal_exported_.appends);
  wal_bytes_->Add(s.bytes_appended - wal_exported_.bytes_appended);
  wal_fsyncs_->Add(s.fsyncs - wal_exported_.fsyncs);
  wal_exported_ = s;
}

LiveEngine::WalStatus LiveEngine::wal_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStatus status;
  status.enabled = options_.enable_wal;
  if (wal_ != nullptr) {
    status.last_lsn = wal_->last_lsn();
    status.durable_lsn = wal_->durable_lsn();
    status.unsynced_records = wal_->unsynced_records();
  }
  return status;
}

void LiveEngine::AddTableDigest(const Table& table) {
  const uint32_t digest = TableContentDigest(table);
  table_digests_[table.name()] = digest;
  digest_rollup_ ^= MixTableDigest(table.name(), digest);
}

void LiveEngine::DropTableDigest(const std::string& name) {
  auto it = table_digests_.find(name);
  if (it == table_digests_.end()) return;
  digest_rollup_ ^= MixTableDigest(name, it->second);
  table_digests_.erase(it);
}

std::map<std::string, uint32_t> LiveEngine::TableDigests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_digests_;
}

uint64_t LiveEngine::RecomputeContentDigest() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t rollup = 0;
  for (TableId id : base_catalog_->AllTables()) {
    const Table& table = base_catalog_->table(id);
    if (tombstone_names_.count(table.name())) continue;
    rollup ^= MixTableDigest(table.name(), TableContentDigest(table));
  }
  for (const std::shared_ptr<const Table>& table : delta_tables_) {
    rollup ^= MixTableDigest(table->name(), TableContentDigest(*table));
  }
  return rollup;
}

std::shared_ptr<const DeltaPart> LiveEngine::BuildDeltaPart() const {
  auto delta = std::make_shared<DeltaPart>();
  delta->catalog = std::make_unique<DataLakeCatalog>();
  for (const std::shared_ptr<const Table>& table : delta_tables_) {
    // Names were validated unique at AddTable time; a failure here would
    // mean the invariant broke, so surface it loudly in debug builds.
    Result<TableId> id = delta->catalog->AddTable(*table);
    LAKE_CHECK(id.ok());
  }
  if (delta->catalog->num_tables() > 0) {
    delta->engine = std::make_unique<DiscoveryEngine>(
        delta->catalog.get(), options_.kb, options_.delta_options);
  }
  for (const std::string& name : tombstone_names_) {
    Result<TableId> id = base_catalog_->FindTable(name);
    // Names not (or no longer) in the base carry no filter work; they are
    // kept in tombstone_names_ until a compaction retires them.
    if (id.ok()) delta->tombstones.insert(id.value());
    delta->tombstone_names.push_back(name);
  }
  return delta;
}

void LiveEngine::Publish() {
  const auto start = Clock::now();
  ++version_;
  auto generation = std::shared_ptr<const Generation>(
      new Generation(number_, version_, base_catalog_, base_engine_,
                     BuildDeltaPart()));
  current_.store(generation, std::memory_order_release);
  version_published_.store(version_, std::memory_order_release);
  digest_published_.store(digest_rollup_, std::memory_order_release);
  if (publishes_ != nullptr) {
    publishes_->Add();
    delta_tables_gauge_->Set(delta_tables_.size());
    tombstones_gauge_->Set(tombstone_names_.size());
    generation_gauge_->Set(number_);
    publish_latency_->Record(MsSince(start) * 1000.0);
  }
}

LiveEngine::BatchOutcome LiveEngine::ApplyBatch(Batch batch) {
  BatchOutcome outcome;
  std::lock_guard<std::mutex> lock(mu_);

  // Crash/abort site for the generation swap: the whole batch is rejected
  // before any state mutates, so a "failed publish" is atomic.
  if (std::optional<FaultSpec> fault = FailpointHit("ingest.publish.swap")) {
    const Status injected =
        Status::IoError("injected fault at ingest.publish.swap");
    outcome.adds.assign(batch.adds.size(), injected);
    outcome.removes.assign(batch.removes.size(), injected);
    return outcome;
  }

  auto in_delta = [&](const std::string& name) {
    return std::find_if(delta_tables_.begin(), delta_tables_.end(),
                        [&](const std::shared_ptr<const Table>& t) {
                          return t->name() == name;
                        });
  };

  // Phase 1 — decide. Acceptance is computed against a simulated view of
  // the post-batch state WITHOUT mutating anything: with a WAL the
  // accepted ops must be on disk before the first real mutation
  // (log-before-apply), so the decisions come first and phase 3 replays
  // them. Removes are processed before adds, as before.
  std::set<std::string> removed_names;  // accepted removes (all tombstone)
  std::set<std::string> batch_added;    // accepted add names so far
  std::vector<std::string> accepted_removes;
  for (const std::string& name : batch.removes) {
    const bool delta_live =
        in_delta(name) != delta_tables_.end() && !removed_names.count(name);
    const bool base_live = base_catalog_->FindTable(name).ok() &&
                           !tombstone_names_.count(name) &&
                           !removed_names.count(name);
    if (delta_live || base_live) {
      outcome.removes.push_back(Status::OK());
      accepted_removes.push_back(name);
      removed_names.insert(name);
    } else {
      outcome.removes.push_back(Status::NotFound("table " + name));
    }
  }
  std::vector<size_t> accepted_adds;  // indices into batch.adds
  for (size_t i = 0; i < batch.adds.size(); ++i) {
    const Table& table = batch.adds[i];
    const std::string& name = table.name();
    if (name.empty() || name.find('/') != std::string::npos) {
      outcome.adds.push_back(
          Status::InvalidArgument("invalid table name: " + name));
      continue;
    }
    const bool delta_live = (in_delta(name) != delta_tables_.end() &&
                             !removed_names.count(name)) ||
                            batch_added.count(name);
    const bool base_live = base_catalog_->FindTable(name).ok() &&
                           !tombstone_names_.count(name) &&
                           !removed_names.count(name);
    if (delta_live || base_live) {
      outcome.adds.push_back(Status::AlreadyExists("table " + name));
      continue;
    }
    batch_added.insert(name);
    accepted_adds.push_back(i);
    outcome.adds.push_back(Result<TableId>(0));  // id assigned in phase 3
  }

  // Phase 2 — log. The accepted ops hit the WAL (and the device, per sync
  // policy) before anything mutates or publishes; a failed append rejects
  // the whole accepted set so "acknowledged" always implies "recoverable".
  if (options_.enable_wal &&
      (!accepted_removes.empty() || !accepted_adds.empty())) {
    std::vector<const Table*> add_ptrs;
    add_ptrs.reserve(accepted_adds.size());
    for (size_t i : accepted_adds) add_ptrs.push_back(&batch.adds[i]);
    Status logged =
        wal_ != nullptr
            ? wal_->Append(EncodeWalBatch(accepted_removes, add_ptrs))
                  .status()
            : Status::FailedPrecondition(
                  "WAL enabled but unavailable (fail-stop)");
    ExportWalMetrics();
    if (!logged.ok()) {
      if (wal_ != nullptr && wal_->dead()) RollWal();
      for (Status& s : outcome.removes) {
        if (s.ok()) s = logged;
      }
      for (Result<TableId>& a : outcome.adds) {
        if (a.ok()) a = logged;
      }
      return outcome;
    }
  }

  // Phase 3 — apply the accepted decisions and publish once.
  for (const std::string& name : accepted_removes) {
    auto it = in_delta(name);
    if (it != delta_tables_.end()) delta_tables_.erase(it);
    // Tombstone even delta removes: if an in-flight compaction already
    // consumed this table, the tombstone masks it in the new base.
    tombstone_names_.insert(name);
    DropTableDigest(name);
    if (tables_removed_ != nullptr) tables_removed_->Add();
  }
  // Lake-visible delta ids are base_count + local position.
  const TableId base_count = static_cast<TableId>(base_catalog_->num_tables());
  size_t next_add = 0;
  for (Result<TableId>& id : outcome.adds) {
    if (!id.ok()) continue;
    id = Result<TableId>(
        static_cast<TableId>(base_count + delta_tables_.size()));
    delta_tables_.push_back(std::make_shared<const Table>(
        std::move(batch.adds[accepted_adds[next_add++]])));
    AddTableDigest(*delta_tables_.back());
    if (tables_added_ != nullptr) tables_added_->Add();
  }

  Publish();
  outcome.published = true;
  return outcome;
}

Result<TableId> LiveEngine::AddTable(Table table) {
  Batch batch;
  batch.adds.push_back(std::move(table));
  BatchOutcome outcome = ApplyBatch(std::move(batch));
  return outcome.adds[0];
}

Status LiveEngine::RemoveTable(const std::string& name) {
  Batch batch;
  batch.removes.push_back(name);
  BatchOutcome outcome = ApplyBatch(std::move(batch));
  return outcome.removes[0];
}

bool LiveEngine::CompactionNeeded(size_t max_delta_tables,
                                  double max_tombstone_ratio) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (delta_tables_.size() >= max_delta_tables && max_delta_tables > 0) {
    return true;
  }
  if (tombstone_names_.empty()) return false;
  const double base = static_cast<double>(
      std::max<size_t>(1, base_catalog_->num_tables()));
  return static_cast<double>(tombstone_names_.size()) / base >
         max_tombstone_ratio;
}

Result<LiveEngine::CompactionStats> LiveEngine::Compact() {
  const auto start = Clock::now();

  // Snapshot the compaction input: surviving base tables + current delta.
  std::shared_ptr<const DataLakeCatalog> old_catalog;
  std::vector<std::shared_ptr<const Table>> consumed;
  std::set<std::string> consumed_tombstones;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_catalog = base_catalog_;
    consumed = delta_tables_;
    consumed_tombstones = tombstone_names_;
  }

  if (FailpointHit("ingest.compact.build")) {
    if (compaction_failures_ != nullptr) compaction_failures_->Add();
    return Status::IoError("injected fault at ingest.compact.build");
  }

  CompactionStats stats;
  stats.input_base_tables = old_catalog->num_tables();
  stats.input_delta_tables = consumed.size();
  stats.tombstones_cleared = consumed_tombstones.size();

  // Merge: copy survivors, sorted by name, into a fresh catalog — the
  // exact corpus (and id assignment) a cold rebuild over the surviving
  // tables would see, which is what makes post-compaction answers
  // bit-identical to a full rebuild.
  std::vector<const Table*> survivors;
  survivors.reserve(old_catalog->num_tables() + consumed.size());
  for (TableId id : old_catalog->AllTables()) {
    const Table& table = old_catalog->table(id);
    if (!consumed_tombstones.count(table.name())) survivors.push_back(&table);
  }
  for (const std::shared_ptr<const Table>& table : consumed) {
    survivors.push_back(table.get());
  }
  std::sort(survivors.begin(), survivors.end(),
            [](const Table* a, const Table* b) { return a->name() < b->name(); });

  auto merged = std::make_shared<DataLakeCatalog>();
  for (const Table* table : survivors) {
    Result<TableId> id = merged->AddTable(*table);
    if (!id.ok()) {
      if (compaction_failures_ != nullptr) compaction_failures_->Add();
      return Status::Internal("compaction merge rejected " + table->name() +
                              ": " + id.status().ToString());
    }
  }
  stats.output_tables = merged->num_tables();

  // The expensive part — a full index build — runs with no lock held, so
  // ingestion and queries proceed against the old generation meanwhile.
  auto engine = std::make_shared<const DiscoveryEngine>(
      merged.get(), options_.kb, options_.base_options);

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Crash/abort site for the base swap: nothing below mutates until the
    // failpoint passes, so an aborted compaction leaves state untouched.
    if (FailpointHit("ingest.compact.swap")) {
      if (compaction_failures_ != nullptr) compaction_failures_->Add();
      return Status::IoError("injected fault at ingest.compact.swap");
    }
    // Residual delta: tables that arrived while the build ran. Consumed
    // entries are identified by pointer, so a same-named table added
    // after the snapshot survives as delta.
    std::unordered_set<const Table*> consumed_set;
    for (const std::shared_ptr<const Table>& t : consumed) {
      consumed_set.insert(t.get());
    }
    std::vector<std::shared_ptr<const Table>> residual;
    for (std::shared_ptr<const Table>& t : delta_tables_) {
      if (!consumed_set.count(t.get())) residual.push_back(std::move(t));
    }
    delta_tables_ = std::move(residual);
    for (const std::string& name : consumed_tombstones) {
      tombstone_names_.erase(name);
    }
    base_catalog_ = std::move(merged);
    base_engine_ = std::move(engine);
    ++number_;
    stats.generation = number_;
    Publish();
  }

  compactions_.fetch_add(1, std::memory_order_relaxed);
  if (compactions_counter_ != nullptr) {
    compactions_counter_->Add();
    compaction_latency_->Record(MsSince(start) * 1000.0);
  }

  if (options_.store != nullptr && options_.persist_after_compact) {
    // Best-effort: a crash (or injected fault) between swap and persist
    // loses the compaction on disk, never consistency — recovery replays
    // the previous committed generation.
    Status persisted = Checkpoint();
    if (!persisted.ok()) {
      LAKE_LOG(Warning) << "post-compaction checkpoint failed: "
                        << persisted.ToString();
    }
  }

  stats.duration_ms = MsSince(start);
  return stats;
}

Status LiveEngine::Checkpoint() {
  if (options_.store == nullptr) {
    return Status::FailedPrecondition("no snapshot store configured");
  }
  store::SnapshotWriter writer;
  // LSN this snapshot covers: serialization happens under mu_, so every
  // record at or below wal_->last_lsn() is reflected in the sections.
  uint64_t checkpoint_lsn = 0;
  bool advance_wal = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LAKE_RETURN_IF_ERROR(base_catalog_->SaveSnapshot(&writer));
    LAKE_RETURN_IF_ERROR(base_engine_->SaveIndexSections(&writer));

    if (FailpointHit("ingest.delta.persist")) {
      return Status::IoError("injected fault at ingest.delta.persist");
    }
    for (const std::shared_ptr<const Table>& table : delta_tables_) {
      writer.AddSection(std::string(kDeltaPrefix) + table->name(),
                        WriteCsvString(*table));
      if (HasMetadata(table->metadata())) {
        writer.AddSection(std::string(kDeltaMetaPrefix) + table->name(),
                          SerializeTableMetadata(table->metadata()));
      }
    }
    LAKE_RETURN_IF_ERROR(writer.AddSection(
        kStateSection, [&](BinaryWriter* w) {
          w->WriteVarint(kStateFormatVersion);
          w->WriteVarint(delta_tables_.size());
          for (const std::shared_ptr<const Table>& table : delta_tables_) {
            w->WriteString(table->name());
          }
          w->WriteVarint(tombstone_names_.size());
          for (const std::string& name : tombstone_names_) {
            w->WriteString(name);
          }
          return Status::OK();
        }));
    if (options_.enable_wal && wal_ != nullptr) {
      checkpoint_lsn = wal_->last_lsn();
      advance_wal = true;
      LAKE_RETURN_IF_ERROR(
          writer.AddSection(kWalSection, [&](BinaryWriter* w) {
            w->WriteVarint(kWalFormatVersion);
            w->WriteVarint(checkpoint_lsn);
            return Status::OK();
          }));
    }
  }
  LAKE_ASSIGN_OR_RETURN(uint64_t generation, options_.store->Commit(writer));
  (void)generation;
  if (advance_wal) {
    // The snapshot is the commit point: records up to checkpoint_lsn are
    // durable through it, so the floor advances and covered segments go.
    std::lock_guard<std::mutex> lock(mu_);
    if (wal_ != nullptr) {
      wal_->set_durable_lsn(checkpoint_lsn);
      Status gc = wal_->GarbageCollect(checkpoint_lsn);
      if (!gc.ok()) {
        LAKE_LOG(Warning) << "WAL GC failed: " << gc.ToString();
      }
      ExportWalMetrics();
    }
  }
  return Status::OK();
}

namespace {

// Replay applies records that were acknowledged and durably logged, so
// over-replay is the only benign rejection (AlreadyExists adds, NotFound
// removes — ApplyBatch re-validating what the checkpoint already holds).
// Any other rejection — a transient publish failure, ENOSPC, an injected
// fault — must abort recovery: continuing past it silently drops an
// acknowledged mutation, which reads as loss (dropped add) or
// resurrection (dropped remove) once the engine serves again.
Status FatalReplayError(const LiveEngine::BatchOutcome& outcome) {
  auto benign = [](const Status& s) {
    return s.code() == StatusCode::kAlreadyExists ||
           s.code() == StatusCode::kNotFound;
  };
  for (const Status& s : outcome.removes) {
    if (!s.ok() && !benign(s)) return s;
  }
  for (const Result<TableId>& a : outcome.adds) {
    if (!a.ok() && !benign(a.status())) return a.status();
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<LiveEngine>> LiveEngine::Recover(
    store::SnapshotStore* store, Options options, RecoveryReport* report) {
  if (store == nullptr) {
    return Status::InvalidArgument("null snapshot store");
  }
  // Recovering from a store implies persisting to it: later Checkpoint /
  // post-compaction commits go to the same place the state came from.
  options.store = store;
  // Replay (snapshot delta and WAL records alike) goes through ApplyBatch
  // and must not be re-logged; the writer is opened only once the log has
  // been fully consumed, so the flag stays off until then.
  const bool wal_enabled = options.enable_wal;
  options.enable_wal = false;
  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;

  LAKE_ASSIGN_OR_RETURN(store::SnapshotStore::Opened opened,
                        store->OpenLatest());
  rep.snapshot_generation = opened.generation;
  const store::SnapshotReader& reader = opened.reader;

  // Base catalog from the committed envelope (corrupt table sections are
  // quarantined by LoadSnapshot; SnapshotStore commits are atomic, so in
  // practice the committed generation parses whole).
  auto catalog = std::make_shared<DataLakeCatalog>();
  LAKE_ASSIGN_OR_RETURN(std::vector<TableId> loaded,
                        catalog->LoadSnapshot(reader));
  rep.tables_loaded = loaded.size();

  // Base indexes: prefer the persisted sections (skips the O(lake)
  // build); a section that is missing, corrupt, or fails validation
  // forces a fresh build of ALL base indexes from the loaded tables, so
  // the recovered base is never quarantined or degraded.
  DiscoveryEngine::Options deferred = options.base_options;
  deferred.defer_index_build = true;
  auto engine = std::make_unique<DiscoveryEngine>(catalog.get(), options.kb,
                                                  deferred);
  bool all_sections_loaded = true;
  for (const std::string& section : engine->PendingIndexSections()) {
    Result<std::string> payload = reader.ReadSection(section);
    Status status = payload.ok()
                        ? engine->LoadIndexSection(section, payload.value())
                        : payload.status();
    if (status.ok()) {
      ++rep.index_sections_loaded;
    } else {
      LAKE_LOG(Warning) << "index section " << section
                        << " unusable, rebuilding: " << status.ToString();
      ++rep.index_sections_rebuilt;
      all_sections_loaded = false;
    }
  }
  if (!all_sections_loaded) {
    engine = std::make_unique<DiscoveryEngine>(catalog.get(), options.kb,
                                               options.base_options);
  }

  auto live = std::unique_ptr<LiveEngine>(
      new LiveEngine(catalog, std::shared_ptr<const DiscoveryEngine>(
                                  std::move(engine)),
                     std::move(options)));
  live->number_ = opened.generation;

  // Replay the persisted delta. A missing state section is a pre-ingest
  // snapshot (empty delta); a corrupt one drops the whole delta — the
  // base is still consistent, recovery just loses the uncompacted tail.
  if (!reader.has_section(kStateSection)) {
    {
      std::lock_guard<std::mutex> lock(live->mu_);
      live->Publish();  // refresh generation number
    }
    return FinishRecovery(std::move(live), reader, wal_enabled, &rep);
  }
  Batch replay;
  Result<std::string> state = reader.ReadSection(kStateSection);
  if (state.ok()) {
    std::istringstream in(state.value());
    BinaryReader r(&in);
    auto parse = [&]() -> Status {
      LAKE_ASSIGN_OR_RETURN(uint64_t format, r.ReadVarint());
      if (format != kStateFormatVersion) {
        return Status::IoError("unknown ingest state version " +
                               std::to_string(format));
      }
      LAKE_ASSIGN_OR_RETURN(uint64_t num_deltas, r.ReadVarint());
      for (uint64_t i = 0; i < num_deltas; ++i) {
        LAKE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        Result<std::string> csv =
            reader.ReadSection(std::string(kDeltaPrefix) + name);
        if (!csv.ok()) {
          LAKE_LOG(Warning) << "dropping delta table " << name << ": "
                            << csv.status().ToString();
          ++rep.deltas_dropped;
          continue;
        }
        Result<Table> table = ReadCsvString(csv.value(), name);
        if (!table.ok()) {
          LAKE_LOG(Warning) << "dropping delta table " << name << ": "
                            << table.status().ToString();
          ++rep.deltas_dropped;
          continue;
        }
        // Companion metadata (see table_meta.h); damage costs the
        // metadata, never the table.
        const std::string meta_section = std::string(kDeltaMetaPrefix) + name;
        if (reader.has_section(meta_section)) {
          Result<std::string> meta_bytes = reader.ReadSection(meta_section);
          Result<TableMetadata> meta =
              meta_bytes.ok() ? ParseTableMetadata(*meta_bytes)
                              : Result<TableMetadata>(meta_bytes.status());
          if (meta.ok()) {
            table->metadata() = std::move(meta).value();
          } else {
            LAKE_LOG(Warning) << "dropping metadata of delta table " << name
                              << ": " << meta.status().ToString();
          }
        }
        replay.adds.push_back(std::move(table).value());
      }
      LAKE_ASSIGN_OR_RETURN(uint64_t num_tombstones, r.ReadVarint());
      for (uint64_t i = 0; i < num_tombstones; ++i) {
        LAKE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        replay.removes.push_back(std::move(name));
      }
      return Status::OK();
    };
    Status parsed = parse();
    if (!parsed.ok()) {
      LAKE_LOG(Warning) << "ingest state unreadable, dropping delta: "
                        << parsed.ToString();
      rep.deltas_dropped += replay.adds.size();
      replay = Batch{};
    }
  } else {
    LAKE_LOG(Warning) << "ingest state section corrupt, dropping delta: "
                      << state.status().ToString();
  }
  rep.tombstones_replayed = replay.removes.size();
  const size_t attempted = replay.adds.size();
  BatchOutcome outcome = live->ApplyBatch(std::move(replay));
  Status delta_fatal = FatalReplayError(outcome);
  if (!delta_fatal.ok()) {
    return Status::IoError("replaying checkpointed delta failed: " +
                           delta_fatal.ToString());
  }
  for (const Result<TableId>& add : outcome.adds) {
    if (add.ok()) {
      ++rep.deltas_replayed;
    } else {
      ++rep.deltas_dropped;
    }
  }
  (void)attempted;
  return FinishRecovery(std::move(live), reader, wal_enabled, &rep);
}

Result<std::unique_ptr<LiveEngine>> LiveEngine::FinishRecovery(
    std::unique_ptr<LiveEngine> live, const store::SnapshotReader& reader,
    bool wal_enabled, RecoveryReport* rep) {
  // Durable LSN from the checkpoint: records at or below it are already
  // part of the loaded state. Missing section = pre-WAL snapshot; an
  // unreadable one conservatively replays the whole log (ApplyBatch
  // rejects already-present adds individually, so over-replay degrades to
  // per-op AlreadyExists/NotFound, not corruption).
  uint64_t durable_lsn = 0;
  if (reader.has_section(kWalSection)) {
    Result<std::string> wal_state = reader.ReadSection(kWalSection);
    auto parse_lsn = [&]() -> Result<uint64_t> {
      std::istringstream in(wal_state.value());
      BinaryReader r(&in);
      LAKE_ASSIGN_OR_RETURN(uint64_t format, r.ReadVarint());
      if (format != kWalFormatVersion) {
        return Status::IoError("unknown ingest/wal section format " +
                               std::to_string(format));
      }
      return r.ReadVarint();
    };
    Result<uint64_t> lsn =
        wal_state.ok() ? parse_lsn() : Result<uint64_t>(wal_state.status());
    if (lsn.ok()) {
      durable_lsn = lsn.value();
    } else {
      LAKE_LOG(Warning) << "ingest/wal section unreadable; replaying the "
                           "whole log: "
                        << lsn.status().ToString();
    }
  }
  rep->wal_durable_lsn = durable_lsn;
  if (!wal_enabled) return live;

  Result<store::WalReader::ReplayStats> replayed = store::WalReader::Replay(
      live->WalDir(), durable_lsn,
      [&](uint64_t lsn, std::string_view payload) -> Status {
        Result<Batch> decoded = DecodeWalBatch(payload);
        if (!decoded.ok()) {
          // CRC-valid but undecodable: a future format or a writer bug,
          // not a torn tail. Skip the record rather than refuse to start.
          LAKE_LOG(Warning) << "skipping undecodable WAL record " << lsn
                            << ": " << decoded.status().ToString();
          return Status::OK();
        }
        BatchOutcome applied = live->ApplyBatch(std::move(decoded).value());
        Status fatal = FatalReplayError(applied);
        if (!fatal.ok()) {
          return Status::IoError("replaying WAL record " +
                                 std::to_string(lsn) +
                                 " failed: " + fatal.ToString());
        }
        ++rep->wal_records_replayed;
        return Status::OK();
      });
  if (!replayed.ok()) return replayed.status();
  rep->wal_truncated_bytes = replayed.value().truncated_bytes;
  rep->wal_last_lsn = std::max(replayed.value().last_lsn, durable_lsn);
  if (!replayed.value().clean) {
    LAKE_LOG(Warning) << "WAL torn tail: truncated "
                      << replayed.value().truncated_bytes
                      << " bytes after LSN " << replayed.value().last_lsn;
  }

  std::lock_guard<std::mutex> lock(live->mu_);
  live->options_.enable_wal = true;
  // Reopen past everything seen, on a fresh segment: a torn tail is never
  // appended after.
  Status opened = live->OpenWal(rep->wal_last_lsn + 1);
  if (!opened.ok()) {
    LAKE_LOG(Warning) << "WAL reopen failed (mutations fail-stop): "
                      << opened.ToString();
  }
  if (live->wal_ != nullptr) live->wal_->set_durable_lsn(durable_lsn);
  if (live->wal_replayed_ != nullptr) {
    live->wal_replayed_->Add(rep->wal_records_replayed);
    live->wal_truncated_bytes_->Add(rep->wal_truncated_bytes);
  }
  live->ExportWalMetrics();
  return live;
}

size_t LiveEngine::num_delta_tables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_tables_.size();
}

size_t LiveEngine::num_tombstones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tombstone_names_.size();
}

}  // namespace lake::ingest
