#include "ingest/live_engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_set>

#include "table/csv.h"
#include "table/table_meta.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace lake::ingest {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Merges two ranked lists (already filtered/remapped) into one top-k.
/// Stable sort with base first makes score ties prefer the base side.
template <typename R>
std::vector<R> MergeTopK(std::vector<R> base, std::vector<R> delta,
                         size_t k) {
  base.reserve(base.size() + delta.size());
  for (R& r : delta) base.push_back(std::move(r));
  std::stable_sort(base.begin(), base.end(),
                   [](const R& a, const R& b) { return a.score > b.score; });
  if (base.size() > k) base.resize(k);
  return base;
}

constexpr uint64_t kStateFormatVersion = 1;

}  // namespace

// ---------------------------------------------------------------------------
// Generation: id resolution
// ---------------------------------------------------------------------------

Result<std::string> Generation::TableName(TableId id) const {
  LAKE_ASSIGN_OR_RETURN(const Table* table, FindTableById(id));
  return table->name();
}

Result<const Table*> Generation::FindTableById(TableId id) const {
  const size_t base_count = base_table_count();
  if (id < base_count) {
    if (delta_->tombstones.count(id)) {
      return Status::NotFound("table id " + std::to_string(id) +
                              " is tombstoned");
    }
    return &base_catalog_->table(id);
  }
  const size_t local = id - base_count;
  if (delta_->catalog == nullptr || local >= delta_->catalog->num_tables()) {
    return Status::NotFound("table id " + std::to_string(id) +
                            " out of range");
  }
  return &delta_->catalog->table(static_cast<TableId>(local));
}

Result<TableId> Generation::FindTable(const std::string& name) const {
  if (delta_->catalog != nullptr) {
    Result<TableId> local = delta_->catalog->FindTable(name);
    if (local.ok()) {
      return static_cast<TableId>(base_table_count() + local.value());
    }
  }
  LAKE_ASSIGN_OR_RETURN(TableId id, base_catalog_->FindTable(name));
  if (delta_->tombstones.count(id)) {
    return Status::NotFound("table " + name + " (removed)");
  }
  return id;
}

// ---------------------------------------------------------------------------
// Merged queries
// ---------------------------------------------------------------------------

namespace {

/// Drops tombstoned base hits and counts survivors into `stats`.
std::vector<TableResult> FilterBaseTables(std::vector<TableResult> results,
                                          const DeltaPart& delta,
                                          MergeStats* stats) {
  std::vector<TableResult> out;
  out.reserve(results.size());
  for (TableResult& r : results) {
    if (delta.tombstones.count(r.table_id)) {
      if (stats != nullptr) ++stats->tombstone_filtered;
      continue;
    }
    out.push_back(std::move(r));
  }
  if (stats != nullptr) stats->base_results += out.size();
  return out;
}

std::vector<ColumnResult> FilterBaseColumns(std::vector<ColumnResult> results,
                                            const DeltaPart& delta,
                                            MergeStats* stats) {
  std::vector<ColumnResult> out;
  out.reserve(results.size());
  for (ColumnResult& r : results) {
    if (delta.tombstones.count(r.column.table_id)) {
      if (stats != nullptr) ++stats->tombstone_filtered;
      continue;
    }
    out.push_back(std::move(r));
  }
  if (stats != nullptr) stats->base_results += out.size();
  return out;
}

/// Over-fetch factor for the base side: tombstoned hits are filtered
/// post-hoc, so ask for enough extras to still fill k.
size_t BaseK(const Generation& gen, size_t k) {
  return k + gen.delta().tombstones.size();
}

}  // namespace

std::vector<TableResult> MergedKeyword(const Generation& gen,
                                       const std::string& query, size_t k,
                                       MergeStats* stats) {
  std::vector<TableResult> base = FilterBaseTables(
      gen.base().Keyword(query, BaseK(gen, k)), gen.delta(), stats);
  std::vector<TableResult> delta;
  if (gen.has_delta()) {
    delta = gen.delta().engine->Keyword(query, k);
    const TableId offset = static_cast<TableId>(gen.base_table_count());
    for (TableResult& r : delta) r.table_id += offset;
    if (stats != nullptr) stats->delta_results += delta.size();
  }
  return MergeTopK(std::move(base), std::move(delta), k);
}

Result<std::vector<ColumnResult>> MergedJoinable(
    const Generation& gen, const std::vector<std::string>& query_values,
    JoinMethod method, size_t k, const CancelToken* cancel,
    MergeStats* stats) {
  LAKE_ASSIGN_OR_RETURN(
      std::vector<ColumnResult> raw,
      gen.base().Joinable(query_values, method, BaseK(gen, k), cancel));
  std::vector<ColumnResult> base =
      FilterBaseColumns(std::move(raw), gen.delta(), stats);

  std::vector<ColumnResult> delta;
  if (gen.has_delta()) {
    Result<std::vector<ColumnResult>> delta_result =
        gen.delta().engine->Joinable(query_values, method, k, cancel);
    if (delta_result.ok()) {
      delta = std::move(delta_result).value();
      const TableId offset = static_cast<TableId>(gen.base_table_count());
      for (ColumnResult& r : delta) r.column.table_id += offset;
      if (stats != nullptr) stats->delta_results += delta.size();
    } else if (delta_result.status().code() !=
               StatusCode::kFailedPrecondition) {
      // FailedPrecondition means the memtable does not build this method
      // (serve base-only until compaction); anything else is a real error.
      return delta_result.status();
    }
  }
  return MergeTopK(std::move(base), std::move(delta), k);
}

Result<std::vector<TableResult>> MergedUnionable(
    const Generation& gen, const Table& query, UnionMethod method, size_t k,
    int64_t exclude, const CancelToken* cancel, MergeStats* stats) {
  const int64_t base_count = static_cast<int64_t>(gen.base_table_count());
  const int64_t base_exclude = exclude < base_count ? exclude : -1;
  const int64_t delta_exclude =
      exclude >= base_count ? exclude - base_count : -1;

  LAKE_ASSIGN_OR_RETURN(std::vector<TableResult> raw,
                        gen.base().Unionable(query, method, BaseK(gen, k),
                                             base_exclude, cancel));
  std::vector<TableResult> base =
      FilterBaseTables(std::move(raw), gen.delta(), stats);

  std::vector<TableResult> delta;
  if (gen.has_delta()) {
    Result<std::vector<TableResult>> delta_result =
        gen.delta().engine->Unionable(query, method, k, delta_exclude,
                                      cancel);
    if (delta_result.ok()) {
      delta = std::move(delta_result).value();
      const TableId offset = static_cast<TableId>(base_count);
      for (TableResult& r : delta) r.table_id += offset;
      if (stats != nullptr) stats->delta_results += delta.size();
    } else if (delta_result.status().code() !=
               StatusCode::kFailedPrecondition) {
      return delta_result.status();
    }
  }
  return MergeTopK(std::move(base), std::move(delta), k);
}

// ---------------------------------------------------------------------------
// LiveEngine
// ---------------------------------------------------------------------------

DiscoveryEngine::Options LiveEngine::Options::DefaultDeltaOptions() {
  DiscoveryEngine::Options opts;
  // Memtable modalities whose scores merge against the base: exact
  // overlap/containment (JOSIE, exact join, LSH Ensemble), BM25 keyword,
  // and the shared-embedding-space union methods (TUS, Starmie).
  opts.build_pexeso = false;
  opts.build_mate = false;
  opts.build_correlated = false;
  opts.build_santos = false;
  opts.build_d3l = false;
  // No per-batch KB synthesis or annotator training: both are O(lake)
  // analysis passes, not serving structures.
  opts.synthesize_kb = false;
  opts.train_annotator = false;
  return opts;
}

LiveEngine::LiveEngine(std::shared_ptr<const DataLakeCatalog> base_catalog,
                       std::shared_ptr<const DiscoveryEngine> base_engine,
                       Options options)
    : options_(std::move(options)),
      base_catalog_(std::move(base_catalog)),
      base_engine_(std::move(base_engine)) {
  options_.delta_options.embedding_dim = options_.base_options.embedding_dim;
  InitMetrics();
  std::lock_guard<std::mutex> lock(mu_);
  Publish();
}

LiveEngine::LiveEngine(std::shared_ptr<const DataLakeCatalog> base_catalog,
                       Options options)
    : LiveEngine(base_catalog,
                 std::make_shared<const DiscoveryEngine>(
                     base_catalog.get(), options.kb, options.base_options),
                 options) {}

void LiveEngine::InitMetrics() {
  if (options_.metrics == nullptr) return;
  serve::MetricsRegistry& m = *options_.metrics;
  tables_added_ = m.GetCounter("ingest.tables.added");
  tables_removed_ = m.GetCounter("ingest.tables.removed");
  publishes_ = m.GetCounter("ingest.publishes");
  compactions_counter_ = m.GetCounter("ingest.compactions");
  compaction_failures_ = m.GetCounter("ingest.compaction.failures");
  delta_tables_gauge_ = m.GetGauge("ingest.delta.tables");
  tombstones_gauge_ = m.GetGauge("ingest.tombstones");
  generation_gauge_ = m.GetGauge("ingest.generation");
  publish_latency_ = m.GetHistogram("ingest.publish_ms");
  compaction_latency_ = m.GetHistogram("ingest.compaction_ms");
}

std::shared_ptr<const DeltaPart> LiveEngine::BuildDeltaPart() const {
  auto delta = std::make_shared<DeltaPart>();
  delta->catalog = std::make_unique<DataLakeCatalog>();
  for (const std::shared_ptr<const Table>& table : delta_tables_) {
    // Names were validated unique at AddTable time; a failure here would
    // mean the invariant broke, so surface it loudly in debug builds.
    Result<TableId> id = delta->catalog->AddTable(*table);
    LAKE_CHECK(id.ok());
  }
  if (delta->catalog->num_tables() > 0) {
    delta->engine = std::make_unique<DiscoveryEngine>(
        delta->catalog.get(), options_.kb, options_.delta_options);
  }
  for (const std::string& name : tombstone_names_) {
    Result<TableId> id = base_catalog_->FindTable(name);
    // Names not (or no longer) in the base carry no filter work; they are
    // kept in tombstone_names_ until a compaction retires them.
    if (id.ok()) delta->tombstones.insert(id.value());
    delta->tombstone_names.push_back(name);
  }
  return delta;
}

void LiveEngine::Publish() {
  const auto start = Clock::now();
  ++version_;
  auto generation = std::shared_ptr<const Generation>(
      new Generation(number_, version_, base_catalog_, base_engine_,
                     BuildDeltaPart()));
  current_.store(generation, std::memory_order_release);
  version_published_.store(version_, std::memory_order_release);
  if (publishes_ != nullptr) {
    publishes_->Add();
    delta_tables_gauge_->Set(delta_tables_.size());
    tombstones_gauge_->Set(tombstone_names_.size());
    generation_gauge_->Set(number_);
    publish_latency_->Record(MsSince(start) * 1000.0);
  }
}

LiveEngine::BatchOutcome LiveEngine::ApplyBatch(Batch batch) {
  BatchOutcome outcome;
  std::lock_guard<std::mutex> lock(mu_);

  // Crash/abort site for the generation swap: the whole batch is rejected
  // before any state mutates, so a "failed publish" is atomic.
  if (std::optional<FaultSpec> fault = FailpointHit("ingest.publish.swap")) {
    const Status injected =
        Status::IoError("injected fault at ingest.publish.swap");
    outcome.adds.assign(batch.adds.size(), injected);
    outcome.removes.assign(batch.removes.size(), injected);
    return outcome;
  }

  auto in_delta = [&](const std::string& name) {
    return std::find_if(delta_tables_.begin(), delta_tables_.end(),
                        [&](const std::shared_ptr<const Table>& t) {
                          return t->name() == name;
                        });
  };

  for (const std::string& name : batch.removes) {
    auto it = in_delta(name);
    if (it != delta_tables_.end()) {
      delta_tables_.erase(it);
      // Keep a tombstone anyway: if an in-flight compaction already
      // consumed this table, the tombstone masks it in the new base.
      tombstone_names_.insert(name);
      outcome.removes.push_back(Status::OK());
    } else if (base_catalog_->FindTable(name).ok() &&
               !tombstone_names_.count(name)) {
      tombstone_names_.insert(name);
      outcome.removes.push_back(Status::OK());
    } else {
      outcome.removes.push_back(Status::NotFound("table " + name));
    }
    if (outcome.removes.back().ok() && tables_removed_ != nullptr) {
      tables_removed_->Add();
    }
  }

  std::vector<size_t> added_indices;  // into delta_tables_, per accepted add
  for (Table& table : batch.adds) {
    const std::string& name = table.name();
    if (name.empty() || name.find('/') != std::string::npos) {
      outcome.adds.push_back(
          Status::InvalidArgument("invalid table name: " + name));
      continue;
    }
    if (in_delta(name) != delta_tables_.end() ||
        (base_catalog_->FindTable(name).ok() &&
         !tombstone_names_.count(name))) {
      outcome.adds.push_back(Status::AlreadyExists("table " + name));
      continue;
    }
    added_indices.push_back(delta_tables_.size());
    outcome.adds.push_back(Result<TableId>(0));  // id filled in below
    delta_tables_.push_back(std::make_shared<const Table>(std::move(table)));
    if (tables_added_ != nullptr) tables_added_->Add();
  }

  // Lake-visible delta ids are base_count + local position.
  const TableId base_count = static_cast<TableId>(base_catalog_->num_tables());
  size_t next = 0;
  for (Result<TableId>& id : outcome.adds) {
    if (id.ok()) {
      id = Result<TableId>(
          static_cast<TableId>(base_count + added_indices[next++]));
    }
  }

  Publish();
  outcome.published = true;
  return outcome;
}

Result<TableId> LiveEngine::AddTable(Table table) {
  Batch batch;
  batch.adds.push_back(std::move(table));
  BatchOutcome outcome = ApplyBatch(std::move(batch));
  return outcome.adds[0];
}

Status LiveEngine::RemoveTable(const std::string& name) {
  Batch batch;
  batch.removes.push_back(name);
  BatchOutcome outcome = ApplyBatch(std::move(batch));
  return outcome.removes[0];
}

bool LiveEngine::CompactionNeeded(size_t max_delta_tables,
                                  double max_tombstone_ratio) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (delta_tables_.size() >= max_delta_tables && max_delta_tables > 0) {
    return true;
  }
  if (tombstone_names_.empty()) return false;
  const double base = static_cast<double>(
      std::max<size_t>(1, base_catalog_->num_tables()));
  return static_cast<double>(tombstone_names_.size()) / base >
         max_tombstone_ratio;
}

Result<LiveEngine::CompactionStats> LiveEngine::Compact() {
  const auto start = Clock::now();

  // Snapshot the compaction input: surviving base tables + current delta.
  std::shared_ptr<const DataLakeCatalog> old_catalog;
  std::vector<std::shared_ptr<const Table>> consumed;
  std::set<std::string> consumed_tombstones;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_catalog = base_catalog_;
    consumed = delta_tables_;
    consumed_tombstones = tombstone_names_;
  }

  if (FailpointHit("ingest.compact.build")) {
    if (compaction_failures_ != nullptr) compaction_failures_->Add();
    return Status::IoError("injected fault at ingest.compact.build");
  }

  CompactionStats stats;
  stats.input_base_tables = old_catalog->num_tables();
  stats.input_delta_tables = consumed.size();
  stats.tombstones_cleared = consumed_tombstones.size();

  // Merge: copy survivors, sorted by name, into a fresh catalog — the
  // exact corpus (and id assignment) a cold rebuild over the surviving
  // tables would see, which is what makes post-compaction answers
  // bit-identical to a full rebuild.
  std::vector<const Table*> survivors;
  survivors.reserve(old_catalog->num_tables() + consumed.size());
  for (TableId id : old_catalog->AllTables()) {
    const Table& table = old_catalog->table(id);
    if (!consumed_tombstones.count(table.name())) survivors.push_back(&table);
  }
  for (const std::shared_ptr<const Table>& table : consumed) {
    survivors.push_back(table.get());
  }
  std::sort(survivors.begin(), survivors.end(),
            [](const Table* a, const Table* b) { return a->name() < b->name(); });

  auto merged = std::make_shared<DataLakeCatalog>();
  for (const Table* table : survivors) {
    Result<TableId> id = merged->AddTable(*table);
    if (!id.ok()) {
      if (compaction_failures_ != nullptr) compaction_failures_->Add();
      return Status::Internal("compaction merge rejected " + table->name() +
                              ": " + id.status().ToString());
    }
  }
  stats.output_tables = merged->num_tables();

  // The expensive part — a full index build — runs with no lock held, so
  // ingestion and queries proceed against the old generation meanwhile.
  auto engine = std::make_shared<const DiscoveryEngine>(
      merged.get(), options_.kb, options_.base_options);

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Crash/abort site for the base swap: nothing below mutates until the
    // failpoint passes, so an aborted compaction leaves state untouched.
    if (FailpointHit("ingest.compact.swap")) {
      if (compaction_failures_ != nullptr) compaction_failures_->Add();
      return Status::IoError("injected fault at ingest.compact.swap");
    }
    // Residual delta: tables that arrived while the build ran. Consumed
    // entries are identified by pointer, so a same-named table added
    // after the snapshot survives as delta.
    std::unordered_set<const Table*> consumed_set;
    for (const std::shared_ptr<const Table>& t : consumed) {
      consumed_set.insert(t.get());
    }
    std::vector<std::shared_ptr<const Table>> residual;
    for (std::shared_ptr<const Table>& t : delta_tables_) {
      if (!consumed_set.count(t.get())) residual.push_back(std::move(t));
    }
    delta_tables_ = std::move(residual);
    for (const std::string& name : consumed_tombstones) {
      tombstone_names_.erase(name);
    }
    base_catalog_ = std::move(merged);
    base_engine_ = std::move(engine);
    ++number_;
    stats.generation = number_;
    Publish();
  }

  compactions_.fetch_add(1, std::memory_order_relaxed);
  if (compactions_counter_ != nullptr) {
    compactions_counter_->Add();
    compaction_latency_->Record(MsSince(start) * 1000.0);
  }

  if (options_.store != nullptr && options_.persist_after_compact) {
    // Best-effort: a crash (or injected fault) between swap and persist
    // loses the compaction on disk, never consistency — recovery replays
    // the previous committed generation.
    Status persisted = Checkpoint();
    if (!persisted.ok()) {
      LAKE_LOG(Warning) << "post-compaction checkpoint failed: "
                        << persisted.ToString();
    }
  }

  stats.duration_ms = MsSince(start);
  return stats;
}

Status LiveEngine::Checkpoint() {
  if (options_.store == nullptr) {
    return Status::FailedPrecondition("no snapshot store configured");
  }
  store::SnapshotWriter writer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LAKE_RETURN_IF_ERROR(base_catalog_->SaveSnapshot(&writer));
    LAKE_RETURN_IF_ERROR(base_engine_->SaveIndexSections(&writer));

    if (FailpointHit("ingest.delta.persist")) {
      return Status::IoError("injected fault at ingest.delta.persist");
    }
    for (const std::shared_ptr<const Table>& table : delta_tables_) {
      writer.AddSection(std::string(kDeltaPrefix) + table->name(),
                        WriteCsvString(*table));
      if (HasMetadata(table->metadata())) {
        writer.AddSection(std::string(kDeltaMetaPrefix) + table->name(),
                          SerializeTableMetadata(table->metadata()));
      }
    }
    LAKE_RETURN_IF_ERROR(writer.AddSection(
        kStateSection, [&](BinaryWriter* w) {
          w->WriteVarint(kStateFormatVersion);
          w->WriteVarint(delta_tables_.size());
          for (const std::shared_ptr<const Table>& table : delta_tables_) {
            w->WriteString(table->name());
          }
          w->WriteVarint(tombstone_names_.size());
          for (const std::string& name : tombstone_names_) {
            w->WriteString(name);
          }
          return Status::OK();
        }));
  }
  LAKE_ASSIGN_OR_RETURN(uint64_t generation, options_.store->Commit(writer));
  (void)generation;
  return Status::OK();
}

Result<std::unique_ptr<LiveEngine>> LiveEngine::Recover(
    store::SnapshotStore* store, Options options, RecoveryReport* report) {
  if (store == nullptr) {
    return Status::InvalidArgument("null snapshot store");
  }
  // Recovering from a store implies persisting to it: later Checkpoint /
  // post-compaction commits go to the same place the state came from.
  options.store = store;
  RecoveryReport local_report;
  RecoveryReport& rep = report != nullptr ? *report : local_report;

  LAKE_ASSIGN_OR_RETURN(store::SnapshotStore::Opened opened,
                        store->OpenLatest());
  rep.snapshot_generation = opened.generation;
  const store::SnapshotReader& reader = opened.reader;

  // Base catalog from the committed envelope (corrupt table sections are
  // quarantined by LoadSnapshot; SnapshotStore commits are atomic, so in
  // practice the committed generation parses whole).
  auto catalog = std::make_shared<DataLakeCatalog>();
  LAKE_ASSIGN_OR_RETURN(std::vector<TableId> loaded,
                        catalog->LoadSnapshot(reader));
  rep.tables_loaded = loaded.size();

  // Base indexes: prefer the persisted sections (skips the O(lake)
  // build); a section that is missing, corrupt, or fails validation
  // forces a fresh build of ALL base indexes from the loaded tables, so
  // the recovered base is never quarantined or degraded.
  DiscoveryEngine::Options deferred = options.base_options;
  deferred.defer_index_build = true;
  auto engine = std::make_unique<DiscoveryEngine>(catalog.get(), options.kb,
                                                  deferred);
  bool all_sections_loaded = true;
  for (const std::string& section : engine->PendingIndexSections()) {
    Result<std::string> payload = reader.ReadSection(section);
    Status status = payload.ok()
                        ? engine->LoadIndexSection(section, payload.value())
                        : payload.status();
    if (status.ok()) {
      ++rep.index_sections_loaded;
    } else {
      LAKE_LOG(Warning) << "index section " << section
                        << " unusable, rebuilding: " << status.ToString();
      ++rep.index_sections_rebuilt;
      all_sections_loaded = false;
    }
  }
  if (!all_sections_loaded) {
    engine = std::make_unique<DiscoveryEngine>(catalog.get(), options.kb,
                                               options.base_options);
  }

  auto live = std::unique_ptr<LiveEngine>(
      new LiveEngine(catalog, std::shared_ptr<const DiscoveryEngine>(
                                  std::move(engine)),
                     std::move(options)));
  live->number_ = opened.generation;

  // Replay the persisted delta. A missing state section is a pre-ingest
  // snapshot (empty delta); a corrupt one drops the whole delta — the
  // base is still consistent, recovery just loses the uncompacted tail.
  if (!reader.has_section(kStateSection)) {
    std::lock_guard<std::mutex> lock(live->mu_);
    live->Publish();  // refresh generation number
    return live;
  }
  Batch replay;
  Result<std::string> state = reader.ReadSection(kStateSection);
  if (state.ok()) {
    std::istringstream in(state.value());
    BinaryReader r(&in);
    auto parse = [&]() -> Status {
      LAKE_ASSIGN_OR_RETURN(uint64_t format, r.ReadVarint());
      if (format != kStateFormatVersion) {
        return Status::IoError("unknown ingest state version " +
                               std::to_string(format));
      }
      LAKE_ASSIGN_OR_RETURN(uint64_t num_deltas, r.ReadVarint());
      for (uint64_t i = 0; i < num_deltas; ++i) {
        LAKE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        Result<std::string> csv =
            reader.ReadSection(std::string(kDeltaPrefix) + name);
        if (!csv.ok()) {
          LAKE_LOG(Warning) << "dropping delta table " << name << ": "
                            << csv.status().ToString();
          ++rep.deltas_dropped;
          continue;
        }
        Result<Table> table = ReadCsvString(csv.value(), name);
        if (!table.ok()) {
          LAKE_LOG(Warning) << "dropping delta table " << name << ": "
                            << table.status().ToString();
          ++rep.deltas_dropped;
          continue;
        }
        // Companion metadata (see table_meta.h); damage costs the
        // metadata, never the table.
        const std::string meta_section = std::string(kDeltaMetaPrefix) + name;
        if (reader.has_section(meta_section)) {
          Result<std::string> meta_bytes = reader.ReadSection(meta_section);
          Result<TableMetadata> meta =
              meta_bytes.ok() ? ParseTableMetadata(*meta_bytes)
                              : Result<TableMetadata>(meta_bytes.status());
          if (meta.ok()) {
            table->metadata() = std::move(meta).value();
          } else {
            LAKE_LOG(Warning) << "dropping metadata of delta table " << name
                              << ": " << meta.status().ToString();
          }
        }
        replay.adds.push_back(std::move(table).value());
      }
      LAKE_ASSIGN_OR_RETURN(uint64_t num_tombstones, r.ReadVarint());
      for (uint64_t i = 0; i < num_tombstones; ++i) {
        LAKE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
        replay.removes.push_back(std::move(name));
      }
      return Status::OK();
    };
    Status parsed = parse();
    if (!parsed.ok()) {
      LAKE_LOG(Warning) << "ingest state unreadable, dropping delta: "
                        << parsed.ToString();
      rep.deltas_dropped += replay.adds.size();
      replay = Batch{};
    }
  } else {
    LAKE_LOG(Warning) << "ingest state section corrupt, dropping delta: "
                      << state.status().ToString();
  }
  rep.tombstones_replayed = replay.removes.size();
  const size_t attempted = replay.adds.size();
  BatchOutcome outcome = live->ApplyBatch(std::move(replay));
  for (const Result<TableId>& add : outcome.adds) {
    if (add.ok()) {
      ++rep.deltas_replayed;
    } else {
      ++rep.deltas_dropped;
    }
  }
  (void)attempted;
  return live;
}

size_t LiveEngine::num_delta_tables() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delta_tables_.size();
}

size_t LiveEngine::num_tombstones() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tombstone_names_.size();
}

}  // namespace lake::ingest
