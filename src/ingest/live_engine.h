#ifndef LAKE_INGEST_LIVE_ENGINE_H_
#define LAKE_INGEST_LIVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ingest/generation.h"
#include "serve/metrics.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "util/status.h"

namespace lake::ingest {

/// Deterministic digest of one table: CRC32C chained over the canonical
/// serialization (name, CSV bytes, then metadata when present — the same
/// bytes the WAL and snapshot delta sections persist). Two tables with
/// identical visible content digest identically regardless of how they
/// were ingested (cold build, delta add, WAL replay, repair copy).
uint32_t TableContentDigest(const Table& table);

/// Online ingestion over a DiscoveryEngine: the survey's frozen-corpus
/// indexes made dynamic with an LSM-style base+delta split.
///
///   - The *base* is an immutable catalog + fully-indexed DiscoveryEngine
///     (JOSIE postings, LSH-Ensemble buckets, HNSW graph, ...), exactly
///     what a cold build produces.
///   - The *delta* is a bounded memtable: tables added since the last
///     compaction, indexed by a small DiscoveryEngine built over only
///     those tables (O(delta) per publish, never O(lake)), plus
///     tombstones masking removed base tables.
///   - Every mutation publishes a fresh immutable Generation via an
///     atomic shared_ptr swap; readers Acquire() and query without locks
///     while the swapped-out generation drains RCU-style.
///   - Compact() folds the delta into a fresh base off the serving path
///     and swaps generations; the result is bit-identical to a cold
///     rebuild over the surviving corpus (tables sorted by name), so
///     compaction restores exact single-index answers.
///
/// Thread-safety: any number of reader threads may Acquire()/query
/// concurrently with one another and with mutators. Mutations
/// (AddTable/RemoveTable/ApplyBatch/Compact/Checkpoint) are serialized
/// internally; the heavy compaction build runs outside that lock.
class LiveEngine {
 public:
  struct Options {
    /// Options for the base engine (compaction rebuilds, Recover). Must
    /// match the options the initial base engine was built with.
    DiscoveryEngine::Options base_options;
    /// Options for the delta memtable engine. The default keeps the
    /// mergeable modalities (keyword, exact join, LSH Ensemble, JOSIE,
    /// TUS, Starmie) and drops the heavyweight long tail; embedding_dim
    /// is copied from base_options at construction so base and delta
    /// score in the same embedding space.
    DiscoveryEngine::Options delta_options = DefaultDeltaOptions();
    /// Optional curated KB handed to every engine build.
    const KnowledgeBase* kb = nullptr;
    /// Optional durability: Checkpoint() and post-compaction persistence
    /// commit through this store. Not owned.
    store::SnapshotStore* store = nullptr;
    /// Optional metrics sink (ingest.* counters/gauges/histograms).
    serve::MetricsRegistry* metrics = nullptr;
    /// Checkpoint automatically after every successful compaction (only
    /// meaningful with a store).
    bool persist_after_compact = true;
    /// Write-ahead logging (requires a store; segments live in
    /// "<store dir>/wal"). Every accepted mutation batch is appended —
    /// and synced, per wal_options.sync — BEFORE it is applied and
    /// acknowledged, so Recover() replays acknowledged work a crash
    /// would otherwise lose between checkpoints. If the log cannot be
    /// opened or appended, the batch is rejected (fail-stop), never
    /// acknowledged-but-volatile.
    bool enable_wal = false;
    store::WalWriter::Options wal_options;

    static DiscoveryEngine::Options DefaultDeltaOptions();
  };

  /// Wraps an already-built base. `base_engine` must have been built over
  /// `*base_catalog` with options equal to `options.base_options`.
  LiveEngine(std::shared_ptr<const DataLakeCatalog> base_catalog,
             std::shared_ptr<const DiscoveryEngine> base_engine,
             Options options);

  /// Builds the base engine from the catalog (cold start convenience).
  LiveEngine(std::shared_ptr<const DataLakeCatalog> base_catalog,
             Options options);

  /// Snapshot section names of the ingest state (alongside the base's
  /// "table/<name>" and "index/..." sections).
  static constexpr const char* kStateSection = "ingest/state";
  static constexpr const char* kDeltaPrefix = "ingest/delta/";
  /// Durable-LSN marker: records at or below it are covered by this
  /// snapshot; Recover() replays only WAL records past it. A separate
  /// section (not a state-format bump) so pre-WAL readers still parse
  /// every WAL-era snapshot.
  static constexpr const char* kWalSection = "ingest/wal";

  // --- Read path --------------------------------------------------------

  /// Current generation; queries run against the acquired snapshot (see
  /// MergedKeyword / MergedJoinable / MergedUnionable) and never block
  /// ingestion or compaction.
  std::shared_ptr<const Generation> Acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Publish sequence of the current generation (cache-key ingredient).
  uint64_t version() const {
    return version_published_.load(std::memory_order_acquire);
  }

  // --- Content digests ---------------------------------------------------

  /// Rolled-up digest of the *visible* content (base minus tombstones plus
  /// delta): an order-independent combination of per-table digests, so two
  /// engines with the same visible tables report the same value no matter
  /// how the content is split between base and delta or in what order it
  /// arrived. Compaction therefore never changes it; divergence (a missed
  /// write, a dropped delta section, a bit-flipped recovery) always does.
  /// 0 for an empty lake. Maintained incrementally (O(changed tables) per
  /// mutation) and published with each generation; lock-free to read.
  uint64_t content_digest() const {
    return digest_published_.load(std::memory_order_acquire);
  }

  /// Per-table digests of every visible table, keyed by name — the
  /// drill-down side of content_digest(): two engines whose rollups
  /// disagree diff these maps to find exactly which tables diverged.
  std::map<std::string, uint32_t> TableDigests() const;

  /// Recomputes the rollup from scratch over the current generation's
  /// visible tables (O(lake)); tests use it to prove the incremental
  /// maintenance never drifts.
  uint64_t RecomputeContentDigest() const;

  // --- Mutations --------------------------------------------------------

  struct Batch {
    std::vector<Table> adds;
    std::vector<std::string> removes;
  };
  struct BatchOutcome {
    /// Lake-visible id per add, in Batch order (ids are generation-scoped).
    std::vector<Result<TableId>> adds;
    std::vector<Status> removes;
    bool published = false;
  };

  /// Applies removes then adds, then publishes ONE new generation. Failed
  /// entries (duplicate name, unknown remove) are reported individually
  /// and do not block the rest of the batch. Failpoint
  /// "ingest.publish.swap" rejects the whole batch atomically.
  BatchOutcome ApplyBatch(Batch batch);

  /// Single-table conveniences over ApplyBatch.
  Result<TableId> AddTable(Table table);
  Status RemoveTable(const std::string& name);

  // --- Compaction -------------------------------------------------------

  struct CompactionStats {
    uint64_t generation = 0;  // generation number after the swap
    size_t input_base_tables = 0;
    size_t input_delta_tables = 0;
    size_t tombstones_cleared = 0;
    size_t output_tables = 0;
    double duration_ms = 0;
  };

  /// Folds the delta into a fresh immutable base: copies the surviving
  /// tables (base minus tombstones plus delta) into a new catalog in
  /// sorted-name order, builds a full DiscoveryEngine over it off the
  /// serving path, and atomically swaps generations. Tables ingested
  /// while the build ran stay in the residual delta. Failpoints
  /// "ingest.compact.build" (before the build) and "ingest.compact.swap"
  /// (before the swap) abort with the engine state unchanged. With a
  /// store and persist_after_compact, the new generation is checkpointed
  /// after the swap (a crash between swap and persist costs only the
  /// compaction, never consistency).
  Result<CompactionStats> Compact();

  /// True when the delta size or tombstone ratio warrants a compaction.
  bool CompactionNeeded(size_t max_delta_tables,
                        double max_tombstone_ratio) const;

  // --- Durability -------------------------------------------------------

  /// Commits the full live state — base catalog ("table/<name>"), base
  /// index sections ("index/..."), delta tables ("ingest/delta/<name>"),
  /// and tombstones + delta order ("ingest/state") — as one snapshot
  /// generation. On any failure (failpoint "ingest.delta.persist"
  /// included) the store keeps its previous generation. FailedPrecondition
  /// without a store.
  Status Checkpoint();

  struct RecoveryReport {
    uint64_t snapshot_generation = 0;
    size_t tables_loaded = 0;
    size_t index_sections_loaded = 0;
    /// Base index sections that failed to load and forced a fresh build.
    size_t index_sections_rebuilt = 0;
    size_t deltas_replayed = 0;
    size_t deltas_dropped = 0;
    size_t tombstones_replayed = 0;
    /// WAL records (mutation batches) replayed past the checkpoint LSN.
    uint64_t wal_records_replayed = 0;
    /// Bytes cut from the log's torn/corrupt tail (0 on a clean log).
    uint64_t wal_truncated_bytes = 0;
    /// LSN the checkpoint declared durable; replay starts after it.
    uint64_t wal_durable_lsn = 0;
    /// Highest valid LSN found in the log.
    uint64_t wal_last_lsn = 0;
  };

  /// Rebuilds a LiveEngine from the newest committed snapshot generation:
  /// loads the base catalog and index sections from one envelope (a
  /// section that fails its CRC or validation forces a fresh base index
  /// build from the loaded tables — recovery never serves a quarantined
  /// base), then replays the persisted delta tables and tombstones;
  /// corrupt delta sections are dropped, costing staleness, not startup.
  /// Pre-ingest (PR 2 era) snapshots without ingest sections recover to
  /// an empty delta.
  static Result<std::unique_ptr<LiveEngine>> Recover(
      store::SnapshotStore* store, Options options,
      RecoveryReport* report = nullptr);

  // --- Introspection ----------------------------------------------------

  size_t num_delta_tables() const;
  size_t num_tombstones() const;
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

  /// Point-in-time WAL health (all zero when the WAL is disabled).
  /// unsynced_records is the live loss window: acknowledged mutations a
  /// crash right now would lose (always 0 under SyncPolicy::kEveryAppend).
  struct WalStatus {
    bool enabled = false;
    uint64_t last_lsn = 0;
    uint64_t durable_lsn = 0;
    uint64_t unsynced_records = 0;
  };
  WalStatus wal_status() const;

 private:
  /// Builds a DeltaPart from the mutable state and resolves tombstone
  /// names against `base_catalog`. Caller holds mu_.
  std::shared_ptr<const DeltaPart> BuildDeltaPart() const;
  /// Folds one table into / out of the incremental rollup. Caller holds
  /// mu_ (or is the constructor).
  void AddTableDigest(const Table& table);
  void DropTableDigest(const std::string& name);
  /// Publishes a new generation from the current state. Caller holds mu_.
  void Publish();
  void InitMetrics();

  /// "<store dir>/wal"; empty without a store.
  std::string WalDir() const;
  /// Recover() tail: reads the checkpoint's durable LSN, replays WAL
  /// records past it, and opens the writer on a fresh segment.
  static Result<std::unique_ptr<LiveEngine>> FinishRecovery(
      std::unique_ptr<LiveEngine> live, const store::SnapshotReader& reader,
      bool wal_enabled, RecoveryReport* rep);
  /// Opens the writer per options_ (fail-stop: an unopenable log disables
  /// acknowledgement, not durability). Caller holds mu_.
  Status OpenWal(uint64_t next_lsn);
  void RollWal();
  /// Diffs writer stats into the monotonic ingest.wal.* counters and
  /// refreshes the unsynced-records gauge. Caller holds mu_.
  void ExportWalMetrics();

  Options options_;

  /// Serializes mutations; readers never take it.
  mutable std::mutex mu_;
  // --- state under mu_ --------------------------------------------------
  std::shared_ptr<const DataLakeCatalog> base_catalog_;
  std::shared_ptr<const DiscoveryEngine> base_engine_;
  /// Master copies of live delta tables, arrival order. shared_ptr so a
  /// compaction snapshot can identify consumed entries by pointer even if
  /// a name is removed and re-added while the build runs.
  std::vector<std::shared_ptr<const Table>> delta_tables_;
  /// Names removed since the compaction that will physically drop them.
  std::set<std::string> tombstone_names_;
  uint64_t number_ = 0;   // compaction generation
  uint64_t version_ = 0;  // publish sequence
  /// Per-visible-table content digests + their order-independent rollup,
  /// maintained incrementally alongside the visible set.
  std::map<std::string, uint32_t> table_digests_;
  uint64_t digest_rollup_ = 0;
  /// Log-before-apply journal (null when disabled or the open failed —
  /// then every mutation is rejected fail-stop while enable_wal is set).
  std::unique_ptr<store::WalWriter> wal_;
  // ----------------------------------------------------------------------

  std::atomic<std::shared_ptr<const Generation>> current_;
  std::atomic<uint64_t> version_published_{0};
  std::atomic<uint64_t> digest_published_{0};
  std::atomic<uint64_t> compactions_{0};

  // Metric handles (null without a registry).
  serve::Counter* tables_added_ = nullptr;
  serve::Counter* tables_removed_ = nullptr;
  serve::Counter* publishes_ = nullptr;
  serve::Counter* compactions_counter_ = nullptr;
  serve::Counter* compaction_failures_ = nullptr;
  serve::Gauge* delta_tables_gauge_ = nullptr;
  serve::Gauge* tombstones_gauge_ = nullptr;
  serve::Gauge* generation_gauge_ = nullptr;
  serve::LatencyHistogram* publish_latency_ = nullptr;
  serve::LatencyHistogram* compaction_latency_ = nullptr;
  serve::Counter* wal_appends_ = nullptr;
  serve::Counter* wal_bytes_ = nullptr;
  serve::Counter* wal_fsyncs_ = nullptr;
  serve::Counter* wal_replayed_ = nullptr;
  serve::Counter* wal_truncated_bytes_ = nullptr;
  serve::Gauge* wal_unsynced_gauge_ = nullptr;
  /// Writer stats already exported to the counters (counters are
  /// monotonic; writer stats reset when the writer is reopened).
  store::WalWriter::Stats wal_exported_;
};

}  // namespace lake::ingest

#endif  // LAKE_INGEST_LIVE_ENGINE_H_
