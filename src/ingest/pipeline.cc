#include "ingest/pipeline.h"

#include <chrono>
#include <utility>
#include <vector>

#include "table/csv.h"
#include "util/logging.h"

namespace lake::ingest {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

IngestPipeline::IngestPipeline(LiveEngine* engine, Options options)
    : engine_(engine), options_(options) {
  if (engine_->options().metrics != nullptr) {
    serve::MetricsRegistry& m = *engine_->options().metrics;
    queue_depth_gauge_ = m.GetGauge("ingest.queue.depth");
    parse_latency_ = m.GetHistogram("ingest.parse_ms");
  }
  worker_ = std::thread([this] { WorkerLoop(); });
}

IngestPipeline::~IngestPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  worker_.join();
  // Remaining queued items never published; resolve their futures so no
  // waiter hangs on destruction.
  for (Item& item : queue_) {
    const Status aborted = Status::Cancelled("ingest pipeline shut down");
    if (item.kind == Item::Kind::kRemove) {
      item.remove_promise.set_value(aborted);
    } else {
      item.add_promise.set_value(aborted);
    }
  }
}

bool IngestPipeline::TryEnqueue(Item item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= options_.queue_capacity) return false;
    queue_.push_back(std::move(item));
    if (queue_depth_gauge_ != nullptr) queue_depth_gauge_->Set(queue_.size());
  }
  queue_cv_.notify_one();
  return true;
}

std::future<Result<TableId>> IngestPipeline::SubmitCsvFile(std::string path) {
  Item item;
  item.kind = Item::Kind::kCsvFile;
  item.payload = std::move(path);
  std::future<Result<TableId>> future = item.add_promise.get_future();
  if (!TryEnqueue(std::move(item))) {
    std::promise<Result<TableId>> rejected;
    rejected.set_value(Status::Overloaded("ingest queue full"));
    return rejected.get_future();
  }
  return future;
}

std::future<Result<TableId>> IngestPipeline::SubmitCsvString(
    std::string csv, std::string table_name) {
  Item item;
  item.kind = Item::Kind::kCsvString;
  item.payload = std::move(csv);
  item.name = std::move(table_name);
  std::future<Result<TableId>> future = item.add_promise.get_future();
  if (!TryEnqueue(std::move(item))) {
    std::promise<Result<TableId>> rejected;
    rejected.set_value(Status::Overloaded("ingest queue full"));
    return rejected.get_future();
  }
  return future;
}

std::future<Result<TableId>> IngestPipeline::SubmitTable(Table table) {
  Item item;
  item.kind = Item::Kind::kTable;
  item.table = std::move(table);
  std::future<Result<TableId>> future = item.add_promise.get_future();
  if (!TryEnqueue(std::move(item))) {
    std::promise<Result<TableId>> rejected;
    rejected.set_value(Status::Overloaded("ingest queue full"));
    return rejected.get_future();
  }
  return future;
}

std::future<Status> IngestPipeline::SubmitRemove(std::string name) {
  Item item;
  item.kind = Item::Kind::kRemove;
  item.payload = std::move(name);
  std::future<Status> future = item.remove_promise.get_future();
  if (!TryEnqueue(std::move(item))) {
    std::promise<Status> rejected;
    rejected.set_value(Status::Overloaded("ingest queue full"));
    return rejected.get_future();
  }
  return future;
}

void IngestPipeline::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && in_flight_ == 0) || stop_;
  });
}

size_t IngestPipeline::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t IngestPipeline::batches_applied() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_applied_;
}

bool IngestPipeline::NextBatch(std::vector<Item>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stop with nothing left to drain

  // Coalesce: give stragglers up to batch_max_delay_ms to join, capped at
  // batch_max_tables per publish.
  if (queue_.size() < options_.batch_max_tables &&
      options_.batch_max_delay_ms > 0 && !stop_) {
    queue_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.batch_max_delay_ms),
        [this] {
          return stop_ || queue_.size() >= options_.batch_max_tables;
        });
  }
  const size_t n = std::min(queue_.size(), options_.batch_max_tables);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  in_flight_ += n;
  if (queue_depth_gauge_ != nullptr) queue_depth_gauge_->Set(queue_.size());
  return true;
}

void IngestPipeline::ApplyBatch(std::vector<Item> items) {
  // Parse phase (worker thread, no locks): raw CSV → Table. Parse
  // failures resolve their own futures and drop out of the batch.
  LiveEngine::Batch batch;
  std::vector<Item*> add_items;   // aligned with batch.adds
  std::vector<Item*> remove_items;  // aligned with batch.removes
  for (Item& item : items) {
    switch (item.kind) {
      case Item::Kind::kCsvFile:
      case Item::Kind::kCsvString: {
        const auto start = Clock::now();
        Result<Table> parsed =
            item.kind == Item::Kind::kCsvFile
                ? ReadCsvFile(item.payload)
                : ReadCsvString(item.payload, item.name);
        if (parse_latency_ != nullptr) {
          parse_latency_->Record(
              std::chrono::duration<double, std::micro>(Clock::now() - start)
                  .count());
        }
        if (!parsed.ok()) {
          item.add_promise.set_value(parsed.status());
          continue;
        }
        batch.adds.push_back(std::move(parsed).value());
        add_items.push_back(&item);
        break;
      }
      case Item::Kind::kTable:
        batch.adds.push_back(std::move(item.table));
        add_items.push_back(&item);
        break;
      case Item::Kind::kRemove:
        batch.removes.push_back(std::move(item.payload));
        remove_items.push_back(&item);
        break;
    }
  }

  LiveEngine::BatchOutcome outcome = engine_->ApplyBatch(std::move(batch));
  for (size_t i = 0; i < add_items.size(); ++i) {
    add_items[i]->add_promise.set_value(std::move(outcome.adds[i]));
  }
  for (size_t i = 0; i < remove_items.size(); ++i) {
    remove_items[i]->remove_promise.set_value(std::move(outcome.removes[i]));
  }

  bool checkpoint = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ -= items.size();
    ++batches_applied_;
    checkpoint = options_.checkpoint_every_batches > 0 &&
                 batches_applied_ % options_.checkpoint_every_batches == 0;
  }
  idle_cv_.notify_all();

  if (checkpoint) {
    Status persisted = engine_->Checkpoint();
    if (!persisted.ok()) {
      LAKE_LOG(Warning) << "periodic ingest checkpoint failed: "
                        << persisted.ToString();
    }
  }
}

void IngestPipeline::WorkerLoop() {
  std::vector<Item> batch;
  while (true) {
    batch.clear();
    if (!NextBatch(&batch)) break;
    ApplyBatch(std::move(batch));
    batch = std::vector<Item>();
  }
}

}  // namespace lake::ingest
