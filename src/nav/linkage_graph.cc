#include "nav/linkage_graph.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "sketch/set_ops.h"
#include "text/normalizer.h"
#include "text/qgram.h"

namespace lake {

const char* LinkTypeToString(LinkType type) {
  switch (type) {
    case LinkType::kContentSimilarity:
      return "content";
    case LinkType::kSchemaSimilarity:
      return "schema";
    case LinkType::kPkFkCandidate:
      return "pk-fk";
  }
  return "?";
}

void LinkageGraph::AddLink(const ColumnRef& a, const ColumnRef& b,
                           LinkType type, double weight) {
  const uint32_t idx = static_cast<uint32_t>(links_.size());
  links_.push_back(Link{a, b, type, weight});
  by_column_[a].push_back(idx);
  by_column_[b].push_back(idx);
}

LinkageGraph::LinkageGraph(const DataLakeCatalog* catalog, Options options)
    : catalog_(catalog), options_(options) {
  // Gather eligible columns with normalized sets.
  std::vector<ColumnRef> refs;
  std::vector<HashedSet> sets;
  std::vector<double> uniqueness;
  std::vector<std::string> names;
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    std::vector<std::string> values;
    for (const std::string& v : col.DistinctStrings()) {
      const std::string norm = NormalizeValue(v);
      if (!norm.empty()) values.push_back(norm);
    }
    if (values.size() < options_.min_distinct) return;
    refs.push_back(ref);
    sets.push_back(HashedSet::FromValues(values));
    uniqueness.push_back(catalog_->stats(ref).Uniqueness());
    names.push_back(NormalizeAttributeName(col.name()));
  });

  // Content + PK-FK edges via an inverted index on value hashes.
  std::unordered_map<uint64_t, std::vector<size_t>> by_value;
  for (size_t i = 0; i < sets.size(); ++i) {
    for (uint64_t h : sets[i].hashes()) by_value[h].push_back(i);
  }
  std::unordered_map<size_t, size_t> overlap;
  for (size_t i = 0; i < sets.size(); ++i) {
    overlap.clear();
    for (uint64_t h : sets[i].hashes()) {
      for (size_t j : by_value[h]) {
        if (j > i) ++overlap[j];
      }
    }
    for (const auto& [j, inter] : overlap) {
      if (refs[i].table_id == refs[j].table_id) continue;  // intra-table: skip
      const size_t uni = sets[i].size() + sets[j].size() - inter;
      const double jac = uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
      if (jac >= options_.content_jaccard_threshold) {
        AddLink(refs[i], refs[j], LinkType::kContentSimilarity, jac);
      }
      // PK-FK: the key side must be near-unique and contain the FK side.
      const double cont_i_in_j = static_cast<double>(inter) / sets[i].size();
      const double cont_j_in_i = static_cast<double>(inter) / sets[j].size();
      if (uniqueness[i] >= options_.pk_uniqueness_threshold &&
          cont_j_in_i >= options_.fk_containment_threshold) {
        AddLink(refs[i], refs[j], LinkType::kPkFkCandidate, cont_j_in_i);
      } else if (uniqueness[j] >= options_.pk_uniqueness_threshold &&
                 cont_i_in_j >= options_.fk_containment_threshold) {
        AddLink(refs[j], refs[i], LinkType::kPkFkCandidate, cont_i_in_j);
      }
    }
  }

  // Schema edges: attribute-name q-gram similarity, grouped by first
  // letter to avoid the full quadratic scan on large lakes.
  std::unordered_map<char, std::vector<size_t>> by_initial;
  for (size_t i = 0; i < names.size(); ++i) {
    if (!names[i].empty()) by_initial[names[i][0]].push_back(i);
  }
  for (const auto& [initial, group] : by_initial) {
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        const size_t i = group[a];
        const size_t j = group[b];
        if (refs[i].table_id == refs[j].table_id) continue;
        const double sim = QGramJaccard(names[i], names[j], 3);
        if (sim >= options_.schema_similarity_threshold) {
          AddLink(refs[i], refs[j], LinkType::kSchemaSimilarity, sim);
        }
      }
    }
  }
}

std::vector<Link> LinkageGraph::Neighbors(const ColumnRef& ref) const {
  std::vector<Link> out;
  auto it = by_column_.find(ref);
  if (it == by_column_.end()) return out;
  out.reserve(it->second.size());
  for (uint32_t idx : it->second) out.push_back(links_[idx]);
  return out;
}

std::vector<Link> LinkageGraph::Neighbors(const ColumnRef& ref,
                                          LinkType type) const {
  std::vector<Link> out;
  for (const Link& l : Neighbors(ref)) {
    if (l.type == type) out.push_back(l);
  }
  return out;
}

std::vector<std::pair<TableId, int>> LinkageGraph::RelatedTables(
    TableId table, int hops) const {
  std::unordered_map<TableId, int> dist;
  std::queue<std::pair<TableId, int>> frontier;
  dist[table] = 0;
  frontier.push({table, 0});
  while (!frontier.empty()) {
    const auto [t, d] = frontier.front();
    frontier.pop();
    if (d >= hops) continue;
    const Table& tb = catalog_->table(t);
    for (uint32_t c = 0; c < tb.num_columns(); ++c) {
      for (const Link& l : Neighbors(ColumnRef{t, c})) {
        const TableId other =
            l.from.table_id == t ? l.to.table_id : l.from.table_id;
        if (dist.count(other)) continue;
        dist[other] = d + 1;
        frontier.push({other, d + 1});
      }
    }
  }
  std::vector<std::pair<TableId, int>> out;
  for (const auto& [t, d] : dist) {
    if (t != table) out.push_back({t, d});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace lake
