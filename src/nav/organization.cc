#include "nav/organization.h"

#include <algorithm>
#include <limits>

namespace lake {

namespace {

/// Internal binary dendrogram node produced by agglomerative clustering.
struct BinaryNode {
  Vector sum;          // un-normalized centroid sum
  size_t count = 0;
  int left = -1, right = -1;
  int64_t table = -1;
};

Vector CentroidOf(const BinaryNode& n) {
  Vector c = n.sum;
  NormalizeInPlace(c);
  return c;
}

}  // namespace

LakeOrganization::LakeOrganization(const DataLakeCatalog* catalog,
                                   const TableEncoder* encoder,
                                   Options options)
    : catalog_(catalog), options_(options) {
  const std::vector<TableId> tables = catalog_->AllTables();
  num_leaves_ = tables.size();
  if (tables.empty()) return;

  // Leaves.
  std::vector<BinaryNode> binary;
  binary.reserve(tables.size() * 2);
  std::vector<int> active;
  for (TableId t : tables) {
    BinaryNode leaf;
    leaf.sum = encoder->Encode(catalog_->table(t));
    leaf.count = 1;
    leaf.table = t;
    active.push_back(static_cast<int>(binary.size()));
    binary.push_back(std::move(leaf));
  }

  // Average-linkage agglomeration via centroid cosine. O(n^2) per merge;
  // lake organization is an offline batch step, and n is the number of
  // *tables*, not columns or rows.
  while (active.size() > 1) {
    double best = -std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 1;
    std::vector<Vector> cents(active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      cents[i] = CentroidOf(binary[active[i]]);
    }
    for (size_t i = 0; i < active.size(); ++i) {
      for (size_t j = i + 1; j < active.size(); ++j) {
        const double sim = Dot(cents[i], cents[j]);
        if (sim > best) {
          best = sim;
          bi = i;
          bj = j;
        }
      }
    }
    BinaryNode merged;
    merged.left = active[bi];
    merged.right = active[bj];
    merged.count = binary[active[bi]].count + binary[active[bj]].count;
    merged.sum = binary[active[bi]].sum;
    AddInPlace(merged.sum, binary[active[bj]].sum);
    const int merged_idx = static_cast<int>(binary.size());
    binary.push_back(std::move(merged));
    // Remove bj first (larger index) to keep bi valid.
    active.erase(active.begin() + bj);
    active.erase(active.begin() + bi);
    active.push_back(merged_idx);
  }

  // Flatten the dendrogram into a bounded-branching navigation tree.
  struct Flattener {
    const std::vector<BinaryNode>& binary;
    size_t branching;
    std::vector<Node>& out;

    int Run(int b) {
      const BinaryNode& n = binary[b];
      Node node;
      node.centroid = CentroidOf(n);
      if (n.table >= 0) {
        node.table = n.table;
        out.push_back(std::move(node));
        return static_cast<int>(out.size()) - 1;
      }
      // Expand the deepest internal frontier until branching is reached.
      std::vector<int> frontier = {n.left, n.right};
      bool grew = true;
      while (frontier.size() < branching && grew) {
        grew = false;
        for (size_t i = 0; i < frontier.size(); ++i) {
          const BinaryNode& f = binary[frontier[i]];
          if (f.table >= 0) continue;  // leaf
          const int l = f.left, r = f.right;
          frontier.erase(frontier.begin() + i);
          frontier.push_back(l);
          frontier.push_back(r);
          grew = true;
          break;
        }
      }
      for (int f : frontier) node.children.push_back(Run(f));
      out.push_back(std::move(node));
      return static_cast<int>(out.size()) - 1;
    }
  };
  Flattener flattener{binary, std::max<size_t>(2, options_.branching),
                      nodes_};
  root_ = flattener.Run(static_cast<int>(binary.size()) - 1);
}

std::vector<int> LakeOrganization::Navigate(const Vector& topic) const {
  std::vector<int> path;
  if (root_ < 0) return path;
  int cur = root_;
  path.push_back(cur);
  while (!nodes_[cur].children.empty()) {
    int best_child = nodes_[cur].children[0];
    double best = -std::numeric_limits<double>::infinity();
    for (int ch : nodes_[cur].children) {
      const double sim = Dot(topic, nodes_[ch].centroid);
      if (sim > best) {
        best = sim;
        best_child = ch;
      }
    }
    cur = best_child;
    path.push_back(cur);
  }
  return path;
}

int LakeOrganization::NavigationCost(const Vector& topic,
                                     TableId target) const {
  const std::vector<int> path = Navigate(topic);
  if (path.empty()) return -1;
  int cost = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    cost += static_cast<int>(nodes_[path[i]].children.size());
  }
  const Node& leaf = nodes_[path.back()];
  return leaf.table == static_cast<int64_t>(target) ? cost : -1;
}

std::string LakeOrganization::ToString(size_t max_depth) const {
  std::string out;
  struct Printer {
    const LakeOrganization& org;
    std::string& out;
    size_t max_depth;
    void Run(int node, size_t depth) {
      out.append(depth * 2, ' ');
      const Node& n = org.nodes_[node];
      if (n.table >= 0) {
        out += org.catalog_->table(static_cast<TableId>(n.table)).name();
        out += "\n";
        return;
      }
      out += "+ (" + std::to_string(n.children.size()) + " children)\n";
      if (depth + 1 > max_depth) {
        out.append((depth + 1) * 2, ' ');
        out += "...\n";
        return;
      }
      for (int ch : n.children) Run(ch, depth + 1);
    }
  };
  if (root_ >= 0) Printer{*this, out, max_depth}.Run(root_, 0);
  return out;
}

}  // namespace lake
