#include "nav/ronin.h"

#include <algorithm>
#include <unordered_map>

#include "text/normalizer.h"
#include "util/random.h"

namespace lake {

RoninExplorer::GroupNode RoninExplorer::Organize(
    const std::vector<TableId>& results) const {
  std::vector<Vector> vecs;
  vecs.reserve(results.size());
  for (TableId t : results) vecs.push_back(encoder_->Encode(catalog_->table(t)));
  return Build(results, vecs, 0);
}

RoninExplorer::GroupNode RoninExplorer::Build(
    const std::vector<TableId>& tables, const std::vector<Vector>& vecs,
    size_t depth) const {
  GroupNode node;
  node.tables = tables;
  node.label = LabelFor(tables);
  if (tables.size() <= options_.min_group_size ||
      depth >= options_.max_depth) {
    return node;
  }

  // Spherical k-means with deterministic seeding.
  const size_t k = std::min(options_.groups, tables.size());
  if (k < 2) return node;
  Rng rng(options_.seed + depth * 1000003 + tables.size());
  std::vector<Vector> centroids;
  {
    // k-means++-lite: first random, then farthest-first.
    std::vector<size_t> chosen;
    chosen.push_back(rng.NextBounded(tables.size()));
    while (chosen.size() < k) {
      size_t best_idx = 0;
      double best_min = 2.0;
      for (size_t i = 0; i < vecs.size(); ++i) {
        double nearest = -2.0;
        for (size_t c : chosen) {
          nearest = std::max(nearest, Dot(vecs[i], vecs[c]));
        }
        if (nearest < best_min) {
          best_min = nearest;
          best_idx = i;
        }
      }
      chosen.push_back(best_idx);
    }
    for (size_t c : chosen) centroids.push_back(vecs[c]);
  }

  std::vector<size_t> assign(vecs.size(), 0);
  for (size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < vecs.size(); ++i) {
      size_t best = 0;
      double best_sim = -2.0;
      for (size_t c = 0; c < centroids.size(); ++c) {
        const double sim = Dot(vecs[i], centroids[c]);
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      Vector sum(centroids[c].size(), 0.0f);
      size_t count = 0;
      for (size_t i = 0; i < vecs.size(); ++i) {
        if (assign[i] == c) {
          AddInPlace(sum, vecs[i]);
          ++count;
        }
      }
      if (count > 0) {
        NormalizeInPlace(sum);
        centroids[c] = std::move(sum);
      }
    }
    if (!changed) break;
  }

  // Materialize non-empty child groups; degenerate single-cluster splits
  // stop the recursion.
  std::vector<std::vector<TableId>> group_tables(k);
  std::vector<std::vector<Vector>> group_vecs(k);
  for (size_t i = 0; i < vecs.size(); ++i) {
    group_tables[assign[i]].push_back(tables[i]);
    group_vecs[assign[i]].push_back(vecs[i]);
  }
  size_t non_empty = 0;
  for (const auto& g : group_tables) {
    if (!g.empty()) ++non_empty;
  }
  if (non_empty < 2) return node;
  for (size_t c = 0; c < k; ++c) {
    if (group_tables[c].empty()) continue;
    node.children.push_back(Build(group_tables[c], group_vecs[c], depth + 1));
  }
  return node;
}

std::string RoninExplorer::LabelFor(const std::vector<TableId>& tables) const {
  std::unordered_map<std::string, size_t> counts;
  for (TableId t : tables) {
    const Table& table = catalog_->table(t);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const std::string name = NormalizeAttributeName(table.column(c).name());
      if (!name.empty()) ++counts[name];
    }
  }
  std::string best = "(group)";
  size_t best_count = 0;
  for (const auto& [name, count] : counts) {
    if (count > best_count || (count == best_count && name < best)) {
      best = name;
      best_count = count;
    }
  }
  return best;
}

std::string RoninExplorer::ToString(const GroupNode& root) const {
  std::string out;
  struct Printer {
    std::string& out;
    void Run(const GroupNode& n, size_t depth) {
      out.append(depth * 2, ' ');
      out += n.label + " [" + std::to_string(n.tables.size()) + " tables]\n";
      for (const GroupNode& ch : n.children) Run(ch, depth + 1);
    }
  };
  Printer{out}.Run(root, 0);
  return out;
}

}  // namespace lake
