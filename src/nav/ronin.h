#ifndef LAKE_NAV_RONIN_H_
#define LAKE_NAV_RONIN_H_

#include <string>
#include <vector>

#include "embed/table_encoder.h"
#include "table/catalog.h"

namespace lake {

/// RONIN-style *online* exploration (Ouellette et al., VLDB 2021): instead
/// of organizing the whole lake offline, build a small hierarchical
/// organization over the result set of a search query, on the fly, so the
/// user can drill into a few labeled groups. This is the survey's example
/// of moving offline discovery components to query time (§3).
class RoninExplorer {
 public:
  struct Options {
    /// Groups per level (k of the recursive k-means).
    size_t groups = 4;
    /// Stop splitting below this many tables.
    size_t min_group_size = 3;
    size_t max_depth = 3;
    uint64_t seed = 5;
    size_t kmeans_iters = 12;
  };

  struct GroupNode {
    std::vector<TableId> tables;     // all tables under this node
    std::vector<GroupNode> children; // empty at leaves
    std::string label;               // most common attribute name inside
  };

  RoninExplorer(const DataLakeCatalog* catalog, const TableEncoder* encoder)
      : RoninExplorer(catalog, encoder, Options{}) {}
  RoninExplorer(const DataLakeCatalog* catalog, const TableEncoder* encoder,
                Options options)
      : catalog_(catalog), encoder_(encoder), options_(options) {}

  /// Organizes a search-result table set into a navigable hierarchy.
  GroupNode Organize(const std::vector<TableId>& results) const;

  /// Renders the hierarchy for terminal display.
  std::string ToString(const GroupNode& root) const;

 private:
  GroupNode Build(const std::vector<TableId>& tables,
                  const std::vector<Vector>& vecs, size_t depth) const;
  std::string LabelFor(const std::vector<TableId>& tables) const;

  const DataLakeCatalog* catalog_;
  const TableEncoder* encoder_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_NAV_RONIN_H_
