#ifndef LAKE_NAV_ORGANIZATION_H_
#define LAKE_NAV_ORGANIZATION_H_

#include <string>
#include <vector>

#include "embed/table_encoder.h"
#include "table/catalog.h"

namespace lake {

/// Data-lake organization for navigation (Nargesian et al., SIGMOD 2020 /
/// TKDE 2023): a hierarchy over the lake's tables such that a user can
/// *navigate* — repeatedly choose the child whose topic best matches their
/// intent — instead of formulating a query. Built by agglomerative
/// (average-linkage) clustering of table embeddings, then flattened to a
/// bounded branching factor so every internal decision is small.
///
/// The navigation model of the papers is reproduced for evaluation: the
/// expected number of inspected nodes for a user with a topic vector who
/// always descends into the most similar child (E15 compares this against
/// scanning a flat list).
class LakeOrganization {
 public:
  struct Options {
    /// Maximum children per internal node after flattening.
    size_t branching = 4;
  };

  struct Node {
    Vector centroid;                 // topic vector (unit norm)
    std::vector<int> children;       // node indices; empty at leaves
    int64_t table = -1;              // valid at leaves
  };

  /// Builds the organization over all catalog tables.
  LakeOrganization(const DataLakeCatalog* catalog, const TableEncoder* encoder)
      : LakeOrganization(catalog, encoder, Options{}) {}
  LakeOrganization(const DataLakeCatalog* catalog, const TableEncoder* encoder,
                   Options options);

  const std::vector<Node>& nodes() const { return nodes_; }
  int root() const { return root_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Greedy navigation with a topic vector: from the root, descend into
  /// the child with the most similar centroid until a leaf. Returns the
  /// node-index path (root..leaf).
  std::vector<int> Navigate(const Vector& topic) const;

  /// Number of nodes a navigating user inspects before reaching the given
  /// table: sum of sibling counts considered along the greedy path, or -1
  /// when greedy navigation lands elsewhere.
  int NavigationCost(const Vector& topic, TableId target) const;

  /// Renders the tree (names at leaves) for examples/debugging.
  std::string ToString(size_t max_depth = 3) const;

 private:
  int Flatten(int binary_node, std::vector<Node>& flat) const;

  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_leaves_ = 0;
};

}  // namespace lake

#endif  // LAKE_NAV_ORGANIZATION_H_
