#ifndef LAKE_NAV_LINKAGE_GRAPH_H_
#define LAKE_NAV_LINKAGE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "table/catalog.h"

namespace lake {

/// Edge flavors of the enterprise knowledge graph, following Aurum
/// (Fernandez et al., ICDE 2018).
enum class LinkType {
  kContentSimilarity,  // value sets overlap (Jaccard above threshold)
  kSchemaSimilarity,   // attribute names similar
  kPkFkCandidate,      // inclusion dependency with key-like left side
};

const char* LinkTypeToString(LinkType type);

/// One edge of the linkage graph.
struct Link {
  ColumnRef from;
  ColumnRef to;
  LinkType type = LinkType::kContentSimilarity;
  double weight = 0;
};

/// Aurum-style linkage graph over a catalog: columns are nodes; content,
/// schema, and PK-FK relationships are edges. Discovery-by-navigation
/// walks this graph ("find tables related to the one I'm looking at"),
/// complementing query-driven search (§2.6). Construction uses a value-
/// hash inverted index, not all-pairs comparison, so it scales with total
/// postings rather than columns².
class LinkageGraph {
 public:
  struct Options {
    double content_jaccard_threshold = 0.5;
    double schema_similarity_threshold = 0.7;  // q-gram jaccard of names
    /// PK side must have uniqueness >= this and containment of FK side
    /// >= fk_containment_threshold.
    double pk_uniqueness_threshold = 0.95;
    double fk_containment_threshold = 0.9;
    size_t min_distinct = 2;
  };

  explicit LinkageGraph(const DataLakeCatalog* catalog)
      : LinkageGraph(catalog, Options{}) {}
  LinkageGraph(const DataLakeCatalog* catalog, Options options);

  /// Edges incident to a column (both directions), any type.
  std::vector<Link> Neighbors(const ColumnRef& ref) const;

  /// Edges of one type incident to a column.
  std::vector<Link> Neighbors(const ColumnRef& ref, LinkType type) const;

  /// Tables reachable from `table` within `hops` edges (excluding itself),
  /// with the minimum hop distance — the "related tables" navigation
  /// primitive.
  std::vector<std::pair<TableId, int>> RelatedTables(TableId table,
                                                     int hops) const;

  const std::vector<Link>& links() const { return links_; }
  size_t num_links() const { return links_.size(); }

 private:
  void AddLink(const ColumnRef& a, const ColumnRef& b, LinkType type,
               double weight);

  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<Link> links_;
  std::unordered_map<ColumnRef, std::vector<uint32_t>, ColumnRefHash>
      by_column_;
};

}  // namespace lake

#endif  // LAKE_NAV_LINKAGE_GRAPH_H_
