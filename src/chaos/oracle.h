#ifndef LAKE_CHAOS_ORACLE_H_
#define LAKE_CHAOS_ORACLE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace lake::chaos {

/// In-memory ground truth of what the cluster MUST contain, built from the
/// driver's acknowledged operations. Quorum systems make unacknowledged
/// mutations *indeterminate* — a batch that failed with kUnavailable may
/// still have been applied by a sub-quorum winner group — so each table
/// tracks a three-valued constraint instead of a boolean:
///
///   - must be present, with a digest from `allowed` (acked add);
///   - must be absent (acked remove);
///   - may be either (an indeterminate mutation touched it), in which
///     case presence requires a digest from `allowed`.
///
/// Definitive rejections (kNotFound, kAlreadyExists, kInvalidArgument —
/// the engine validated and refused before any replica mutated) leave the
/// constraint unchanged; every other failure widens it.
class WorkloadOracle {
 public:
  /// A table present in the initial lake (before any workload ran).
  void NoteInitial(const Table& table);

  /// The cluster ACKNOWLEDGED this add: the table must now be present
  /// with exactly this content.
  void AckAdd(const Table& table);

  /// The cluster ACKNOWLEDGED this remove: the table must now be absent.
  void AckRemove(const std::string& name);

  /// An add failed indeterminately: the table may additionally exist with
  /// this content.
  void IndeterminateAdd(const Table& table);

  /// A remove failed indeterminately: absence becomes possible.
  void IndeterminateRemove(const std::string& name);

  /// True when `status` proves the engine refused the op before mutating
  /// anything (safe to leave the oracle unchanged).
  static bool DefinitelyNotApplied(const Status& status);

  /// Checks a recovered lake (name → content digest) against every
  /// constraint. Returns one human-readable violation per broken
  /// constraint: acknowledged loss, resurrected table, phantom table, or
  /// content mismatch. Empty = consistent.
  std::vector<std::string> Violations(
      const std::map<std::string, uint32_t>& lake) const;

  /// Names that MUST be present right now (acked, never indeterminate
  /// since). The driver picks remove targets and query subjects here.
  std::vector<std::string> PresentNames() const;

  /// Names that may be present (must-present plus indeterminate).
  std::vector<std::string> PossiblyPresentNames() const;

  /// The most recent content this oracle saw for `name` (the last add
  /// attempt), or null. Query generation reads columns from it.
  const Table* LastContent(const std::string& name) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    bool can_be_absent = true;
    std::set<uint32_t> allowed;  // legal digests when present
    std::shared_ptr<const Table> last_content;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace lake::chaos

#endif  // LAKE_CHAOS_ORACLE_H_
