#include "chaos/workload.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/oracle.h"
#include "cluster/cluster_engine.h"
#include "lakegen/generator.h"
#include "serve/query_service.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace lake::chaos {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Same reduced engine options every chaos/cluster test uses: keep the
/// mergeable modalities, drop the heavyweight build-time long tail.
DiscoveryEngine::Options ReducedEngineOptions() {
  DiscoveryEngine::Options eopts;
  eopts.build_pexeso = false;
  eopts.build_mate = false;
  eopts.build_correlated = false;
  eopts.build_santos = false;
  eopts.build_d3l = false;
  eopts.synthesize_kb = false;
  eopts.train_annotator = false;
  return eopts;
}

GeneratorOptions LakeShape(uint64_t lake_seed) {
  GeneratorOptions opts;
  opts.seed = lake_seed;
  opts.num_domains = 6;
  opts.num_templates = 3;
  opts.tables_per_template = 4;
  opts.min_rows = 30;
  opts.max_rows = 60;
  return opts;
}

constexpr const char* kSyllables[] = {"ta", "ri", "mo", "ze", "ku", "pa",
                                      "len", "dor", "vi", "sha", "ne", "gul"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

std::string MakeWord(Rng& rng) {
  std::string word;
  const size_t syllables = 2 + rng.NextBounded(2);
  for (size_t i = 0; i < syllables; ++i) {
    word += kSyllables[rng.NextBounded(kNumSyllables)];
  }
  return word;
}

/// A small synthetic table (2 string columns + 1 int column) whose content
/// is a pure function of `rng` — the same name always carries the same
/// digest, so the oracle can pin exact content.
Table MakeChaosTable(const std::string& name, Rng rng) {
  const size_t rows = 5 + rng.NextBounded(11);
  std::vector<Value> subject, attribute, measure;
  for (size_t r = 0; r < rows; ++r) {
    subject.emplace_back(MakeWord(rng));
    attribute.emplace_back(MakeWord(rng));
    measure.emplace_back(static_cast<int64_t>(rng.NextBounded(1000)));
  }
  Table t(name);
  t.AddColumn(Column("subject", DataType::kString, std::move(subject)));
  t.AddColumn(Column("attribute", DataType::kString, std::move(attribute)));
  t.AddColumn(Column("measure", DataType::kInt, std::move(measure)));
  return t;
}

/// Owns the system under test: the cluster, the query service in front of
/// it, and (when the plan asks) a background compaction thread. Survives
/// crash-restarts — the lake and the snapshot high-water map outlive the
/// cluster instance.
class ChaosEnv {
 public:
  ChaosEnv(const ChaosPlan& plan, std::string store_root, GeneratedLake* lake)
      : plan_(plan), store_root_(std::move(store_root)), lake_(lake) {}

  ~ChaosEnv() {
    StopBackground();
    service_.reset();
    cluster_.reset();
  }

  void Start() {
    cluster_ = std::make_unique<cluster::ClusterEngine>(lake_->catalog,
                                                        ClusterOptions());
    // Always leave a committed base behind: a crash-restart at op 0 must
    // recover something, and the monotonicity baseline starts here.
    cluster_->Checkpoint();
    StartService();
    StartBackground();
  }

  Status CrashRestart() {
    StopBackground();
    service_.reset();
    cluster_.reset();
    auto recovered = cluster::ClusterEngine::Recover(ClusterOptions());
    if (!recovered.ok()) {
      // Armed faults can make recovery itself fail (that is the point);
      // an operator would clear the fault and retry, so the harness does
      // too. Deterministic: whether the first attempt fails depends only
      // on the plan.
      FailpointRegistry::Instance().ClearAll();
      recovered = cluster::ClusterEngine::Recover(ClusterOptions());
    }
    if (!recovered.ok()) return recovered.status();
    cluster_ = std::move(recovered).value();
    StartService();
    StartBackground();
    return Status::OK();
  }

  cluster::ClusterEngine* cluster() { return cluster_.get(); }
  serve::QueryService* service() { return service_.get(); }

  void StopBackground() {
    if (!bg_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.notify_all();
    bg_.join();
  }

  /// I3 — snapshot generation monotonicity since the previous call.
  std::vector<std::string> CheckSnapshots() {
    return CheckSnapshotMonotonicity(store_root_, &snap_max_);
  }

 private:
  cluster::ClusterEngine::Options ClusterOptions() const {
    cluster::ClusterEngine::Options opts;
    opts.num_shards = plan_.num_shards;
    opts.num_replicas = plan_.num_replicas;
    opts.write_quorum = plan_.write_quorum;
    opts.store_root = store_root_;
    opts.engine.base_options = ReducedEngineOptions();
    opts.engine.kb = &lake_->kb;
    opts.engine.enable_wal = plan_.enable_wal;
    opts.enable_scrubber = plan_.background;
    opts.scrub_interval_ms = 50;
    // Tail tolerance runs in every chaos exploration (hedged reads +
    // slow-outlier ejection): persistent kDelay faults produce exactly
    // the slow-replica shape these paths exist for, and the invariant
    // checker proves hedged answers stay bit-identical to the oracle's.
    // Short windows/backoffs so the state machines cycle within a run.
    opts.tail.enable_hedging = true;
    opts.tail.hedge_max_delay = milliseconds(20);
    opts.tail.eject_multiple = 3.0;
    opts.tail.eject_min_samples = 8;
    opts.tail.eject_base = milliseconds(100);
    opts.tail.eject_max = milliseconds(400);
    opts.tail.latency_window.slice_width = milliseconds(250);
    return opts;
  }

  void StartService() {
    serve::QueryService::Options sopts;
    sopts.num_workers = 4;
    sopts.default_deadline = milliseconds(2000);
    service_ = std::make_unique<serve::QueryService>(cluster_.get(), sopts);
  }

  void StartBackground() {
    if (!plan_.background) return;
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = false;
    }
    bg_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(bg_mu_);
      while (!bg_stop_) {
        bg_cv_.wait_for(lock, milliseconds(150));
        if (bg_stop_) break;
        lock.unlock();
        cluster_->CompactAll();
        lock.lock();
      }
    });
  }

  const ChaosPlan& plan_;
  const std::string store_root_;
  GeneratedLake* lake_;
  std::unique_ptr<cluster::ClusterEngine> cluster_;
  std::unique_ptr<serve::QueryService> service_;
  std::thread bg_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::map<std::string, uint64_t> snap_max_;
};

/// Executes the op schedule, arming faults per the plan and recording
/// every acknowledged mutation in the oracle.
class WorkloadDriver {
 public:
  WorkloadDriver(const ChaosPlan& plan, const RunOptions& run, ChaosEnv* env,
                 GeneratedLake* lake, WorkloadOracle* oracle,
                 ChaosReport* report, Watchdog* watchdog)
      : plan_(plan),
        run_(run),
        env_(env),
        lake_(lake),
        oracle_(oracle),
        report_(report),
        watchdog_(watchdog),
        rng_(Rng(plan.seed).Fork("driver")) {}

  /// Returns false when the run cannot continue (recovery failed); the
  /// violation is already recorded.
  bool Run() {
    for (uint32_t i = 0; i < plan_.ops.size(); ++i) {
      const ChaosOp& op = plan_.ops[i];
      ApplyFaultEvents(i);
      watchdog_->SetContext("seed " + std::to_string(plan_.seed) + " op " +
                            std::to_string(i) + " (" + OpKindName(op.kind) +
                            ")");
      if (run_.verbose) {
        std::fprintf(stderr, "chaos: op %u %s a=%u b=%u\n", i,
                     OpKindName(op.kind), op.a, op.b);
      }
      if (!Execute(op)) return false;
      ++report_->ops_executed;
    }
    return true;
  }

 private:
  using Batch = ingest::LiveEngine::Batch;

  void ApplyFaultEvents(uint32_t op_index) {
    auto& registry = FailpointRegistry::Instance();
    for (const FaultEvent& f : plan_.faults) {
      if (f.disarm_at_op == op_index && f.disarm_at_op != 0) {
        registry.Disarm(f.failpoint);
      }
    }
    for (const FaultEvent& f : plan_.faults) {
      if (f.arm_at_op == op_index) {
        registry.Arm(f.failpoint, f.spec);
        ++report_->faults_armed;
      }
    }
  }

  bool Execute(const ChaosOp& op) {
    switch (op.kind) {
      case OpKind::kIngest:
        DoIngest(op);
        return true;
      case OpKind::kRemove:
        DoRemove(op);
        return true;
      case OpKind::kKeywordQuery:
        DoKeyword(op);
        return true;
      case OpKind::kJoinQuery:
        DoJoin(op);
        return true;
      case OpKind::kUnionQuery:
        DoUnion(op);
        return true;
      case OpKind::kQueryBurst:
        DoBurst(op);
        return true;
      case OpKind::kCheckpoint: {
        env_->cluster()->Checkpoint();
        Append(env_->CheckSnapshots());
        return true;
      }
      case OpKind::kCompact:
        env_->cluster()->CompactAll();
        return true;
      case OpKind::kScrub:
        env_->cluster()->ScrubOnce();
        return true;
      case OpKind::kKillReplica:
        DoKill(op, /*revive=*/false);
        return true;
      case OpKind::kReviveReplica:
        DoKill(op, /*revive=*/true);
        return true;
      case OpKind::kAddShard:
        env_->cluster()->AddShard();
        return true;
      case OpKind::kRemoveShard:
        DoRemoveShard(op);
        return true;
      case OpKind::kCrashRestart:
        return DoCrashRestart();
    }
    return true;
  }

  void DoIngest(const ChaosOp& op) {
    const size_t n = 1 + op.a % 3;
    Batch batch;
    std::vector<Table> tables;
    for (size_t i = 0; i < n; ++i) {
      const std::string name = "chaos_t" + std::to_string(next_table_++);
      Table t = MakeChaosTable(name, rng_.Fork("table:" + name));
      batch.adds.push_back(t);
      tables.push_back(std::move(t));
    }
    const auto outcome = env_->cluster()->ApplyBatch(std::move(batch));
    for (size_t i = 0; i < tables.size(); ++i) {
      if (i < outcome.adds.size() && outcome.adds[i].ok()) {
        oracle_->AckAdd(tables[i]);
      } else if (i >= outcome.adds.size() ||
                 !WorkloadOracle::DefinitelyNotApplied(
                     outcome.adds[i].status())) {
        oracle_->IndeterminateAdd(tables[i]);
      }
    }
  }

  void DoRemove(const ChaosOp& op) {
    const auto candidates = oracle_->PossiblyPresentNames();
    if (candidates.empty()) return;
    std::set<std::string> picked;
    const size_t n = 1 + op.b % 2;
    for (size_t j = 0; j < n; ++j) {
      picked.insert(candidates[(op.a + j) % candidates.size()]);
    }
    Batch batch;
    batch.removes.assign(picked.begin(), picked.end());
    const auto outcome = env_->cluster()->ApplyBatch(std::move(batch));
    for (size_t i = 0; i < picked.size(); ++i) {
      const std::string& name = *std::next(picked.begin(), i);
      if (i < outcome.removes.size() && outcome.removes[i].ok()) {
        oracle_->AckRemove(name);
      } else if (i >= outcome.removes.size() ||
                 !WorkloadOracle::DefinitelyNotApplied(outcome.removes[i])) {
        oracle_->IndeterminateRemove(name);
      }
    }
  }

  void DoKeyword(const ChaosOp& op) {
    const auto& topics = lake_->topic_of;
    if (topics.empty()) return;
    const std::string& topic = topics[op.a % topics.size()];
    if (op.b & 1) {
      serve::QueryRequest req;
      req.kind = serve::QueryKind::kKeyword;
      req.keyword = topic;
      req.k = 16;
      env_->service()->Execute(std::move(req));
    } else {
      const auto resp = env_->cluster()->Keyword(topic, 16);
      CheckNoStaleServed(resp.traces);
    }
  }

  void DoJoin(const ChaosOp& op) {
    const Table* t = PickOracleTable(op.a);
    if (t == nullptr) return;
    serve::QueryRequest req;
    req.kind = serve::QueryKind::kJoin;
    req.join_method = (op.b & 1) ? JoinMethod::kLshEnsemble
                                 : JoinMethod::kJosie;
    // A deterministic slice of join traffic opts into the sampling tier,
    // so the approx.* failpoints sit on an exercised path.
    req.approx_ok = (op.b & 2) != 0;
    req.k = 16;
    for (const Column& c : t->columns()) {
      if (c.type() == DataType::kString) {
        req.values = c.DistinctStrings();
        break;
      }
    }
    if (req.values.empty()) return;
    if (req.values.size() > 20) req.values.resize(20);
    env_->service()->Execute(std::move(req));
  }

  void DoUnion(const ChaosOp& op) {
    const auto names = oracle_->PresentNames();
    if (names.empty()) return;
    const std::string& name = names[op.a % names.size()];
    const Table* t = oracle_->LastContent(name);
    if (t == nullptr) return;
    serve::QueryRequest req;
    req.kind = serve::QueryKind::kUnion;
    req.union_table = t;
    req.exclude_name = name;
    req.union_method = (op.b & 1) ? UnionMethod::kTus : UnionMethod::kStarmie;
    req.k = 16;
    env_->service()->Execute(std::move(req));
  }

  void DoBurst(const ChaosOp& op) {
    const auto& topics = lake_->topic_of;
    if (topics.empty()) return;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 3; ++t) {
      threads.emplace_back([this, &op, &topics, t] {
        for (size_t q = 0; q < 2; ++q) {
          serve::QueryRequest req;
          req.kind = serve::QueryKind::kKeyword;
          req.keyword = topics[(op.a + t + q) % topics.size()];
          req.k = 8;
          env_->service()->Execute(std::move(req));
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  void DoKill(const ChaosOp& op, bool revive) {
    const auto health = env_->cluster()->Health();
    if (health.empty()) return;
    const auto& sh = health[op.a % health.size()];
    if (sh.replicas.empty()) return;
    const size_t replica = op.b % sh.replicas.size();
    if (revive) {
      env_->cluster()->ReviveReplica(sh.shard, replica);
    } else {
      env_->cluster()->KillReplica(sh.shard, replica);
    }
  }

  void DoRemoveShard(const ChaosOp& op) {
    const auto health = env_->cluster()->Health();
    if (health.size() <= 1) return;
    env_->cluster()->RemoveShard(health[op.a % health.size()].shard);
  }

  bool DoCrashRestart() {
    // Without a WAL, acknowledged-but-uncheckpointed work is legitimately
    // volatile; checkpoint first so the crash tests recovery, not a
    // durability level the configuration never promised. If faults block
    // the checkpoint, skip the crash.
    if (!plan_.enable_wal && !env_->cluster()->Checkpoint().ok()) return true;
    const Status st = env_->CrashRestart();
    ++report_->crashes;
    if (!st.ok()) {
      report_->violations.push_back(
          "crash-restart: recovery failed even after clearing faults: " +
          st.ToString());
      return false;
    }
    return true;
  }

  /// I5 — a stale (divergence-quarantined) replica must never answer a
  /// query. Only checkable without background threads: the driver is the
  /// sole mutator, so health cannot change between the query and the
  /// check.
  void CheckNoStaleServed(const std::vector<cluster::ShardTrace>& traces) {
    if (plan_.background) return;
    const auto health = env_->cluster()->Health();
    for (const auto& trace : traces) {
      if (!trace.status.ok()) continue;
      for (const auto& sh : health) {
        if (sh.shard != trace.shard) continue;
        if (trace.replica < sh.replicas.size() &&
            sh.replicas[trace.replica].stale) {
          report_->violations.push_back(
              "stale replica served: shard " + std::to_string(trace.shard) +
              " replica " + std::to_string(trace.replica) +
              " answered a query while quarantined");
        }
      }
    }
  }

  const Table* PickOracleTable(uint32_t selector) {
    const auto names = oracle_->PresentNames();
    if (names.empty()) return nullptr;
    return oracle_->LastContent(names[selector % names.size()]);
  }

  void Append(std::vector<std::string> violations) {
    for (auto& v : violations) report_->violations.push_back(std::move(v));
  }

  const ChaosPlan& plan_;
  const RunOptions& run_;
  ChaosEnv* env_;
  GeneratedLake* lake_;
  WorkloadOracle* oracle_;
  ChaosReport* report_;
  Watchdog* watchdog_;
  Rng rng_;
  uint64_t next_table_ = 0;
};

struct NamedHit {
  std::string name;
  size_t column = 0;
  double score = 0;
};

void SortCanonical(std::vector<NamedHit>* hits) {
  std::sort(hits->begin(), hits->end(),
            [](const NamedHit& a, const NamedHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.name != b.name) return a.name < b.name;
              return a.column < b.column;
            });
}

bool SameRanking(const std::vector<NamedHit>& expected,
                 const std::vector<NamedHit>& actual, std::string* detail) {
  if (expected.size() != actual.size()) {
    *detail = "result counts differ: expected " +
              std::to_string(expected.size()) + ", got " +
              std::to_string(actual.size());
    return false;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].name != actual[i].name ||
        expected[i].column != actual[i].column ||
        expected[i].score != actual[i].score) {
      std::ostringstream msg;
      msg << "rank " << i << " differs: expected " << expected[i].name << "#"
          << expected[i].column << "@" << expected[i].score << ", got "
          << actual[i].name << "#" << actual[i].column << "@"
          << actual[i].score;
      *detail = msg.str();
      return false;
    }
  }
  return true;
}

/// Waits for every shard to have at least one serving replica (breakers
/// opened by fault-era failures need their cooldown plus a successful
/// probe to close). Bounded; convergence failures surface in I2 anyway.
void WaitForServing(cluster::ClusterEngine* cluster,
                    const std::string& probe_topic) {
  const auto deadline = steady_clock::now() + milliseconds(5000);
  while (steady_clock::now() < deadline) {
    cluster->Keyword(probe_topic, 1);  // probe: lets half-open breakers close
    bool all_serving = true;
    for (const auto& sh : cluster->Health()) {
      if (sh.replicas_serving == 0) all_serving = false;
      for (const auto& r : sh.replicas) {
        if (!r.serving) all_serving = false;
      }
    }
    if (all_serving) return;
    std::this_thread::sleep_for(milliseconds(50));
  }
}

/// I6 — rankings bit-identical to a freshly built single-node engine over
/// the surviving corpus (the cluster's core contract, re-proven after
/// every chaos schedule).
std::vector<std::string> CheckRankings(cluster::ClusterEngine* cluster,
                                       const GeneratedLake& lake) {
  std::vector<std::string> out;
  std::vector<Table> tables = cluster->VisibleTables();
  if (tables.empty()) return out;

  DataLakeCatalog reference;
  for (Table& t : tables) reference.AddTable(std::move(t));
  const DiscoveryEngine engine(&reference, &lake.kb, ReducedEngineOptions());
  const size_t k = reference.num_tables() + 8;

  auto canon_tables = [&reference](const std::vector<TableResult>& rs) {
    std::vector<NamedHit> outv;
    for (const TableResult& r : rs) {
      outv.push_back({reference.table(r.table_id).name(), 0, r.score});
    }
    SortCanonical(&outv);
    return outv;
  };
  auto canon_table_hits = [](const std::vector<cluster::TableHit>& hs) {
    std::vector<NamedHit> outv;
    for (const auto& h : hs) outv.push_back({h.table, 0, h.score});
    SortCanonical(&outv);
    return outv;
  };

  WaitForServing(cluster, lake.topic_of.empty() ? "probe" : lake.topic_of[0]);

  std::string detail;
  for (const std::string& topic : lake.topic_of) {
    const auto expected = canon_tables(engine.Keyword(topic, k));
    const auto got = cluster->Keyword(topic, k);
    if (!got.status.ok() || got.degraded) {
      out.push_back("rankings: keyword '" + topic +
                    "' failed or degraded at quiesce: " +
                    got.status.ToString());
      continue;
    }
    if (!SameRanking(expected, canon_table_hits(got.hits), &detail)) {
      out.push_back("rankings: keyword '" + topic +
                    "' diverged from the single-node oracle: " + detail);
    }
  }

  // One joinable and one unionable probe off the first reference table.
  const Table& probe = reference.table(0);
  std::vector<std::string> join_values;
  for (const Column& c : probe.columns()) {
    if (c.type() == DataType::kString) {
      join_values = c.DistinctStrings();
      break;
    }
  }
  if (!join_values.empty()) {
    const auto expected = engine.Joinable(join_values, JoinMethod::kJosie, k);
    const auto got =
        cluster->Joinable(join_values, JoinMethod::kJosie, k);
    if (!expected.ok() || !got.status.ok() || got.degraded) {
      out.push_back("rankings: joinable probe failed at quiesce");
    } else {
      std::vector<NamedHit> exp;
      for (const ColumnResult& r : expected.value()) {
        exp.push_back({reference.table(r.column.table_id).name(),
                       r.column.column_index, r.score});
      }
      SortCanonical(&exp);
      std::vector<NamedHit> act;
      for (const auto& h : got.hits) {
        act.push_back({h.table, h.column_index, h.score});
      }
      SortCanonical(&act);
      if (!SameRanking(exp, act, &detail)) {
        out.push_back(
            "rankings: joinable diverged from the single-node oracle: " +
            detail);
      }
    }
  }

  const auto expected_union =
      engine.Unionable(probe, UnionMethod::kTus, k, /*exclude=*/0);
  const auto got_union = cluster->Unionable(probe, UnionMethod::kTus, k,
                                            /*exclude_name=*/probe.name());
  if (!expected_union.ok() || !got_union.status.ok() || got_union.degraded) {
    out.push_back("rankings: unionable probe failed at quiesce");
  } else if (!SameRanking(canon_tables(expected_union.value()),
                          canon_table_hits(got_union.hits), &detail)) {
    out.push_back(
        "rankings: unionable diverged from the single-node oracle: " + detail);
  }
  return out;
}

void Append(std::vector<std::string> more, ChaosReport* report) {
  for (auto& v : more) report->violations.push_back(std::move(v));
}

/// Quiesce: clear faults, stop background work, revive everything, scrub
/// to convergence, resolve rebalance strays, compact, checkpoint — then
/// the lake is in the steady state the invariants are defined over.
void Quiesce(const ChaosPlan& plan, ChaosEnv* env, ChaosReport* report) {
  FailpointRegistry::Instance().ClearAll();
  env->StopBackground();
  cluster::ClusterEngine* cluster = env->cluster();
  for (const auto& sh : cluster->Health()) {
    for (const auto& r : sh.replicas) {
      if (!r.alive) cluster->ReviveReplica(sh.shard, r.replica);
    }
  }
  for (uint32_t i = 0; i < plan.num_replicas + 3; ++i) {
    const auto scrub = cluster->ScrubOnce();
    if (scrub.shards_divergent == 0 && scrub.replicas_unrepaired == 0) break;
  }
  cluster->SweepStrayCopies();
  const Status compacted = cluster->CompactAll();
  if (!compacted.ok()) {
    report->violations.push_back(
        "quiesce: compaction failed with no fault armed: " +
        compacted.ToString());
  }
  const Status checkpointed = cluster->Checkpoint();
  if (!checkpointed.ok()) {
    report->violations.push_back(
        "quiesce: checkpoint failed with no fault armed: " +
        checkpointed.ToString());
  }
}

}  // namespace

ChaosReport RunChaos(const ChaosPlan& plan, const RunOptions& options) {
  ChaosReport report;
  if (options.scratch_dir.empty()) {
    report.violations.push_back("harness: RunOptions::scratch_dir is empty");
    return report;
  }
  Watchdog watchdog(options.watchdog_budget_ms,
                    "seed " + std::to_string(plan.seed) + " setup");

  fs::create_directories(options.scratch_dir);
  const std::string store_root =
      (fs::path(options.scratch_dir) / "store").string();
  fs::remove_all(store_root);

  auto& registry = FailpointRegistry::Instance();
  registry.ClearAll();
  registry.Reseed(plan.seed);
  RegisterFailpointCatalog(plan.num_shards, plan.num_replicas);

  GeneratedLake lake = LakeGenerator(LakeShape(plan.lake_seed)).Generate();
  WorkloadOracle oracle;
  for (TableId id : lake.catalog.AllTables()) {
    oracle.NoteInitial(lake.catalog.table(id));
  }

  {
    ChaosEnv env(plan, store_root, &lake);
    env.Start();

    WorkloadDriver driver(plan, options, &env, &lake, &oracle, &report,
                          &watchdog);
    const bool completed = driver.Run();

    if (completed) {
      watchdog.SetContext("seed " + std::to_string(plan.seed) + " quiesce");
      Quiesce(plan, &env, &report);
      Append(env.CheckSnapshots(), &report);
      Append(CheckConvergence(env.cluster()->Health()), &report);
      Append(CheckZeroLoss(oracle, env.cluster()->VisibleTableDigests()),
             &report);
      Append(CheckRankings(env.cluster(), lake), &report);

      if (plan.final_crash) {
        watchdog.SetContext("seed " + std::to_string(plan.seed) +
                            " final crash-restart");
        const Status st = env.CrashRestart();
        ++report.crashes;
        if (!st.ok()) {
          report.violations.push_back(
              "final crash-restart: recovery failed: " + st.ToString());
        } else {
          env.StopBackground();
          env.cluster()->ScrubOnce();
          Append(env.CheckSnapshots(), &report);
          Append(CheckConvergence(env.cluster()->Health()), &report);
          Append(CheckZeroLoss(oracle,
                               env.cluster()->VisibleTableDigests()),
                 &report);
        }
      }
    }
  }

  registry.ClearAll();
  if (!options.keep_scratch) {
    std::error_code ec;
    fs::remove_all(options.scratch_dir, ec);
  }
  watchdog.Disarm();
  report.ok = report.violations.empty();
  return report;
}

}  // namespace lake::chaos
