#ifndef LAKE_CHAOS_INVARIANTS_H_
#define LAKE_CHAOS_INVARIANTS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/oracle.h"
#include "cluster/cluster_engine.h"

namespace lake::chaos {

/// INVARIANT CATALOG — what a chaos run must uphold at quiesce (after
/// faults are cleared, dead replicas revived, and the scrubber has run to
/// convergence). Each checker returns human-readable violations; empty
/// means the invariant holds.

/// I1 — zero acknowledged loss / no phantoms / content integrity:
/// every table the cluster acknowledged is present with acked content,
/// every acked remove stays removed, nothing appears that was never
/// ingested. Owned by WAL + snapshots + quorum writes + rebalance.
std::vector<std::string> CheckZeroLoss(
    const WorkloadOracle& oracle,
    const std::map<std::string, uint32_t>& lake_digests);

/// I2 — replica convergence: after anti-entropy, every shard's replicas
/// are alive, non-stale, and digest-identical. Owned by the scrubber and
/// ReplicaSet quorum bookkeeping.
std::vector<std::string> CheckConvergence(
    const std::vector<cluster::ClusterEngine::ShardHealth>& health);

/// I3 — snapshot generation monotonicity: per snapshot directory, the
/// highest committed generation never decreases across the run, crashes
/// included. Owned by SnapshotStore (MANIFEST commit point).
/// `previous` is the caller's running max per directory; it is updated in
/// place and violations are reported for any regression.
std::vector<std::string> CheckSnapshotMonotonicity(
    const std::string& store_root,
    std::map<std::string, uint64_t>* previous);

/// Converts a hang into a failure: if Disarm() is not called within
/// `budget_ms` of construction, prints `context` to stderr and aborts the
/// process (a deadlocked chaos run must fail loudly, not time out a CI
/// job 6 hours later). I4 — liveness.
class Watchdog {
 public:
  Watchdog(uint64_t budget_ms, std::string context);
  ~Watchdog();

  /// Replaces the stderr context printed on expiry (cheap; called per-op
  /// so the abort message names the operation that hung).
  void SetContext(std::string context);

  /// Stops the countdown; the destructor joins the timer thread.
  void Disarm();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string context_;
  bool disarmed_ = false;
  std::thread thread_;
};

}  // namespace lake::chaos

#endif  // LAKE_CHAOS_INVARIANTS_H_
