#include "chaos/explorer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lake::chaos {
namespace {

namespace fs = std::filesystem;

bool StillFails(const ChaosPlan& plan, const RunOptions& run) {
  return !RunChaos(plan, run).ok;
}

}  // namespace

ChaosPlan ShrinkPlan(const ChaosPlan& failing, const RunOptions& run,
                     size_t max_runs) {
  ChaosPlan best = failing;
  size_t runs = 0;

  // Pass 1: drop faults one at a time (fewest moving parts first — a
  // repro with one fault reads better than one with six).
  for (size_t i = 0; i < best.faults.size() && runs < max_runs;) {
    ChaosPlan candidate = best;
    candidate.faults.erase(candidate.faults.begin() + i);
    ++runs;
    if (StillFails(candidate, run)) {
      best = std::move(candidate);  // fault was irrelevant; keep it dropped
    } else {
      ++i;  // fault is load-bearing; keep it and try the next
    }
  }

  // Pass 2: truncate the op tail in halving steps. Faults arming at or
  // past the new end can never fire mid-run; drop them too.
  while (best.ops.size() > 1 && runs < max_runs) {
    bool progressed = false;
    for (size_t cut = best.ops.size() / 2; cut >= 1 && runs < max_runs;
         cut /= 2) {
      ChaosPlan candidate = best;
      candidate.ops.resize(best.ops.size() - cut);
      candidate.faults.clear();
      for (const FaultEvent& f : best.faults) {
        if (f.arm_at_op < candidate.ops.size()) {
          candidate.faults.push_back(f);
        }
      }
      ++runs;
      if (StillFails(candidate, run)) {
        best = std::move(candidate);
        progressed = true;
        break;
      }
    }
    if (!progressed) break;
  }

  // Pass 3: a shorter run may have made more faults irrelevant.
  for (size_t i = 0; i < best.faults.size() && runs < max_runs;) {
    ChaosPlan candidate = best;
    candidate.faults.erase(candidate.faults.begin() + i);
    ++runs;
    if (StillFails(candidate, run)) {
      best = std::move(candidate);
    } else {
      ++i;
    }
  }
  return best;
}

Result<std::string> WriteRepro(const Failure& failure,
                               const std::string& out_dir) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  const std::string path =
      (fs::path(out_dir) / ("seed-" + std::to_string(failure.seed) + ".plan"))
          .string();
  std::ostringstream body;
  body << "# chaos repro: seed " << failure.seed << "\n";
  for (const std::string& v : failure.violations) {
    body << "# violation: " << v << "\n";
  }
  body << failure.plan.Serialize();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write repro file: " + path);
  out << body.str();
  out.close();
  if (!out) return Status::IoError("failed writing repro file: " + path);
  return path;
}

SweepReport SweepSeeds(const SweepOptions& options) {
  SweepReport report;
  for (size_t i = 0; i < options.num_seeds; ++i) {
    const uint64_t seed = options.first_seed + i;
    const ChaosPlan plan = MakePlan(seed, options.shape);

    RunOptions run = options.run;
    run.scratch_dir = (fs::path(options.run.scratch_dir) /
                       ("seed-" + std::to_string(seed)))
                          .string();
    if (options.verbose) {
      std::fprintf(stderr,
                   "chaos: seed %llu (%zu ops, %zu faults, %ux%u, wal=%d, "
                   "bg=%d)\n",
                   static_cast<unsigned long long>(seed), plan.ops.size(),
                   plan.faults.size(), plan.num_shards, plan.num_replicas,
                   plan.enable_wal ? 1 : 0, plan.background ? 1 : 0);
    }
    ChaosReport result = RunChaos(plan, run);
    ++report.seeds_run;
    if (result.ok) continue;

    ++report.seeds_failed;
    Failure failure;
    failure.seed = seed;
    failure.plan = options.shrink ? ShrinkPlan(plan, run) : plan;
    // Report the violations of the plan we ship (the shrunk plan can
    // violate a different — usually smaller — set than the original).
    failure.violations = options.shrink
                             ? RunChaos(failure.plan, run).violations
                             : std::move(result.violations);
    if (failure.violations.empty()) failure.violations = result.violations;
    if (!options.out_dir.empty()) {
      auto written = WriteRepro(failure, options.out_dir);
      if (written.ok()) failure.repro_path = written.value();
    }
    report.failures.push_back(std::move(failure));
    if (options.stop_on_failure) break;
  }
  return report;
}

}  // namespace lake::chaos
