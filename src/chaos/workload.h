#ifndef LAKE_CHAOS_WORKLOAD_H_
#define LAKE_CHAOS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan.h"

namespace lake::chaos {

/// Execution knobs of one chaos run (everything schedule-shaping lives in
/// the ChaosPlan; these only control harness plumbing).
struct RunOptions {
  /// Scratch directory for the run's stores. Created if missing, removed
  /// afterwards unless keep_scratch. Required.
  std::string scratch_dir;
  /// Hang budget: the run aborts the process (watchdog) if it does not
  /// finish within this many milliseconds. I4 — liveness.
  uint64_t watchdog_budget_ms = 120'000;
  bool keep_scratch = false;
  /// Narrate every op to stderr (debugging a repro).
  bool verbose = false;
};

/// Verdict of one chaos run. `ok` iff no invariant was violated; the
/// violations are human-readable and name the invariant that broke.
struct ChaosReport {
  bool ok = false;
  std::vector<std::string> violations;
  size_t ops_executed = 0;
  size_t faults_armed = 0;
  size_t crashes = 0;  // mid-run crash-restarts + the final one
};

/// Executes one plan end to end: builds the replicated cluster over a
/// seeded lake, drives the op schedule with faults armed per the plan,
/// then quiesces (clear faults, revive replicas, scrub to convergence,
/// sweep strays, compact, checkpoint) and checks every invariant in the
/// catalog (invariants.h) — including rankings bit-identical to a freshly
/// built single-node engine over the surviving corpus, and a final
/// crash-restart re-check when the plan asks for one. Deterministic: same
/// plan ⇒ same verdict (see the determinism contract in plan.h).
ChaosReport RunChaos(const ChaosPlan& plan, const RunOptions& options);

}  // namespace lake::chaos

#endif  // LAKE_CHAOS_WORKLOAD_H_
