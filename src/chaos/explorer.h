#ifndef LAKE_CHAOS_EXPLORER_H_
#define LAKE_CHAOS_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/plan.h"
#include "chaos/workload.h"

namespace lake::chaos {

/// One failing seed from a sweep, with its (possibly shrunk) plan and the
/// violations the minimal plan still produces.
struct Failure {
  uint64_t seed = 0;
  ChaosPlan plan;
  std::vector<std::string> violations;
  /// Path of the repro file, when the sweep was given an output dir.
  std::string repro_path;
};

/// Aggregate verdict of SweepSeeds.
struct SweepReport {
  size_t seeds_run = 0;
  size_t seeds_failed = 0;
  std::vector<Failure> failures;
};

struct SweepOptions {
  uint64_t first_seed = 1;
  size_t num_seeds = 20;
  PlanShape shape;
  /// Harness knobs for each run; scratch_dir is used as a parent — each
  /// seed runs in "<scratch_dir>/seed-<n>".
  RunOptions run;
  /// Shrink each failing plan to a minimal repro before reporting.
  bool shrink = true;
  /// Where to write one repro file per failure (empty = don't write).
  std::string out_dir;
  /// Stop the sweep at the first failure.
  bool stop_on_failure = false;
  bool verbose = false;
};

/// Greedy schedule minimization: repeatedly re-runs the plan with one
/// fault dropped, then with the op tail truncated (binary steps), keeping
/// every mutation that still fails. The result is the smallest schedule
/// this procedure can reach that still violates an invariant — small
/// enough to read, step through, and pin as a regression. Deterministic
/// replay (plan.h contract) is what makes this sound: a kept mutation
/// failed on its actual content, not on scheduling noise.
ChaosPlan ShrinkPlan(const ChaosPlan& failing, const RunOptions& run,
                     size_t max_runs = 64);

/// Runs `num_seeds` consecutive seeds through MakePlan + RunChaos,
/// shrinking and recording each failure. The workhorse behind
/// tools/chaos_explorer and the CI sweep.
SweepReport SweepSeeds(const SweepOptions& options);

/// Writes `failure` as a self-contained repro file: the serialized plan
/// plus `# violation:` comment lines (ignored by the parser) naming what
/// broke. Returns the path written.
Result<std::string> WriteRepro(const Failure& failure,
                               const std::string& out_dir);

}  // namespace lake::chaos

#endif  // LAKE_CHAOS_EXPLORER_H_
