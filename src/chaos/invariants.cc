#include "chaos/invariants.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

namespace lake::chaos {

namespace fs = std::filesystem;

std::vector<std::string> CheckZeroLoss(
    const WorkloadOracle& oracle,
    const std::map<std::string, uint32_t>& lake_digests) {
  return oracle.Violations(lake_digests);
}

std::vector<std::string> CheckConvergence(
    const std::vector<cluster::ClusterEngine::ShardHealth>& health) {
  std::vector<std::string> out;
  for (const auto& sh : health) {
    if (!sh.digests_agree) {
      out.push_back("convergence: shard " + std::to_string(sh.shard) +
                    " replica digests still disagree after scrub");
    }
    for (const auto& r : sh.replicas) {
      if (!r.alive) {
        out.push_back("convergence: shard " + std::to_string(sh.shard) +
                      " replica " + std::to_string(r.replica) +
                      " is dead at quiesce");
      } else if (r.stale) {
        out.push_back("convergence: shard " + std::to_string(sh.shard) +
                      " replica " + std::to_string(r.replica) +
                      " is still stale after scrub");
      }
    }
  }
  return out;
}

std::vector<std::string> CheckSnapshotMonotonicity(
    const std::string& store_root,
    std::map<std::string, uint64_t>* previous) {
  std::vector<std::string> out;
  if (store_root.empty() || !fs::exists(store_root)) return out;
  // Highest committed generation per snapshot directory, read straight
  // off the filenames (snap-<gen>.lks). Pruning removes old generations
  // but the max must never move backwards while the directory exists.
  std::map<std::string, uint64_t> current;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(store_root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    const size_t dot = name.find('.');
    if (dot == std::string::npos) continue;
    uint64_t gen = 0;
    try {
      gen = std::stoull(name.substr(5, dot - 5));
    } catch (...) {
      continue;
    }
    const std::string dir = it->path().parent_path().string();
    uint64_t& max = current[dir];
    if (gen > max) max = gen;
  }
  for (const auto& [dir, prev_max] : *previous) {
    auto cur = current.find(dir);
    if (cur == current.end()) continue;  // dir retired/removed — fine
    if (cur->second < prev_max) {
      std::ostringstream msg;
      msg << "snapshot monotonicity: " << dir << " regressed from generation "
          << prev_max << " to " << cur->second;
      out.push_back(msg.str());
    }
  }
  for (const auto& [dir, max] : current) {
    uint64_t& prev = (*previous)[dir];
    if (max > prev) prev = max;
  }
  return out;
}

Watchdog::Watchdog(uint64_t budget_ms, std::string context)
    : context_(std::move(context)) {
  thread_ = std::thread([this, budget_ms] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
    while (!disarmed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          !disarmed_) {
        std::fprintf(stderr,
                     "chaos watchdog: run exceeded %llu ms — treating the "
                     "hang as a failure\ncontext: %s\n",
                     static_cast<unsigned long long>(budget_ms),
                     context_.c_str());
        std::fflush(stderr);
        std::abort();
      }
    }
  });
}

Watchdog::~Watchdog() {
  Disarm();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::SetContext(std::string context) {
  std::lock_guard<std::mutex> lock(mu_);
  context_ = std::move(context);
}

void Watchdog::Disarm() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    disarmed_ = true;
  }
  cv_.notify_all();
}

}  // namespace lake::chaos
