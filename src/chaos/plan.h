#ifndef LAKE_CHAOS_PLAN_H_
#define LAKE_CHAOS_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/failpoint.h"
#include "util/status.h"

namespace lake::chaos {

/// DETERMINISM CONTRACT (all of lake::chaos): every run of a ChaosPlan
/// must produce the byte-identical schedule and the identical invariant
/// verdict, on any machine, forever. All randomness therefore derives
/// from ChaosPlan::seed through Rng::Next*/Rng::Fork — never from wall
/// clocks, std::random_device, pointer values, thread ids, or iteration
/// order of unordered containers. Time may be *waited on* (watchdogs,
/// backoff) but never *sampled into* a decision that shapes the schedule.

/// One scheduled fault: arm `failpoint` with `spec` just before executing
/// op `arm_at_op`, disarm it just before op `disarm_at_op` (0 = leave
/// armed until quiesce clears everything).
struct FaultEvent {
  uint32_t arm_at_op = 0;
  uint32_t disarm_at_op = 0;
  std::string failpoint;
  FaultSpec spec;

  bool operator==(const FaultEvent& o) const;
};

/// Workload vocabulary of the driver. `a`/`b` are kind-specific operands
/// (batch sizes, name selectors, shard/replica selectors) reduced modulo
/// the live range at execution time, so one plan stays valid as topology
/// changes mid-run.
enum class OpKind : uint32_t {
  kIngest = 0,     // a = extra tables in the batch (1 + a%3 adds)
  kRemove,         // a = name selector, b = extra removes (1 + b%2)
  kKeywordQuery,   // a = topic selector, b&1 = direct cluster vs service
  kJoinQuery,      // a = source-table selector, b&1 = method
  kUnionQuery,     // a = source-table selector, b&1 = method
  kQueryBurst,     // a = topic base; 3 concurrent service queries
  kCheckpoint,
  kCompact,        // ClusterEngine::CompactAll
  kScrub,          // ClusterEngine::ScrubOnce
  kKillReplica,    // a = shard selector, b = replica selector
  kReviveReplica,  // a = shard selector, b = replica selector
  kAddShard,
  kRemoveShard,    // a = victim selector
  kCrashRestart,   // tear the whole stack down, ClusterEngine::Recover
};

/// Stable textual name used by the plan serialization ("ingest", ...).
const char* OpKindName(OpKind kind);

struct ChaosOp {
  OpKind kind = OpKind::kIngest;
  uint32_t a = 0;
  uint32_t b = 0;

  bool operator==(const ChaosOp& o) const {
    return kind == o.kind && a == o.a && b == o.b;
  }
};

/// A complete, self-contained chaos schedule: environment shape, the op
/// sequence, and the fault events. Serializes to a line-based text format
/// ("chaosplan v1") that round-trips byte-identically — the repro-file
/// format the explorer emits and the regression corpus pins.
struct ChaosPlan {
  uint64_t seed = 0;
  uint64_t lake_seed = 11;  // seed of the initial lakegen lake
  uint32_t num_shards = 2;
  uint32_t num_replicas = 2;
  uint32_t write_quorum = 0;  // 0 = majority
  bool enable_wal = true;
  /// Run the background scrubber and a background compaction thread
  /// during the workload (more interleavings, same quiesce verdict).
  bool background = false;
  /// Crash-restart once more AFTER the invariants pass and re-check —
  /// the recovered system must satisfy them too.
  bool final_crash = true;
  std::vector<ChaosOp> ops;
  std::vector<FaultEvent> faults;

  std::string Serialize() const;
  static Result<ChaosPlan> Parse(const std::string& text);
  static Result<ChaosPlan> Load(const std::string& path);
  Status WriteToFile(const std::string& path) const;

  bool operator==(const ChaosPlan& o) const;
};

/// Knobs of MakePlan — what a generated schedule may contain.
struct PlanShape {
  uint32_t num_ops = 40;
  uint32_t max_faults = 6;
  /// 0 = draw from the seed (2..3 shards, 1..3 replicas).
  uint32_t num_shards = 0;
  uint32_t num_replicas = 0;
  bool allow_topology_ops = true;  // AddShard / RemoveShard
  bool allow_crash_ops = true;     // mid-run CrashRestart
  bool background = false;
  bool final_crash = true;
};

/// The failpoint sites a chaos run over `num_shards` x `num_replicas` can
/// reach, sorted. Also Register()s each name with the global registry so
/// operators can enumerate the catalog via ListRegistered(). MakePlan
/// draws from the *returned* list (a pure function of the shape), not from
/// the process-global registry, so plan generation is independent of what
/// else ran in this process.
std::vector<std::string> RegisterFailpointCatalog(uint32_t num_shards,
                                                  uint32_t num_replicas);

/// Deterministically expands `seed` into a full schedule: environment
/// shape, op mix, and fault events with kinds drawn from each site's
/// legal fault set (torn writes only on write sites, delays only on exec
/// sites, ...). Same (seed, shape) ⇒ byte-identical plan.
ChaosPlan MakePlan(uint64_t seed, const PlanShape& shape);

}  // namespace lake::chaos

#endif  // LAKE_CHAOS_PLAN_H_
