#include "chaos/plan.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/random.h"

namespace lake::chaos {
namespace {

constexpr const char* kHeader = "chaosplan v1";

const char* const kOpNames[] = {
    "ingest",     "remove",  "keyword", "join",    "union",
    "burst",      "checkpoint", "compact", "scrub", "kill",
    "revive",     "addshard", "removeshard", "crash",
};
constexpr size_t kNumOpKinds = sizeof(kOpNames) / sizeof(kOpNames[0]);

bool ParseOpKind(const std::string& name, OpKind* out) {
  for (size_t i = 0; i < kNumOpKinds; ++i) {
    if (name == kOpNames[i]) {
      *out = static_cast<OpKind>(i);
      return true;
    }
  }
  return false;
}

/// Fault kinds that are legal (i.e. meaningful) at one failpoint site,
/// derived from the site's name. Arming an illegal kind is harmless but
/// wastes a fault slot, so generation draws from the legal set.
std::vector<FaultSpec::Kind> LegalKinds(const std::string& site) {
  const auto ends_with = [&site](const char* suffix) {
    const size_t n = std::char_traits<char>::length(suffix);
    return site.size() >= n && site.compare(site.size() - n, n, suffix) == 0;
  };
  if (ends_with(".write")) {
    return {FaultSpec::Kind::kError, FaultSpec::Kind::kEnospc,
            FaultSpec::Kind::kTornWrite};
  }
  if (ends_with(".fsync")) {
    return {FaultSpec::Kind::kError, FaultSpec::Kind::kEnospc};
  }
  if (ends_with(".rename")) return {FaultSpec::Kind::kError};
  if (site.find(".exec.") != std::string::npos) {
    return {FaultSpec::Kind::kError, FaultSpec::Kind::kDelay};
  }
  return {FaultSpec::Kind::kError};
}

}  // namespace

bool FaultEvent::operator==(const FaultEvent& o) const {
  return arm_at_op == o.arm_at_op && disarm_at_op == o.disarm_at_op &&
         failpoint == o.failpoint && spec.kind == o.spec.kind &&
         spec.after_hits == o.spec.after_hits && spec.arg == o.spec.arg &&
         spec.max_fires == o.spec.max_fires &&
         spec.probability == o.spec.probability;
}

bool ChaosPlan::operator==(const ChaosPlan& o) const {
  return Serialize() == o.Serialize();
}

const char* OpKindName(OpKind kind) {
  const size_t i = static_cast<size_t>(kind);
  return i < kNumOpKinds ? kOpNames[i] : "?";
}

std::string ChaosPlan::Serialize() const {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "seed " << seed << "\n";
  out << "lake_seed " << lake_seed << "\n";
  out << "shards " << num_shards << "\n";
  out << "replicas " << num_replicas << "\n";
  out << "quorum " << write_quorum << "\n";
  out << "wal " << (enable_wal ? 1 : 0) << "\n";
  out << "background " << (background ? 1 : 0) << "\n";
  out << "final_crash " << (final_crash ? 1 : 0) << "\n";
  for (const ChaosOp& op : ops) {
    out << "op " << OpKindName(op.kind) << " " << op.a << " " << op.b << "\n";
  }
  for (const FaultEvent& f : faults) {
    // Probability as integer millionths: float round-trips byte-exactly.
    const uint64_t prob_millionths =
        static_cast<uint64_t>(f.spec.probability * 1e6 + 0.5);
    out << "fault " << f.arm_at_op << " " << f.disarm_at_op << " "
        << static_cast<uint32_t>(f.spec.kind) << " " << f.spec.after_hits
        << " " << f.spec.arg << " " << f.spec.max_fires << " "
        << prob_millionths << " " << f.failpoint << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<ChaosPlan> ChaosPlan::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // Repro files carry "# violation:" annotations above the header.
  while (std::getline(in, line) && (line.empty() || line[0] == '#')) {
  }
  if (line != kHeader) {
    return Status::InvalidArgument("chaos plan: bad header");
  }
  ChaosPlan plan;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;  // repro-file annotations
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "end") {
      saw_end = true;
      break;
    } else if (key == "seed") {
      ls >> plan.seed;
    } else if (key == "lake_seed") {
      ls >> plan.lake_seed;
    } else if (key == "shards") {
      ls >> plan.num_shards;
    } else if (key == "replicas") {
      ls >> plan.num_replicas;
    } else if (key == "quorum") {
      ls >> plan.write_quorum;
    } else if (key == "wal") {
      int v = 0;
      ls >> v;
      plan.enable_wal = v != 0;
    } else if (key == "background") {
      int v = 0;
      ls >> v;
      plan.background = v != 0;
    } else if (key == "final_crash") {
      int v = 0;
      ls >> v;
      plan.final_crash = v != 0;
    } else if (key == "op") {
      std::string name;
      ChaosOp op;
      ls >> name >> op.a >> op.b;
      if (!ParseOpKind(name, &op.kind)) {
        return Status::InvalidArgument("chaos plan: unknown op '" + name +
                                       "'");
      }
      plan.ops.push_back(op);
    } else if (key == "fault") {
      FaultEvent f;
      uint32_t kind = 0;
      uint64_t prob_millionths = 0;
      ls >> f.arm_at_op >> f.disarm_at_op >> kind >> f.spec.after_hits >>
          f.spec.arg >> f.spec.max_fires >> prob_millionths >> f.failpoint;
      if (kind > static_cast<uint32_t>(FaultSpec::Kind::kDelay) ||
          f.failpoint.empty()) {
        return Status::InvalidArgument("chaos plan: bad fault line: " + line);
      }
      f.spec.kind = static_cast<FaultSpec::Kind>(kind);
      f.spec.probability = static_cast<double>(prob_millionths) / 1e6;
      plan.faults.push_back(std::move(f));
    } else {
      return Status::InvalidArgument("chaos plan: unknown key '" + key + "'");
    }
    if (ls.fail()) {
      return Status::InvalidArgument("chaos plan: malformed line: " + line);
    }
  }
  if (!saw_end) return Status::InvalidArgument("chaos plan: missing 'end'");
  if (plan.num_shards == 0 || plan.num_replicas == 0) {
    return Status::InvalidArgument("chaos plan: zero shards or replicas");
  }
  return plan;
}

Result<ChaosPlan> ChaosPlan::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open chaos plan " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

Status ChaosPlan::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write chaos plan " + path);
  out << Serialize();
  out.close();
  if (!out) return Status::IoError("short write of chaos plan " + path);
  return Status::OK();
}

std::vector<std::string> RegisterFailpointCatalog(uint32_t num_shards,
                                                  uint32_t num_replicas) {
  std::vector<std::string> sites;
  // Single-engine ingest/persistence sites (every replica shares them —
  // failpoints are process-global, so one armed name fires on whichever
  // replica hits it next; that *is* the interesting nondeterminism, and
  // the probability RNG keeps it reproducible for a fixed hit sequence).
  sites.push_back("ingest.publish.swap");
  sites.push_back("ingest.compact.build");
  sites.push_back("ingest.compact.swap");
  sites.push_back("ingest.delta.persist");
  sites.push_back("wal.rotate");
  sites.push_back("wal.append.write");
  sites.push_back("wal.append.fsync");
  sites.push_back("snapshot.write");
  sites.push_back("snapshot.fsync");
  sites.push_back("snapshot.rename");
  // Approximate-tier sites: per estimate round and before each exact
  // fallback, so plans can hang or fail both phases of adaptive
  // verification.
  sites.push_back("approx.sample");
  sites.push_back("approx.verify");
  // Per-(shard, replica) cluster sites. Cover a few shard ids past the
  // initial count so faults can land on shards created by AddShard.
  const uint32_t max_shard = num_shards + 2;
  for (uint32_t s = 0; s < max_shard; ++s) {
    for (uint32_t r = 0; r < num_replicas; ++r) {
      sites.push_back("cluster.exec." + std::to_string(s) + "." +
                      std::to_string(r));
      sites.push_back("cluster.apply." + std::to_string(s) + "." +
                      std::to_string(r));
    }
  }
  std::sort(sites.begin(), sites.end());
  FailpointRegistry& registry = FailpointRegistry::Instance();
  for (const std::string& site : sites) registry.Register(site);
  return sites;
}

ChaosPlan MakePlan(uint64_t seed, const PlanShape& shape) {
  Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;
  plan.lake_seed = 11 + rng.NextBounded(5);
  plan.num_shards = shape.num_shards != 0
                        ? shape.num_shards
                        : static_cast<uint32_t>(2 + rng.NextBounded(2));
  plan.num_replicas = shape.num_replicas != 0
                          ? shape.num_replicas
                          : static_cast<uint32_t>(1 + rng.NextBounded(3));
  plan.write_quorum = 0;  // majority
  plan.enable_wal = true;
  plan.background = shape.background;
  plan.final_crash = shape.final_crash;

  // Op mix: weighted toward ingest + queries (the steady-state workload),
  // with a tail of maintenance, chaos, and topology ops.
  struct Choice {
    OpKind kind;
    double weight;
  };
  std::vector<Choice> mix = {
      {OpKind::kIngest, 22},      {OpKind::kRemove, 8},
      {OpKind::kKeywordQuery, 14}, {OpKind::kJoinQuery, 7},
      {OpKind::kUnionQuery, 7},    {OpKind::kQueryBurst, 5},
      {OpKind::kCheckpoint, 9},    {OpKind::kCompact, 6},
      {OpKind::kScrub, 5},         {OpKind::kKillReplica, 5},
      {OpKind::kReviveReplica, 5},
  };
  if (shape.allow_topology_ops) {
    mix.push_back({OpKind::kAddShard, 3});
    mix.push_back({OpKind::kRemoveShard, 2});
  }
  if (shape.allow_crash_ops) mix.push_back({OpKind::kCrashRestart, 4});
  std::vector<double> weights;
  for (const Choice& c : mix) weights.push_back(c.weight);

  Rng op_rng = rng.Fork("ops");
  for (uint32_t i = 0; i < shape.num_ops; ++i) {
    ChaosOp op;
    op.kind = mix[op_rng.NextWeighted(weights)].kind;
    op.a = static_cast<uint32_t>(op_rng.NextBounded(1u << 16));
    op.b = static_cast<uint32_t>(op_rng.NextBounded(1u << 16));
    plan.ops.push_back(op);
  }

  // Fault events drawn from the site catalog of this environment shape.
  const std::vector<std::string> sites =
      RegisterFailpointCatalog(plan.num_shards, plan.num_replicas);
  Rng fault_rng = rng.Fork("faults");
  const uint32_t num_faults =
      shape.max_faults == 0
          ? 0
          : static_cast<uint32_t>(fault_rng.NextBounded(shape.max_faults + 1));
  for (uint32_t i = 0; i < num_faults; ++i) {
    FaultEvent f;
    f.failpoint = sites[fault_rng.NextBounded(sites.size())];
    const std::vector<FaultSpec::Kind> kinds = LegalKinds(f.failpoint);
    f.spec.kind = kinds[fault_rng.NextBounded(kinds.size())];
    switch (f.spec.kind) {
      case FaultSpec::Kind::kTornWrite:
        f.spec.arg = fault_rng.NextBounded(512);
        break;
      case FaultSpec::Kind::kDelay:
        f.spec.arg = 2 + fault_rng.NextBounded(20);  // ms
        break;
      default:
        f.spec.arg = 0;
    }
    f.spec.after_hits = fault_rng.NextBounded(3);
    f.spec.max_fires = 1 + fault_rng.NextBounded(3);
    // A quarter of the delay faults become *persistently* slow replicas
    // (max_fires = 0 = unlimited): the shape that exercises hedged reads
    // and latency-outlier ejection rather than one-shot failover.
    if (f.spec.kind == FaultSpec::Kind::kDelay && fault_rng.NextBool(0.25)) {
      f.spec.max_fires = 0;
    }
    const double probs[] = {1.0, 1.0, 0.5, 0.25};
    f.spec.probability = probs[fault_rng.NextBounded(4)];
    f.arm_at_op =
        static_cast<uint32_t>(fault_rng.NextBounded(shape.num_ops));
    // Half the faults disarm after a short window; the rest stay armed
    // until quiesce (long-lived degraded hardware).
    if (fault_rng.NextBool(0.5)) {
      const uint32_t window =
          1 + static_cast<uint32_t>(fault_rng.NextBounded(8));
      f.disarm_at_op = std::min(shape.num_ops, f.arm_at_op + window);
    }
    plan.faults.push_back(std::move(f));
  }
  // Deterministic order for arming: by (arm_at_op, site, kind).
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.arm_at_op != b.arm_at_op) return a.arm_at_op < b.arm_at_op;
              if (a.failpoint != b.failpoint) return a.failpoint < b.failpoint;
              return static_cast<uint32_t>(a.spec.kind) <
                     static_cast<uint32_t>(b.spec.kind);
            });
  return plan;
}

}  // namespace lake::chaos
