#include "chaos/oracle.h"

#include <sstream>

#include "ingest/live_engine.h"

namespace lake::chaos {

void WorkloadOracle::NoteInitial(const Table& table) {
  Entry& e = entries_[table.name()];
  e.can_be_absent = false;
  e.allowed = {ingest::TableContentDigest(table)};
  e.last_content = std::make_shared<const Table>(table);
}

void WorkloadOracle::AckAdd(const Table& table) {
  Entry& e = entries_[table.name()];
  e.can_be_absent = false;
  e.allowed = {ingest::TableContentDigest(table)};
  e.last_content = std::make_shared<const Table>(table);
}

void WorkloadOracle::AckRemove(const std::string& name) {
  Entry& e = entries_[name];
  e.can_be_absent = true;
  e.allowed.clear();
  e.last_content.reset();
}

void WorkloadOracle::IndeterminateAdd(const Table& table) {
  Entry& e = entries_[table.name()];
  e.allowed.insert(ingest::TableContentDigest(table));
  e.last_content = std::make_shared<const Table>(table);
}

void WorkloadOracle::IndeterminateRemove(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  it->second.can_be_absent = true;
}

bool WorkloadOracle::DefinitelyNotApplied(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kInvalidArgument:
      return true;
    default:
      return false;
  }
}

std::vector<std::string> WorkloadOracle::Violations(
    const std::map<std::string, uint32_t>& lake) const {
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    auto it = lake.find(name);
    if (it == lake.end()) {
      if (!e.can_be_absent) {
        out.push_back("acknowledged loss: table '" + name +
                      "' was acked but is missing from the recovered lake");
      }
      continue;
    }
    if (e.allowed.empty()) {
      // Only an acked remove empties the digest set.
      out.push_back("resurrected table: '" + name +
                    "' was acked removed but is present");
      continue;
    }
    if (e.allowed.count(it->second) == 0) {
      std::ostringstream msg;
      msg << "content mismatch: table '" << name << "' has digest "
          << it->second << ", expected one of {";
      bool first = true;
      for (uint32_t d : e.allowed) {
        if (!first) msg << ", ";
        msg << d;
        first = false;
      }
      msg << "}";
      out.push_back(msg.str());
    }
  }
  for (const auto& [name, digest] : lake) {
    (void)digest;
    if (entries_.find(name) == entries_.end()) {
      out.push_back("phantom table: '" + name +
                    "' is present but was never ingested");
    }
  }
  return out;
}

std::vector<std::string> WorkloadOracle::PresentNames() const {
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    if (!e.can_be_absent) out.push_back(name);
  }
  return out;
}

std::vector<std::string> WorkloadOracle::PossiblyPresentNames() const {
  std::vector<std::string> out;
  for (const auto& [name, e] : entries_) {
    if (!e.allowed.empty()) out.push_back(name);
  }
  return out;
}

const Table* WorkloadOracle::LastContent(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return it->second.last_content.get();
}

}  // namespace lake::chaos
