#include "serve/result_cache.h"

#include <algorithm>
#include <bit>

namespace lake::serve {

size_t CachedResult::ApproxBytes() const {
  size_t bytes = sizeof(CachedResult);
  for (const TableResult& t : tables) {
    bytes += sizeof(TableResult) + t.why.capacity();
  }
  for (const ColumnResult& c : columns) {
    bytes += sizeof(ColumnResult) + c.why.capacity();
  }
  for (const std::string& n : table_names) {
    bytes += sizeof(std::string) + n.capacity();
  }
  bytes += shards.capacity() * sizeof(uint32_t);
  return bytes;
}

ResultCache::ResultCache(Options options) {
  const size_t shards = std::bit_ceil(std::max<size_t>(1, options.num_shards));
  per_shard_capacity_ = std::max<size_t>(1, options.capacity_bytes / shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ResultCache::Lookup(uint64_t key, CachedResult* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->value;
  return true;
}

void ResultCache::Insert(uint64_t key, CachedResult value) {
  const size_t bytes = value.ApproxBytes();
  if (bytes > per_shard_capacity_) return;  // oversized: never admitted
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Entry{key, bytes, std::move(value)});
  shard.map[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > per_shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes = 0;
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.insertions += shard->insertions;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
  }
  return stats;
}

namespace {
constexpr uint64_t kStatsMagic = 0x3153434c;  // "LCS1"
}  // namespace

Status WriteStats(const ResultCache::Stats& stats, BinaryWriter* w) {
  w->WriteVarint(kStatsMagic);
  w->WriteVarint(stats.hits);
  w->WriteVarint(stats.misses);
  w->WriteVarint(stats.evictions);
  w->WriteVarint(stats.insertions);
  w->WriteVarint(stats.entries);
  w->WriteVarint(stats.bytes);
  if (!w->ok()) return Status::IoError("cache stats write failed");
  return Status::OK();
}

Result<ResultCache::Stats> ReadStats(BinaryReader* r) {
  LAKE_ASSIGN_OR_RETURN(uint64_t magic, r->ReadVarint());
  if (magic != kStatsMagic) return Status::IoError("not a cache stats block");
  ResultCache::Stats stats;
  LAKE_ASSIGN_OR_RETURN(stats.hits, r->ReadVarint());
  LAKE_ASSIGN_OR_RETURN(stats.misses, r->ReadVarint());
  LAKE_ASSIGN_OR_RETURN(stats.evictions, r->ReadVarint());
  LAKE_ASSIGN_OR_RETURN(stats.insertions, r->ReadVarint());
  LAKE_ASSIGN_OR_RETURN(stats.entries, r->ReadVarint());
  LAKE_ASSIGN_OR_RETURN(stats.bytes, r->ReadVarint());
  return stats;
}

}  // namespace lake::serve
