#ifndef LAKE_SERVE_QUERY_SERVICE_H_
#define LAKE_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "search/discovery_engine.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "store/recovery.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace lake::serve {

/// Query flavors the service multiplexes over one DiscoveryEngine.
enum class QueryKind {
  kKeyword,     // free-text metadata search
  kJoin,        // joinable-column search (request.join_method)
  kUnion,       // unionable-table search (request.union_method)
  kCorrelated,  // joinable + correlated numeric search
};

/// One query. The request owns its inputs except `union_table`, which must
/// outlive the call (tables are large; the service never copies them).
struct QueryRequest {
  QueryKind kind = QueryKind::kKeyword;

  std::string keyword;                  // kKeyword
  std::vector<std::string> values;      // kJoin / kCorrelated join key
  std::vector<double> numeric_values;   // kCorrelated numeric column
  const Table* union_table = nullptr;   // kUnion

  JoinMethod join_method = JoinMethod::kJosie;
  UnionMethod union_method = UnionMethod::kStarmie;
  size_t k = 10;
  /// Exclude a self-match by table id (union search).
  int64_t exclude = -1;

  /// Per-query budget; unset means Options::default_deadline (whose zero
  /// default means no deadline), while an explicit 0ms expires
  /// immediately. The budget covers queue wait + execution, so an
  /// overloaded service fails queued queries fast.
  std::optional<std::chrono::milliseconds> deadline;
  /// Skip cache lookup AND result insertion for this query.
  bool bypass_cache = false;
};

/// Outcome of one query. Exactly one of `tables` / `columns` is populated
/// on success, depending on the query kind.
struct QueryResponse {
  Status status;
  std::vector<TableResult> tables;   // keyword / union
  std::vector<ColumnResult> columns; // join / correlated
  bool cache_hit = false;
  double latency_ms = 0;  // admission to completion, incl. queue wait
};

/// Admission + completion handle returned by Submit. Cancelling via
/// `cancel` makes the query unwind at its next polling point with
/// kCancelled; the future is always eventually satisfied.
struct SubmittedQuery {
  std::future<QueryResponse> response;
  std::shared_ptr<CancelToken> cancel;
};

/// The serving layer of Figure 1's discovery system: wraps a read-only
/// DiscoveryEngine behind a thread-pool executor with a bounded admission
/// queue (explicit kOverloaded backpressure instead of unbounded latency),
/// per-query deadlines with cooperative cancellation, a sharded LRU result
/// cache keyed by canonical query hashes, and a MetricsRegistry every
/// component reports into. The engine's indexes are immutable after
/// construction, so worker threads query them concurrently without locks.
class QueryService {
 public:
  struct Options {
    size_t num_workers = 4;
    /// Max queries admitted but not yet finished; Submit beyond this
    /// returns kOverloaded immediately (backpressure to the caller).
    size_t max_pending = 256;
    bool enable_cache = true;
    ResultCache::Options cache;
    std::chrono::milliseconds default_deadline{0};  // 0 = none
    /// Test/fault-injection instrumentation: runs on the worker thread
    /// after dequeue, before the engine executes.
    std::function<void(const QueryRequest&)> pre_execute_hook;
    /// Recovery state of the engine's snapshot-loaded indexes (not owned;
    /// may be null). When set, Health() reports degraded-mode status and
    /// keeps the serve.degraded / serve.quarantined_sections gauges
    /// current.
    store::RecoveryManager* recovery = nullptr;
  };

  QueryService(const DiscoveryEngine* engine, Options options);
  /// Drains in-flight queries before returning.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a query for asynchronous execution. Fails fast with
  /// kOverloaded when `max_pending` queries are already in flight and
  /// with kInvalidArgument for malformed requests (e.g. kUnion without a
  /// table). Never blocks.
  Result<SubmittedQuery> Submit(QueryRequest request);

  /// Synchronous convenience wrapper: admits, waits, returns. Overload and
  /// validation failures surface in QueryResponse::status.
  QueryResponse Execute(QueryRequest request);

  /// Logically invalidates every cached result by bumping the engine
  /// epoch (part of every cache key), then frees the old entries.
  void InvalidateCache();

  /// Epoch mixed into cache keys; bumped by InvalidateCache.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Canonical cache key of a request under the current epoch: a 64-bit
  /// hash of (kind, method, k, exclude, epoch, query content). Value order
  /// is canonicalized for set-semantics queries, so permutations of the
  /// same join query share one entry.
  uint64_t CacheKey(const QueryRequest& request) const;

  /// Degraded-mode health: which snapshot sections are quarantined and
  /// how far recovery has progressed. `ok` means every registered section
  /// loaded (vacuously true without a RecoveryManager).
  struct HealthSnapshot {
    bool ok = true;
    bool degraded = false;
    uint64_t sections_loaded = 0;
    uint64_t recovered_generation = 0;
    std::vector<store::RecoveryManager::QuarantineEntry> quarantined;
  };

  /// Snapshot of degraded-mode state; also refreshes the serve.degraded
  /// and serve.quarantined_sections gauges, so exporting metrics after
  /// Health() reflects the current quarantine.
  HealthSnapshot Health();

  /// Queries admitted and not yet completed.
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

  MetricsRegistry& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }
  const Options& options() const { return options_; }

 private:
  QueryResponse Run(const QueryRequest& request, const CancelToken* cancel,
                    std::chrono::steady_clock::time_point admitted);
  Status Validate(const QueryRequest& request) const;
  /// JOSIE path with the engine hook: harvests the index's per-query work
  /// counters (postings read) into the registry.
  Result<std::vector<ColumnResult>> JosieWithStats(
      const QueryRequest& request, const CancelToken* cancel);

  const DiscoveryEngine* engine_;
  Options options_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> pending_{0};

  // Hot-path metric handles (resolved once; the registry owns them).
  Counter* queries_admitted_;
  Counter* queries_rejected_;
  Counter* queries_deadline_exceeded_;
  Counter* queries_cancelled_;
  Counter* queries_failed_;
  /// FailedPrecondition outcomes: the modality's index is unbuilt or
  /// quarantined — the degraded-mode signal, distinct from other failures.
  Counter* queries_unavailable_;
  Gauge* degraded_gauge_;
  Gauge* quarantined_gauge_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* josie_postings_read_;
  LatencyHistogram* queue_wait_;
  LatencyHistogram* latency_by_kind_[4];

  // Last member: destroyed (and therefore drained) first, while the
  // cache/metrics the workers report into are still alive.
  ThreadPool pool_;
};

}  // namespace lake::serve

#endif  // LAKE_SERVE_QUERY_SERVICE_H_
