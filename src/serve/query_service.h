#ifndef LAKE_SERVE_QUERY_SERVICE_H_
#define LAKE_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "ingest/generation.h"
#include "search/discovery_engine.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/metrics.h"
#include "serve/result_cache.h"
#include "store/recovery.h"
#include "util/cancel.h"
#include "util/thread_pool.h"

namespace lake::ingest {
class LiveEngine;
}  // namespace lake::ingest

namespace lake::serve {

/// Query flavors the service multiplexes over one DiscoveryEngine.
enum class QueryKind {
  kKeyword,     // free-text metadata search
  kJoin,        // joinable-column search (request.join_method)
  kUnion,       // unionable-table search (request.union_method)
  kCorrelated,  // joinable + correlated numeric search
};

/// One query. The request owns its inputs except `union_table`, which must
/// outlive the call (tables are large; the service never copies them).
struct QueryRequest {
  QueryKind kind = QueryKind::kKeyword;

  std::string keyword;                  // kKeyword
  std::vector<std::string> values;      // kJoin / kCorrelated join key
  std::vector<double> numeric_values;   // kCorrelated numeric column
  const Table* union_table = nullptr;   // kUnion

  JoinMethod join_method = JoinMethod::kJosie;
  UnionMethod union_method = UnionMethod::kStarmie;
  size_t k = 10;
  /// Exclude a self-match by table id (union search, single-engine modes).
  int64_t exclude = -1;
  /// Exclude a self-match by table name (union search, cluster mode —
  /// table ids are shard-local there, so names are the only stable way to
  /// address a table). Ignored in single-engine modes.
  std::string exclude_name;

  /// Scheduling class: under overload, batch queries are shed before any
  /// interactive query is touched.
  Priority priority = Priority::kInteractive;

  /// Per-query budget; unset means Options::default_deadline (whose zero
  /// default means no deadline), while an explicit 0ms expires
  /// immediately. The budget covers queue wait + execution, so an
  /// overloaded service fails queued queries fast.
  std::optional<std::chrono::milliseconds> deadline;
  /// Skip cache lookup AND result insertion for this query.
  bool bypass_cache = false;
  /// Refuse brownout for this query: if the requested method cannot serve
  /// it, fail (kUnavailable) rather than answer with a cheaper method.
  /// Also vetoes approx_ok routing.
  bool require_exact_method = false;

  /// Opt into the sampling-based approximate tier (kJoin only): the
  /// service may rewrite join_method to JoinMethod::kApprox at admission
  /// when the engine built the sample index. Approximate answers carry a
  /// confidence interval in each result's `why` and set
  /// QueryResponse::approx; candidates whose interval cannot settle the
  /// ranking are verified exactly before they are returned.
  bool approx_ok = false;
  /// Per-estimate error budget delta for the approximate tier: intervals
  /// cover the truth with probability >= 1 - delta. <= 0 means the engine
  /// default (0.1); values >= 1 are rejected. Ignored unless the query is
  /// served by JoinMethod::kApprox.
  double error_budget = -1;
};

/// Outcome of one query. Exactly one of `tables` / `columns` is populated
/// on success, depending on the query kind.
struct QueryResponse {
  Status status;
  std::vector<TableResult> tables;   // keyword / union
  std::vector<ColumnResult> columns; // join / correlated
  bool cache_hit = false;
  /// True when a brownout fallback (e.g. Starmie -> TUS) answered instead
  /// of the requested method; results are best-effort, not the requested
  /// quality tier.
  bool degraded = false;
  /// Modality that actually produced the answer ("union.tus",
  /// "join.josie", ...); empty for cache hits and unexecuted failures.
  std::string served_by;
  /// True when the sampling-based approximate tier produced the answer
  /// (approx_ok routing or join brownout); every result's `why` then
  /// carries its confidence interval or the exact-fallback value.
  bool approx = false;
  /// Cluster-mode provenance, parallel to tables/columns (empty in
  /// single-engine modes): each hit's stable table name and owning shard.
  std::vector<std::string> table_names;
  std::vector<uint32_t> shards;
  /// Cluster mode: shards that failed to answer within their deadline
  /// budget. Non-empty implies `degraded` — the hits are partial coverage.
  std::vector<uint32_t> missing_shards;
  double latency_ms = 0;  // admission to completion, incl. queue wait
};

/// Admission + completion handle returned by Submit. Cancelling via
/// `cancel` makes the query unwind at its next polling point with
/// kCancelled; the future is always eventually satisfied.
struct SubmittedQuery {
  std::future<QueryResponse> response;
  std::shared_ptr<CancelToken> cancel;
};

/// The serving layer of Figure 1's discovery system: wraps a read-only
/// DiscoveryEngine behind a thread-pool executor with adaptive admission
/// control (AIMD concurrency limit + CoDel dequeue shedding, batch shed
/// first), per-query deadlines with cooperative cancellation, a sharded
/// LRU result cache keyed by canonical query hashes, per-modality circuit
/// breakers with graceful brownout to the survey's cheap methods
/// (Starmie -> TUS, JOSIE -> LSH Ensemble), and a MetricsRegistry every
/// component reports into. The engine's indexes are immutable after
/// construction, so worker threads query them concurrently without locks.
class QueryService {
 public:
  struct Options {
    size_t num_workers = 4;
    /// Hard cap on queries admitted but not yet finished; the adaptive
    /// limit lives in [admission.min_limit, max_pending]. Submit beyond
    /// the live limit returns kOverloaded immediately (backpressure to
    /// the caller).
    size_t max_pending = 256;

    /// Adaptive admission (AIMD + CoDel). When false the fixed
    /// max_pending bound of the original design applies. Unset
    /// (zero) admission.initial_limit / latency target / CoDel target are
    /// derived at construction: initial limit = max_pending, and when
    /// default_deadline is set, latency target = deadline / 2 and CoDel
    /// target = deadline / 10.
    bool adaptive_admission = true;
    AdmissionController::Options admission;

    /// Per-modality circuit breakers keyed by (QueryKind, method).
    bool enable_breakers = true;
    CircuitBreaker::Options breaker;

    /// Brownout: when the requested method's breaker refuses, or the
    /// remaining deadline budget is below the method's tracked latency
    /// quantile, serve the cheaper surveyed method and flag the response
    /// degraded instead of failing.
    bool enable_brownout = true;
    double brownout_quantile = 0.95;
    /// Minimum samples in a method's latency histogram before the budget
    /// check trusts its quantile.
    uint64_t brownout_min_samples = 32;

    bool enable_cache = true;
    ResultCache::Options cache;
    std::chrono::milliseconds default_deadline{0};  // 0 = none
    /// Test/fault-injection instrumentation: runs on the worker thread
    /// after dequeue, before the engine executes.
    std::function<void(const QueryRequest&)> pre_execute_hook;
    /// Recovery state of the engine's snapshot-loaded indexes (not owned;
    /// may be null). When set, Health() reports degraded-mode status and
    /// keeps the serve.degraded / serve.quarantined_sections gauges
    /// current.
    store::RecoveryManager* recovery = nullptr;
  };

  QueryService(const DiscoveryEngine* engine, Options options);

  /// Serves a live (online-ingesting) engine instead of a frozen one:
  /// every query acquires the current generation RCU-style and answers
  /// keyword/join/union with base+delta merged top-k, so tables added
  /// through the ingest pipeline are discoverable without a restart and
  /// removed tables disappear immediately. Cache keys mix the generation's
  /// publish version, so a publish logically invalidates stale entries.
  QueryService(const ingest::LiveEngine* live, Options options);

  /// Serves a sharded cluster: queries scatter to every shard and gather
  /// through the cluster's N-way merge; per-query provenance
  /// (table_names/shards/missing_shards) reports where each hit lives. A
  /// response missing shards is flagged degraded and never cached. Cache
  /// keys mix the cluster's mutation version.
  QueryService(const cluster::ClusterEngine* cluster, Options options);

  /// Drains in-flight queries before returning.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a query for asynchronous execution. Fails fast with
  /// kOverloaded when the live admission limit is reached (batch sheds
  /// first) and with kInvalidArgument for malformed requests (e.g. kUnion
  /// without a table). Never blocks.
  Result<SubmittedQuery> Submit(QueryRequest request);

  /// Synchronous convenience wrapper: admits, waits, returns. Overload and
  /// validation failures surface in QueryResponse::status.
  QueryResponse Execute(QueryRequest request);

  /// Logically invalidates every cached result by bumping the engine
  /// epoch (part of every cache key), then frees the old entries.
  void InvalidateCache();

  /// Epoch mixed into cache keys; bumped by InvalidateCache.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Canonical cache key of a request under the current epoch: a 64-bit
  /// hash of (kind, method, k, exclude, epoch, query content). Value order
  /// is canonicalized for set-semantics queries, so permutations of the
  /// same join query share one entry.
  uint64_t CacheKey(const QueryRequest& request) const;

  /// Modality key of a request — "<kind>" or "<kind>.<method>", e.g.
  /// "union.starmie" — naming its circuit breaker, its execution-latency
  /// histogram (serve.exec.<modality>) and its failpoint site
  /// (serve.exec.<modality>).
  static std::string ModalityName(const QueryRequest& request);

  /// One breaker's externally visible state.
  struct BreakerStatus {
    std::string modality;
    CircuitBreaker::State state = CircuitBreaker::State::kClosed;
    double failure_rate = 0;
    uint64_t trips = 0;
  };

  /// Service health: degraded-mode recovery state plus overload state —
  /// which breakers are open, the live admission limit, and in-flight
  /// count. `ok` means every snapshot section loaded AND every breaker is
  /// closed.
  struct HealthSnapshot {
    bool ok = true;
    bool degraded = false;
    uint64_t sections_loaded = 0;
    uint64_t recovered_generation = 0;
    std::vector<store::RecoveryManager::QuarantineEntry> quarantined;

    size_t admission_limit = 0;
    size_t admission_in_flight = 0;
    size_t open_breakers = 0;
    std::vector<BreakerStatus> breakers;

    /// Live-mode WAL state (all zero in frozen mode or with the WAL
    /// disabled). wal_unsynced_records is the acknowledged-but-volatile
    /// loss window — 0 under per-append fsync.
    bool wal_enabled = false;
    uint64_t wal_last_lsn = 0;
    uint64_t wal_durable_lsn = 0;
    uint64_t wal_unsynced_records = 0;

    /// Cluster mode: per-shard replica/breaker health (empty otherwise).
    /// A shard with zero *serving* replicas (alive, non-stale, breaker not
    /// open — exactly the replicas Pick may return) marks the service
    /// degraded.
    std::vector<cluster::ClusterEngine::ShardHealth> shards;
    /// Replicas excluded from reads because their content diverged from
    /// the write quorum (anti-entropy repairs and re-admits them).
    size_t stale_replicas = 0;
    /// Replicas the latency-outlier state machine currently holds in the
    /// ejected/probing state (skipped by replica pick unless they are the
    /// last resort; does not mark the service degraded).
    size_t ejected_replicas = 0;
    /// At least one shard's replicas disagree on their content digest —
    /// replication is converging (or a repair is pending), answers from
    /// non-stale replicas are still correct.
    bool replicas_divergent = false;
  };

  /// Snapshot of health state; also refreshes the serve.degraded,
  /// serve.quarantined_sections, serve.admission.*, serve.breakers.open
  /// and per-breaker state gauges, so exporting metrics after Health()
  /// reflects the current picture.
  HealthSnapshot Health();

  /// Queries admitted and not yet completed.
  size_t pending() const { return pending_.load(std::memory_order_relaxed); }

  MetricsRegistry& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }
  AdmissionController& admission() { return *admission_; }
  BreakerSet& breakers() { return breakers_; }
  const Options& options() const { return options_; }

 private:
  /// Engine snapshot one query executes against. In live mode `gen` pins
  /// the acquired generation (RCU: the swapped-out state stays alive until
  /// this query drains) and `engine` points at its base; in frozen mode
  /// `gen` is null and `engine` is the constructor's engine; in cluster
  /// mode `cluster` is set and `engine`/`gen` stay null (the cluster pins
  /// per-shard generations internally).
  struct ExecContext {
    const DiscoveryEngine* engine = nullptr;
    std::shared_ptr<const ingest::Generation> gen;
    const cluster::ClusterEngine* cluster = nullptr;
  };

  QueryResponse Run(const QueryRequest& request, const CancelToken* cancel,
                    std::chrono::steady_clock::time_point admitted);
  Status Validate(const QueryRequest& request) const;
  uint64_t CacheKeyWithVersion(const QueryRequest& request,
                               uint64_t version) const;
  /// Breaker + brownout dispatch: picks the modality (requested or
  /// fallback), executes it, and feeds outcomes back into the breakers.
  void ExecutePlan(const QueryRequest& request, const ExecContext& ctx,
                   const CancelToken* cancel, QueryResponse* response);
  /// Executes one concrete (kind, method) modality against the engine.
  void ExecuteEngine(const QueryRequest& request, JoinMethod join_method,
                     UnionMethod union_method, const std::string& modality,
                     const ExecContext& ctx, const CancelToken* cancel,
                     QueryResponse* response);
  /// The cheaper surveyed fallback for a modality, if the engine has it.
  struct Fallback {
    JoinMethod join_method;
    UnionMethod union_method;
    std::string modality;
    Counter* counter = nullptr;  // serve.brownout.<kind>
  };
  std::optional<Fallback> FallbackFor(const QueryRequest& request,
                                      const ExecContext& ctx) const;
  /// Cluster-mode dispatch: scatter-gather through the cluster engine and
  /// translate hits into the response (ids + names + shards + missing).
  void ExecuteCluster(const QueryRequest& request, JoinMethod join_method,
                      UnionMethod union_method, const CancelToken* cancel,
                      QueryResponse* response);
  /// JOSIE path with the engine hook: harvests the index's per-query work
  /// counters (postings read) into the registry.
  Result<std::vector<ColumnResult>> JosieWithStats(
      const QueryRequest& request, const CancelToken* cancel,
      const DiscoveryEngine& engine);
  void RecordMergeStats(const ingest::MergeStats& stats);
  /// True when the served engine(s) built the approximate sample tier —
  /// the admission-time gate for approx_ok routing.
  bool ApproxAvailable() const;
  /// Harvests one approximate query's work accounting into the approx.*
  /// metrics (estimates, fallback/interval decisions, widths, samples).
  void RecordApproxStats(const approx::ApproxQueryStats& stats);

  const DiscoveryEngine* engine_;
  const ingest::LiveEngine* live_ = nullptr;
  const cluster::ClusterEngine* cluster_ = nullptr;
  Options options_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  std::unique_ptr<AdmissionController> admission_;
  BreakerSet breakers_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<size_t> pending_{0};

  // Hot-path metric handles (resolved once; the registry owns them).
  Counter* queries_admitted_;
  Counter* queries_rejected_;
  Counter* queries_deadline_exceeded_;
  Counter* queries_cancelled_;
  Counter* queries_failed_;
  /// FailedPrecondition / breaker-open outcomes: the modality cannot serve
  /// — the degraded-mode signal, distinct from other failures.
  Counter* queries_unavailable_;
  Counter* shed_limit_;
  Counter* shed_batch_;
  Counter* shed_codel_;
  Counter* brownout_total_;
  Counter* brownout_union_;
  Counter* brownout_join_;
  Counter* breaker_fast_fail_;
  Gauge* degraded_gauge_;
  Gauge* quarantined_gauge_;
  Gauge* admission_limit_gauge_;
  Gauge* admission_in_flight_gauge_;
  Gauge* breakers_open_gauge_;
  /// Per-modality breaker state as one labeled family
  /// (serve.breaker.state{modality=...}) instead of a gauge per
  /// concatenated name.
  GaugeFamily* breaker_state_gauges_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* josie_postings_read_;
  /// Approximate-tier accounting: queries served by join.approx, estimator
  /// invocations, and how each candidate was settled (interval vs exact
  /// fallback — the fallback rate is exact_fallbacks / decisions).
  Counter* approx_queries_;
  Counter* approx_estimates_;
  Counter* approx_exact_fallbacks_;
  Counter* approx_interval_decisions_;
  /// Final interval widths (recorded as width * 1e4, i.e. basis points)
  /// and final per-candidate sample sizes.
  LatencyHistogram* approx_interval_width_;
  LatencyHistogram* approx_sample_size_;
  /// Merged-query provenance: results served from the immutable base vs
  /// the ingest delta (live mode only; zero when serving a frozen engine).
  Counter* ingest_base_hits_;
  Counter* ingest_delta_hits_;
  LatencyHistogram* queue_wait_;
  LatencyHistogram* latency_by_kind_[4];

  // Last member: destroyed (and therefore drained) first, while the
  // cache/metrics/admission state the workers report into are still alive.
  ThreadPool pool_;
};

}  // namespace lake::serve

#endif  // LAKE_SERVE_QUERY_SERVICE_H_
