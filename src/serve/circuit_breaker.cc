#include "serve/circuit_breaker.h"

#include <algorithm>
#include <chrono>

#include "util/backoff.h"

namespace lake::serve {

namespace {
bool IsSet(CircuitBreaker::Clock::time_point t) {
  return t.time_since_epoch().count() != 0;
}
}  // namespace

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {
  options_.window_buckets = std::max<size_t>(1, options_.window_buckets);
  options_.half_open_max_probes =
      std::max<size_t>(1, options_.half_open_max_probes);
  options_.close_after_successes =
      std::max<size_t>(1, options_.close_after_successes);
  buckets_.resize(options_.window_buckets);
}

void CircuitBreaker::RollWindow(Clock::time_point now) {
  if (!IsSet(bucket_start_)) {
    bucket_start_ = now;
    return;
  }
  // Advance (and zero) one bucket per elapsed bucket_width; a gap longer
  // than the whole window just clears it.
  while (now - bucket_start_ >= options_.bucket_width) {
    current_bucket_ = (current_bucket_ + 1) % buckets_.size();
    buckets_[current_bucket_] = Bucket{};
    bucket_start_ += options_.bucket_width;
    if (now - bucket_start_ >=
        options_.bucket_width * static_cast<int>(buckets_.size())) {
      for (Bucket& b : buckets_) b = Bucket{};
      bucket_start_ = now;
      break;
    }
  }
}

double CircuitBreaker::FailureRateLocked() const {
  uint64_t successes = 0, failures = 0;
  for (const Bucket& b : buckets_) {
    successes += b.successes;
    failures += b.failures;
  }
  const uint64_t total = successes + failures;
  if (total < options_.min_volume) return 0;
  return static_cast<double>(failures) / static_cast<double>(total);
}

void CircuitBreaker::TripLocked(Clock::time_point now) {
  state_ = State::kOpen;
  ++trips_;
  const auto base =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.open_base);
  const auto max =
      std::chrono::duration_cast<std::chrono::nanoseconds>(options_.open_max);
  reopen_at_ = now + std::chrono::nanoseconds(BackoffDelay(
                         static_cast<uint64_t>(base.count()),
                         static_cast<uint64_t>(max.count()),
                         consecutive_opens_ + 1));
  ++consecutive_opens_;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  for (Bucket& b : buckets_) b = Bucket{};
  bucket_start_ = {};
}

CircuitBreaker::Permit CircuitBreaker::Allow(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (now < reopen_at_) return Permit::kDenied;
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ >= options_.half_open_max_probes) {
      return Permit::kDenied;
    }
    ++probes_in_flight_;
    return Permit::kProbe;
  }
  return Permit::kAllowed;
}

void CircuitBreaker::RecordSuccess(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= options_.close_after_successes) {
        state_ = State::kClosed;
        consecutive_opens_ = 0;
        for (Bucket& b : buckets_) b = Bucket{};
        bucket_start_ = {};
      }
      return;
    case State::kClosed:
      RollWindow(now);
      ++buckets_[current_bucket_].successes;
      return;
    case State::kOpen:
      return;  // straggler admitted before the trip: window was reset
  }
}

void CircuitBreaker::RecordFailure(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kHalfOpen:
      // One failed probe reopens with a longer backoff.
      TripLocked(now);
      return;
    case State::kClosed: {
      RollWindow(now);
      ++buckets_[current_bucket_].failures;
      const double rate = FailureRateLocked();
      if (rate >= options_.failure_threshold) TripLocked(now);
      return;
    }
    case State::kOpen:
      return;
  }
}

void CircuitBreaker::RecordNeutral(Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen && probes_in_flight_ > 0) {
    --probes_in_flight_;
  }
}

CircuitBreaker::State CircuitBreaker::state(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen && now >= reopen_at_) {
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  return state_;
}

double CircuitBreaker::failure_rate(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kClosed) RollWindow(now);
  return FailureRateLocked();
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker* BreakerSet::Get(const std::string& modality) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = breakers_.find(modality);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(modality, std::make_unique<CircuitBreaker>(options_))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, CircuitBreaker*>> BreakerSet::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, CircuitBreaker*>> out;
  out.reserve(breakers_.size());
  for (const auto& [name, breaker] : breakers_) {
    out.emplace_back(name, breaker.get());
  }
  return out;
}

}  // namespace lake::serve
