#ifndef LAKE_SERVE_METRICS_H_
#define LAKE_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace lake::serve {

/// Monotonic counter. Add/value are lock-free; many threads may report.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins level metric (degraded flag, quarantine depth, queue
/// length). Set/value are lock-free.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-memory log-scale latency histogram (microsecond samples): buckets
/// are quarters of powers of two (HdrHistogram-style, 2 sub-bucket bits),
/// so relative error of any extracted quantile is bounded by ~12.5% while
/// the whole histogram is 256 atomic slots. Record is lock-free.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 256;

  /// Records one latency sample in microseconds (negative clamps to 0).
  void Record(double micros);

  struct Snapshot {
    uint64_t count = 0;
    double sum_micros = 0;
    double min_micros = 0;  // exact smallest sample; 0 when empty
    double max_micros = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double mean() const { return count == 0 ? 0 : sum_micros / count; }
    /// Quantile in microseconds by interpolation inside the hit bucket.
    /// Edge cases are exact, not interpolated: an empty histogram returns
    /// 0 for every q, q<=0 returns the tracked minimum, q>=1 (and any
    /// out-of-range q) the tracked maximum, NaN is treated as 0, and
    /// interior quantiles are clamped into [min, max] so interpolation
    /// never extrapolates past an observed sample.
    double Quantile(double q) const;
    double p50() const { return Quantile(0.50); }
    double p95() const { return Quantile(0.95); }
    double p99() const { return Quantile(0.99); }
  };

  Snapshot Snap() const;

  /// Live quantile in microseconds (0 when empty): snapshots the buckets
  /// and interpolates inside the hit bucket, exactly Snapshot::Quantile.
  /// Cheap enough for per-query control decisions (the brownout budget
  /// check compares the remaining deadline against a method's p95).
  double Percentile(double q) const { return Snap().Quantile(q); }

  /// Samples recorded so far (control paths gate Percentile on a minimum
  /// volume before trusting it).
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Bucket index for a microsecond value, and the inclusive lower bound /
  /// exclusive upper bound of a bucket (exposed for tests).
  static size_t BucketIndex(uint64_t micros);
  static uint64_t BucketLowerBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> min_micros_{UINT64_MAX};  // UINT64_MAX = no samples
  std::atomic<uint64_t> max_micros_{0};
};

class MetricsRegistry;

/// A family of counters sharing one name and distinguished by a label
/// value (e.g. cluster.shard.queries labeled by shard id) — the supported
/// way to emit per-shard / per-replica metrics instead of concatenating
/// names at every call site. WithLabel creates on first use and returns a
/// stable pointer callers cache; each labeled member is exported through
/// the owning registry as `name{label_key=value}`, so every existing
/// snapshot/text/JSON/binary consumer sees it as a plain counter.
class CounterFamily {
 public:
  Counter* WithLabel(const std::string& value);
  /// Convenience for integer labels (shard/replica indexes).
  Counter* WithLabel(uint64_t value);

 private:
  friend class MetricsRegistry;
  CounterFamily(MetricsRegistry* registry, std::string name,
                std::string label_key)
      : registry_(registry),
        name_(std::move(name)),
        label_key_(std::move(label_key)) {}

  MetricsRegistry* registry_;
  std::string name_;
  std::string label_key_;
  std::mutex mu_;
  std::unordered_map<std::string, Counter*> by_label_;
};

/// Labeled gauges, same contract as CounterFamily.
class GaugeFamily {
 public:
  Gauge* WithLabel(const std::string& value);
  Gauge* WithLabel(uint64_t value);

 private:
  friend class MetricsRegistry;
  GaugeFamily(MetricsRegistry* registry, std::string name,
              std::string label_key)
      : registry_(registry),
        name_(std::move(name)),
        label_key_(std::move(label_key)) {}

  MetricsRegistry* registry_;
  std::string name_;
  std::string label_key_;
  std::mutex mu_;
  std::unordered_map<std::string, Gauge*> by_label_;
};

/// Registry of named counters and latency histograms the serving layer
/// (executor, cache, engine hooks) reports into. Get* creates on first use
/// and returns a stable pointer callers cache; snapshots are consistent
/// per-metric (relaxed across metrics, which is fine for monitoring).
class MetricsRegistry {
 public:
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double max_us = 0;
  };

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;  // name-sorted
    std::vector<std::pair<std::string, uint64_t>> gauges;    // name-sorted
    std::vector<HistogramRow> histograms;                    // name-sorted
  };

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Labeled families. The (name, label_key) pair identifies one family;
  /// members flatten into the registry as `name{label_key=value}` (see
  /// FlatName), so exports and the binary snapshot need no new schema.
  CounterFamily* GetCounterFamily(const std::string& name,
                                  const std::string& label_key);
  GaugeFamily* GetGaugeFamily(const std::string& name,
                              const std::string& label_key);

  /// Flattened export name of one family member:
  /// `cluster.shard.queries{shard=3}`.
  static std::string FlatName(const std::string& name,
                              const std::string& label_key,
                              const std::string& value);

  Snapshot Snap() const;

  /// Human-readable dump, one metric per line.
  std::string ToText() const;
  /// Single-object JSON dump ({"counters":{...},"histograms":{...}}).
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  /// Families keyed by "name\x1f[label_key]"; members live in the plain
  /// maps above under their flattened names.
  std::map<std::string, std::unique_ptr<CounterFamily>> counter_families_;
  std::map<std::string, std::unique_ptr<GaugeFamily>> gauge_families_;
};

/// Binary round-trip of a registry snapshot (BinaryWriter/BinaryReader),
/// used to ship metrics off-process and to archive bench runs.
Status WriteSnapshot(const MetricsRegistry::Snapshot& snap, BinaryWriter* w);
Result<MetricsRegistry::Snapshot> ReadSnapshot(BinaryReader* r);

}  // namespace lake::serve

#endif  // LAKE_SERVE_METRICS_H_
