#ifndef LAKE_SERVE_CIRCUIT_BREAKER_H_
#define LAKE_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lake::serve {

/// Rolling-window circuit breaker guarding one query modality (one
/// (QueryKind, method) pair). A modality whose error/timeout rate over the
/// recent window crosses the threshold *trips*: calls are refused
/// instantly (the serving layer answers kUnavailable or browns out to a
/// cheaper method) instead of feeding more pool threads into a hung or
/// quarantined index. After a capped exponential backoff the breaker goes
/// half-open and admits a bounded number of probe calls; enough probe
/// successes close it, one probe failure reopens it with a longer backoff.
///
/// Outcomes are accounted in `window_buckets` time buckets of
/// `bucket_width` each, so old failures age out instead of poisoning the
/// rate forever. All methods take an explicit `now` for deterministic
/// tests; everything is guarded by one short mutex (a handful of integer
/// ops per query).
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    size_t window_buckets = 8;
    std::chrono::milliseconds bucket_width{250};  // 2s rolling window
    /// Minimum outcomes in the window before the rate can trip.
    size_t min_volume = 8;
    /// Failure fraction at or above which the breaker trips.
    double failure_threshold = 0.5;
    /// Open backoff: open_base * 2^(consecutive reopens), capped.
    std::chrono::milliseconds open_base{250};
    std::chrono::milliseconds open_max{8000};
    /// Concurrent probes admitted while half-open.
    size_t half_open_max_probes = 1;
    /// Probe successes required to close from half-open.
    size_t close_after_successes = 2;
  };

  enum class Permit {
    kDenied,   // open (backoff running) or half-open probe slots taken
    kAllowed,  // closed: normal call, outcome feeds the rolling window
    kProbe,    // half-open probe slot granted: outcome MUST be recorded
  };

  explicit CircuitBreaker(Options options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May a call proceed now? Advances open -> half-open when the backoff
  /// has elapsed.
  Permit Allow(Clock::time_point now);

  /// Outcome of an allowed call. Success/failure feed the window (closed)
  /// or the probe protocol (half-open); neutral (cancelled by the caller,
  /// says nothing about the dependency) only releases a probe slot.
  void RecordSuccess(Clock::time_point now);
  void RecordFailure(Clock::time_point now);
  void RecordNeutral(Clock::time_point now);

  /// Current state (advances open -> half-open on read, like Allow).
  State state(Clock::time_point now);

  /// Failure fraction over the live window (0 when below min_volume).
  double failure_rate(Clock::time_point now);

  /// Lifetime closed->open transitions (includes half-open reopens).
  uint64_t trips() const;

  static const char* StateName(State s);

 private:
  void RollWindow(Clock::time_point now);
  void TripLocked(Clock::time_point now);
  double FailureRateLocked() const;

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;

  struct Bucket {
    uint64_t successes = 0;
    uint64_t failures = 0;
  };
  std::vector<Bucket> buckets_;
  size_t current_bucket_ = 0;
  Clock::time_point bucket_start_{};  // unset until the first outcome

  Clock::time_point reopen_at_{};
  uint64_t consecutive_opens_ = 0;
  size_t probes_in_flight_ = 0;
  size_t probe_successes_ = 0;
  uint64_t trips_ = 0;
};

/// Lazily-populated set of breakers keyed by modality name (the serving
/// layer keys by "<kind>.<method>", e.g. "union.starmie"). Pointers are
/// stable for the set's lifetime, so hot paths resolve once per query.
class BreakerSet {
 public:
  explicit BreakerSet(CircuitBreaker::Options options)
      : options_(options) {}

  CircuitBreaker* Get(const std::string& modality);

  /// Name-sorted view for health/metrics export.
  std::vector<std::pair<std::string, CircuitBreaker*>> All() const;

 private:
  CircuitBreaker::Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace lake::serve

#endif  // LAKE_SERVE_CIRCUIT_BREAKER_H_
