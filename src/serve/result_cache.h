#ifndef LAKE_SERVE_RESULT_CACHE_H_
#define LAKE_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "search/query.h"
#include "util/serialize.h"
#include "util/status.h"

namespace lake::serve {

/// Payload cached per query: whichever of the two result shapes the query
/// kind produces (tables for keyword/union, columns for join).
struct CachedResult {
  std::vector<TableResult> tables;
  std::vector<ColumnResult> columns;
  /// Cluster-mode provenance, parallel to tables/columns (empty when the
  /// answer came from a single engine): the stable table names and the
  /// shard each hit came from.
  std::vector<std::string> table_names;
  std::vector<uint32_t> shards;

  /// Approximate heap footprint, used for the cache's memory bound.
  size_t ApproxBytes() const;
};

/// Sharded, memory-bounded LRU cache of query results. Keys are canonical
/// 64-bit hashes of (query, method, k, engine epoch) computed by the
/// serving layer; a key's shard is its low bits, so shards lock
/// independently and concurrent queries rarely contend. Each shard evicts
/// least-recently-used entries once its byte budget (capacity_bytes /
/// num_shards) is exceeded. Hit/miss/eviction/insertion counters are
/// aggregated across shards.
class ResultCache {
 public:
  struct Options {
    size_t num_shards = 8;            // rounded up to a power of two
    size_t capacity_bytes = 32 << 20; // total, across shards
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    uint64_t entries = 0;  // resident now
    uint64_t bytes = 0;    // resident now
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  explicit ResultCache(Options options);

  /// Copies the cached value into `*out` and promotes the entry to
  /// most-recently-used. Counts a hit or a miss.
  bool Lookup(uint64_t key, CachedResult* out);

  /// Inserts (or replaces) a value, then evicts LRU entries until the
  /// shard fits its budget. Values larger than a whole shard are not
  /// admitted (they would evict everything for one unlikely-reused entry).
  void Insert(uint64_t key, CachedResult value);

  /// Drops every entry (epoch bumps route around stale keys; Clear also
  /// returns the memory).
  void Clear();

  Stats GetStats() const;
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    uint64_t key = 0;
    size_t bytes = 0;
    CachedResult value;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[key & (shards_.size() - 1)];
  }

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Binary round-trip of the cache stats block (BinaryWriter/BinaryReader).
Status WriteStats(const ResultCache::Stats& stats, BinaryWriter* w);
Result<ResultCache::Stats> ReadStats(BinaryReader* r);

}  // namespace lake::serve

#endif  // LAKE_SERVE_RESULT_CACHE_H_
