#include "serve/query_service.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "ingest/live_engine.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace lake::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Order-insensitive hash of a value multiset (join queries are sets; the
/// caller's value order must not fragment the cache).
uint64_t HashValuesUnordered(const std::vector<std::string>& values) {
  uint64_t h = 0;
  for (const std::string& v : values) h += Mix64(Hash64(v, /*seed=*/41));
  return h;
}

uint64_t HashNumbers(const std::vector<double>& values) {
  uint64_t h = 0xa5a5a5a5a5a5a5a5ULL;
  for (double v : values) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

/// Content hash of a query table: name, shape, column names and cells.
/// Union queries are whole tables, so identity (not pointer) keys the
/// cache entry.
uint64_t HashTable(const Table& t) {
  uint64_t h = Hash64(t.name(), /*seed=*/97);
  h = HashCombine(h, t.num_columns());
  h = HashCombine(h, t.num_rows());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    h = HashCombine(h, Hash64(col.name()));
    h = HashCombine(h, static_cast<uint64_t>(col.type()));
    for (const std::string& s : col.NonNullStrings()) {
      h = HashCombine(h, Hash64(s));
    }
  }
  return h;
}

size_t KindIndex(QueryKind kind) { return static_cast<size_t>(kind); }

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKeyword:
      return "keyword";
    case QueryKind::kJoin:
      return "join";
    case QueryKind::kUnion:
      return "union";
    case QueryKind::kCorrelated:
      return "correlated";
  }
  return "unknown";
}

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kExactJaccard:
      return "exact_jaccard";
    case JoinMethod::kExactContainment:
      return "exact_containment";
    case JoinMethod::kLshEnsemble:
      return "lsh_ensemble";
    case JoinMethod::kJosie:
      return "josie";
    case JoinMethod::kPexeso:
      return "pexeso";
    case JoinMethod::kApprox:
      return "approx";
  }
  return "unknown";
}

const char* UnionMethodName(UnionMethod method) {
  switch (method) {
    case UnionMethod::kTus:
      return "tus";
    case UnionMethod::kSantos:
      return "santos";
    case UnionMethod::kStarmie:
      return "starmie";
    case UnionMethod::kD3l:
      return "d3l";
  }
  return "unknown";
}

std::string ModalityNameFor(QueryKind kind, JoinMethod join_method,
                            UnionMethod union_method) {
  switch (kind) {
    case QueryKind::kKeyword:
      return "keyword";
    case QueryKind::kCorrelated:
      return "correlated";
    case QueryKind::kJoin:
      return std::string("join.") + JoinMethodName(join_method);
    case QueryKind::kUnion:
      return std::string("union.") + UnionMethodName(union_method);
  }
  return "unknown";
}

/// Should this outcome count against the modality's circuit breaker?
/// Timeouts, internal/I/O errors, and an unbuilt or quarantined index all
/// mean the modality cannot currently serve. Cancellation is the caller's
/// choice and says nothing about the dependency.
bool BreakerFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

void RecordOutcome(CircuitBreaker* breaker, const Status& status,
                   Clock::time_point now) {
  if (breaker == nullptr) return;
  if (status.ok()) {
    breaker->RecordSuccess(now);
  } else if (BreakerFailure(status)) {
    breaker->RecordFailure(now);
  } else {
    breaker->RecordNeutral(now);
  }
}

/// The serving layer's admission defaults derive from its own options:
/// the AIMD limit lives under the hard max_pending cap, and when queries
/// carry a default deadline, unset targets are tied to it (latency target
/// = deadline/2, CoDel sojourn target = deadline/10) so the controller
/// sheds exactly the work that would die in the queue anyway.
AdmissionController::Options DeriveAdmission(
    const QueryService::Options& options) {
  AdmissionController::Options a = options.admission;
  a.max_limit = std::min(a.max_limit, std::max<size_t>(1, options.max_pending));
  a.min_limit = std::min(a.min_limit, a.max_limit);
  if (a.initial_limit != 0) {
    a.initial_limit = std::min(a.initial_limit, a.max_limit);
  }
  if (options.default_deadline.count() > 0) {
    if (a.latency_target_ms == 0) {
      a.latency_target_ms =
          static_cast<double>(options.default_deadline.count()) / 2.0;
    }
    if (a.codel_target.count() == 0) {
      a.codel_target = options.default_deadline / 10;
    }
  }
  return a;
}

}  // namespace

QueryService::QueryService(const DiscoveryEngine* engine, Options options)
    : engine_(engine),
      options_(std::move(options)),
      cache_(options_.cache),
      admission_(
          std::make_unique<AdmissionController>(DeriveAdmission(options_))),
      breakers_(options_.breaker),
      queries_admitted_(metrics_.GetCounter("serve.queries.admitted")),
      queries_rejected_(metrics_.GetCounter("serve.queries.rejected")),
      queries_deadline_exceeded_(
          metrics_.GetCounter("serve.queries.deadline_exceeded")),
      queries_cancelled_(metrics_.GetCounter("serve.queries.cancelled")),
      queries_failed_(metrics_.GetCounter("serve.queries.failed")),
      queries_unavailable_(metrics_.GetCounter("serve.queries.unavailable")),
      shed_limit_(metrics_.GetCounter("serve.shed.limit")),
      shed_batch_(metrics_.GetCounter("serve.shed.batch")),
      shed_codel_(metrics_.GetCounter("serve.shed.codel")),
      brownout_total_(metrics_.GetCounter("serve.brownout")),
      brownout_union_(metrics_.GetCounter("serve.brownout.union")),
      brownout_join_(metrics_.GetCounter("serve.brownout.join")),
      breaker_fast_fail_(metrics_.GetCounter("serve.breaker.fast_fail")),
      degraded_gauge_(metrics_.GetGauge("serve.degraded")),
      quarantined_gauge_(metrics_.GetGauge("serve.quarantined_sections")),
      admission_limit_gauge_(metrics_.GetGauge("serve.admission.limit")),
      admission_in_flight_gauge_(
          metrics_.GetGauge("serve.admission.in_flight")),
      breakers_open_gauge_(metrics_.GetGauge("serve.breakers.open")),
      breaker_state_gauges_(
          metrics_.GetGaugeFamily("serve.breaker.state", "modality")),
      cache_hits_(metrics_.GetCounter("serve.cache.hits")),
      cache_misses_(metrics_.GetCounter("serve.cache.misses")),
      josie_postings_read_(
          metrics_.GetCounter("engine.josie.postings_read")),
      approx_queries_(metrics_.GetCounter("approx.queries")),
      approx_estimates_(metrics_.GetCounter("approx.estimates")),
      approx_exact_fallbacks_(metrics_.GetCounter("approx.exact_fallbacks")),
      approx_interval_decisions_(
          metrics_.GetCounter("approx.interval_decisions")),
      approx_interval_width_(metrics_.GetHistogram("approx.interval_width")),
      approx_sample_size_(metrics_.GetHistogram("approx.sample_size")),
      ingest_base_hits_(metrics_.GetCounter("serve.ingest.base_hits")),
      ingest_delta_hits_(metrics_.GetCounter("serve.ingest.delta_hits")),
      queue_wait_(metrics_.GetHistogram("serve.queue_wait")),
      pool_(std::max<size_t>(1, options_.num_workers)) {
  for (QueryKind kind : {QueryKind::kKeyword, QueryKind::kJoin,
                         QueryKind::kUnion, QueryKind::kCorrelated}) {
    latency_by_kind_[KindIndex(kind)] = metrics_.GetHistogram(
        std::string("serve.latency.") + KindName(kind));
  }
  admission_limit_gauge_->Set(admission_->limit());
}

QueryService::QueryService(const ingest::LiveEngine* live, Options options)
    : QueryService(static_cast<const DiscoveryEngine*>(nullptr),
                   std::move(options)) {
  live_ = live;
}

QueryService::QueryService(const cluster::ClusterEngine* cluster,
                           Options options)
    : QueryService(static_cast<const DiscoveryEngine*>(nullptr),
                   std::move(options)) {
  cluster_ = cluster;
}

QueryService::~QueryService() = default;

Status QueryService::Validate(const QueryRequest& request) const {
  switch (request.kind) {
    case QueryKind::kKeyword:
      if (request.keyword.empty()) {
        return Status::InvalidArgument("keyword query requires text");
      }
      return Status::OK();
    case QueryKind::kJoin:
      if (request.values.empty()) {
        return Status::InvalidArgument("join query requires values");
      }
      if (request.error_budget >= 1) {
        return Status::InvalidArgument(
            "error budget must be below 1 (interval confidence is "
            "1 - budget)");
      }
      return Status::OK();
    case QueryKind::kUnion:
      if (request.union_table == nullptr) {
        return Status::InvalidArgument("union query requires a table");
      }
      return Status::OK();
    case QueryKind::kCorrelated:
      if (request.values.empty() || request.numeric_values.empty()) {
        return Status::InvalidArgument(
            "correlated query requires key values and a numeric column");
      }
      if (request.values.size() != request.numeric_values.size()) {
        return Status::InvalidArgument(StrFormat(
            "correlated query requires aligned columns: %zu key values vs "
            "%zu numeric values",
            request.values.size(), request.numeric_values.size()));
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown query kind");
}

std::string QueryService::ModalityName(const QueryRequest& request) {
  return ModalityNameFor(request.kind, request.join_method,
                         request.union_method);
}

uint64_t QueryService::CacheKey(const QueryRequest& request) const {
  uint64_t version = 0;
  if (cluster_ != nullptr) {
    version = cluster_->version();
  } else if (live_ != nullptr) {
    version = live_->version();
  }
  return CacheKeyWithVersion(request, version);
}

uint64_t QueryService::CacheKeyWithVersion(const QueryRequest& request,
                                           uint64_t version) const {
  uint64_t h = Hash64(static_cast<uint64_t>(request.kind), /*seed=*/3);
  h = HashCombine(h, epoch());
  // Live mode: every publish bumps the generation version, logically
  // invalidating all entries cached against the previous corpus.
  h = HashCombine(h, version);
  h = HashCombine(h, request.k);
  h = HashCombine(h, static_cast<uint64_t>(request.exclude));
  switch (request.kind) {
    case QueryKind::kKeyword:
      h = HashCombine(h, Hash64(request.keyword));
      break;
    case QueryKind::kJoin:
      h = HashCombine(h, static_cast<uint64_t>(request.join_method));
      h = HashCombine(h, HashValuesUnordered(request.values));
      if (request.join_method == JoinMethod::kApprox) {
        // Approximate answers at different budgets are different results;
        // the budget is canonicalized (<= 0 means the engine default) so
        // "default" spelled two ways shares one entry.
        const double eb =
            request.error_budget > 0 ? request.error_budget : 0.1;
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(eb));
        std::memcpy(&bits, &eb, sizeof(bits));
        h = HashCombine(h, bits);
      }
      break;
    case QueryKind::kUnion:
      h = HashCombine(h, static_cast<uint64_t>(request.union_method));
      h = HashCombine(h, HashTable(*request.union_table));
      if (!request.exclude_name.empty()) {
        h = HashCombine(h, Hash64(request.exclude_name, /*seed=*/7));
      }
      break;
    case QueryKind::kCorrelated:
      h = HashCombine(h, HashValuesUnordered(request.values));
      h = HashCombine(h, HashNumbers(request.numeric_values));
      break;
  }
  return h;
}

bool QueryService::ApproxAvailable() const {
  if (cluster_ != nullptr) {
    // All shards are built with the same options, so the build flag says
    // whether every shard carries the sample tier.
    return cluster_->options().engine.base_options.build_approx;
  }
  if (live_ != nullptr) {
    return live_->Acquire()->base().approx_join() != nullptr;
  }
  return engine_ != nullptr && engine_->approx_join() != nullptr;
}

void QueryService::RecordApproxStats(const approx::ApproxQueryStats& stats) {
  approx_estimates_->Add(stats.estimates);
  approx_exact_fallbacks_->Add(stats.exact_fallbacks);
  approx_interval_decisions_->Add(stats.interval_decisions);
  if (stats.interval_decisions > 0) {
    // Mean final width across this query's interval-settled candidates,
    // in basis points (width 0.05 records as 500).
    approx_interval_width_->Record(stats.sum_width /
                                   static_cast<double>(
                                       stats.interval_decisions) *
                                   1e4);
  }
  if (stats.decisions() > 0) {
    approx_sample_size_->Record(static_cast<double>(stats.sum_sample_size) /
                                static_cast<double>(stats.decisions()));
  }
}

Result<SubmittedQuery> QueryService::Submit(QueryRequest request) {
  LAKE_RETURN_IF_ERROR(Validate(request));

  // Approximate-tier routing, decided at admission so the cache key, the
  // modality (breaker, latency histogram, failpoint site), and the
  // brownout plan all see the effective method. require_exact_method
  // pins the requested method, and a request that already asks for
  // kApprox needs no rewrite.
  if (request.kind == QueryKind::kJoin && request.approx_ok &&
      !request.require_exact_method &&
      request.join_method != JoinMethod::kApprox && ApproxAvailable()) {
    request.join_method = JoinMethod::kApprox;
  }

  if (options_.adaptive_admission) {
    // Door policy: while CoDel is dropping and a queue exists, refuse new
    // arrivals immediately — they would only age in a queue that is
    // already shedding at dequeue. The queue-non-empty gate keeps a
    // low-sojourn dequeue reachable so the dropping state can clear.
    if (admission_->dropping() &&
        pending_.load(std::memory_order_relaxed) > options_.num_workers) {
      queries_rejected_->Add();
      shed_codel_->Add();
      return Status::Overloaded("admission: shedding on queue delay");
    }
    switch (admission_->TryAdmit(request.priority)) {
      case AdmissionController::Decision::kAdmit:
        break;
      case AdmissionController::Decision::kShedBatch:
        queries_rejected_->Add();
        shed_batch_->Add();
        return Status::Overloaded("admission: batch headroom exhausted");
      case AdmissionController::Decision::kShedLimit:
        queries_rejected_->Add();
        shed_limit_->Add();
        return Status::Overloaded(
            "admission: adaptive concurrency limit reached");
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Fixed bound: reserve a slot or reject. CAS (not fetch_add) so a
    // burst of rejected queries cannot overshoot the pending count.
    size_t pending = pending_.load(std::memory_order_relaxed);
    for (;;) {
      if (pending >= options_.max_pending) {
        queries_rejected_->Add();
        shed_limit_->Add();
        return Status::Overloaded("admission queue full");
      }
      if (pending_.compare_exchange_weak(pending, pending + 1,
                                         std::memory_order_relaxed)) {
        break;
      }
    }
  }
  queries_admitted_->Add();

  auto cancel = std::make_shared<CancelToken>();
  const auto admitted = Clock::now();
  if (request.deadline.has_value()) {
    cancel->SetDeadline(admitted + *request.deadline);
  } else if (options_.default_deadline.count() > 0) {
    cancel->SetDeadline(admitted + options_.default_deadline);
  }

  std::future<QueryResponse> future = pool_.Async(
      [this, request = std::move(request), cancel, admitted]() {
        QueryResponse response = Run(request, cancel.get(), admitted);
        if (options_.adaptive_admission) admission_->Release();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return response;
      });
  return SubmittedQuery{std::move(future), std::move(cancel)};
}

QueryResponse QueryService::Execute(QueryRequest request) {
  Result<SubmittedQuery> submitted = Submit(std::move(request));
  if (!submitted.ok()) {
    QueryResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted->response.get();
}

Result<std::vector<ColumnResult>> QueryService::JosieWithStats(
    const QueryRequest& request, const CancelToken* cancel,
    const DiscoveryEngine& engine) {
  JosieIndex::QueryStats stats;
  Result<std::vector<ColumnResult>> result =
      engine.josie_join()->Search(request.values, request.k, &stats, cancel);
  josie_postings_read_->Add(stats.posting_entries_read);
  return result;
}

void QueryService::RecordMergeStats(const ingest::MergeStats& stats) {
  ingest_base_hits_->Add(stats.base_results);
  ingest_delta_hits_->Add(stats.delta_results);
}

QueryService::HealthSnapshot QueryService::Health() {
  HealthSnapshot health;
  if (options_.recovery != nullptr) {
    health.degraded = options_.recovery->degraded();
    health.quarantined = options_.recovery->quarantined();
    health.sections_loaded = options_.recovery->sections_loaded();
    health.recovered_generation = options_.recovery->recovered_generation();
  }

  if (options_.adaptive_admission) {
    health.admission_limit = admission_->limit();
    health.admission_in_flight = admission_->in_flight();
  } else {
    health.admission_limit = options_.max_pending;
    health.admission_in_flight = pending();
  }

  const auto now = Clock::now();
  for (const auto& [name, breaker] : breakers_.All()) {
    BreakerStatus bs;
    bs.modality = name;
    bs.state = breaker->state(now);
    bs.failure_rate = breaker->failure_rate(now);
    bs.trips = breaker->trips();
    if (bs.state == CircuitBreaker::State::kOpen) ++health.open_breakers;
    breaker_state_gauges_->WithLabel(name)->Set(
        static_cast<uint64_t>(bs.state));
    health.breakers.push_back(std::move(bs));
  }

  if (live_ != nullptr) {
    // wal_status() exports its numbers here so operators see the live
    // loss window (unsynced acknowledged records) next to overload state;
    // the ingest.wal.unsynced_records gauge is refreshed alongside.
    const ingest::LiveEngine::WalStatus wal = live_->wal_status();
    health.wal_enabled = wal.enabled;
    health.wal_last_lsn = wal.last_lsn;
    health.wal_durable_lsn = wal.durable_lsn;
    health.wal_unsynced_records = wal.unsynced_records;
    metrics_.GetGauge("ingest.wal.unsynced_records")
        ->Set(wal.unsynced_records);
  }

  if (cluster_ != nullptr) {
    health.shards = cluster_->Health();
    for (const auto& shard : health.shards) {
      // A shard with no SERVING replica (alive, non-stale, breaker not
      // open — Pick's eligibility, not the bare alive_ flag) cannot answer
      // its partition: every query is at best partial until a replica is
      // revived, repaired, or its breaker closes.
      if (shard.replicas_serving == 0) health.degraded = true;
      health.stale_replicas += shard.replicas_stale;
      health.ejected_replicas += shard.replicas_ejected;
      if (!shard.digests_agree) health.replicas_divergent = true;
    }
    metrics_.GetGauge("serve.replica.stale.total")
        ->Set(health.stale_replicas);
    metrics_.GetGauge("serve.replica.ejected.total")
        ->Set(health.ejected_replicas);
  }

  health.ok = !health.degraded && health.open_breakers == 0;
  degraded_gauge_->Set(health.degraded ? 1 : 0);
  quarantined_gauge_->Set(health.quarantined.size());
  admission_limit_gauge_->Set(health.admission_limit);
  admission_in_flight_gauge_->Set(health.admission_in_flight);
  breakers_open_gauge_->Set(health.open_breakers);
  return health;
}

void QueryService::InvalidateCache() {
  epoch_.fetch_add(1, std::memory_order_relaxed);
  cache_.Clear();
}

std::optional<QueryService::Fallback> QueryService::FallbackFor(
    const QueryRequest& request, const ExecContext& ctx) const {
  // The survey's accuracy/latency pairs: the expensive high-recall method
  // falls back to the cheap sketch/embedding-average alternative. In
  // cluster mode the shards were all built with the same options, so the
  // build flags say what indexes exist; single-engine mode asks the
  // engine directly.
  bool has_tus = false;
  bool has_lsh_join = false;
  bool has_approx_join = false;
  if (ctx.cluster != nullptr) {
    const DiscoveryEngine::Options& base =
        ctx.cluster->options().engine.base_options;
    has_tus = base.build_tus;
    has_lsh_join = base.build_lsh_join;
    has_approx_join = base.build_approx;
  } else {
    has_tus = ctx.engine->tus() != nullptr;
    has_lsh_join = ctx.engine->lsh_join() != nullptr;
    has_approx_join = ctx.engine->approx_join() != nullptr;
  }
  if (request.kind == QueryKind::kUnion &&
      request.union_method == UnionMethod::kStarmie && has_tus) {
    return Fallback{request.join_method, UnionMethod::kTus, "union.tus",
                    brownout_union_};
  }
  if (request.kind == QueryKind::kJoin &&
      request.join_method == JoinMethod::kJosie) {
    // The sampling tier is the preferred brownout for exact top-k overlap:
    // same ranking measure, an interval on every answer, and exact
    // fallback only where the interval cannot settle the top-k. The LSH
    // sketch tier remains for engines built without it.
    if (has_approx_join) {
      return Fallback{JoinMethod::kApprox, request.union_method,
                      "join.approx", brownout_join_};
    }
    if (has_lsh_join) {
      return Fallback{JoinMethod::kLshEnsemble, request.union_method,
                      "join.lsh_ensemble", brownout_join_};
    }
  }
  // kApprox itself is the floor of the join tier ladder: no fallback.
  return std::nullopt;
}

void QueryService::ExecuteCluster(const QueryRequest& request,
                                  JoinMethod join_method,
                                  UnionMethod union_method,
                                  const CancelToken* cancel,
                                  QueryResponse* response) {
  // Scatter-gather to all shards. A slow or dead shard yields a partial
  // answer flagged degraded (and therefore never cached) rather than a
  // hung query; the surviving hits carry (shard, stable name) provenance.
  auto take_tables = [&](cluster::TableQueryResponse r) {
    response->status = r.status;
    response->degraded |= r.degraded;
    response->missing_shards = std::move(r.missing_shards);
    for (const cluster::TableHit& h : r.hits) {
      response->tables.push_back(TableResult{h.local_id, h.score, h.why});
      response->table_names.push_back(h.table);
      response->shards.push_back(h.shard);
    }
  };
  auto take_columns = [&](cluster::ColumnQueryResponse r) {
    response->status = r.status;
    response->degraded |= r.degraded;
    response->missing_shards = std::move(r.missing_shards);
    for (const cluster::ColumnHit& h : r.hits) {
      response->columns.push_back(ColumnResult{
          ColumnRef{h.local_id, static_cast<uint32_t>(h.column_index)},
          h.score, h.why});
      response->table_names.push_back(h.table);
      response->shards.push_back(h.shard);
    }
  };
  switch (request.kind) {
    case QueryKind::kKeyword:
      take_tables(cluster_->Keyword(request.keyword, request.k, cancel));
      break;
    case QueryKind::kJoin:
      take_columns(cluster_->Joinable(request.values, join_method, request.k,
                                      cancel, request.error_budget));
      break;
    case QueryKind::kUnion:
      take_tables(cluster_->Unionable(*request.union_table, union_method,
                                      request.k, request.exclude_name,
                                      cancel));
      break;
    case QueryKind::kCorrelated:
      take_columns(cluster_->Correlated(request.values, request.numeric_values,
                                        request.k, cancel));
      break;
  }
}

void QueryService::ExecuteEngine(const QueryRequest& request,
                                 JoinMethod join_method,
                                 UnionMethod union_method,
                                 const std::string& modality,
                                 const ExecContext& ctx,
                                 const CancelToken* cancel,
                                 QueryResponse* response) {
  const auto exec_start = Clock::now();
  response->served_by = modality;

  // Chaos-test fault site: a hung (kDelay) or erroring dependency for
  // exactly this (kind, method) modality.
  const Status injected = ExecFailpoint("serve.exec." + modality, cancel);
  if (!injected.ok()) {
    response->status = injected;
  } else if (ctx.cluster != nullptr) {
    ExecuteCluster(request, join_method, union_method, cancel, response);
  } else {
    switch (request.kind) {
      case QueryKind::kKeyword:
        if (ctx.gen != nullptr) {
          ingest::MergeStats merge;
          response->tables = ingest::MergedKeyword(*ctx.gen, request.keyword,
                                                   request.k, &merge);
          RecordMergeStats(merge);
        } else {
          response->tables = ctx.engine->Keyword(request.keyword, request.k);
        }
        break;
      case QueryKind::kJoin: {
        approx::ApproxQueryStats approx_stats;
        approx::ApproxQueryStats* approx_out =
            join_method == JoinMethod::kApprox ? &approx_stats : nullptr;
        Result<std::vector<ColumnResult>> result = [&] {
          if (ctx.gen != nullptr) {
            ingest::MergeStats merge;
            Result<std::vector<ColumnResult>> merged = ingest::MergedJoinable(
                *ctx.gen, request.values, join_method, request.k, cancel,
                &merge, request.error_budget, approx_out);
            if (merged.ok()) RecordMergeStats(merge);
            return merged;
          }
          return join_method == JoinMethod::kJosie &&
                         ctx.engine->josie_join() != nullptr
                     ? JosieWithStats(request, cancel, *ctx.engine)
                     : ctx.engine->Joinable(request.values, join_method,
                                            request.k, cancel,
                                            request.error_budget, approx_out);
        }();
        if (result.ok()) {
          response->columns = std::move(result).value();
          if (approx_out != nullptr) RecordApproxStats(*approx_out);
        } else {
          response->status = result.status();
        }
        break;
      }
      case QueryKind::kUnion: {
        Result<std::vector<TableResult>> result = [&] {
          if (ctx.gen != nullptr) {
            ingest::MergeStats merge;
            Result<std::vector<TableResult>> merged = ingest::MergedUnionable(
                *ctx.gen, *request.union_table, union_method, request.k,
                request.exclude, cancel, &merge);
            if (merged.ok()) RecordMergeStats(merge);
            return merged;
          }
          return ctx.engine->Unionable(*request.union_table, union_method,
                                       request.k, request.exclude, cancel);
        }();
        if (result.ok()) {
          response->tables = std::move(result).value();
        } else {
          response->status = result.status();
        }
        break;
      }
      case QueryKind::kCorrelated: {
        // Correlated search has no delta memtable; it serves from the
        // (possibly generation-pinned) base until compaction folds the
        // delta in.
        const CorrelatedJoinSearch* correlated = ctx.engine->correlated_join();
        if (correlated == nullptr) {
          response->status =
              Status::FailedPrecondition("correlated index not built");
          break;
        }
        Status check = cancel->Check();
        if (!check.ok()) {
          response->status = check;
          break;
        }
        Result<std::vector<CorrelatedJoinSearch::CorrelatedResult>> result =
            correlated->Search(request.values, request.numeric_values,
                               request.k);
        if (!result.ok()) {
          response->status = result.status();
          break;
        }
        for (const auto& r : result.value()) {
          response->columns.push_back(ColumnResult{
              ColumnRef{r.table_id, r.numeric_column}, r.score,
              StrFormat("corr=%.3f containment=%.3f", r.est_correlation,
                        r.est_containment)});
        }
        break;
      }
    }
  }

  // An answer from the sampling tier is flagged so consumers know every
  // score carries an interval (and the cluster path, which cannot thread
  // per-shard estimator stats back, still counts the query).
  if (request.kind == QueryKind::kJoin &&
      join_method == JoinMethod::kApprox && response->status.ok()) {
    response->approx = true;
    approx_queries_->Add();
  }

  // Execution-only latency (excludes queue wait); its upper quantiles
  // drive the brownout budget check for this modality.
  metrics_.GetHistogram("serve.exec." + modality)
      ->Record(std::chrono::duration<double, std::micro>(Clock::now() -
                                                         exec_start)
                   .count());
}

void QueryService::ExecutePlan(const QueryRequest& request,
                               const ExecContext& ctx,
                               const CancelToken* cancel,
                               QueryResponse* response) {
  const std::string primary = ModalityName(request);
  CircuitBreaker* breaker =
      options_.enable_breakers ? breakers_.Get(primary) : nullptr;
  const CircuitBreaker::Permit permit =
      breaker != nullptr ? breaker->Allow(Clock::now())
                         : CircuitBreaker::Permit::kAllowed;

  std::optional<Fallback> fallback = FallbackFor(request, ctx);
  if (!options_.enable_brownout || request.require_exact_method) {
    fallback.reset();
  }

  // Serve the query with the cheaper method and flag it degraded. Returns
  // false when there is no fallback or its own breaker refuses.
  auto run_fallback = [&]() {
    if (!fallback.has_value()) return false;
    CircuitBreaker* fb =
        options_.enable_breakers ? breakers_.Get(fallback->modality) : nullptr;
    const CircuitBreaker::Permit fpermit =
        fb != nullptr ? fb->Allow(Clock::now())
                      : CircuitBreaker::Permit::kAllowed;
    if (fpermit == CircuitBreaker::Permit::kDenied) return false;
    QueryResponse alt;
    ExecuteEngine(request, fallback->join_method, fallback->union_method,
                  fallback->modality, ctx, cancel, &alt);
    RecordOutcome(fb, alt.status, Clock::now());
    response->status = alt.status;
    response->tables = std::move(alt.tables);
    response->columns = std::move(alt.columns);
    response->table_names = std::move(alt.table_names);
    response->shards = std::move(alt.shards);
    response->missing_shards = std::move(alt.missing_shards);
    response->served_by = std::move(alt.served_by);
    response->approx = alt.approx;
    response->degraded = true;
    brownout_total_->Add();
    if (fallback->counter != nullptr) fallback->counter->Add();
    return true;
  };

  if (permit == CircuitBreaker::Permit::kDenied) {
    breaker_fast_fail_->Add();
    if (!run_fallback()) {
      response->status =
          Status::Unavailable("circuit breaker open for " + primary);
    }
    return;
  }

  // Budget brownout, only from the closed state (a granted half-open
  // probe must execute the primary so the breaker can learn): when the
  // remaining deadline budget is below the method's tracked upper
  // quantile, don't even start the expensive method.
  if (permit == CircuitBreaker::Permit::kAllowed && fallback.has_value() &&
      cancel->has_deadline()) {
    LatencyHistogram* hist = metrics_.GetHistogram("serve.exec." + primary);
    if (hist->count() >= options_.brownout_min_samples) {
      const double budget_us =
          std::chrono::duration<double, std::micro>(cancel->Remaining())
              .count();
      if (budget_us < hist->Percentile(options_.brownout_quantile) &&
          run_fallback()) {
        return;
      }
    }
  }

  ExecuteEngine(request, request.join_method, request.union_method, primary,
                ctx, cancel, response);
  RecordOutcome(breaker, response->status, Clock::now());

  // Failure brownout: the primary failed for a breaker-worthy reason
  // (hung past a timeout, internal error, quarantined index) and there is
  // budget left — answer with the cheap method rather than the error.
  if (!response->status.ok() && BreakerFailure(response->status) &&
      cancel->Remaining() > std::chrono::nanoseconds::zero()) {
    QueryResponse failed = std::move(*response);
    *response = QueryResponse{};
    if (!run_fallback()) *response = std::move(failed);
  }
}

QueryResponse QueryService::Run(
    const QueryRequest& request, const CancelToken* cancel,
    std::chrono::steady_clock::time_point admitted) {
  const auto started = Clock::now();
  const auto sojourn = started - admitted;
  queue_wait_->Record(
      std::chrono::duration<double, std::micro>(sojourn).count());

  if (options_.pre_execute_hook) options_.pre_execute_hook(request);

  QueryResponse response;

  // CoDel shed at dequeue: persistent queue sojourn above target means
  // queued work is dying of old age — fail it fast instead of executing.
  if (options_.adaptive_admission &&
      admission_->ShouldDrop(request.priority, sojourn, started)) {
    shed_codel_->Add();
    response.status =
        Status::Overloaded("shed at dequeue: queue sojourn over CoDel target");
  }

  // Pin the engine snapshot for this query's whole execution BEFORE
  // computing the cache key, so the key's version always matches the
  // generation the results come from (a publish racing with this query
  // can make us a stale-but-correctly-keyed entry, never a mismatched
  // one).
  ExecContext ctx;
  uint64_t version = 0;
  if (cluster_ != nullptr) {
    // Cluster mode pins no single generation (each shard pins its own at
    // scatter time); the cluster's topology/ingest version keys the cache
    // so any ApplyBatch or rebalance routes around stale entries.
    ctx.cluster = cluster_;
    version = cluster_->version();
  } else if (live_ != nullptr) {
    ctx.gen = live_->Acquire();
    ctx.engine = &ctx.gen->base();
    version = ctx.gen->version();
  } else {
    ctx.engine = engine_;
  }

  const bool use_cache = options_.enable_cache && !request.bypass_cache;
  const uint64_t key = use_cache ? CacheKeyWithVersion(request, version) : 0;

  if (response.status.ok()) {
    // A query that spent its whole budget queued fails before touching the
    // engine (and before counting a cache miss).
    Status live = cancel->Check();
    if (live.ok() && use_cache) {
      CachedResult hit;
      if (cache_.Lookup(key, &hit)) {
        cache_hits_->Add();
        response.tables = std::move(hit.tables);
        response.columns = std::move(hit.columns);
        response.table_names = std::move(hit.table_names);
        response.shards = std::move(hit.shards);
        response.cache_hit = true;
        // Approx routing is decided at admission, so an entry under a
        // kApprox key can only hold an approximate answer (degraded
        // results are never cached) — the flag survives the cache.
        response.approx = request.kind == QueryKind::kJoin &&
                          request.join_method == JoinMethod::kApprox;
      } else {
        cache_misses_->Add();
      }
    }

    if (!live.ok()) {
      response.status = live;
    } else if (!response.cache_hit) {
      ExecutePlan(request, ctx, cancel, &response);
      // A query that expired mid-execution must not populate the cache
      // (the engine may have unwound with partial work), and a degraded
      // brownout answer must not shadow the full-quality method's entry.
      if (response.status.ok() && use_cache && !response.degraded &&
          cancel->Check().ok()) {
        cache_.Insert(key,
                      CachedResult{response.tables, response.columns,
                                   response.table_names, response.shards});
      }
    }
  }

  switch (response.status.code()) {
    case StatusCode::kOk:
      break;
    case StatusCode::kDeadlineExceeded:
      queries_deadline_exceeded_->Add();
      break;
    case StatusCode::kCancelled:
      queries_cancelled_->Add();
      break;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnavailable:
      queries_unavailable_->Add();
      break;
    case StatusCode::kOverloaded:
      break;  // counted at the shed site
    default:
      queries_failed_->Add();
      break;
  }

  const auto finished = Clock::now();
  response.latency_ms =
      std::chrono::duration<double, std::milli>(finished - admitted).count();
  latency_by_kind_[KindIndex(request.kind)]->Record(
      std::chrono::duration<double, std::micro>(finished - admitted).count());

  // AIMD feedback: deadline death and CoDel sheds force the decrease
  // path; cancellation is the caller's choice and teaches nothing.
  if (options_.adaptive_admission &&
      response.status.code() != StatusCode::kCancelled) {
    const bool congested =
        response.status.code() == StatusCode::kDeadlineExceeded ||
        response.status.code() == StatusCode::kOverloaded;
    admission_->OnCompletion(response.latency_ms, congested, finished);
    admission_limit_gauge_->Set(admission_->limit());
  }
  return response;
}

}  // namespace lake::serve
