#include "serve/query_service.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace lake::serve {

namespace {

/// Order-insensitive hash of a value multiset (join queries are sets; the
/// caller's value order must not fragment the cache).
uint64_t HashValuesUnordered(const std::vector<std::string>& values) {
  uint64_t h = 0;
  for (const std::string& v : values) h += Mix64(Hash64(v, /*seed=*/41));
  return h;
}

uint64_t HashNumbers(const std::vector<double>& values) {
  uint64_t h = 0xa5a5a5a5a5a5a5a5ULL;
  for (double v : values) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

/// Content hash of a query table: name, shape, column names and cells.
/// Union queries are whole tables, so identity (not pointer) keys the
/// cache entry.
uint64_t HashTable(const Table& t) {
  uint64_t h = Hash64(t.name(), /*seed=*/97);
  h = HashCombine(h, t.num_columns());
  h = HashCombine(h, t.num_rows());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(c);
    h = HashCombine(h, Hash64(col.name()));
    h = HashCombine(h, static_cast<uint64_t>(col.type()));
    for (const std::string& s : col.NonNullStrings()) {
      h = HashCombine(h, Hash64(s));
    }
  }
  return h;
}

size_t KindIndex(QueryKind kind) { return static_cast<size_t>(kind); }

const char* KindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kKeyword:
      return "keyword";
    case QueryKind::kJoin:
      return "join";
    case QueryKind::kUnion:
      return "union";
    case QueryKind::kCorrelated:
      return "correlated";
  }
  return "unknown";
}

}  // namespace

QueryService::QueryService(const DiscoveryEngine* engine, Options options)
    : engine_(engine),
      options_(std::move(options)),
      cache_(options_.cache),
      queries_admitted_(metrics_.GetCounter("serve.queries.admitted")),
      queries_rejected_(metrics_.GetCounter("serve.queries.rejected")),
      queries_deadline_exceeded_(
          metrics_.GetCounter("serve.queries.deadline_exceeded")),
      queries_cancelled_(metrics_.GetCounter("serve.queries.cancelled")),
      queries_failed_(metrics_.GetCounter("serve.queries.failed")),
      queries_unavailable_(metrics_.GetCounter("serve.queries.unavailable")),
      degraded_gauge_(metrics_.GetGauge("serve.degraded")),
      quarantined_gauge_(metrics_.GetGauge("serve.quarantined_sections")),
      cache_hits_(metrics_.GetCounter("serve.cache.hits")),
      cache_misses_(metrics_.GetCounter("serve.cache.misses")),
      josie_postings_read_(
          metrics_.GetCounter("engine.josie.postings_read")),
      queue_wait_(metrics_.GetHistogram("serve.queue_wait")),
      pool_(std::max<size_t>(1, options_.num_workers)) {
  for (QueryKind kind : {QueryKind::kKeyword, QueryKind::kJoin,
                         QueryKind::kUnion, QueryKind::kCorrelated}) {
    latency_by_kind_[KindIndex(kind)] = metrics_.GetHistogram(
        std::string("serve.latency.") + KindName(kind));
  }
}

QueryService::~QueryService() = default;

Status QueryService::Validate(const QueryRequest& request) const {
  switch (request.kind) {
    case QueryKind::kKeyword:
      if (request.keyword.empty()) {
        return Status::InvalidArgument("keyword query requires text");
      }
      return Status::OK();
    case QueryKind::kJoin:
      if (request.values.empty()) {
        return Status::InvalidArgument("join query requires values");
      }
      return Status::OK();
    case QueryKind::kUnion:
      if (request.union_table == nullptr) {
        return Status::InvalidArgument("union query requires a table");
      }
      return Status::OK();
    case QueryKind::kCorrelated:
      if (request.values.empty() || request.numeric_values.empty()) {
        return Status::InvalidArgument(
            "correlated query requires key values and a numeric column");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown query kind");
}

uint64_t QueryService::CacheKey(const QueryRequest& request) const {
  uint64_t h = Hash64(static_cast<uint64_t>(request.kind), /*seed=*/3);
  h = HashCombine(h, epoch());
  h = HashCombine(h, request.k);
  h = HashCombine(h, static_cast<uint64_t>(request.exclude));
  switch (request.kind) {
    case QueryKind::kKeyword:
      h = HashCombine(h, Hash64(request.keyword));
      break;
    case QueryKind::kJoin:
      h = HashCombine(h, static_cast<uint64_t>(request.join_method));
      h = HashCombine(h, HashValuesUnordered(request.values));
      break;
    case QueryKind::kUnion:
      h = HashCombine(h, static_cast<uint64_t>(request.union_method));
      h = HashCombine(h, HashTable(*request.union_table));
      break;
    case QueryKind::kCorrelated:
      h = HashCombine(h, HashValuesUnordered(request.values));
      h = HashCombine(h, HashNumbers(request.numeric_values));
      break;
  }
  return h;
}

Result<SubmittedQuery> QueryService::Submit(QueryRequest request) {
  LAKE_RETURN_IF_ERROR(Validate(request));

  // Bounded admission: reserve a slot or reject. CAS (not fetch_add) so a
  // burst of rejected queries cannot overshoot the pending count.
  size_t pending = pending_.load(std::memory_order_relaxed);
  for (;;) {
    if (pending >= options_.max_pending) {
      queries_rejected_->Add();
      return Status::Overloaded("admission queue full");
    }
    if (pending_.compare_exchange_weak(pending, pending + 1,
                                       std::memory_order_relaxed)) {
      break;
    }
  }
  queries_admitted_->Add();

  auto cancel = std::make_shared<CancelToken>();
  const auto admitted = std::chrono::steady_clock::now();
  if (request.deadline.has_value()) {
    cancel->SetDeadline(admitted + *request.deadline);
  } else if (options_.default_deadline.count() > 0) {
    cancel->SetDeadline(admitted + options_.default_deadline);
  }

  std::future<QueryResponse> future = pool_.Async(
      [this, request = std::move(request), cancel, admitted]() {
        QueryResponse response = Run(request, cancel.get(), admitted);
        pending_.fetch_sub(1, std::memory_order_relaxed);
        return response;
      });
  return SubmittedQuery{std::move(future), std::move(cancel)};
}

QueryResponse QueryService::Execute(QueryRequest request) {
  Result<SubmittedQuery> submitted = Submit(std::move(request));
  if (!submitted.ok()) {
    QueryResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted->response.get();
}

Result<std::vector<ColumnResult>> QueryService::JosieWithStats(
    const QueryRequest& request, const CancelToken* cancel) {
  JosieIndex::QueryStats stats;
  Result<std::vector<ColumnResult>> result =
      engine_->josie_join()->Search(request.values, request.k, &stats, cancel);
  josie_postings_read_->Add(stats.posting_entries_read);
  return result;
}

QueryService::HealthSnapshot QueryService::Health() {
  HealthSnapshot health;
  if (options_.recovery != nullptr) {
    health.degraded = options_.recovery->degraded();
    health.quarantined = options_.recovery->quarantined();
    health.sections_loaded = options_.recovery->sections_loaded();
    health.recovered_generation = options_.recovery->recovered_generation();
  }
  health.ok = !health.degraded;
  degraded_gauge_->Set(health.degraded ? 1 : 0);
  quarantined_gauge_->Set(health.quarantined.size());
  return health;
}

void QueryService::InvalidateCache() {
  epoch_.fetch_add(1, std::memory_order_relaxed);
  cache_.Clear();
}

QueryResponse QueryService::Run(
    const QueryRequest& request, const CancelToken* cancel,
    std::chrono::steady_clock::time_point admitted) {
  const auto started = std::chrono::steady_clock::now();
  queue_wait_->Record(
      std::chrono::duration<double, std::micro>(started - admitted).count());

  if (options_.pre_execute_hook) options_.pre_execute_hook(request);

  QueryResponse response;
  const bool use_cache = options_.enable_cache && !request.bypass_cache;
  const uint64_t key = use_cache ? CacheKey(request) : 0;

  // A query that spent its whole budget queued fails before touching the
  // engine (and before counting a cache miss).
  Status live = cancel->Check();
  if (live.ok() && use_cache) {
    CachedResult hit;
    if (cache_.Lookup(key, &hit)) {
      cache_hits_->Add();
      response.tables = std::move(hit.tables);
      response.columns = std::move(hit.columns);
      response.cache_hit = true;
    } else {
      cache_misses_->Add();
    }
  }

  if (!live.ok()) {
    response.status = live;
  } else if (!response.cache_hit) {
    switch (request.kind) {
      case QueryKind::kKeyword:
        response.tables = engine_->Keyword(request.keyword, request.k);
        break;
      case QueryKind::kJoin: {
        Result<std::vector<ColumnResult>> result =
            request.join_method == JoinMethod::kJosie &&
                    engine_->josie_join() != nullptr
                ? JosieWithStats(request, cancel)
                : engine_->Joinable(request.values, request.join_method,
                                    request.k, cancel);
        if (result.ok()) {
          response.columns = std::move(result).value();
        } else {
          response.status = result.status();
        }
        break;
      }
      case QueryKind::kUnion: {
        Result<std::vector<TableResult>> result =
            engine_->Unionable(*request.union_table, request.union_method,
                               request.k, request.exclude, cancel);
        if (result.ok()) {
          response.tables = std::move(result).value();
        } else {
          response.status = result.status();
        }
        break;
      }
      case QueryKind::kCorrelated: {
        const CorrelatedJoinSearch* correlated = engine_->correlated_join();
        if (correlated == nullptr) {
          response.status =
              Status::FailedPrecondition("correlated index not built");
          break;
        }
        Status check = cancel->Check();
        if (!check.ok()) {
          response.status = check;
          break;
        }
        Result<std::vector<CorrelatedJoinSearch::CorrelatedResult>> result =
            correlated->Search(request.values, request.numeric_values,
                               request.k);
        if (!result.ok()) {
          response.status = result.status();
          break;
        }
        for (const auto& r : result.value()) {
          response.columns.push_back(ColumnResult{
              ColumnRef{r.table_id, r.numeric_column}, r.score,
              StrFormat("corr=%.3f containment=%.3f", r.est_correlation,
                        r.est_containment)});
        }
        break;
      }
    }
    // A query expired mid-execution must not populate the cache: the
    // engine may have unwound with partial work, and the cancelled status
    // is the contract.
    if (response.status.ok() && use_cache && cancel->Check().ok()) {
      cache_.Insert(key, CachedResult{response.tables, response.columns});
    }
  }

  switch (response.status.code()) {
    case StatusCode::kOk:
      break;
    case StatusCode::kDeadlineExceeded:
      queries_deadline_exceeded_->Add();
      break;
    case StatusCode::kCancelled:
      queries_cancelled_->Add();
      break;
    case StatusCode::kFailedPrecondition:
      queries_unavailable_->Add();
      break;
    default:
      queries_failed_->Add();
      break;
  }

  const auto finished = std::chrono::steady_clock::now();
  response.latency_ms =
      std::chrono::duration<double, std::milli>(finished - admitted).count();
  latency_by_kind_[KindIndex(request.kind)]->Record(
      std::chrono::duration<double, std::micro>(finished - admitted).count());
  return response;
}

}  // namespace lake::serve
