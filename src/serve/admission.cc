#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace lake::serve {

namespace {
constexpr std::chrono::nanoseconds kNoTime{0};

bool IsSet(AdmissionController::Clock::time_point t) {
  return t.time_since_epoch() != kNoTime;
}
}  // namespace

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  options_.min_limit = std::max<size_t>(1, options_.min_limit);
  options_.max_limit = std::max(options_.max_limit, options_.min_limit);
  if (options_.initial_limit == 0) options_.initial_limit = options_.max_limit;
  limit_ = static_cast<double>(std::clamp(
      options_.initial_limit, options_.min_limit, options_.max_limit));
  limit_snapshot_.store(static_cast<size_t>(limit_),
                        std::memory_order_relaxed);
}

AdmissionController::Decision AdmissionController::TryAdmit(
    Priority priority) {
  const size_t limit = limit_snapshot_.load(std::memory_order_relaxed);
  // Batch occupies at most `batch_headroom` of the live limit (>= 1 slot
  // so batch is never starved outright when the service is idle).
  const size_t cap =
      priority == Priority::kBatch
          ? std::max<size_t>(
                1, static_cast<size_t>(static_cast<double>(limit) *
                                       options_.batch_headroom))
          : limit;
  size_t in_flight = in_flight_.load(std::memory_order_relaxed);
  for (;;) {
    if (in_flight >= cap) {
      return priority == Priority::kBatch && in_flight < limit
                 ? Decision::kShedBatch
                 : Decision::kShedLimit;
    }
    if (in_flight_.compare_exchange_weak(in_flight, in_flight + 1,
                                         std::memory_order_relaxed)) {
      return Decision::kAdmit;
    }
  }
}

void AdmissionController::Release() {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

bool AdmissionController::ShouldDrop(Priority priority,
                                     std::chrono::nanoseconds sojourn,
                                     Clock::time_point now) {
  if (options_.codel_target.count() <= 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (sojourn < options_.codel_target) {
    // Back under target: leave the dropping state but remember roughly how
    // hard we had to drop (CoDel's warm restart on the next episode).
    first_above_ = {};
    dropping_ = false;
    dropping_snapshot_.store(false, std::memory_order_relaxed);
    drop_count_ = drop_count_ > 2 ? drop_count_ - 2 : 0;
    return false;
  }
  if (!IsSet(first_above_)) {
    first_above_ = now + options_.codel_interval;
    return false;
  }
  if (!dropping_) {
    if (now < first_above_) return false;
    // Sojourn stayed above target for a full interval: start dropping.
    dropping_ = true;
    dropping_snapshot_.store(true, std::memory_order_relaxed);
    drop_count_ = std::max<uint64_t>(1, drop_count_);
    drop_next_ = now + std::chrono::nanoseconds(static_cast<int64_t>(
                           static_cast<double>(std::chrono::nanoseconds(
                                                   options_.codel_interval)
                                                   .count()) /
                           std::sqrt(static_cast<double>(drop_count_))));
    return true;
  }
  // While dropping: every batch query sheds; interactive sheds on the
  // sqrt-control-law cadence.
  if (priority == Priority::kBatch) return true;
  if (now >= drop_next_) {
    ++drop_count_;
    drop_next_ = now + std::chrono::nanoseconds(static_cast<int64_t>(
                           static_cast<double>(std::chrono::nanoseconds(
                                                   options_.codel_interval)
                                                   .count()) /
                           std::sqrt(static_cast<double>(drop_count_))));
    return true;
  }
  return false;
}

void AdmissionController::OnCompletion(double latency_ms, bool congested,
                                       Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool over_target = options_.latency_target_ms > 0 &&
                           latency_ms > options_.latency_target_ms;
  if (congested || over_target) {
    if (!IsSet(last_decrease_) ||
        now - last_decrease_ >= options_.decrease_cooldown) {
      limit_ = std::max(static_cast<double>(options_.min_limit),
                        limit_ * options_.decrease_factor);
      last_decrease_ = now;
    }
  } else {
    limit_ = std::min(static_cast<double>(options_.max_limit),
                      limit_ + 1.0 / std::max(1.0, limit_));
  }
  limit_snapshot_.store(static_cast<size_t>(limit_),
                        std::memory_order_relaxed);
}

}  // namespace lake::serve
