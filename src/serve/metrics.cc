#include "serve/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace lake::serve {

namespace {
constexpr int kSubBits = 2;  // 4 sub-buckets per power of two
constexpr uint64_t kSubCount = 1ull << kSubBits;
}  // namespace

size_t LatencyHistogram::BucketIndex(uint64_t micros) {
  if (micros < kSubCount) return static_cast<size_t>(micros);  // 0..3 exact
  const int msb = 63 - std::countl_zero(micros);
  const int shift = msb - kSubBits;
  const uint64_t sub = (micros >> shift) & (kSubCount - 1);
  const size_t index =
      static_cast<size_t>(msb - kSubBits + 1) * kSubCount + sub;
  return std::min(index, kNumBuckets - 1);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kSubCount) return index;
  const int msb = static_cast<int>(index / kSubCount) + kSubBits - 1;
  const uint64_t sub = index & (kSubCount - 1);
  return (kSubCount + sub) << (msb - kSubBits);
}

void LatencyHistogram::Record(double micros) {
  const uint64_t us =
      micros <= 0 ? 0 : static_cast<uint64_t>(std::llround(micros));
  buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(us, std::memory_order_relaxed);
  uint64_t prev = max_micros_.load(std::memory_order_relaxed);
  while (prev < us &&
         !max_micros_.compare_exchange_weak(prev, us,
                                            std::memory_order_relaxed)) {
  }
  uint64_t prev_min = min_micros_.load(std::memory_order_relaxed);
  while (prev_min > us &&
         !min_micros_.compare_exchange_weak(prev_min, us,
                                            std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_micros =
      static_cast<double>(sum_micros_.load(std::memory_order_relaxed));
  const uint64_t min = min_micros_.load(std::memory_order_relaxed);
  s.min_micros = min == UINT64_MAX ? 0 : static_cast<double>(min);
  s.max_micros =
      static_cast<double>(max_micros_.load(std::memory_order_relaxed));
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (std::isnan(q)) q = 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; interpolation would only blur them.
  if (q <= 0.0) return min_micros;
  if (q >= 1.0) return max_micros;
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cum + buckets[i];
    if (static_cast<double>(next) >= target) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = i + 1 < kNumBuckets
                            ? static_cast<double>(BucketLowerBound(i + 1))
                            : max_micros;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(buckets[i]);
      // Never extrapolate past an observed sample.
      return std::clamp(lo + (hi - lo) * frac, min_micros, max_micros);
    }
    cum = next;
  }
  return max_micros;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<LatencyHistogram>()).first;
  }
  return it->second.get();
}

std::string MetricsRegistry::FlatName(const std::string& name,
                                      const std::string& label_key,
                                      const std::string& value) {
  return name + "{" + label_key + "=" + value + "}";
}

CounterFamily* MetricsRegistry::GetCounterFamily(
    const std::string& name, const std::string& label_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = name + "\x1f" + label_key;
  auto it = counter_families_.find(key);
  if (it == counter_families_.end()) {
    it = counter_families_
             .emplace(key, std::unique_ptr<CounterFamily>(
                               new CounterFamily(this, name, label_key)))
             .first;
  }
  return it->second.get();
}

GaugeFamily* MetricsRegistry::GetGaugeFamily(const std::string& name,
                                             const std::string& label_key) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = name + "\x1f" + label_key;
  auto it = gauge_families_.find(key);
  if (it == gauge_families_.end()) {
    it = gauge_families_
             .emplace(key, std::unique_ptr<GaugeFamily>(
                               new GaugeFamily(this, name, label_key)))
             .first;
  }
  return it->second.get();
}

Counter* CounterFamily::WithLabel(const std::string& value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_label_.find(value);
    if (it != by_label_.end()) return it->second;
  }
  // Resolve outside our lock: the registry lock nests inside nothing here
  // (GetCounterFamily never calls back into a family).
  Counter* counter = registry_->GetCounter(
      MetricsRegistry::FlatName(name_, label_key_, value));
  std::lock_guard<std::mutex> lock(mu_);
  by_label_.emplace(value, counter);
  return counter;
}

Counter* CounterFamily::WithLabel(uint64_t value) {
  return WithLabel(std::to_string(value));
}

Gauge* GaugeFamily::WithLabel(const std::string& value) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_label_.find(value);
    if (it != by_label_.end()) return it->second;
  }
  Gauge* gauge = registry_->GetGauge(
      MetricsRegistry::FlatName(name_, label_key_, value));
  std::lock_guard<std::mutex> lock(mu_);
  by_label_.emplace(value, gauge);
  return gauge;
}

Gauge* GaugeFamily::WithLabel(uint64_t value) {
  return WithLabel(std::to_string(value));
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    const LatencyHistogram::Snapshot s = hist->Snap();
    out.histograms.push_back(HistogramRow{name, s.count, s.mean(), s.p50(),
                                          s.p95(), s.p99(), s.max_micros});
  }
  return out;
}

std::string MetricsRegistry::ToText() const {
  const Snapshot snap = Snap();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("%s: %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("%s: %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const HistogramRow& h : snap.histograms) {
    out += StrFormat(
        "%s: count=%llu mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus "
        "max=%.1fus\n",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.mean_us,
        h.p50_us, h.p95_us, h.p99_us, h.max_us);
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const Snapshot snap = Snap();
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out += ",";
    out += StrFormat(
        "\"%s\":%llu", snap.counters[i].first.c_str(),
        static_cast<unsigned long long>(snap.counters[i].second));
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out += ",";
    out += StrFormat("\"%s\":%llu", snap.gauges[i].first.c_str(),
                     static_cast<unsigned long long>(snap.gauges[i].second));
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramRow& h = snap.histograms[i];
    if (i != 0) out += ",";
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"mean_us\":%.1f,\"p50_us\":%.1f,"
        "\"p95_us\":%.1f,\"p99_us\":%.1f,\"max_us\":%.1f}",
        h.name.c_str(), static_cast<unsigned long long>(h.count), h.mean_us,
        h.p50_us, h.p95_us, h.p99_us, h.max_us);
  }
  out += "}}";
  return out;
}

namespace {
constexpr uint64_t kSnapshotMagicV1 = 0x314d534c;  // "LSM1" — no gauges
constexpr uint64_t kSnapshotMagic = 0x324d534c;    // "LSM2"
}  // namespace

Status WriteSnapshot(const MetricsRegistry::Snapshot& snap, BinaryWriter* w) {
  w->WriteVarint(kSnapshotMagic);
  w->WriteVarint(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    w->WriteString(name);
    w->WriteVarint(value);
  }
  w->WriteVarint(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    w->WriteString(name);
    w->WriteVarint(value);
  }
  w->WriteVarint(snap.histograms.size());
  for (const MetricsRegistry::HistogramRow& h : snap.histograms) {
    w->WriteString(h.name);
    w->WriteVarint(h.count);
    w->WriteDouble(h.mean_us);
    w->WriteDouble(h.p50_us);
    w->WriteDouble(h.p95_us);
    w->WriteDouble(h.p99_us);
    w->WriteDouble(h.max_us);
  }
  if (!w->ok()) return Status::IoError("metrics snapshot write failed");
  return Status::OK();
}

Result<MetricsRegistry::Snapshot> ReadSnapshot(BinaryReader* r) {
  LAKE_ASSIGN_OR_RETURN(uint64_t magic, r->ReadVarint());
  if (magic != kSnapshotMagic && magic != kSnapshotMagicV1) {
    return Status::IoError("not a metrics snapshot");
  }
  MetricsRegistry::Snapshot snap;
  LAKE_ASSIGN_OR_RETURN(uint64_t num_counters, r->ReadVarint());
  snap.counters.reserve(num_counters);
  for (uint64_t i = 0; i < num_counters; ++i) {
    LAKE_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    LAKE_ASSIGN_OR_RETURN(uint64_t value, r->ReadVarint());
    snap.counters.emplace_back(std::move(name), value);
  }
  if (magic == kSnapshotMagic) {  // v1 predates gauges
    LAKE_ASSIGN_OR_RETURN(uint64_t num_gauges, r->ReadVarint());
    snap.gauges.reserve(num_gauges);
    for (uint64_t i = 0; i < num_gauges; ++i) {
      LAKE_ASSIGN_OR_RETURN(std::string name, r->ReadString());
      LAKE_ASSIGN_OR_RETURN(uint64_t value, r->ReadVarint());
      snap.gauges.emplace_back(std::move(name), value);
    }
  }
  LAKE_ASSIGN_OR_RETURN(uint64_t num_hists, r->ReadVarint());
  snap.histograms.reserve(num_hists);
  for (uint64_t i = 0; i < num_hists; ++i) {
    MetricsRegistry::HistogramRow h;
    LAKE_ASSIGN_OR_RETURN(h.name, r->ReadString());
    LAKE_ASSIGN_OR_RETURN(h.count, r->ReadVarint());
    LAKE_ASSIGN_OR_RETURN(h.mean_us, r->ReadDouble());
    LAKE_ASSIGN_OR_RETURN(h.p50_us, r->ReadDouble());
    LAKE_ASSIGN_OR_RETURN(h.p95_us, r->ReadDouble());
    LAKE_ASSIGN_OR_RETURN(h.p99_us, r->ReadDouble());
    LAKE_ASSIGN_OR_RETURN(h.max_us, r->ReadDouble());
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace lake::serve
