#ifndef LAKE_SERVE_ADMISSION_H_
#define LAKE_SERVE_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>

namespace lake::serve {

/// Scheduling class of a query. Shedding is ordered: batch traffic is
/// refused (and CoDel-dropped) before any interactive query is touched, so
/// background crawls cannot starve users.
enum class Priority {
  kInteractive = 0,
  kBatch = 1,
};

/// Adaptive concurrency limiter for the serving executor: an AIMD loop
/// driven by observed completion latency replaces a fixed max-pending
/// bound, and a CoDel-style controller sheds on queue *sojourn time*
/// rather than queue length, so the service tracks whatever concurrency
/// the hardware currently sustains instead of a guess made at deploy time.
///
/// Three cooperating rules:
///  - Admission (TryAdmit): lock-free check of in-flight count against the
///    live limit; batch queries are additionally capped at a fraction of
///    the limit so shedding hits them first.
///  - AIMD (OnCompletion): a completion under the latency target grows the
///    limit by ~1/limit (one slot per limit's worth of good completions);
///    a congested completion (over target, deadline-exceeded, or a CoDel
///    drop) multiplies the limit by `decrease_factor`, at most once per
///    cooldown so one burst of stragglers does not collapse it.
///  - CoDel (ShouldDrop): called at dequeue with the query's sojourn time.
///    Sojourn persistently above `codel_target` for a full
///    `codel_interval` enters a dropping state that sheds with the
///    sqrt-control-law cadence (and sheds every batch query) until
///    sojourn falls back under the target.
///
/// All decision methods take an explicit `now` so tests drive the state
/// machine deterministically with synthetic clocks.
class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Starting concurrency limit; 0 means "start at max_limit" (the
    /// serving layer clamps max_limit to its hard max-pending bound, so
    /// behavior matches the old fixed bound until congestion is actually
    /// observed).
    size_t initial_limit = 0;
    size_t min_limit = 4;
    size_t max_limit = 4096;
    /// AIMD latency target in milliseconds; completions above it shrink
    /// the limit. 0 disables the latency signal (deadline misses and
    /// CoDel drops remain congestion signals).
    double latency_target_ms = 0;
    double decrease_factor = 0.7;
    /// At most one multiplicative decrease per cooldown window.
    std::chrono::milliseconds decrease_cooldown{100};
    /// Fraction of the live limit batch queries may occupy.
    double batch_headroom = 0.5;
    /// CoDel sojourn target; 0 disables dequeue-time shedding.
    std::chrono::milliseconds codel_target{0};
    /// Sojourn must stay above target this long before dropping starts.
    std::chrono::milliseconds codel_interval{100};
  };

  enum class Decision {
    kAdmit,
    kShedLimit,  // in-flight at the adaptive limit
    kShedBatch,  // batch headroom exhausted (interactive still admitted)
  };

  explicit AdmissionController(Options options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Reserves an in-flight slot or refuses; lock-free. Every kAdmit must
  /// eventually be paired with Release().
  Decision TryAdmit(Priority priority);
  void Release();

  /// CoDel check at dequeue: true means shed this query now (the caller
  /// fails it with kOverloaded and must still call Release + OnCompletion
  /// with congested=true).
  bool ShouldDrop(Priority priority, std::chrono::nanoseconds sojourn,
                  Clock::time_point now);

  /// True while CoDel is in its dropping state. The serving layer uses
  /// this as a door policy: while dropping (and the queue is non-empty,
  /// so a low-sojourn dequeue can still clear the state), new arrivals
  /// are refused at submit — the client learns its fate immediately
  /// instead of after a queue sojourn it was going to lose anyway.
  bool dropping() const {
    return dropping_snapshot_.load(std::memory_order_relaxed);
  }

  /// AIMD feedback for one finished query. `latency_ms` is admission to
  /// completion; `congested` forces the decrease path regardless of
  /// latency (deadline exceeded, CoDel drop).
  void OnCompletion(double latency_ms, bool congested, Clock::time_point now);

  /// Live concurrency limit / in-flight count (lock-free reads).
  size_t limit() const { return limit_snapshot_.load(std::memory_order_relaxed); }
  size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  const Options& options() const { return options_; }

 private:
  Options options_;

  // Lock-free admission state.
  std::atomic<size_t> limit_snapshot_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<bool> dropping_snapshot_{false};

  // AIMD + CoDel state (feedback path only; one short lock per completion).
  std::mutex mu_;
  double limit_;
  Clock::time_point last_decrease_{};
  bool dropping_ = false;
  Clock::time_point first_above_{};  // epoch value means "not set"
  Clock::time_point drop_next_{};
  uint64_t drop_count_ = 0;
};

}  // namespace lake::serve

#endif  // LAKE_SERVE_ADMISSION_H_
