#include "embed/table_encoder.h"

namespace lake {

Vector TableEncoder::Encode(const Table& table) const {
  Vector cols(columns_->dim(), 0.0f);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    AddInPlace(cols, columns_->Encode(table.column(c)));
  }
  NormalizeInPlace(cols);

  if (options_.metadata_weight <= 0) return cols;
  std::string text = table.name();
  text += " ";
  text += table.metadata().description;
  for (const std::string& tag : table.metadata().tags) {
    text += " ";
    text += tag;
  }
  const Vector meta = words_->EmbedText(text);

  Vector out(columns_->dim(), 0.0f);
  AddInPlace(out, cols, static_cast<float>(1.0 - options_.metadata_weight));
  AddInPlace(out, meta, static_cast<float>(options_.metadata_weight));
  NormalizeInPlace(out);
  return out;
}

}  // namespace lake
