#ifndef LAKE_EMBED_CONTEXTUAL_ENCODER_H_
#define LAKE_EMBED_CONTEXTUAL_ENCODER_H_

#include <vector>

#include "embed/column_encoder.h"
#include "table/table.h"

namespace lake {

/// Contextualized column embeddings — the library's Starmie substitute
/// (Fan et al., 2022; DESIGN.md substitution 1).
///
/// Starmie's contribution is that a column's representation should depend
/// on its *table context*: a "name" column in a table about airports must
/// embed differently from a "name" column in a table about people, which
/// disambiguates homographs and aligns whole-table semantics. Starmie
/// learns this with contrastive fine-tuning of a language model; here the
/// same property is produced deterministically: each column's context-free
/// embedding is mixed with an attention-weighted summary of its sibling
/// columns,
///     ctx(c) = norm( (1-α)·e(c) + α·Σ_j softmax_j(e(c)·e(j)/τ)·e(j) ),
/// so identical value sets in different tables receive different vectors
/// while same-topic tables converge.
class ContextualColumnEncoder {
 public:
  struct Options {
    /// Context mixing strength α in [0, 1). 0 reduces to context-free.
    double alpha = 0.35;
    /// Softmax temperature τ for sibling attention.
    double temperature = 0.25;
  };

  explicit ContextualColumnEncoder(const ColumnEncoder* base)
      : ContextualColumnEncoder(base, Options{}) {}
  ContextualColumnEncoder(const ColumnEncoder* base, Options options)
      : base_(base), options_(options) {}

  size_t dim() const { return base_->dim(); }

  /// Contextual embeddings for every column of the table, index-aligned.
  std::vector<Vector> EncodeTable(const Table& table) const;

  /// Contextual embedding of one column given precomputed context-free
  /// sibling embeddings (column `index` of `context_free`).
  Vector Contextualize(const std::vector<Vector>& context_free,
                       size_t index) const;

 private:
  const ColumnEncoder* base_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_EMBED_CONTEXTUAL_ENCODER_H_
