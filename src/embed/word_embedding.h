#ifndef LAKE_EMBED_WORD_EMBEDDING_H_
#define LAKE_EMBED_WORD_EMBEDDING_H_

#include <string>
#include <string_view>
#include <vector>

#include "index/vector_ops.h"

namespace lake {

/// Deterministic fastText-style word embeddings — the library's substitute
/// for pre-trained language models (see DESIGN.md, substitution 1).
///
/// A token's vector is the normalized sum of pseudo-random unit vectors of
/// (a) the whole token and (b) its character n-grams (default 3..5, with
/// boundary markers), each derived purely from a hash. Tokens that share
/// surface structure — same domain morphology, shared words, common
/// prefixes — therefore land near each other, which is exactly the
/// property discovery algorithms (PEXESO, TUS-NL, Starmie) rely on, while
/// requiring no model file and staying bit-reproducible.
class WordEmbedding {
 public:
  struct Options {
    size_t dim = 64;
    size_t min_gram = 3;
    size_t max_gram = 5;
    /// Relative weight of the whole-token vector vs each n-gram vector.
    double word_weight = 1.0;
    uint64_t seed = 0x5eedbeef;
  };

  WordEmbedding() : WordEmbedding(Options{}) {}
  explicit WordEmbedding(Options options) : options_(options) {}

  size_t dim() const { return options_.dim; }

  /// Unit-norm embedding of one token. Deterministic. The empty token maps
  /// to the zero vector.
  Vector EmbedToken(std::string_view token) const;

  /// Normalized mean of token embeddings (the empty list gives zero).
  Vector EmbedTokens(const std::vector<std::string>& tokens) const;

  /// Embedding of free text: tokenize, drop stopwords, average.
  Vector EmbedText(std::string_view text) const;

 private:
  /// Pseudo-random unit vector of an arbitrary string feature.
  void AccumulateFeature(std::string_view feature, double weight,
                         Vector& acc) const;

  Options options_;
};

}  // namespace lake

#endif  // LAKE_EMBED_WORD_EMBEDDING_H_
