#include "embed/contextual_encoder.h"

#include <cmath>

namespace lake {

Vector ContextualColumnEncoder::Contextualize(
    const std::vector<Vector>& context_free, size_t index) const {
  const Vector& own = context_free[index];
  if (context_free.size() <= 1 || options_.alpha <= 0) return own;

  // Softmax attention over siblings, scored by cosine with the target
  // column (inputs are unit norm, so dot == cosine).
  std::vector<double> weights;
  weights.reserve(context_free.size());
  double max_score = -1e300;
  for (size_t j = 0; j < context_free.size(); ++j) {
    if (j == index) {
      weights.push_back(-1e300);  // excluded below
      continue;
    }
    const double s = Dot(own, context_free[j]) / options_.temperature;
    weights.push_back(s);
    if (s > max_score) max_score = s;
  }
  double z = 0;
  for (size_t j = 0; j < weights.size(); ++j) {
    if (j == index) continue;
    weights[j] = std::exp(weights[j] - max_score);
    z += weights[j];
  }
  Vector ctx(own.size(), 0.0f);
  if (z > 0) {
    for (size_t j = 0; j < context_free.size(); ++j) {
      if (j == index) continue;
      AddInPlace(ctx, context_free[j], static_cast<float>(weights[j] / z));
    }
  }
  Vector out(own.size(), 0.0f);
  AddInPlace(out, own, static_cast<float>(1.0 - options_.alpha));
  AddInPlace(out, ctx, static_cast<float>(options_.alpha));
  NormalizeInPlace(out);
  return out;
}

std::vector<Vector> ContextualColumnEncoder::EncodeTable(
    const Table& table) const {
  std::vector<Vector> context_free;
  context_free.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    context_free.push_back(base_->Encode(table.column(c)));
  }
  std::vector<Vector> out;
  out.reserve(context_free.size());
  for (size_t c = 0; c < context_free.size(); ++c) {
    out.push_back(Contextualize(context_free, c));
  }
  return out;
}

}  // namespace lake
