#ifndef LAKE_EMBED_COLUMN_ENCODER_H_
#define LAKE_EMBED_COLUMN_ENCODER_H_

#include <cstddef>

#include "embed/word_embedding.h"
#include "table/column.h"

namespace lake {

/// Context-free column embeddings: the representation used by
/// embedding-based joinable search (PEXESO) and the semantic measure of
/// table-union search (TUS). A column's vector is the normalized mean of
/// its distinct values' word embeddings, optionally mixed with the
/// attribute-name embedding.
class ColumnEncoder {
 public:
  struct Options {
    /// Cap on distinct values embedded per column (cost control; values
    /// are taken in first-occurrence order, deterministic).
    size_t max_values = 256;
    /// Weight of the attribute-name embedding in the mix ([0, 1)).
    double name_weight = 0.2;
  };

  explicit ColumnEncoder(const WordEmbedding* words)
      : ColumnEncoder(words, Options{}) {}
  ColumnEncoder(const WordEmbedding* words, Options options)
      : words_(words), options_(options) {}

  size_t dim() const { return words_->dim(); }

  /// Unit-norm embedding of one column (zero vector for all-null columns
  /// with empty names).
  Vector Encode(const Column& column) const;

  /// Embedding of a bare value list (query columns, tests).
  Vector EncodeValues(const std::vector<std::string>& values) const;

 private:
  const WordEmbedding* words_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_EMBED_COLUMN_ENCODER_H_
