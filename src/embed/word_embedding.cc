#include "embed/word_embedding.h"

#include "text/tokenizer.h"
#include "util/hash.h"

namespace lake {

void WordEmbedding::AccumulateFeature(std::string_view feature, double weight,
                                      Vector& acc) const {
  // Each feature expands to a deterministic Rademacher-like vector: one
  // hash per 4 components keeps hashing cost low while remaining full-rank
  // in expectation.
  const uint64_t base = Hash64(feature, options_.seed);
  for (size_t i = 0; i < options_.dim; i += 4) {
    uint64_t h = Hash64(base, /*seed=*/i + 1);
    for (size_t j = i; j < i + 4 && j < options_.dim; ++j) {
      acc[j] += static_cast<float>(weight * (((h & 1) != 0) ? 1.0 : -1.0));
      h >>= 1;
    }
  }
}

Vector WordEmbedding::EmbedToken(std::string_view token) const {
  Vector acc(options_.dim, 0.0f);
  if (token.empty()) return acc;

  AccumulateFeature(token, options_.word_weight, acc);

  // Boundary-marked n-grams, fastText style: "<to", "tok", ..., "en>".
  std::string marked = "<";
  marked += token;
  marked += ">";
  for (size_t g = options_.min_gram; g <= options_.max_gram; ++g) {
    if (marked.size() < g) break;
    for (size_t i = 0; i + g <= marked.size(); ++i) {
      AccumulateFeature(std::string_view(marked).substr(i, g), 1.0, acc);
    }
  }
  NormalizeInPlace(acc);
  return acc;
}

Vector WordEmbedding::EmbedTokens(const std::vector<std::string>& tokens) const {
  Vector acc(options_.dim, 0.0f);
  for (const std::string& t : tokens) {
    const Vector v = EmbedToken(t);
    AddInPlace(acc, v);
  }
  NormalizeInPlace(acc);
  return acc;
}

Vector WordEmbedding::EmbedText(std::string_view text) const {
  return EmbedTokens(TokenizeWordsNoStopwords(text));
}

}  // namespace lake
