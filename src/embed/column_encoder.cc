#include "embed/column_encoder.h"

#include "text/normalizer.h"

namespace lake {

Vector ColumnEncoder::EncodeValues(const std::vector<std::string>& values) const {
  Vector acc(words_->dim(), 0.0f);
  size_t used = 0;
  for (const std::string& v : values) {
    if (used >= options_.max_values) break;
    const std::string norm = NormalizeValue(v);
    if (norm.empty()) continue;
    AddInPlace(acc, words_->EmbedText(norm));
    ++used;
  }
  NormalizeInPlace(acc);
  return acc;
}

Vector ColumnEncoder::Encode(const Column& column) const {
  Vector value_vec = EncodeValues(column.DistinctStrings());
  if (options_.name_weight <= 0 || column.name().empty()) return value_vec;

  const Vector name_vec =
      words_->EmbedText(NormalizeAttributeName(column.name()));
  Vector out(words_->dim(), 0.0f);
  AddInPlace(out, value_vec, static_cast<float>(1.0 - options_.name_weight));
  AddInPlace(out, name_vec, static_cast<float>(options_.name_weight));
  NormalizeInPlace(out);
  return out;
}

}  // namespace lake
