#ifndef LAKE_EMBED_TABLE_ENCODER_H_
#define LAKE_EMBED_TABLE_ENCODER_H_

#include "embed/column_encoder.h"
#include "table/table.h"

namespace lake {

/// Whole-table embeddings: the normalized mean of column embeddings mixed
/// with the metadata-text embedding. Used by lake navigation (organization
/// clustering) and table-level similarity.
class TableEncoder {
 public:
  struct Options {
    /// Weight of name/description/tags text in the mix.
    double metadata_weight = 0.25;
  };

  TableEncoder(const ColumnEncoder* columns, const WordEmbedding* words)
      : TableEncoder(columns, words, Options{}) {}
  TableEncoder(const ColumnEncoder* columns, const WordEmbedding* words,
               Options options)
      : columns_(columns), words_(words), options_(options) {}

  size_t dim() const { return columns_->dim(); }

  /// Unit-norm embedding of the table.
  Vector Encode(const Table& table) const;

 private:
  const ColumnEncoder* columns_;
  const WordEmbedding* words_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_EMBED_TABLE_ENCODER_H_
