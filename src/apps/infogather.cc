#include "apps/infogather.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "text/normalizer.h"
#include "text/qgram.h"

namespace lake {

InfoGatherAugmenter::InfoGatherAugmenter(const DataLakeCatalog* catalog,
                                         Options options)
    : catalog_(catalog), options_(options) {}

std::vector<InfoGatherAugmenter::AugmentedValue> InfoGatherAugmenter::Vote(
    const std::vector<std::string>& entities,
    const std::vector<Provider>& providers) const {
  // Per entity: value -> (total weight, provider tables).
  struct Votes {
    std::unordered_map<std::string, double> weight;
    std::unordered_set<TableId> tables;
    double total = 0;
  };
  std::vector<Votes> votes(entities.size());
  std::unordered_map<std::string, std::vector<size_t>> entity_index;
  for (size_t i = 0; i < entities.size(); ++i) {
    entity_index[NormalizeValue(entities[i])].push_back(i);
  }

  for (const Provider& p : providers) {
    const Table& table = catalog_->table(p.table_id);
    const Column& entity_col = table.column(p.entity_column);
    const Column& value_col = table.column(p.value_column);
    const size_t rows =
        std::min(table.num_rows(), options_.max_rows_per_table);
    for (size_t r = 0; r < rows; ++r) {
      if (entity_col.cell(r).is_null() || value_col.cell(r).is_null()) {
        continue;
      }
      auto it = entity_index.find(NormalizeValue(entity_col.cell(r).ToString()));
      if (it == entity_index.end()) continue;
      const std::string value = NormalizeValue(value_col.cell(r).ToString());
      if (value.empty()) continue;
      for (size_t i : it->second) {
        votes[i].weight[value] += p.weight;
        votes[i].total += p.weight;
        votes[i].tables.insert(p.table_id);
      }
    }
  }

  std::vector<AugmentedValue> out;
  out.reserve(entities.size());
  for (size_t i = 0; i < entities.size(); ++i) {
    AugmentedValue av;
    av.entity = entities[i];
    av.providers = votes[i].tables.size();
    double best = 0;
    for (const auto& [value, weight] : votes[i].weight) {
      if (weight > best ||
          (weight == best && !av.value.empty() && value < av.value)) {
        best = weight;
        av.value = value;
      }
    }
    av.confidence = votes[i].total > 0 ? best / votes[i].total : 0.0;
    out.push_back(std::move(av));
  }
  return out;
}

Result<std::vector<InfoGatherAugmenter::AugmentedValue>>
InfoGatherAugmenter::AugmentByAttribute(
    const std::vector<std::string>& entities,
    const std::string& attribute_name) const {
  if (entities.empty()) return Status::InvalidArgument("no entities");
  const std::string target = NormalizeAttributeName(attribute_name);
  if (target.empty()) return Status::InvalidArgument("empty attribute name");

  // Entity lookup set for provider qualification.
  std::unordered_set<std::string> entity_set;
  for (const std::string& e : entities) {
    entity_set.insert(NormalizeValue(e));
  }

  std::vector<Provider> providers;
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    // Value columns whose names match the request.
    std::vector<std::pair<uint32_t, double>> named;
    for (uint32_t c = 0; c < table.num_columns(); ++c) {
      const double sim = QGramJaccard(
          NormalizeAttributeName(table.column(c).name()), target,
          options_.qgram);
      if (sim >= options_.name_similarity_threshold) named.push_back({c, sim});
    }
    if (named.empty()) continue;
    // Entity columns: any column containing >= 1 query entity.
    for (uint32_t c = 0; c < table.num_columns(); ++c) {
      if (table.column(c).IsNumeric()) continue;
      bool hits = false;
      const size_t rows =
          std::min(table.num_rows(), options_.max_rows_per_table);
      for (size_t r = 0; r < rows && !hits; ++r) {
        const Value& v = table.column(c).cell(r);
        if (!v.is_null() && entity_set.count(NormalizeValue(v.ToString()))) {
          hits = true;
        }
      }
      if (!hits) continue;
      for (const auto& [vc, sim] : named) {
        if (vc == c) continue;
        providers.push_back(Provider{t, c, vc, sim});
      }
    }
  }
  return Vote(entities, providers);
}

Result<std::vector<InfoGatherAugmenter::AugmentedValue>>
InfoGatherAugmenter::AugmentByExample(
    const std::vector<std::pair<std::string, std::string>>& examples,
    const std::vector<std::string>& entities) const {
  if (examples.empty()) return Status::InvalidArgument("no examples");
  std::unordered_map<std::string, std::string> expected;
  for (const auto& [e, v] : examples) {
    expected[NormalizeValue(e)] = NormalizeValue(v);
  }

  std::vector<Provider> providers;
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    const size_t rows =
        std::min(table.num_rows(), options_.max_rows_per_table);
    for (uint32_t ec = 0; ec < table.num_columns(); ++ec) {
      if (table.column(ec).IsNumeric()) continue;
      for (uint32_t vc = 0; vc < table.num_columns(); ++vc) {
        if (vc == ec) continue;
        size_t reproduced = 0;
        for (size_t r = 0; r < rows; ++r) {
          const Value& ev = table.column(ec).cell(r);
          const Value& vv = table.column(vc).cell(r);
          if (ev.is_null() || vv.is_null()) continue;
          auto it = expected.find(NormalizeValue(ev.ToString()));
          if (it != expected.end() &&
              it->second == NormalizeValue(vv.ToString())) {
            ++reproduced;
          }
        }
        const double support =
            static_cast<double>(reproduced) / expected.size();
        if (support >= options_.example_support) {
          providers.push_back(Provider{t, ec, vc, support});
        }
      }
    }
  }
  return Vote(entities, providers);
}

}  // namespace lake
