#ifndef LAKE_APPS_HOMOGRAPH_H_
#define LAKE_APPS_HOMOGRAPH_H_

#include <string>
#include <vector>

#include "table/catalog.h"

namespace lake {

/// Homograph detection via graph centrality — DomainNet (Leventidis et
/// al., EDBT 2021), the survey's §3 example of modeling a data lake as a
/// graph. A bipartite graph connects values to the columns containing
/// them; a *homograph* ("jaguar" the animal vs the car) bridges otherwise
/// disconnected column communities, which manifests as high betweenness
/// centrality of its value node. Centrality is estimated with Brandes'
/// sampled algorithm (exact when the sample covers all value nodes).
class HomographDetector {
 public:
  struct Options {
    /// Values appearing in fewer columns are skipped (a value in one
    /// column cannot bridge anything).
    size_t min_columns = 2;
    /// BFS sources sampled for approximate betweenness (0 = all nodes,
    /// exact but quadratic).
    size_t sample_sources = 256;
    uint64_t seed = 11;
  };

  struct ScoredValue {
    std::string value;
    double centrality = 0;
    size_t column_count = 0;  // columns containing the value
  };

  explicit HomographDetector(const DataLakeCatalog* catalog)
      : HomographDetector(catalog, Options{}) {}
  HomographDetector(const DataLakeCatalog* catalog, Options options)
      : catalog_(catalog), options_(options) {}

  /// Top-k values by betweenness centrality (homograph candidates first).
  std::vector<ScoredValue> TopHomographs(size_t k) const;

 private:
  const DataLakeCatalog* catalog_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_APPS_HOMOGRAPH_H_
