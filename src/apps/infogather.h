#ifndef LAKE_APPS_INFOGATHER_H_
#define LAKE_APPS_INFOGATHER_H_

#include <string>
#include <vector>

#include "table/catalog.h"
#include "util/status.h"

namespace lake {

/// InfoGather-style entity augmentation (Yakout et al., SIGMOD 2012 — the
/// survey's §2.4 opener): augment a list of entities with values of a
/// *named* attribute, harvested by holistic matching over many lake
/// tables.
///
/// Augmentation-By-Attribute (ABA): for each query entity, find lake
/// tables where (a) some column contains the entity and (b) another
/// column's name matches the requested attribute; each such table votes
/// for the value in the entity's row. Votes are weighted by the providing
/// column's name similarity, and the majority value wins — InfoGather's
/// insight that aggregating *many* weak web tables beats trusting any
/// single one.
///
/// Augmentation-By-Example (ABE) derives the attribute from example
/// (entity, value) pairs instead of a name: columns whose rows reproduce
/// the examples become providers for the remaining entities.
class InfoGatherAugmenter {
 public:
  struct Options {
    /// Minimum q-gram similarity between the requested attribute name and
    /// a provider column's name (ABA).
    double name_similarity_threshold = 0.5;
    size_t qgram = 3;
    /// ABE: minimum fraction of examples a provider column pair must
    /// reproduce.
    double example_support = 0.5;
    /// Rows scanned per lake table (deterministic prefix).
    size_t max_rows_per_table = 5000;
  };

  struct AugmentedValue {
    std::string entity;
    std::string value;       // "" when no provider voted
    double confidence = 0;   // winning weight / total weight
    size_t providers = 0;    // distinct tables that voted
  };

  explicit InfoGatherAugmenter(const DataLakeCatalog* catalog)
      : InfoGatherAugmenter(catalog, Options{}) {}
  InfoGatherAugmenter(const DataLakeCatalog* catalog, Options options);

  /// ABA: value of `attribute_name` for each entity.
  Result<std::vector<AugmentedValue>> AugmentByAttribute(
      const std::vector<std::string>& entities,
      const std::string& attribute_name) const;

  /// ABE: learn the attribute from (entity, value) examples, then fill it
  /// for `entities`.
  Result<std::vector<AugmentedValue>> AugmentByExample(
      const std::vector<std::pair<std::string, std::string>>& examples,
      const std::vector<std::string>& entities) const;

 private:
  /// One candidate provider: (table, entity column, value column, weight).
  struct Provider {
    TableId table_id;
    uint32_t entity_column;
    uint32_t value_column;
    double weight;
  };

  std::vector<AugmentedValue> Vote(
      const std::vector<std::string>& entities,
      const std::vector<Provider>& providers) const;

  const DataLakeCatalog* catalog_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_APPS_INFOGATHER_H_
