#include "apps/homograph.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "text/normalizer.h"
#include "util/random.h"
#include "util/top_k.h"

namespace lake {

std::vector<HomographDetector::ScoredValue> HomographDetector::TopHomographs(
    size_t k) const {
  // Bipartite graph: value nodes [0, V), column nodes [V, V+C).
  std::unordered_map<std::string, uint32_t> value_ids;
  std::vector<std::string> values;
  std::vector<std::vector<uint32_t>> value_cols;  // value -> column nodes
  std::vector<std::vector<uint32_t>> col_values;  // column -> value nodes

  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    (void)ref;
    if (col.IsNumeric()) return;
    const uint32_t col_node = static_cast<uint32_t>(col_values.size());
    col_values.emplace_back();
    for (const std::string& raw : col.DistinctStrings()) {
      const std::string v = NormalizeValue(raw);
      if (v.empty()) continue;
      auto [it, fresh] =
          value_ids.try_emplace(v, static_cast<uint32_t>(values.size()));
      if (fresh) {
        values.push_back(v);
        value_cols.emplace_back();
      }
      value_cols[it->second].push_back(col_node);
      col_values[col_node].push_back(it->second);
    }
  });

  const size_t v_count = values.size();
  const size_t c_count = col_values.size();
  const size_t n = v_count + c_count;
  if (n == 0) return {};

  // Unified adjacency: node < v_count is a value, else a column.
  auto neighbors = [&](uint32_t node) -> const std::vector<uint32_t>& {
    return node < v_count ? value_cols[node] : col_values[node - v_count];
  };
  auto to_global = [&](bool is_value, uint32_t idx) -> uint32_t {
    return is_value ? idx : idx + static_cast<uint32_t>(v_count);
  };

  // Brandes' betweenness with sampled sources.
  std::vector<double> centrality(n, 0.0);
  std::vector<uint32_t> sources;
  if (options_.sample_sources == 0 || options_.sample_sources >= n) {
    sources.resize(n);
    for (uint32_t i = 0; i < n; ++i) sources[i] = i;
  } else {
    Rng rng(options_.seed);
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    rng.Shuffle(all);
    sources.assign(all.begin(), all.begin() + options_.sample_sources);
  }

  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::vector<uint32_t>> preds(n);
  for (uint32_t s : sources) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : preds) p.clear();

    std::vector<uint32_t> order;
    std::queue<uint32_t> q;
    dist[s] = 0;
    sigma[s] = 1;
    q.push(s);
    while (!q.empty()) {
      const uint32_t u = q.front();
      q.pop();
      order.push_back(u);
      const bool u_is_value = u < v_count;
      for (uint32_t raw : neighbors(u)) {
        const uint32_t w = to_global(!u_is_value, raw);
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          q.push(w);
        }
        if (dist[w] == dist[u] + 1) {
          sigma[w] += sigma[u];
          preds[w].push_back(u);
        }
      }
    }
    for (size_t i = order.size(); i-- > 0;) {
      const uint32_t w = order[i];
      for (uint32_t u : preds[w]) {
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) centrality[w] += delta[w];
    }
  }
  const double scale =
      sources.size() < n ? static_cast<double>(n) / sources.size() : 1.0;

  TopK<uint32_t> heap(k);
  for (uint32_t v = 0; v < v_count; ++v) {
    if (value_cols[v].size() < options_.min_columns) continue;
    heap.Push(centrality[v] * scale, v);
  }
  std::vector<ScoredValue> out;
  for (auto& [score, v] : heap.Take()) {
    out.push_back(ScoredValue{values[v], score, value_cols[v].size()});
  }
  return out;
}

}  // namespace lake
