#ifndef LAKE_APPS_RIDGE_REGRESSION_H_
#define LAKE_APPS_RIDGE_REGRESSION_H_

#include <vector>

#include "util/status.h"

namespace lake {

/// Closed-form ridge regression (normal equations + Cholesky). The small,
/// dependency-free downstream model the ARDA-style augmentation experiment
/// trains to measure whether discovered features help (E14).
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1.0) : lambda_(lambda) {}

  /// Fits on row-major features (an intercept is added internally).
  Status Fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y);

  /// Predicts one row (dimension checked).
  Result<double> Predict(const std::vector<double>& x) const;

  /// Coefficient of determination on a labeled set.
  Result<double> RSquared(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) const;

  bool fitted() const { return !weights_.empty(); }
  /// Learned weights (without intercept).
  const std::vector<double>& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  double lambda_;
  std::vector<double> weights_;
  double intercept_ = 0;
};

/// K-fold cross-validated R² of ridge on a dataset (used by ARDA's feature
/// scoring). Folds are contiguous blocks (deterministic).
Result<double> CrossValidatedR2(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y, size_t folds,
                                double lambda);

}  // namespace lake

#endif  // LAKE_APPS_RIDGE_REGRESSION_H_
