#ifndef LAKE_APPS_STITCHING_H_
#define LAKE_APPS_STITCHING_H_

#include <string>
#include <vector>

#include "annotate/knowledge_base.h"
#include "table/catalog.h"
#include "util/status.h"

namespace lake {

/// Table stitching for KB completion (Lehmberg & Bizer, VLDB 2017; Ling et
/// al., IJCAI 2013 — §2.7's knowledge-base application). Tables with
/// semantically equivalent headers are *stitched* into one larger union
/// table; the stitched tables then yield far more (subject, predicate,
/// object) facts per relationship than any single source table, boosting
/// KB completion.
class TableStitcher {
 public:
  struct Options {
    /// Two tables stitch when this fraction of their normalized attribute
    /// names agree (on the smaller schema).
    double header_overlap_threshold = 0.8;
    /// Rows contributed per source table to fact extraction.
    size_t max_rows_per_table = 1000;
  };

  struct StitchedGroup {
    std::vector<TableId> members;
    std::vector<std::string> header;  // shared normalized attribute names
    size_t total_rows = 0;
  };

  struct CompletionReport {
    size_t groups = 0;
    size_t facts_from_single_tables = 0;  // max facts any one member yields
    size_t facts_from_stitched = 0;       // facts the stitched union yields
    size_t new_entities = 0;              // entities unseen by the input KB
  };

  explicit TableStitcher(const DataLakeCatalog* catalog)
      : TableStitcher(catalog, Options{}) {}
  TableStitcher(const DataLakeCatalog* catalog, Options options)
      : catalog_(catalog), options_(options) {}

  /// Groups lake tables by header equivalence (union-find on the header
  /// agreement relation). Singleton groups are included.
  std::vector<StitchedGroup> Stitch() const;

  /// Extracts (first column, "<colA>|<colB>", other column) facts from the
  /// stitched groups into `kb`, and reports how many more facts stitching
  /// yields vs the best single member table.
  Result<CompletionReport> CompleteKb(KnowledgeBase* kb) const;

 private:
  const DataLakeCatalog* catalog_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_APPS_STITCHING_H_
