#ifndef LAKE_APPS_AUGMENTATION_H_
#define LAKE_APPS_AUGMENTATION_H_

#include <string>
#include <vector>

#include "search/join_josie.h"
#include "table/catalog.h"
#include "util/status.h"

namespace lake {

/// ARDA-style automatic relational data augmentation (Chepurko et al.,
/// VLDB 2020): given a base table with a join key and a numeric prediction
/// target, discover joinable lake tables, left-join their numeric columns
/// as candidate features, and keep only features that survive
/// random-injection selection — candidate features must beat injected
/// noise features on a model trained over both (ARDA's RIFS idea). The
/// output is an augmented feature matrix plus the cross-validated R²
/// before and after, the E14 measurement.
class DataAugmenter {
 public:
  struct Options {
    /// Joinable tables considered (top-k by overlap).
    size_t max_join_tables = 10;
    /// Candidate numeric features pulled per joined table.
    size_t max_features_per_table = 4;
    /// Random noise features injected per selection round.
    size_t noise_features = 5;
    /// A feature is kept when its |coefficient| exceeds this multiple of
    /// the largest noise-feature |coefficient|.
    double noise_margin = 1.0;
    double ridge_lambda = 1.0;
    size_t cv_folds = 4;
    uint64_t seed = 21;
  };

  struct AugmentedFeature {
    TableId table_id = 0;
    uint32_t column = 0;
    std::string name;       // "<table>.<column>"
    double coefficient = 0; // from the selection model
  };

  struct Report {
    double base_r2 = 0;       // CV R² with base features only
    double augmented_r2 = 0;  // CV R² with selected lake features added
    size_t candidates = 0;    // features considered
    std::vector<AugmentedFeature> selected;
    std::vector<std::vector<double>> augmented_features;  // row-major
  };

  DataAugmenter(const DataLakeCatalog* catalog, const JosieJoinSearch* join)
      : DataAugmenter(catalog, join, Options{}) {}
  DataAugmenter(const DataLakeCatalog* catalog, const JosieJoinSearch* join,
                Options options)
      : catalog_(catalog), join_(join), options_(options) {}

  /// Augments `base`: `key_column` joins against the lake,
  /// `base_feature_columns` are the existing numeric features, and
  /// `target` holds one label per base row.
  Result<Report> Augment(const Table& base, size_t key_column,
                         const std::vector<size_t>& base_feature_columns,
                         const std::vector<double>& target) const;

 private:
  const DataLakeCatalog* catalog_;
  const JosieJoinSearch* join_;
  Options options_;
};

}  // namespace lake

#endif  // LAKE_APPS_AUGMENTATION_H_
