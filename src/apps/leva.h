#ifndef LAKE_APPS_LEVA_H_
#define LAKE_APPS_LEVA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "embed/column_encoder.h"
#include "table/catalog.h"
#include "util/status.h"

namespace lake {

/// Leva-style relational embedding augmentation (Zhao & Castro Fernandez,
/// SIGMOD 2022 — the survey's §2.7 example of graph representation
/// learning over a lake to boost downstream ML).
///
/// The lake is modeled as a heterogeneous graph: value nodes connect to
/// the columns containing them, columns to their tables. Node embeddings
/// start from the hash word embeddings and are smoothed by `propagation
/// rounds` of neighbor averaging — a deterministic stand-in for Leva's
/// learned graph embeddings that preserves the property downstream models
/// exploit: a value's embedding absorbs *inter-table* context (every
/// table it appears in), not just its own surface form.
///
/// EmbedRows() then featurizes the rows of a task table by averaging the
/// graph embeddings of their values, giving an ML model lake-wide signal
/// without explicit joins (Leva's pitch vs ARDA-style join augmentation).
class LevaEmbedder {
 public:
  struct Options {
    size_t propagation_rounds = 2;
    /// Blend of a node's own embedding vs its neighborhood per round.
    double self_weight = 0.5;
    /// Values appearing in more columns than this are hubs (stopword-like)
    /// and are not propagated through (they blur communities).
    size_t max_value_degree = 64;
  };

  LevaEmbedder(const DataLakeCatalog* catalog, const WordEmbedding* words)
      : LevaEmbedder(catalog, words, Options{}) {}
  LevaEmbedder(const DataLakeCatalog* catalog, const WordEmbedding* words,
               Options options);

  size_t dim() const { return words_->dim(); }

  /// Graph embedding of a value (zero vector when the value is unknown to
  /// the lake — callers may fall back to the plain word embedding).
  Vector EmbedValue(const std::string& value) const;

  /// Row features for a task table: for each row, the mean graph
  /// embedding of its (string) cell values. Output is row-major,
  /// `table.num_rows() x dim()`.
  std::vector<std::vector<double>> EmbedRows(const Table& table) const;

  size_t num_value_nodes() const { return value_vecs_.size(); }

 private:
  const DataLakeCatalog* catalog_;
  const WordEmbedding* words_;
  Options options_;
  std::unordered_map<std::string, uint32_t> value_ids_;
  std::vector<Vector> value_vecs_;  // post-propagation
};

}  // namespace lake

#endif  // LAKE_APPS_LEVA_H_
