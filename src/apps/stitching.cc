#include "apps/stitching.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "text/normalizer.h"

namespace lake {

namespace {

std::vector<std::string> NormalizedHeader(const Table& table) {
  std::vector<std::string> out;
  out.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    out.push_back(NormalizeAttributeName(table.column(c).name()));
  }
  return out;
}

double HeaderOverlap(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t shared = 0;
  std::unordered_set<std::string> counted;
  for (const std::string& name : a) {
    if (sb.count(name) && counted.insert(name).second) ++shared;
  }
  return static_cast<double>(shared) / std::min(a.size(), b.size());
}

class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::vector<TableStitcher::StitchedGroup> TableStitcher::Stitch() const {
  const std::vector<TableId> tables = catalog_->AllTables();
  std::vector<std::vector<std::string>> headers;
  headers.reserve(tables.size());
  for (TableId t : tables) {
    headers.push_back(NormalizedHeader(catalog_->table(t)));
  }

  // Shortlist pairs sharing at least one attribute name.
  std::unordered_map<std::string, std::vector<size_t>> by_name;
  for (size_t i = 0; i < headers.size(); ++i) {
    std::unordered_set<std::string> seen;
    for (const std::string& name : headers[i]) {
      if (!name.empty() && seen.insert(name).second) {
        by_name[name].push_back(i);
      }
    }
  }
  DisjointSets sets(tables.size());
  std::unordered_set<uint64_t> checked;
  for (const auto& [name, group] : by_name) {
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        const uint64_t key = (static_cast<uint64_t>(group[a]) << 32) | group[b];
        if (!checked.insert(key).second) continue;
        if (HeaderOverlap(headers[group[a]], headers[group[b]]) >=
            options_.header_overlap_threshold) {
          sets.Union(group[a], group[b]);
        }
      }
    }
  }

  std::unordered_map<size_t, StitchedGroup> groups;
  for (size_t i = 0; i < tables.size(); ++i) {
    StitchedGroup& g = groups[sets.Find(i)];
    g.members.push_back(tables[i]);
    g.total_rows += catalog_->table(tables[i]).num_rows();
  }
  std::vector<StitchedGroup> out;
  for (auto& [root, g] : groups) {
    // Shared header = names present in every member.
    std::unordered_map<std::string, size_t> counts;
    for (TableId t : g.members) {
      std::unordered_set<std::string> seen;
      for (const std::string& name :
           NormalizedHeader(catalog_->table(t))) {
        if (!name.empty() && seen.insert(name).second) ++counts[name];
      }
    }
    for (const auto& [name, count] : counts) {
      if (count == g.members.size()) g.header.push_back(name);
    }
    std::sort(g.header.begin(), g.header.end());
    std::sort(g.members.begin(), g.members.end());
    out.push_back(std::move(g));
  }
  std::sort(out.begin(), out.end(),
            [](const StitchedGroup& a, const StitchedGroup& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members < b.members;
            });
  return out;
}

Result<TableStitcher::CompletionReport> TableStitcher::CompleteKb(
    KnowledgeBase* kb) const {
  if (kb == nullptr) return Status::InvalidArgument("kb is null");
  CompletionReport report;
  const std::vector<StitchedGroup> groups = Stitch();
  report.groups = groups.size();

  for (const StitchedGroup& group : groups) {
    if (group.header.size() < 2) continue;
    // Facts: (value of header[0], pred, value of header[j]) per row. The
    // first shared attribute acts as the subject ("entity label" column in
    // the stitching literature).
    const std::string& subj_name = group.header[0];
    std::unordered_set<std::string> stitched_facts;
    size_t best_single = 0;
    for (TableId t : group.members) {
      const Table& table = catalog_->table(t);
      const int subj_col = [&] {
        for (size_t c = 0; c < table.num_columns(); ++c) {
          if (NormalizeAttributeName(table.column(c).name()) == subj_name) {
            return static_cast<int>(c);
          }
        }
        return -1;
      }();
      if (subj_col < 0) continue;
      std::unordered_set<std::string> member_facts;
      const size_t rows =
          std::min(table.num_rows(), options_.max_rows_per_table);
      for (size_t j = 1; j < group.header.size(); ++j) {
        const int obj_col = [&] {
          for (size_t c = 0; c < table.num_columns(); ++c) {
            if (NormalizeAttributeName(table.column(c).name()) ==
                group.header[j]) {
              return static_cast<int>(c);
            }
          }
          return -1;
        }();
        if (obj_col < 0) continue;
        const std::string pred =
            "stitch:" + subj_name + "|" + group.header[j];
        for (size_t r = 0; r < rows; ++r) {
          const Value& sv = table.column(subj_col).cell(r);
          const Value& ov = table.column(obj_col).cell(r);
          if (sv.is_null() || ov.is_null()) continue;
          const std::string s = NormalizeValue(sv.ToString());
          const std::string o = NormalizeValue(ov.ToString());
          if (s.empty() || o.empty()) continue;
          const std::string fact = s + "\x1f" + pred + "\x1f" + o;
          member_facts.insert(fact);
          if (stitched_facts.insert(fact).second) {
            if (kb->TypesOf(s).empty()) ++report.new_entities;
            kb->AddEntity(s, "stitch:" + subj_name);
            kb->AddRelation(s, pred, o);
          }
        }
      }
      best_single = std::max(best_single, member_facts.size());
    }
    report.facts_from_single_tables += best_single;
    report.facts_from_stitched += stitched_facts.size();
  }
  return report;
}

}  // namespace lake
