#include "apps/augmentation.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "apps/ridge_regression.h"
#include "text/normalizer.h"
#include "util/random.h"

namespace lake {

Result<DataAugmenter::Report> DataAugmenter::Augment(
    const Table& base, size_t key_column,
    const std::vector<size_t>& base_feature_columns,
    const std::vector<double>& target) const {
  if (key_column >= base.num_columns()) {
    return Status::OutOfRange("key column");
  }
  if (target.size() != base.num_rows()) {
    return Status::InvalidArgument("target length != base rows");
  }
  if (base.num_rows() < options_.cv_folds * 2) {
    return Status::InvalidArgument("too few rows for cross-validation");
  }

  Report report;

  // Base feature matrix.
  const size_t rows = base.num_rows();
  std::vector<std::vector<double>> features(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c : base_feature_columns) {
      double v = 0;
      base.column(c).cell(r).ToDouble(&v);
      features[r].push_back(v);
    }
  }
  {
    LAKE_ASSIGN_OR_RETURN(report.base_r2,
                          CrossValidatedR2(features, target, options_.cv_folds,
                                           options_.ridge_lambda));
  }

  // Join keys of the base table.
  std::vector<std::string> keys(rows);
  for (size_t r = 0; r < rows; ++r) {
    const Value& v = base.column(key_column).cell(r);
    keys[r] = v.is_null() ? "" : NormalizeValue(v.ToString());
  }

  // Discover joinable lake columns with JOSIE, then harvest numeric
  // columns of the joined tables as candidate features via a hash-join.
  std::vector<std::string> distinct_keys;
  {
    std::unordered_set<std::string> seen;
    for (const std::string& k : keys) {
      if (!k.empty() && seen.insert(k).second) distinct_keys.push_back(k);
    }
  }
  LAKE_ASSIGN_OR_RETURN(
      std::vector<ColumnResult> joinable,
      join_->Search(distinct_keys, options_.max_join_tables));

  struct Candidate {
    TableId table_id;
    uint32_t column;
    std::string name;
    std::vector<double> values;  // aligned with base rows (0 when no match)
  };
  std::vector<Candidate> candidates;
  std::unordered_set<TableId> used_tables;
  for (const ColumnResult& jr : joinable) {
    const TableId t = jr.column.table_id;
    if (!used_tables.insert(t).second) continue;
    const Table& lake_table = catalog_->table(t);
    const Column& lake_key = lake_table.column(jr.column.column_index);

    // key value -> first row index in the lake table.
    std::unordered_map<std::string, size_t> key_to_row;
    for (size_t r = 0; r < lake_table.num_rows(); ++r) {
      const Value& v = lake_key.cell(r);
      if (v.is_null()) continue;
      key_to_row.try_emplace(NormalizeValue(v.ToString()), r);
    }

    size_t taken = 0;
    for (uint32_t c = 0; c < lake_table.num_columns(); ++c) {
      if (c == jr.column.column_index) continue;
      if (!lake_table.column(c).IsNumeric()) continue;
      if (taken >= options_.max_features_per_table) break;
      Candidate cand;
      cand.table_id = t;
      cand.column = c;
      cand.name = lake_table.name() + "." + lake_table.column(c).name();
      cand.values.assign(rows, 0.0);
      size_t matched = 0;
      for (size_t r = 0; r < rows; ++r) {
        auto it = key_to_row.find(keys[r]);
        if (it == key_to_row.end()) continue;
        double v;
        if (lake_table.column(c).cell(it->second).ToDouble(&v)) {
          cand.values[r] = v;
          ++matched;
        }
      }
      if (matched < rows / 4) continue;  // too sparse to help
      candidates.push_back(std::move(cand));
      ++taken;
    }
  }
  report.candidates = candidates.size();

  // Random-injection feature selection: train ridge on [base | candidates
  // | noise]; keep candidates whose |coef|·std beats the strongest noise
  // feature's. Features are scaled to unit variance inside the selection
  // model so coefficients are comparable.
  std::vector<AugmentedFeature> selected;
  if (!candidates.empty()) {
    Rng rng(options_.seed);
    const size_t base_dim = features[0].size();
    std::vector<std::vector<double>> sel_x(rows);
    for (size_t r = 0; r < rows; ++r) {
      sel_x[r] = features[r];
      for (const Candidate& cand : candidates) {
        sel_x[r].push_back(cand.values[r]);
      }
      for (size_t nz = 0; nz < options_.noise_features; ++nz) {
        sel_x[r].push_back(rng.NextGaussian());
      }
    }
    // Column-standardize in place so coefficient magnitudes compare.
    const size_t dim = sel_x[0].size();
    for (size_t j = 0; j < dim; ++j) {
      double mean = 0, var = 0;
      for (size_t r = 0; r < rows; ++r) mean += sel_x[r][j];
      mean /= static_cast<double>(rows);
      for (size_t r = 0; r < rows; ++r) {
        const double d = sel_x[r][j] - mean;
        var += d * d;
      }
      const double sd = std::sqrt(var / static_cast<double>(rows));
      const double inv = sd > 1e-12 ? 1.0 / sd : 0.0;
      for (size_t r = 0; r < rows; ++r) sel_x[r][j] = (sel_x[r][j] - mean) * inv;
    }
    RidgeRegression sel_model(options_.ridge_lambda);
    LAKE_RETURN_IF_ERROR(sel_model.Fit(sel_x, target));
    const std::vector<double>& w = sel_model.weights();
    double noise_max = 0;
    for (size_t nz = 0; nz < options_.noise_features; ++nz) {
      noise_max = std::max(
          noise_max, std::abs(w[base_dim + candidates.size() + nz]));
    }
    for (size_t c = 0; c < candidates.size(); ++c) {
      const double coef = w[base_dim + c];
      if (std::abs(coef) > options_.noise_margin * noise_max) {
        selected.push_back(AugmentedFeature{candidates[c].table_id,
                                            candidates[c].column,
                                            candidates[c].name, coef});
      }
    }
  }

  // Final augmented matrix and score.
  std::vector<std::vector<double>> augmented(rows);
  for (size_t r = 0; r < rows; ++r) {
    augmented[r] = features[r];
    for (const AugmentedFeature& f : selected) {
      for (const Candidate& cand : candidates) {
        if (cand.table_id == f.table_id && cand.column == f.column) {
          augmented[r].push_back(cand.values[r]);
          break;
        }
      }
    }
  }
  if (selected.empty()) {
    report.augmented_r2 = report.base_r2;
  } else {
    LAKE_ASSIGN_OR_RETURN(
        report.augmented_r2,
        CrossValidatedR2(augmented, target, options_.cv_folds,
                         options_.ridge_lambda));
  }
  report.selected = std::move(selected);
  report.augmented_features = std::move(augmented);
  return report;
}

}  // namespace lake
