#include "apps/leva.h"

#include <unordered_map>

#include "text/normalizer.h"

namespace lake {

LevaEmbedder::LevaEmbedder(const DataLakeCatalog* catalog,
                           const WordEmbedding* words, Options options)
    : catalog_(catalog), words_(words), options_(options) {
  // Bipartite structure: value -> columns containing it (dense ids).
  std::vector<std::vector<uint32_t>> value_cols;
  std::vector<std::vector<uint32_t>> col_values;
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    (void)ref;
    if (col.IsNumeric()) return;
    const uint32_t col_id = static_cast<uint32_t>(col_values.size());
    col_values.emplace_back();
    for (const std::string& raw : col.DistinctStrings()) {
      const std::string v = NormalizeValue(raw);
      if (v.empty()) continue;
      auto [it, fresh] = value_ids_.try_emplace(
          v, static_cast<uint32_t>(value_vecs_.size()));
      if (fresh) {
        value_vecs_.push_back(words_->EmbedText(v));
        value_cols.emplace_back();
      }
      value_cols[it->second].push_back(col_id);
      col_values[col_id].push_back(it->second);
    }
  });

  // Propagation: column embedding = mean of member values; value
  // embedding = blend of itself and the mean of its columns. High-degree
  // hub values neither receive nor emit context.
  for (size_t round = 0; round < options_.propagation_rounds; ++round) {
    std::vector<Vector> col_vecs(col_values.size());
    for (size_t c = 0; c < col_values.size(); ++c) {
      Vector acc(words_->dim(), 0.0f);
      for (uint32_t v : col_values[c]) {
        if (value_cols[v].size() > options_.max_value_degree) continue;
        AddInPlace(acc, value_vecs_[v]);
      }
      NormalizeInPlace(acc);
      col_vecs[c] = std::move(acc);
    }
    for (size_t v = 0; v < value_vecs_.size(); ++v) {
      if (value_cols[v].empty() ||
          value_cols[v].size() > options_.max_value_degree) {
        continue;
      }
      Vector ctx(words_->dim(), 0.0f);
      for (uint32_t c : value_cols[v]) AddInPlace(ctx, col_vecs[c]);
      NormalizeInPlace(ctx);
      Vector mixed(words_->dim(), 0.0f);
      AddInPlace(mixed, value_vecs_[v],
                 static_cast<float>(options_.self_weight));
      AddInPlace(mixed, ctx, static_cast<float>(1.0 - options_.self_weight));
      NormalizeInPlace(mixed);
      value_vecs_[v] = std::move(mixed);
    }
  }
}

Vector LevaEmbedder::EmbedValue(const std::string& value) const {
  auto it = value_ids_.find(NormalizeValue(value));
  if (it == value_ids_.end()) return Vector(words_->dim(), 0.0f);
  return value_vecs_[it->second];
}

std::vector<std::vector<double>> LevaEmbedder::EmbedRows(
    const Table& table) const {
  std::vector<std::vector<double>> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Vector acc(words_->dim(), 0.0f);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = table.column(c);
      if (col.IsNumeric()) continue;
      const Value& cell = col.cell(r);
      if (cell.is_null()) continue;
      AddInPlace(acc, EmbedValue(cell.ToString()));
    }
    NormalizeInPlace(acc);
    std::vector<double> row(acc.begin(), acc.end());
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace lake
