#include "apps/ridge_regression.h"

#include <cmath>

namespace lake {

namespace {

/// Solves A w = b for symmetric positive-definite A via Cholesky.
/// Returns false when A is not SPD (should not happen with ridge).
bool CholeskySolve(std::vector<std::vector<double>> a, std::vector<double> b,
                   std::vector<double>* out) {
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i][j];
      for (size_t k = 0; k < j; ++k) sum -= a[i][k] * a[j][k];
      if (i == j) {
        if (sum <= 0) return false;
        a[i][i] = std::sqrt(sum);
      } else {
        a[i][j] = sum / a[j][j];
      }
    }
  }
  // Forward substitution: L z = b.
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i][k] * b[k];
    b[i] = sum / a[i][i];
  }
  // Back substitution: L^T w = z.
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[k][i] * b[k];
    b[i] = sum / a[i][i];
  }
  *out = std::move(b);
  return true;
}

}  // namespace

Status RidgeRegression::Fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.empty() || x.size() != y.size()) {
    return Status::InvalidArgument("empty or mismatched training data");
  }
  const size_t dim = x[0].size();
  for (const auto& row : x) {
    if (row.size() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  const size_t d = dim + 1;  // + intercept

  // Normal equations: (X^T X + λI) w = X^T y, intercept unregularized.
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  for (size_t r = 0; r < x.size(); ++r) {
    for (size_t i = 0; i < d; ++i) {
      const double xi = i < dim ? x[r][i] : 1.0;
      xty[i] += xi * y[r];
      for (size_t j = 0; j <= i; ++j) {
        const double xj = j < dim ? x[r][j] : 1.0;
        xtx[i][j] += xi * xj;
      }
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) xtx[i][j] = xtx[j][i];
  }
  for (size_t i = 0; i < dim; ++i) xtx[i][i] += lambda_;
  xtx[dim][dim] += 1e-9;  // numeric safety for the intercept row

  std::vector<double> solution;
  if (!CholeskySolve(std::move(xtx), std::move(xty), &solution)) {
    return Status::Internal("normal equations not SPD");
  }
  intercept_ = solution[dim];
  solution.resize(dim);
  weights_ = std::move(solution);
  return Status::OK();
}

Result<double> RidgeRegression::Predict(const std::vector<double>& x) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (x.size() != weights_.size()) {
    return Status::InvalidArgument("feature dim mismatch");
  }
  double y = intercept_;
  for (size_t i = 0; i < x.size(); ++i) y += weights_[i] * x[i];
  return y;
}

Result<double> RidgeRegression::RSquared(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& y) const {
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("empty or mismatched eval data");
  }
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    LAKE_ASSIGN_OR_RETURN(double pred, Predict(x[i]));
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot <= 0) return Status::FailedPrecondition("constant target");
  return 1.0 - ss_res / ss_tot;
}

Result<double> CrossValidatedR2(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& y, size_t folds,
                                double lambda) {
  if (x.size() != y.size() || x.size() < folds || folds < 2) {
    return Status::InvalidArgument("bad cross-validation inputs");
  }
  const size_t n = x.size();
  double total = 0;
  size_t used_folds = 0;
  for (size_t f = 0; f < folds; ++f) {
    const size_t begin = f * n / folds;
    const size_t end = (f + 1) * n / folds;
    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) {
        test_x.push_back(x[i]);
        test_y.push_back(y[i]);
      } else {
        train_x.push_back(x[i]);
        train_y.push_back(y[i]);
      }
    }
    RidgeRegression model(lambda);
    LAKE_RETURN_IF_ERROR(model.Fit(train_x, train_y));
    auto r2 = model.RSquared(test_x, test_y);
    if (!r2.ok()) continue;  // constant-target fold: skip
    total += r2.value();
    ++used_folds;
  }
  if (used_folds == 0) return Status::FailedPrecondition("no usable folds");
  return total / static_cast<double>(used_folds);
}

}  // namespace lake
