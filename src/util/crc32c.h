#ifndef LAKE_UTIL_CRC32C_H_
#define LAKE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lake {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// used by the snapshot envelope. Any single-bit or ≤32-bit burst error
/// inside a checksummed region is guaranteed detected, which is the
/// property the corruption-sweep tests rely on.
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(std::string_view s) {
  return Crc32c(s.data(), s.size());
}

/// Extends a running CRC with more bytes (init with crc = 0).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);

}  // namespace lake

#endif  // LAKE_UTIL_CRC32C_H_
