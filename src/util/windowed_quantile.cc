#include "util/windowed_quantile.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lake {

WindowedQuantile::WindowedQuantile() : WindowedQuantile(Options()) {}

WindowedQuantile::WindowedQuantile(Options options) : options_(options) {
  options_.window_slices = std::max<size_t>(1, options_.window_slices);
  if (options_.slice_width.count() <= 0) {
    options_.slice_width = std::chrono::milliseconds(1);
  }
  slices_.resize(options_.window_slices);
}

size_t WindowedQuantile::ValueBucket(uint64_t micros) {
  if (micros < 8) return static_cast<size_t>(micros);
  const int msb = 63 - std::countl_zero(micros);  // >= 3
  const uint64_t sub = (micros >> (msb - 2)) & 3;
  const size_t index = 8 + static_cast<size_t>(msb - 3) * 4 +
                       static_cast<size_t>(sub);
  return std::min(index, kValueBuckets - 1);
}

uint64_t WindowedQuantile::BucketLowerBound(size_t index) {
  if (index < 8) return index;
  const size_t octave = (index - 8) / 4;
  const uint64_t sub = (index - 8) % 4;
  const int msb = static_cast<int>(octave) + 3;
  return (uint64_t{1} << msb) | (sub << (msb - 2));
}

uint64_t WindowedQuantile::BucketWidth(size_t index) {
  if (index < 8) return 1;
  const size_t octave = (index - 8) / 4;
  return uint64_t{1} << (static_cast<int>(octave) + 1);
}

uint64_t WindowedQuantile::TickOf(Clock::time_point now) const {
  const auto since_epoch = now.time_since_epoch();
  return static_cast<uint64_t>(since_epoch / options_.slice_width);
}

bool WindowedQuantile::LiveAt(const Slice& slice, uint64_t tick) const {
  return slice.tick != UINT64_MAX && slice.tick <= tick &&
         slice.tick + options_.window_slices > tick;
}

void WindowedQuantile::Record(double micros, Clock::time_point now) {
  const uint64_t clamped = micros <= 0 ? 0 : static_cast<uint64_t>(micros);
  const uint64_t tick = TickOf(now);
  std::lock_guard<std::mutex> lock(mu_);
  Slice& slice = slices_[tick % slices_.size()];
  if (slice.tick != tick) slice = Slice{tick, 0, {}};
  ++slice.buckets[ValueBucket(clamped)];
  ++slice.total;
}

double WindowedQuantile::Quantile(double q, Clock::time_point now) const {
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t tick = TickOf(now);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Slice& slice : slices_) {
    if (LiveAt(slice, tick)) total += slice.total;
  }
  if (total == 0) return 0;
  // Rank-select over the merged live slices; report the bucket midpoint.
  const uint64_t rank = static_cast<uint64_t>(
      std::min<double>(q * static_cast<double>(total - 1),
                       static_cast<double>(total - 1)));
  uint64_t seen = 0;
  for (size_t b = 0; b < kValueBuckets; ++b) {
    for (const Slice& slice : slices_) {
      if (LiveAt(slice, tick)) seen += slice.buckets[b];
    }
    if (seen > rank) {
      return static_cast<double>(BucketLowerBound(b)) +
             static_cast<double>(BucketWidth(b)) / 2.0;
    }
  }
  return static_cast<double>(BucketLowerBound(kValueBuckets - 1));
}

uint64_t WindowedQuantile::count(Clock::time_point now) const {
  const uint64_t tick = TickOf(now);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Slice& slice : slices_) {
    if (LiveAt(slice, tick)) total += slice.total;
  }
  return total;
}

void WindowedQuantile::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slice& slice : slices_) slice = Slice{};
}

}  // namespace lake
