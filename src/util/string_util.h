#ifndef LAKE_UTIL_STRING_UTIL_H_
#define LAKE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lake {

/// ASCII lower-casing (data lakes values are treated byte-wise; full Unicode
/// folding is out of scope and unnecessary for the generated workloads).
std::string ToLowerAscii(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` parses fully as a finite double.
bool ParseDouble(std::string_view s, double* out);

/// True if `s` parses fully as a 64-bit signed integer.
bool ParseInt64(std::string_view s, int64_t* out);

/// True when `s` looks like a boolean literal (true/false/yes/no/0/1).
bool ParseBool(std::string_view s, bool* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace lake

#endif  // LAKE_UTIL_STRING_UTIL_H_
