#include "util/io.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace lake {

Status FullWrite(int fd, const char* data, size_t size,
                 int max_zero_progress) {
  size_t off = 0;
  int stalls = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) {
        if (++stalls > max_zero_progress) {
          return Status::IoError("write: too many EINTR retries");
        }
        continue;
      }
      if (errno == ENOSPC) {
        return Status::IoError("no space left on device");
      }
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      // A zero-byte ::write on a regular file is legal but means no
      // progress; bounded retries keep a wedged fd from spinning forever.
      if (++stalls > max_zero_progress) {
        return Status::IoError("write made no progress");
      }
      continue;
    }
    stalls = 0;
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncRetry(int fd, int max_retries) {
  for (int i = 0; i <= max_retries; ++i) {
    if (::fsync(fd) == 0) return Status::OK();
    if (errno != EINTR) {
      return Status::IoError(std::string("fsync failed: ") +
                             std::strerror(errno));
    }
  }
  return Status::IoError("fsync: too many EINTR retries");
}

}  // namespace lake
