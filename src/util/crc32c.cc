#include "util/crc32c.h"

#include <array>

namespace lake {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial. Snapshot
// payloads are megabytes at most, so table lookup throughput is ample and
// keeps the implementation portable (no SSE4.2 requirement).
constexpr uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

}  // namespace lake
