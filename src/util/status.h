#ifndef LAKE_UTIL_STATUS_H_
#define LAKE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace lake {

/// Error categories used across the library. The library does not throw
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kCancelled,
  kOverloaded,
  /// A dependency is temporarily refusing work (e.g. an open circuit
  /// breaker); retry after backoff, unlike kOverloaded which signals the
  /// caller itself is sending too much.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error carrier, modeled on absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Value-or-error carrier, modeled on absl::StatusOr. Accessing the value of
/// an error Result is a programming error (checked by assert in debug).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (mirrors StatusOr ergonomics).
  Result(T value) : status_(), value_(std::move(value)) {}
  /// Implicit construction from an error status; must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the enclosing function.
#define LAKE_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::lake::Status _lake_st = (expr);               \
    if (!_lake_st.ok()) return _lake_st;            \
  } while (false)

/// Evaluates a Result expression, assigning the value on success and
/// propagating the error status otherwise.
#define LAKE_ASSIGN_OR_RETURN(lhs, expr)            \
  LAKE_ASSIGN_OR_RETURN_IMPL_(                      \
      LAKE_STATUS_CONCAT_(_lake_res, __LINE__), lhs, expr)

#define LAKE_STATUS_CONCAT_INNER_(a, b) a##b
#define LAKE_STATUS_CONCAT_(a, b) LAKE_STATUS_CONCAT_INNER_(a, b)
#define LAKE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace lake

#endif  // LAKE_UTIL_STATUS_H_
