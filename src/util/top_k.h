#ifndef LAKE_UTIL_TOP_K_H_
#define LAKE_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <queue>
#include <vector>

namespace lake {

/// Bounded max-collector: keeps the k items with the largest scores.
/// Ties are broken toward the item pushed first (stable for deterministic
/// search results). T must be movable.
template <typename T>
class TopK {
 public:
  struct Entry {
    double score;
    size_t seq;  // insertion sequence; lower wins ties
    T item;
  };

  explicit TopK(size_t k) : k_(k) {}

  /// Offers an item; keeps it only if it beats the current k-th score.
  void Push(double score, T item) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{score, seq_++, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return;
    }
    const Entry& worst = heap_.front();
    if (score > worst.score ||
        (score == worst.score && false)) {  // strict: first-seen wins ties
      std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
      heap_.back() = Entry{score, seq_++, std::move(item)};
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    }
  }

  /// Current k-th best score, or `fallback` when fewer than k items are held.
  double Threshold(double fallback) const {
    return heap_.size() < k_ ? fallback : heap_.front().score;
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }

  /// Extracts results ordered by descending score (stable by insertion).
  std::vector<std::pair<double, T>> Take() {
    std::sort(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.seq < b.seq;
    });
    std::vector<std::pair<double, T>> out;
    out.reserve(heap_.size());
    for (Entry& e : heap_) out.emplace_back(e.score, std::move(e.item));
    heap_.clear();
    return out;
  }

 private:
  static bool MinFirst(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;  // min-heap by score
    return a.seq < b.seq;  // among equal scores, newest is evicted first
  }

  size_t k_;
  size_t seq_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace lake

#endif  // LAKE_UTIL_TOP_K_H_
