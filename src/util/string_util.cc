#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lake {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimAscii(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size() || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimAscii(s);
  if (s.empty() || s.size() > 31) return false;
  char buf[32];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  const std::string t = ToLowerAscii(TrimAscii(s));
  if (t == "true" || t == "yes" || t == "1" || t == "t" || t == "y") {
    *out = true;
    return true;
  }
  if (t == "false" || t == "no" || t == "0" || t == "f" || t == "n") {
    *out = false;
    return true;
  }
  return false;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace lake
