#ifndef LAKE_UTIL_LOGGING_H_
#define LAKE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace lake {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything; used when the level is filtered out statically.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define LAKE_LOG(level)                                                    \
  ::lake::internal_logging::LogMessage(::lake::LogLevel::k##level,         \
                                       __FILE__, __LINE__)                 \
      .stream()

/// Fatal assertion for invariant violations; aborts with a message.
#define LAKE_CHECK(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::lake::internal_logging::CheckFail(#cond, __FILE__, __LINE__))

namespace internal_logging {
[[noreturn]] void CheckFail(const char* cond, const char* file, int line);
}  // namespace internal_logging

}  // namespace lake

#endif  // LAKE_UTIL_LOGGING_H_
