#ifndef LAKE_UTIL_THREAD_POOL_H_
#define LAKE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lake {

/// Fixed-size worker pool used for parallel index construction, batch query
/// evaluation, and the serving executor. Tasks are void() callables; callers
/// either coordinate results through their own synchronization (Submit) or
/// take the std::future completion handle (Async).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers.
  /// If the pool is already shutting down the task runs inline on the
  /// calling thread instead of being enqueued: before this guard a task
  /// submitted concurrently with destruction could be pushed after the
  /// workers had drained and exited, so it never ran and Wait() hung.
  void Submit(std::function<void()> task);

  /// Submit variant returning a completion handle: runs `fn` on the pool
  /// and delivers its result (or void) through the future. During shutdown
  /// the task runs inline, so the future is always satisfied.
  template <typename F, typename R = std::invoke_result_t<std::decay_t<F>&>>
  std::future<R> Async(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Submit([task]() { (*task)(); });
    return future;
  }

  /// Blocks until all submitted tasks (including tasks submitted by tasks)
  /// have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), partitioned across the pool, and waits.
  /// Falls back to inline execution for tiny inputs.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t inflight_ = 0;
  bool stop_ = false;
};

}  // namespace lake

#endif  // LAKE_UTIL_THREAD_POOL_H_
