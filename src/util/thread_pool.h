#ifndef LAKE_UTIL_THREAD_POOL_H_
#define LAKE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lake {

/// Fixed-size worker pool used for parallel index construction and batch
/// query evaluation. Tasks are void() callables; callers coordinate results
/// through their own synchronization (typically per-slot output vectors).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including tasks submitted by tasks)
  /// have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), partitioned across the pool, and waits.
  /// Falls back to inline execution for tiny inputs.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t inflight_ = 0;
  bool stop_ = false;
};

}  // namespace lake

#endif  // LAKE_UTIL_THREAD_POOL_H_
