#ifndef LAKE_UTIL_CANCEL_H_
#define LAKE_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>

#include "util/status.h"

namespace lake {

/// Cooperative cancellation + deadline carrier threaded through long-running
/// search loops. A token is cancelled explicitly (Cancel()) or implicitly by
/// its deadline passing; loops poll Expired() every few hundred iterations
/// and unwind with kCancelled / kDeadlineExceeded. All members are safe to
/// call from any thread.
///
/// Expired() reads one relaxed atomic and, only when a deadline is armed,
/// the steady clock — cheap enough for inner-loop polling at coarse stride.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Arms the deadline; a zero/negative budget expires immediately.
  explicit CancelToken(std::chrono::nanoseconds budget) {
    SetDeadline(Clock::now() + budget);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Arms (or rearms) the absolute deadline.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Budget left until the armed deadline (possibly negative once past
  /// it); nanoseconds::max() when no deadline is armed. Control paths use
  /// this to decide whether a slow method still fits the budget.
  std::chrono::nanoseconds Remaining() const {
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d == kNoDeadline) return std::chrono::nanoseconds::max();
    return std::chrono::nanoseconds(
        d - Clock::now().time_since_epoch().count());
  }

  /// True once cancelled or past the deadline.
  bool Expired() const {
    if (cancelled()) return true;
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != kNoDeadline && Clock::now().time_since_epoch().count() >= d;
  }

  /// OK while live; kCancelled / kDeadlineExceeded once expired. Loops use
  /// `LAKE_RETURN_IF_ERROR(token->Check())` at their polling points.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != kNoDeadline && Clock::now().time_since_epoch().count() >= d) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static constexpr int64_t kNoDeadline = INT64_MAX;

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

/// Polling-point helper: `if (ShouldCheck(i)) ...` — true every `stride`
/// iterations (stride must be a power of two).
inline bool ShouldCheck(size_t iteration, size_t stride = 256) {
  return (iteration & (stride - 1)) == 0;
}

}  // namespace lake

#endif  // LAKE_UTIL_CANCEL_H_
