#ifndef LAKE_UTIL_TIMER_H_
#define LAKE_UTIL_TIMER_H_

#include <chrono>

namespace lake {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lake

#endif  // LAKE_UTIL_TIMER_H_
