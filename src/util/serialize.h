#ifndef LAKE_UTIL_SERIALIZE_H_
#define LAKE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace lake {

/// Little-endian binary writer for index persistence. All multi-byte
/// integers use LEB128 varints so files stay compact; floats are raw
/// IEEE-754. Streams are the caller's (files, stringstreams in tests).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->put(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_->put(static_cast<char>(v));
  }

  void WriteFixed32(uint32_t v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->write(buf, 4);
  }

  void WriteFixed64(uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->write(buf, 8);
  }

  void WriteFloat(float v) {
    char buf[4];
    std::memcpy(buf, &v, 4);
    out_->write(buf, 4);
  }

  void WriteDouble(double v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out_->write(buf, 8);
  }

  void WriteString(const std::string& s) {
    WriteVarint(s.size());
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  void WriteU32Vector(const std::vector<uint32_t>& v) {
    WriteVarint(v.size());
    for (uint32_t x : v) WriteVarint(x);
  }

  void WriteU64Vector(const std::vector<uint64_t>& v) {
    WriteVarint(v.size());
    for (uint64_t x : v) WriteVarint(x);
  }

  void WriteFloatVector(const std::vector<float>& v) {
    WriteVarint(v.size());
    for (float x : v) WriteFloat(x);
  }

  bool ok() const { return out_->good(); }

  /// The underlying stream, for payloads with their own serializers.
  std::ostream* stream() { return out_; }

 private:
  std::ostream* out_;
};

/// Reader matching BinaryWriter. All methods return errors (never abort)
/// on truncated or corrupt input. Length prefixes above `max_length()`
/// (default 1 GiB) are rejected *before* any allocation, so a corrupt
/// header fails fast instead of attempting a huge allocation.
class BinaryReader {
 public:
  /// Default sanity cap on any length prefix (strings: bytes; vectors:
  /// element count). No legitimate snapshot in this system approaches it.
  static constexpr uint64_t kDefaultMaxLength = 1ULL << 30;  // 1 Gi

  explicit BinaryReader(std::istream* in) : in_(in) {}

  /// Overrides the length-prefix sanity cap (tests, trusted bulk loads).
  void set_max_length(uint64_t max_length) { max_length_ = max_length; }
  uint64_t max_length() const { return max_length_; }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      const int c = in_->get();
      if (c == EOF) return Status::IoError("truncated varint");
      v |= static_cast<uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) return Status::IoError("varint overflow");
    }
    return v;
  }

  Result<uint32_t> ReadFixed32() {
    char buf[4];
    in_->read(buf, 4);
    if (in_->gcount() != 4) return Status::IoError("truncated fixed32");
    uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
  }

  Result<uint64_t> ReadFixed64() {
    char buf[8];
    in_->read(buf, 8);
    if (in_->gcount() != 8) return Status::IoError("truncated fixed64");
    uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
  }

  Result<float> ReadFloat() {
    char buf[4];
    in_->read(buf, 4);
    if (in_->gcount() != 4) return Status::IoError("truncated float");
    float v;
    std::memcpy(&v, buf, 4);
    return v;
  }

  Result<double> ReadDouble() {
    char buf[8];
    in_->read(buf, 8);
    if (in_->gcount() != 8) return Status::IoError("truncated double");
    double v;
    std::memcpy(&v, buf, 8);
    return v;
  }

  Result<std::string> ReadString() {
    LAKE_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > max_length_) return Status::IoError("string too large");
    std::string s(n, '\0');
    in_->read(s.data(), static_cast<std::streamsize>(n));
    if (static_cast<uint64_t>(in_->gcount()) != n) {
      return Status::IoError("truncated string");
    }
    return s;
  }

  Result<std::vector<uint32_t>> ReadU32Vector() {
    LAKE_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > max_length_) return Status::IoError("vector too large");
    std::vector<uint32_t> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LAKE_ASSIGN_OR_RETURN(uint64_t x, ReadVarint());
      v.push_back(static_cast<uint32_t>(x));
    }
    return v;
  }

  Result<std::vector<uint64_t>> ReadU64Vector() {
    LAKE_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > max_length_) return Status::IoError("vector too large");
    std::vector<uint64_t> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LAKE_ASSIGN_OR_RETURN(uint64_t x, ReadVarint());
      v.push_back(x);
    }
    return v;
  }

  Result<std::vector<float>> ReadFloatVector() {
    LAKE_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > max_length_) return Status::IoError("vector too large");
    std::vector<float> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LAKE_ASSIGN_OR_RETURN(float x, ReadFloat());
      v.push_back(x);
    }
    return v;
  }

 private:
  std::istream* in_;
  uint64_t max_length_ = kDefaultMaxLength;
};

}  // namespace lake

#endif  // LAKE_UTIL_SERIALIZE_H_
