#ifndef LAKE_UTIL_RANDOM_H_
#define LAKE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace lake {

/// Small, fast, deterministic PRNG (xoshiro256**). Every randomized
/// component in the library takes an explicit seed and draws from this
/// generator so results are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform double in [0, 1).
  double NextUnit();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (no cached spare; stateless per call
  /// pair would complicate reseeding).
  double NextGaussian();

  /// Bernoulli with probability p.
  bool NextBool(double p) { return NextUnit() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks one index according to non-negative weights (sum must be > 0).
  size_t NextWeighted(const std::vector<double>& weights);

  /// Splittable seeded stream: derives an independent child generator from
  /// the current state and `tag` WITHOUT consuming any parent randomness,
  /// so forking never perturbs the parent's sequence. Two forks with the
  /// same tag at the same parent state are identical; distinct tags give
  /// decorrelated streams. This is how multi-threaded deterministic code
  /// (the chaos WorkloadDriver's burst threads) hands each worker its own
  /// fully seed-determined stream: fork by a stable tag, never share one
  /// Rng across threads. Determinism contract: chaos/simulation code must
  /// derive ALL randomness from one seed via Next*/Fork — never from wall
  /// clocks, `std::random_device`, pointer values, or thread ids.
  Rng Fork(std::string_view tag) const;

 private:
  uint64_t s_[4];
};

/// Zipf(s, n) sampler over {0, .., n-1} using precomputed CDF; models the
/// heavy-tailed value-frequency and column-cardinality distributions found
/// in open-data lakes (the motivating skew for LSH Ensemble).
class ZipfSampler {
 public:
  /// `n` distinct items with exponent `s` (s = 0 is uniform; s ~ 1 typical).
  ZipfSampler(size_t n, double s);

  /// Draws an item rank in [0, n); rank 0 is the most frequent.
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lake

#endif  // LAKE_UTIL_RANDOM_H_
