#ifndef LAKE_UTIL_HASH_H_
#define LAKE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lake {

/// 64-bit mixing function (SplitMix64 finalizer). Bijective; good avalanche.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes `data` with a 64-bit xxHash64-style algorithm. Deterministic across
/// platforms and runs; used for sketches, LSH, and embeddings so that all
/// randomized structures are reproducible.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

/// Convenience overload for strings.
inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Convenience overload for integers.
inline uint64_t Hash64(uint64_t v, uint64_t seed = 0) {
  return Mix64(v ^ Mix64(seed));
}

/// Combines two 64-bit hashes (order-sensitive).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Maps a 64-bit hash to a uniform double in [0, 1).
inline double HashToUnit(uint64_t h) {
  // Use the top 53 bits for a full-precision double mantissa.
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace lake

#endif  // LAKE_UTIL_HASH_H_
