#ifndef LAKE_UTIL_IO_H_
#define LAKE_UTIL_IO_H_

#include <cstddef>

#include "util/status.h"

namespace lake {

/// Writes all `size` bytes of `data` to `fd`, retrying short writes and
/// EINTR. POSIX allows ::write to transfer fewer bytes than asked (signal
/// delivery, pipe buffers, quota edges); callers that treat one call as
/// all-or-nothing silently persist a prefix. Retries are bounded (a write
/// that makes no progress `max_zero_progress` consecutive times fails)
/// so a wedged descriptor cannot spin forever. ENOSPC is surfaced
/// distinctly so durability layers can report "disk full" instead of a
/// generic failure.
Status FullWrite(int fd, const char* data, size_t size,
                 int max_zero_progress = 8);

/// fsync(fd) retrying EINTR a bounded number of times. Any other error is
/// surfaced: after a failed fsync the kernel may have dropped dirty
/// pages, so callers must treat the data as not durable.
Status FsyncRetry(int fd, int max_retries = 8);

}  // namespace lake

#endif  // LAKE_UTIL_IO_H_
