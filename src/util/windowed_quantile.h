#ifndef LAKE_UTIL_WINDOWED_QUANTILE_H_
#define LAKE_UTIL_WINDOWED_QUANTILE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace lake {

/// Decayed latency-quantile estimator: samples land in a ring of
/// time-sliced log-scale histograms, and quantiles are computed only over
/// the slices still inside the window, so a replica that was slow a
/// minute ago but recovered stops *looking* slow as its old slices roll
/// off. Value bucketing is HdrHistogram-style (2 sub-bucket bits):
/// relative quantile error is bounded at ~12.5%, plenty for "is this
/// replica 3x slower than its peers" decisions without per-sample
/// allocation.
///
/// Thread-safe; all methods take the caller's `now` so tests and the
/// chaos harness control time through the same clock they already use.
class WindowedQuantile {
 public:
  using Clock = std::chrono::steady_clock;

  /// 8 exact buckets for 0..7, then 4 sub-buckets per power of two:
  /// 128 slots cover ~2.3 hours in microseconds.
  static constexpr size_t kValueBuckets = 128;

  struct Options {
    /// Number of time slices in the ring; the window covers
    /// `window_slices * slice_width`.
    size_t window_slices = 8;
    /// Width of one time slice.
    std::chrono::milliseconds slice_width{500};
  };

  WindowedQuantile();  // default Options
  explicit WindowedQuantile(Options options);

  /// Folds one sample (microseconds) into the slice containing `now`.
  void Record(double micros, Clock::time_point now);

  /// q-quantile (in microseconds, q clamped to [0, 1]) over the samples
  /// still inside the window; 0 when the window is empty.
  double Quantile(double q, Clock::time_point now) const;

  /// Samples still inside the window.
  uint64_t count(Clock::time_point now) const;

  /// Drops all samples (used on replica re-admission so stale slowness
  /// does not immediately re-eject a recovered replica).
  void Reset();

 private:
  struct Slice {
    uint64_t tick = UINT64_MAX;  // slice index since epoch; UINT64_MAX = empty
    uint64_t total = 0;
    std::array<uint32_t, kValueBuckets> buckets{};
  };

  static size_t ValueBucket(uint64_t micros);
  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketWidth(size_t index);

  uint64_t TickOf(Clock::time_point now) const;
  bool LiveAt(const Slice& slice, uint64_t tick) const;

  Options options_;
  mutable std::mutex mu_;
  std::vector<Slice> slices_;
};

}  // namespace lake

#endif  // LAKE_UTIL_WINDOWED_QUANTILE_H_
