#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lake {

namespace {
inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding per xoshiro authors' recommendation.
  uint64_t x = seed;
  for (int i = 0; i < 4; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    s_[i] = Mix64(x);
  }
  // Avoid the all-zero state (Mix64 of distinct inputs makes this
  // astronomically unlikely, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (0 - n) % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextUnit() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextUnit();
}

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextUnit();
  while (u1 <= 1e-300) u1 = NextUnit();
  const double u2 = NextUnit();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double r = NextUnit() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(std::string_view tag) const {
  // Fold the full 256-bit state down to one word, then perturb it with the
  // tag hash. Reading (not advancing) the state keeps Fork const and makes
  // fork order irrelevant to the parent's own draws.
  uint64_t folded = s_[0];
  folded = Mix64(folded ^ RotL(s_[1], 13));
  folded = Mix64(folded ^ RotL(s_[2], 29));
  folded = Mix64(folded ^ RotL(s_[3], 43));
  return Rng(Hash64(tag, folded));
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextUnit();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace lake
