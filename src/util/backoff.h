#ifndef LAKE_UTIL_BACKOFF_H_
#define LAKE_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "util/random.h"

namespace lake {

/// Capped exponential backoff delay, shared by every retry loop in the
/// tree (circuit-breaker reopen, compaction retry, recovery quarantine,
/// slow-replica ejection). Pure function: `attempt` is 1-based, attempt 1
/// returns `initial`, each further attempt doubles, capped at `max`.
/// Units are whatever the caller passes (ms, ns) — only the doubling is
/// encoded here.
inline uint64_t BackoffDelay(uint64_t initial, uint64_t max,
                             uint64_t attempt) {
  uint64_t delay = initial;
  for (uint64_t i = 1; i < attempt && delay < max; ++i) delay *= 2;
  return std::min(delay, max);
}

/// Stateful capped-exponential backoff with optional seeded jitter, for
/// loops that track "consecutive failures" implicitly: NextDelayMs()
/// advances the attempt counter, Reset() marks the dependency healthy
/// again.
///
/// Jitter is drawn from a caller-provided Rng (fork the component's
/// stream: `rng.Fork("backoff")`), never from wall clocks or
/// std::random_device — the chaos determinism contract (see
/// util/random.h) holds through every retry schedule. jitter = 0 (the
/// default) makes delays a pure function of the attempt count.
class Backoff {
 public:
  struct Options {
    uint64_t initial_ms = 100;
    uint64_t max_ms = 5000;
    /// Jitter fraction in [0, 1): each delay is scaled by a factor drawn
    /// uniformly from [1 - jitter, 1], de-synchronizing retry herds.
    double jitter = 0;
  };

  explicit Backoff(Options options) : Backoff(options, Rng(0)) {}
  Backoff(Options options, Rng rng) : options_(options), rng_(rng) {
    options_.initial_ms = std::max<uint64_t>(1, options_.initial_ms);
    options_.max_ms = std::max(options_.initial_ms, options_.max_ms);
    options_.jitter = std::clamp(options_.jitter, 0.0, 0.999);
  }

  /// Delay before the next retry; the first call after construction (or
  /// Reset) returns ~initial_ms, each further call doubles, capped.
  uint64_t NextDelayMs() {
    ++attempts_;
    const uint64_t base =
        BackoffDelay(options_.initial_ms, options_.max_ms, attempts_);
    if (options_.jitter <= 0) return base;
    const double scale = 1.0 - rng_.NextUnit() * options_.jitter;
    return std::max<uint64_t>(1, static_cast<uint64_t>(base * scale));
  }

  /// The dependency recovered: the next failure starts over at initial.
  void Reset() { attempts_ = 0; }

  /// Consecutive failures since the last Reset.
  uint64_t attempts() const { return attempts_; }

 private:
  Options options_;
  Rng rng_;
  uint64_t attempts_ = 0;
};

}  // namespace lake

#endif  // LAKE_UTIL_BACKOFF_H_
