#include "util/thread_pool.h"

#include <algorithm>

namespace lake {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_) {
      tasks_.push(std::move(task));
      ++inflight_;
      // Notify while holding the lock: the destructor must acquire mu_
      // before tearing the pool down, so the condition variable cannot be
      // destroyed while this signal is still in flight.
      task_cv_.notify_one();
      return;
    }
  }
  // Pool is shutting down: run inline so the task (and any future attached
  // to it) still completes instead of being silently dropped.
  task();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = workers_.size();
  if (n <= 1 || threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(n, threads * 4);
  const size_t per = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per;
    const size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--inflight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace lake
