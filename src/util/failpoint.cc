#include "util/failpoint.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace lake {

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  // Arming makes the name part of the durable catalog: ListRegistered()
  // keeps reporting it after ClearAll() wipes the run-state.
  registered_.insert(name);
  armed_[name] = Armed{spec, hit_counts_[name]};
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(name);
}

void FailpointRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hit_counts_.clear();
  fire_counts_.clear();
  rng_state_ = 0x9e3779b97f4a7c15ULL;
}

void FailpointRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  registered_.insert(name);
}

std::vector<std::string> FailpointRegistry::ListRegistered() {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> names = registered_;
  for (const auto& [name, armed] : armed_) names.insert(name);
  for (const auto& [name, count] : hit_counts_) names.insert(name);
  return std::vector<std::string>(names.begin(), names.end());
}

std::optional<FaultSpec> FailpointRegistry::Hit(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t hit = hit_counts_[name]++;
  auto it = armed_.find(name);
  if (it == armed_.end()) return std::nullopt;
  Armed& armed = it->second;
  if (hit - armed.hits_when_armed < armed.spec.after_hits) return std::nullopt;
  if (armed.spec.probability < 1.0) {
    // xorshift64* draw from the registry-seeded state: flaky faults stay
    // reproducible for a fixed arm/hit sequence.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const double draw =
        static_cast<double>((rng_state_ * 0x2545f4914f6cdd1dULL) >> 11) *
        0x1.0p-53;
    if (draw >= armed.spec.probability) return std::nullopt;
  }
  FaultSpec spec = armed.spec;
  ++armed.fired;
  ++fire_counts_[name];
  if (armed.spec.max_fires != 0 && armed.fired >= armed.spec.max_fires) {
    armed_.erase(it);  // fire budget exhausted: disarm
  }
  return spec;
}

uint64_t FailpointRegistry::hits(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hit_counts_.find(name);
  return it == hit_counts_.end() ? 0 : it->second;
}

uint64_t FailpointRegistry::fires(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fire_counts_.find(name);
  return it == fire_counts_.end() ? 0 : it->second;
}

void FailpointRegistry::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed != 0 ? seed : 0x9e3779b97f4a7c15ULL;
}

Status ExecFailpoint(const std::string& name, const CancelToken* cancel) {
  std::optional<FaultSpec> fault = FailpointRegistry::Instance().Hit(name);
  if (!fault.has_value()) return Status::OK();
  switch (fault->kind) {
    case FaultSpec::Kind::kDelay: {
      // Cancellable stall: holds the calling thread like a hung dependency
      // would, but unwinds at the caller's deadline instead of forever.
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(fault->arg);
      while (std::chrono::steady_clock::now() < until) {
        if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::OK();
    }
    default:
      return Status::Internal("injected fault at " + name);
  }
}

// --- FaultInjectingStreambuf --------------------------------------------

FaultInjectingStreambuf::FaultInjectingStreambuf(std::streambuf* target,
                                                 std::string failpoint)
    : target_(target), failpoint_(std::move(failpoint)) {}

void FaultInjectingStreambuf::PollFailpoint() {
  if (active_.has_value()) return;
  active_ = FailpointRegistry::Instance().Hit(failpoint_);
}

std::streamsize FaultInjectingStreambuf::xsputn(const char* s,
                                                std::streamsize n) {
  if (write_dead_ || n <= 0) return write_dead_ ? 0 : n;
  PollFailpoint();

  std::streamsize allowed = n;
  bool die_after = false;
  std::string scratch;
  if (active_.has_value()) {
    switch (active_->kind) {
      case FaultSpec::Kind::kError:
      case FaultSpec::Kind::kEnospc:
        write_dead_ = true;
        active_.reset();
        return 0;
      case FaultSpec::Kind::kTornWrite: {
        const uint64_t keep = active_->arg > bytes_written_
                                  ? active_->arg - bytes_written_
                                  : 0;
        if (keep <= static_cast<uint64_t>(n)) {
          // The tear lands inside this op: persist the prefix, then die.
          allowed = static_cast<std::streamsize>(keep);
          die_after = true;
          active_.reset();
        }
        break;
      }
      case FaultSpec::Kind::kBitFlip: {
        const uint64_t off = active_->arg;
        if (off >= bytes_written_ &&
            off < bytes_written_ + static_cast<uint64_t>(n)) {
          scratch.assign(s, static_cast<size_t>(n));
          scratch[static_cast<size_t>(off - bytes_written_)] ^= 0x01;
          s = scratch.data();
          active_.reset();
        }
        break;
      }
      case FaultSpec::Kind::kShortRead:
      case FaultSpec::Kind::kDelay:
        active_.reset();  // read/exec fault armed on a write site: ignore
        break;
    }
  }

  const std::streamsize put = target_->sputn(s, allowed);
  bytes_written_ += static_cast<uint64_t>(std::max<std::streamsize>(put, 0));
  if (die_after) {
    write_dead_ = true;
    // A short return (put < n) makes the owning ostream set badbit; when
    // the tear lands exactly on the op boundary the next write fails.
    return put;
  }
  return put;
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::overflow(
    int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return sync() == 0 ? traits_type::not_eof(ch) : traits_type::eof();
  }
  const char c = traits_type::to_char_type(ch);
  return xsputn(&c, 1) == 1 ? ch : traits_type::eof();
}

std::streamsize FaultInjectingStreambuf::xsgetn(char* s, std::streamsize n) {
  if (read_dead_ || n <= 0) return 0;
  PollFailpoint();

  std::streamsize allowed = n;
  bool die_after = false;
  if (active_.has_value()) {
    switch (active_->kind) {
      case FaultSpec::Kind::kError:
        read_dead_ = true;
        active_.reset();
        return 0;
      case FaultSpec::Kind::kShortRead: {
        const uint64_t keep =
            active_->arg > bytes_read_ ? active_->arg - bytes_read_ : 0;
        if (keep <= static_cast<uint64_t>(n)) {
          allowed = static_cast<std::streamsize>(keep);
          die_after = true;
          active_.reset();
        }
        break;
      }
      case FaultSpec::Kind::kBitFlip:
        break;  // applied below, after the read
      case FaultSpec::Kind::kTornWrite:
      case FaultSpec::Kind::kEnospc:
      case FaultSpec::Kind::kDelay:
        active_.reset();  // write/exec fault armed on a read site: ignore
        break;
    }
  }

  const std::streamsize got = target_->sgetn(s, allowed);
  if (active_.has_value() && active_->kind == FaultSpec::Kind::kBitFlip) {
    const uint64_t off = active_->arg;
    if (off >= bytes_read_ && off < bytes_read_ + static_cast<uint64_t>(got)) {
      s[static_cast<size_t>(off - bytes_read_)] ^= 0x01;
      active_.reset();
    }
  }
  bytes_read_ += static_cast<uint64_t>(std::max<std::streamsize>(got, 0));
  if (die_after) read_dead_ = true;
  return got;
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::underflow() {
  if (xsgetn(&get_ch_, 1) != 1) return traits_type::eof();
  setg(&get_ch_, &get_ch_, &get_ch_ + 1);
  return traits_type::to_int_type(get_ch_);
}

int FaultInjectingStreambuf::sync() {
  if (write_dead_) return -1;
  return target_->pubsync();
}

}  // namespace lake
