#ifndef LAKE_UTIL_FAILPOINT_H_
#define LAKE_UTIL_FAILPOINT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <istream>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <set>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/status.h"

namespace lake {

/// What an armed failpoint injects when it fires. The default spec is the
/// deterministic one-shot of the original design: it fires exactly once,
/// on hit number `after_hits + 1`, so every recovery path can be driven by
/// tests instead of hoped-for. Chaos tests loosen that with `max_fires`
/// (multi-shot: a fault that keeps firing until disarmed, e.g. a hung
/// index) and `probability` (flaky faults drawn from the registry's seeded
/// RNG, so runs are still reproducible).
struct FaultSpec {
  enum class Kind {
    kError,      // the operation reports a generic I/O failure
    kEnospc,     // a write reports "no space left on device"
    kTornWrite,  // only `arg` bytes of the write persist, then the sink dies
    kShortRead,  // only `arg` bytes are returned, then premature EOF
    kBitFlip,    // the byte at stream offset `arg` has its low bit flipped
    kDelay,      // the operation stalls for `arg` milliseconds (hung index)
  };
  Kind kind = Kind::kError;
  /// Eligible to fire starting at hit number `after_hits + 1`.
  uint64_t after_hits = 0;
  /// Kind-specific: bytes kept (kTornWrite/kShortRead), the byte offset of
  /// the flipped bit (kBitFlip), or the stall in milliseconds (kDelay).
  uint64_t arg = 0;
  /// Max number of times this armed spec fires; 0 = unlimited (fires on
  /// every eligible hit until disarmed).
  uint64_t max_fires = 1;
  /// Chance each eligible hit fires (seeded registry RNG; deterministic
  /// for a fixed arm/hit sequence). 1.0 = always.
  double probability = 1.0;
};

/// Process-wide registry of named failpoints. Production code declares
/// fault sites by calling `Hit(name)` at the point where an injected fault
/// should take effect; tests arm a site with `Arm`. Sites live on cold
/// persistence paths only, so a mutex per hit is acceptable.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  void Arm(const std::string& name, FaultSpec spec);
  void Disarm(const std::string& name);
  /// Disarms everything but keeps lifetime hit/fire counters and the
  /// registered-name set. Prefer ClearAll() in test teardown.
  void Clear();

  /// Full state reset: disarms every site AND zeroes the lifetime hit/fire
  /// counters, so `hits()`/`fires()` assertions in one test can never be
  /// polluted by an earlier test in the same process. The registered-name
  /// set survives (registration describes the binary, not a run). This is
  /// the canonical chaos/corruption-test teardown.
  void ClearAll();

  /// Declares that `name` is a fault site, without arming or hitting it.
  /// Production sites self-register on first Hit; chaos harnesses register
  /// their target catalog up front so schedule generation can enumerate
  /// every armable site before anything has executed.
  void Register(const std::string& name);

  /// Every failpoint name this registry knows: explicitly Register()ed,
  /// ever Arm()ed, or ever Hit(). Sorted, so schedules drawn from the list
  /// with a seeded RNG are deterministic.
  std::vector<std::string> ListRegistered();

  /// Records one hit of `name`; returns the armed spec iff this hit fires
  /// (past `after_hits`, within `max_fires`, and passing the probability
  /// draw). A spec whose fire budget is exhausted disarms itself.
  std::optional<FaultSpec> Hit(const std::string& name);

  /// Lifetime hit count of `name` (armed or not), for test assertions.
  uint64_t hits(const std::string& name);
  /// Lifetime fire count of `name`, for chaos-test assertions.
  uint64_t fires(const std::string& name);

  /// Reseeds the probability RNG (test setup; default seed is fixed).
  void Reseed(uint64_t seed);

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t hits_when_armed = 0;
    uint64_t fired = 0;
  };

  std::mutex mu_;
  std::map<std::string, Armed> armed_;
  std::map<std::string, uint64_t> hit_counts_;
  std::map<std::string, uint64_t> fire_counts_;
  std::set<std::string> registered_;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

/// Convenience: returns the firing spec for one hit of `name`, or nullopt.
inline std::optional<FaultSpec> FailpointHit(const std::string& name) {
  return FailpointRegistry::Instance().Hit(name);
}

/// Execution-path fault site for chaos tests: records one hit of `name`
/// and applies whatever fired — kDelay stalls the calling thread (polling
/// `cancel` so a deadline still unwinds it, like a hung index under a
/// query timeout), any other kind surfaces as kInternal. Returns OK when
/// nothing fired, so production paths call it unconditionally.
Status ExecFailpoint(const std::string& name,
                     const CancelToken* cancel = nullptr);

/// RAII armer for tests: arms on construction, disarms on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FaultSpec spec) : name_(std::move(name)) {
    FailpointRegistry::Instance().Arm(name_, spec);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

/// Streambuf decorator that injects the faults armed on its failpoint name
/// into reads/writes passing through: short reads, torn writes, ENOSPC,
/// and bit flips at deterministic byte offsets. Wrap any istream/ostream
/// buffer to exercise a consumer's corruption handling without touching
/// the filesystem.
class FaultInjectingStreambuf : public std::streambuf {
 public:
  FaultInjectingStreambuf(std::streambuf* target, std::string failpoint);

  /// Total bytes successfully written / read through this wrapper.
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;
  int_type underflow() override;
  std::streamsize xsgetn(char* s, std::streamsize n) override;
  int sync() override;

 private:
  /// Pulls a newly fired fault (if any) into `active_`.
  void PollFailpoint();

  std::streambuf* target_;
  std::string failpoint_;
  std::optional<FaultSpec> active_;  // fired but not fully applied yet
  uint64_t bytes_written_ = 0;
  uint64_t bytes_read_ = 0;
  bool write_dead_ = false;  // torn write / ENOSPC fired: all writes fail
  bool read_dead_ = false;   // short read fired: all reads hit EOF
  char get_ch_ = 0;          // one-byte get area for underflow
};

/// istream/ostream wrappers owning the fault-injecting buffer, for
/// one-line use in tests: `FaultInjectingOStream out(&real, "hnsw.save");`.
class FaultInjectingOStream : public std::ostream {
 public:
  FaultInjectingOStream(std::ostream* target, std::string failpoint)
      : std::ostream(nullptr), buf_(target->rdbuf(), std::move(failpoint)) {
    rdbuf(&buf_);
  }
  const FaultInjectingStreambuf& buf() const { return buf_; }

 private:
  FaultInjectingStreambuf buf_;
};

class FaultInjectingIStream : public std::istream {
 public:
  FaultInjectingIStream(std::istream* target, std::string failpoint)
      : std::istream(nullptr), buf_(target->rdbuf(), std::move(failpoint)) {
    rdbuf(&buf_);
  }
  const FaultInjectingStreambuf& buf() const { return buf_; }

 private:
  FaultInjectingStreambuf buf_;
};

}  // namespace lake

#endif  // LAKE_UTIL_FAILPOINT_H_
