#include "search/join_containment.h"

#include "text/normalizer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

LshEnsembleJoinSearch::LshEnsembleJoinSearch(const DataLakeCatalog* catalog,
                                             Options options)
    : catalog_(catalog),
      options_(options),
      ensemble_(LshEnsemble::Options{options.num_hashes,
                                     options.num_partitions}) {
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (!options_.include_numeric && col.IsNumeric()) return;
    std::vector<std::string> values;
    for (const std::string& v : col.DistinctStrings()) {
      const std::string norm = NormalizeValue(v);
      if (!norm.empty()) values.push_back(norm);
    }
    if (values.size() < options_.min_distinct) return;
    refs_.push_back(ref);
    signatures_.push_back(
        MinHashSignature::Build(values, options_.num_hashes));
    cardinalities_.push_back(values.size());
    if (options_.store_exact_sets) {
      exact_sets_.push_back(HashedSet::FromValues(values));
    }
  });
  for (size_t i = 0; i < refs_.size(); ++i) {
    LAKE_CHECK(
        ensemble_.Add(i, signatures_[i], cardinalities_[i]).ok());
  }
  LAKE_CHECK(ensemble_.Build().ok());
}

Result<std::vector<size_t>> LshEnsembleJoinSearch::Candidates(
    const std::vector<std::string>& query_values, double threshold) const {
  std::vector<std::string> norm;
  norm.reserve(query_values.size());
  for (const std::string& v : query_values) {
    std::string nv = NormalizeValue(v);
    if (!nv.empty()) norm.push_back(std::move(nv));
  }
  const MinHashSignature sig =
      MinHashSignature::Build(norm, options_.num_hashes);
  const HashedSet qset = HashedSet::FromValues(norm);
  LAKE_ASSIGN_OR_RETURN(std::vector<uint64_t> ids,
                        ensemble_.Query(sig, qset.size(), threshold));
  return std::vector<size_t>(ids.begin(), ids.end());
}

Result<std::vector<ColumnResult>> LshEnsembleJoinSearch::Search(
    const std::vector<std::string>& query_values, double threshold,
    size_t k, const CancelToken* cancel) const {
  std::vector<std::string> norm;
  norm.reserve(query_values.size());
  for (const std::string& v : query_values) {
    std::string nv = NormalizeValue(v);
    if (!nv.empty()) norm.push_back(std::move(nv));
  }
  const MinHashSignature sig =
      MinHashSignature::Build(norm, options_.num_hashes);
  const HashedSet qset = HashedSet::FromValues(norm);
  LAKE_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                        ensemble_.Query(sig, qset.size(), threshold));

  TopK<std::pair<size_t, double>> heap(k);
  size_t ranked = 0;
  for (uint64_t cand : candidates) {
    if (cancel != nullptr && ShouldCheck(ranked++, 256)) {
      LAKE_RETURN_IF_ERROR(cancel->Check());
    }
    const size_t i = static_cast<size_t>(cand);
    double c;
    if (options_.store_exact_sets) {
      c = qset.ContainmentIn(exact_sets_[i]);
    } else {
      auto est = sig.EstimateContainment(signatures_[i], qset.size(),
                                         cardinalities_[i]);
      if (!est.ok()) continue;
      c = est.value();
    }
    if (c >= threshold) heap.Push(c, {i, c});
  }
  std::vector<ColumnResult> out;
  for (auto& [score, entry] : heap.Take()) {
    out.push_back(ColumnResult{
        refs_[entry.first], entry.second,
        StrFormat("lsh-ensemble containment=%.3f", entry.second)});
  }
  return out;
}

}  // namespace lake
