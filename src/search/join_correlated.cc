#include "search/join_correlated.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/normalizer.h"
#include "util/hash.h"
#include "util/top_k.h"

namespace lake {

namespace {
constexpr uint64_t kKeySeed = 0xc0441;

std::vector<std::string> NormalizedRowKeys(const Column& col) {
  std::vector<std::string> out;
  out.reserve(col.size());
  for (const Value& v : col.cells()) {
    out.push_back(v.is_null() ? "" : NormalizeValue(v.ToString()));
  }
  return out;
}
}  // namespace

CorrelatedJoinSearch::CorrelatedJoinSearch(const DataLakeCatalog* catalog,
                                           Options options)
    : catalog_(catalog), options_(options) {
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    // Key candidates: non-numeric, key-like uniqueness. Numeric partners:
    // any numeric column.
    for (uint32_t kc = 0; kc < table.num_columns(); ++kc) {
      const Column& key_col = table.column(kc);
      if (key_col.IsNumeric()) continue;
      const ColumnStats& ks = catalog_->stats(ColumnRef{t, kc});
      if (ks.Uniqueness() < options_.min_key_uniqueness) continue;
      const std::vector<std::string> keys = NormalizedRowKeys(key_col);
      for (uint32_t nc = 0; nc < table.num_columns(); ++nc) {
        if (nc == kc) continue;
        const Column& num_col = table.column(nc);
        if (!num_col.IsNumeric()) continue;
        CorrelationSketch sketch(options_.sketch_size);
        for (size_t r = 0; r < table.num_rows(); ++r) {
          if (keys[r].empty()) continue;
          double x;
          if (!num_col.cell(r).ToDouble(&x)) continue;
          sketch.Update(Hash64(keys[r], kKeySeed), x);
        }
        if (sketch.size() < 3) continue;
        const uint32_t idx = static_cast<uint32_t>(sketches_.size());
        pairs_.push_back(PairInfo{t, kc, nc});
        for (const auto& e : sketch.entries()) {
          key_postings_[e.key_hash].push_back(idx);
        }
        sketches_.push_back(std::move(sketch));
      }
    }
  }
}

Result<std::vector<CorrelatedJoinSearch::CorrelatedResult>>
CorrelatedJoinSearch::Search(const std::vector<std::string>& key_values,
                             const std::vector<double>& numeric_values,
                             size_t k) const {
  if (key_values.size() != numeric_values.size()) {
    return Status::InvalidArgument("key/value length mismatch");
  }
  CorrelationSketch query(options_.sketch_size);
  for (size_t i = 0; i < key_values.size(); ++i) {
    const std::string norm = NormalizeValue(key_values[i]);
    if (norm.empty()) continue;
    query.Update(Hash64(norm, kKeySeed), numeric_values[i]);
  }
  if (query.size() < 3) {
    return Status::InvalidArgument("query too small to sketch");
  }

  // Shortlist sketches sharing at least one sampled key with the query.
  std::unordered_set<uint32_t> candidates;
  for (const auto& e : query.entries()) {
    auto it = key_postings_.find(e.key_hash);
    if (it == key_postings_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }

  TopK<CorrelatedResult> heap(k);
  for (uint32_t idx : candidates) {
    const CorrelationSketch& cand = sketches_[idx];
    const double containment = query.EstimateKeyContainment(cand);
    if (containment < options_.min_containment) continue;
    Result<double> corr = options_.use_qcr ? query.EstimateQcr(cand)
                                           : query.EstimatePearson(cand);
    if (!corr.ok()) continue;
    CorrelatedResult r;
    r.table_id = pairs_[idx].table_id;
    r.key_column = pairs_[idx].key_column;
    r.numeric_column = pairs_[idx].numeric_column;
    r.est_containment = containment;
    r.est_correlation = corr.value();
    r.score = std::abs(corr.value());
    heap.Push(r.score, std::move(r));
  }
  std::vector<CorrelatedResult> out;
  for (auto& [score, r] : heap.Take()) out.push_back(std::move(r));
  return out;
}

}  // namespace lake
