#include "search/discovery_engine.h"

namespace lake {

DiscoveryEngine::DiscoveryEngine(const DataLakeCatalog* catalog,
                                 const KnowledgeBase* kb, Options options)
    : catalog_(catalog),
      options_(options),
      words_(WordEmbedding::Options{.dim = options.embedding_dim}),
      column_encoder_(&words_),
      contextual_encoder_(&column_encoder_),
      table_encoder_(&column_encoder_, &words_) {
  if (kb != nullptr) kb_ = *kb;
  if (options_.synthesize_kb) {
    KbSynthesizer().AugmentInPlace(*catalog_, &kb_);
  }

  if (options_.build_keyword) {
    keyword_ = std::make_unique<KeywordSearchEngine>(catalog_);
  }
  if (options_.build_exact_join) {
    exact_join_ = std::make_unique<ExactSetJoinSearch>(catalog_);
  }
  if (options_.build_lsh_join) {
    lsh_join_ = std::make_unique<LshEnsembleJoinSearch>(catalog_);
  }
  if (options_.build_josie && !options_.defer_index_build) {
    josie_ = std::make_unique<JosieJoinSearch>(catalog_);
  }
  if (options_.build_approx) {
    approx_join_ = std::make_unique<approx::ApproxJoinSearch>(catalog_);
  }
  if (options_.build_pexeso) {
    pexeso_ = std::make_unique<PexesoJoinSearch>(catalog_, &words_);
  }
  if (options_.build_mate) {
    mate_ = std::make_unique<MateJoinSearch>(catalog_);
  }
  if (options_.build_correlated) {
    correlated_ = std::make_unique<CorrelatedJoinSearch>(catalog_);
  }
  if (options_.build_tus) {
    tus_ = std::make_unique<TusUnionSearch>(catalog_, &column_encoder_, &kb_);
  }
  if (options_.build_santos) {
    santos_ = std::make_unique<SantosUnionSearch>(catalog_, &kb_);
  }
  if (options_.build_starmie && !options_.defer_index_build) {
    starmie_ =
        std::make_unique<StarmieUnionSearch>(catalog_, &contextual_encoder_);
  }
  if (options_.build_d3l) {
    d3l_ = std::make_unique<D3lUnionSearch>(catalog_, &column_encoder_);
  }
  if (options_.train_annotator) {
    // Distant supervision: lake columns the KB grounds confidently become
    // labeled examples, so arbitrary query columns can be annotated at
    // query time without hand labels.
    std::vector<LabeledColumn> examples;
    for (TableId t : catalog_->AllTables()) {
      const Table& table = catalog_->table(t);
      for (size_t col = 0; col < table.num_columns(); ++col) {
        if (table.column(col).IsNumeric()) continue;
        auto vote = kb_.ColumnType(table.column(col).DistinctStrings());
        if (!vote.ok() ||
            vote.value().coverage < options_.annotator_min_coverage) {
          continue;
        }
        examples.push_back(LabeledColumn{&table, col, vote.value().type});
      }
    }
    auto detector = std::make_unique<SemanticTypeDetector>(&words_);
    if (!examples.empty() && detector->Train(examples).ok()) {
      annotator_ = std::move(detector);
    }
  }
}

Status DiscoveryEngine::SaveIndexSections(
    store::SnapshotWriter* snapshot) const {
  if (josie_ != nullptr) {
    LAKE_RETURN_IF_ERROR(snapshot->AddSection(
        kJosieSection,
        [&](BinaryWriter* w) { return josie_->SaveSnapshot(w->stream()); }));
  }
  if (starmie_ != nullptr) {
    LAKE_RETURN_IF_ERROR(snapshot->AddSection(
        kStarmieSection,
        [&](BinaryWriter* w) { return starmie_->SaveSnapshot(w->stream()); }));
  }
  return Status::OK();
}

std::vector<std::string> DiscoveryEngine::PendingIndexSections() const {
  std::vector<std::string> pending;
  if (options_.build_josie && josie_ == nullptr) {
    pending.push_back(kJosieSection);
  }
  if (options_.build_starmie && starmie_ == nullptr) {
    pending.push_back(kStarmieSection);
  }
  return pending;
}

Status DiscoveryEngine::LoadIndexSection(const std::string& name,
                                         const std::string& payload) {
  if (name == kJosieSection) {
    LAKE_ASSIGN_OR_RETURN(std::unique_ptr<JosieJoinSearch> loaded,
                          JosieJoinSearch::FromSnapshot(catalog_, payload));
    josie_ = std::move(loaded);
    return Status::OK();
  }
  if (name == kStarmieSection) {
    LAKE_ASSIGN_OR_RETURN(
        std::unique_ptr<StarmieUnionSearch> loaded,
        StarmieUnionSearch::FromSnapshot(catalog_, &contextual_encoder_,
                                         payload));
    starmie_ = std::move(loaded);
    return Status::OK();
  }
  return Status::NotFound("unknown index section: " + name);
}

Result<DiscoveryEngine::AutoJoinResult> DiscoveryEngine::JoinableAuto(
    const std::vector<std::string>& query_values, size_t k) const {
  // Cheap statistics-driven plan selection. Thresholds are deliberately
  // coarse: the point is the *mechanism* (adapting the access method to
  // the data distribution), which §3 calls out as an open direction.
  const size_t lake_columns = catalog_->num_columns();
  JoinMethod method;
  if (exact_join_ != nullptr && lake_columns <= 2048) {
    method = JoinMethod::kExactContainment;  // scans win on small lakes
  } else if (josie_ != nullptr) {
    method = JoinMethod::kJosie;  // exact, with filter pruning
  } else if (lsh_join_ != nullptr) {
    method = JoinMethod::kLshEnsemble;  // sketches at scale
  } else if (exact_join_ != nullptr) {
    method = JoinMethod::kExactContainment;
  } else {
    return Status::FailedPrecondition("no joinable-search engine built");
  }
  LAKE_ASSIGN_OR_RETURN(std::vector<ColumnResult> results,
                        Joinable(query_values, method, k));
  return AutoJoinResult{method, std::move(results)};
}

Result<TypeAnnotation> DiscoveryEngine::AnnotateValues(
    const std::vector<std::string>& values) const {
  if (annotator_ == nullptr) {
    return Status::FailedPrecondition(
        "annotator unavailable (train_annotator off, or the KB grounds "
        "fewer than two types in this lake)");
  }
  Column column("query", DataType::kString);
  for (const std::string& v : values) {
    if (!v.empty()) column.Append(Value(v));
  }
  return annotator_->Annotate(column);
}

std::vector<TableResult> DiscoveryEngine::Keyword(const std::string& query,
                                                  size_t k) const {
  if (keyword_ == nullptr) return {};
  return keyword_->Search(query, k);
}

std::vector<TableResult> DiscoveryEngine::Keyword(
    const std::string& query, size_t k,
    const Bm25Index::CorpusStats* stats) const {
  if (keyword_ == nullptr) return {};
  return keyword_->Search(query, k, stats);
}

Bm25Index::CorpusStats DiscoveryEngine::KeywordStats(
    const std::string& query) const {
  if (keyword_ == nullptr) return {};
  return keyword_->GatherStats(query);
}

Result<std::vector<ColumnResult>> DiscoveryEngine::Joinable(
    const std::vector<std::string>& query_values, JoinMethod method, size_t k,
    const CancelToken* cancel, double error_budget,
    approx::ApproxQueryStats* approx_stats) const {
  if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
  switch (method) {
    case JoinMethod::kExactJaccard:
      if (exact_join_ == nullptr) {
        return Status::FailedPrecondition("exact join index not built");
      }
      return exact_join_->TopKByJaccard(query_values, k);
    case JoinMethod::kExactContainment:
      if (exact_join_ == nullptr) {
        return Status::FailedPrecondition("exact join index not built");
      }
      return exact_join_->TopKByContainment(query_values, k);
    case JoinMethod::kLshEnsemble:
      if (lsh_join_ == nullptr) {
        return Status::FailedPrecondition("LSH ensemble index not built");
      }
      return lsh_join_->Search(query_values, /*threshold=*/0.5, k, cancel);
    case JoinMethod::kJosie:
      if (josie_ == nullptr) {
        return Status::FailedPrecondition("JOSIE index not built");
      }
      return josie_->Search(query_values, k, /*stats=*/nullptr, cancel);
    case JoinMethod::kPexeso:
      if (pexeso_ == nullptr) {
        return Status::FailedPrecondition("PEXESO index not built");
      }
      return pexeso_->Search(query_values, k);
    case JoinMethod::kApprox:
      if (approx_join_ == nullptr) {
        return Status::FailedPrecondition("approx sample index not built");
      }
      return approx_join_->Search(query_values, k, error_budget, approx_stats,
                                  cancel);
  }
  return Status::InvalidArgument("unknown join method");
}

Result<std::vector<TableResult>> DiscoveryEngine::Unionable(
    const Table& query, UnionMethod method, size_t k, int64_t exclude,
    const CancelToken* cancel) const {
  if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
  switch (method) {
    case UnionMethod::kTus:
      if (tus_ == nullptr) {
        return Status::FailedPrecondition("TUS engine not built");
      }
      return tus_->Search(query, k, exclude);
    case UnionMethod::kSantos:
      if (santos_ == nullptr) {
        return Status::FailedPrecondition("SANTOS engine not built");
      }
      return santos_->Search(query, k, exclude);
    case UnionMethod::kStarmie:
      if (starmie_ == nullptr) {
        return Status::FailedPrecondition("Starmie engine not built");
      }
      return starmie_->Search(query, k, exclude, cancel);
    case UnionMethod::kD3l:
      if (d3l_ == nullptr) {
        return Status::FailedPrecondition("D3L engine not built");
      }
      return d3l_->Search(query, k, exclude);
  }
  return Status::InvalidArgument("unknown union method");
}

}  // namespace lake
