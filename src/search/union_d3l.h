#ifndef LAKE_SEARCH_UNION_D3L_H_
#define LAKE_SEARCH_UNION_D3L_H_

#include <string>
#include <vector>

#include "embed/column_encoder.h"
#include "search/query.h"
#include "sketch/set_ops.h"
#include "table/catalog.h"

namespace lake {

/// D3L-style related-table discovery (Bogatu et al., ICDE 2020 — "Dataset
/// Discovery in Data Lakes", the survey's example of finding joinable and
/// unionable tables simultaneously with five evidence types).
///
/// Column-pair relatedness is the mean of five independent similarity
/// signals, each in [0, 1]:
///   1. attribute *names* — q-gram set overlap of normalized headers;
///   2. attribute *values* — exact value-set Jaccard;
///   3. value *formats* — Jaccard of character-shape patterns (digits ->
///      'd', letters -> 'a', other kept), D3L's formatting metric;
///   4. word *embeddings* — cosine of mean value embeddings;
///   5. numeric *distributions* — overlap of value ranges with closeness
///      of means/variances (numeric columns only; the first four apply to
///      string columns only, mirroring D3L's split).
/// Table relatedness aggregates column-pair scores with max-weight
/// bipartite matching normalized by the query's column count.
class D3lUnionSearch {
 public:
  struct Options {
    /// Column pairs scoring below this contribute nothing.
    double min_attribute_score = 0.25;
    /// Distinct values sampled per column.
    size_t max_values = 256;
    size_t qgram = 3;
    /// Per-signal toggles (ablation studies).
    bool use_names = true;
    bool use_values = true;
    bool use_formats = true;
    bool use_embeddings = true;
    bool use_numeric = true;
  };

  D3lUnionSearch(const DataLakeCatalog* catalog, const ColumnEncoder* encoder)
      : D3lUnionSearch(catalog, encoder, Options{}) {}
  D3lUnionSearch(const DataLakeCatalog* catalog, const ColumnEncoder* encoder,
                 Options options);

  /// Top-k related tables for a query table. `exclude` drops a self-match.
  Result<std::vector<TableResult>> Search(const Table& query, size_t k,
                                          int64_t exclude = -1) const;

  /// Aggregated relatedness of one candidate (diagnostics, tests).
  double ScoreTable(const Table& query, TableId candidate) const;

  /// The five-signal evidence vector for a (query column, lake column)
  /// pair; entries for inapplicable signals are -1 (exposed for tests and
  /// the E6 ablation).
  struct Evidence {
    double name = -1;
    double values = -1;
    double format = -1;
    double embedding = -1;
    double numeric = -1;

    /// Mean of applicable signals (0 when none apply).
    double Mean() const;
  };

 private:
  struct ColumnProfile {
    bool numeric = false;
    std::string name;          // normalized attribute name
    HashedSet values;          // normalized distinct values (string cols)
    HashedSet formats;         // character-shape patterns
    Vector embedding;
    // Numeric distribution summary.
    double mean = 0, stddev = 0, min = 0, max = 0;
  };

  ColumnProfile Profile(const Column& column) const;
  Evidence Compare(const ColumnProfile& q, const ColumnProfile& c) const;
  double ScorePrepared(const std::vector<ColumnProfile>& q, TableId t) const;

  const DataLakeCatalog* catalog_;
  const ColumnEncoder* encoder_;
  Options options_;
  std::vector<ColumnProfile> columns_;
  std::vector<std::vector<uint32_t>> table_columns_;
};

/// Character-shape pattern of a value: runs of digits -> "d", letters ->
/// "a", spaces -> "_", everything else kept verbatim ("2021-04-01" ->
/// "d-d-d"). Exposed for tests.
std::string ValueFormatPattern(const std::string& value);

}  // namespace lake

#endif  // LAKE_SEARCH_UNION_D3L_H_
