#include "search/keyword_search.h"

#include "text/normalizer.h"
#include "text/tokenizer.h"

namespace lake {

KeywordSearchEngine::KeywordSearchEngine(const DataLakeCatalog* catalog,
                                         Options options)
    : catalog_(catalog), options_(options), index_(options.bm25) {
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    std::vector<std::string> tokens;

    auto add_text = [&tokens](const std::string& text) {
      for (std::string& tok : TokenizeWordsNoStopwords(text)) {
        tokens.push_back(std::move(tok));
      }
    };
    add_text(table.name());
    add_text(table.metadata().description);
    for (const std::string& tag : table.metadata().tags) add_text(tag);
    for (size_t c = 0; c < table.num_columns(); ++c) {
      add_text(NormalizeAttributeName(table.column(c).name()));
    }
    if (options_.index_values) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        size_t used = 0;
        for (const std::string& v : table.column(c).DistinctStrings()) {
          if (used >= options_.values_per_column) break;
          add_text(v);
          ++used;
        }
      }
    }
    index_.AddDocument(t, tokens);
  }
}

std::vector<TableResult> KeywordSearchEngine::Search(const std::string& query,
                                                     size_t k) const {
  return Search(query, k, nullptr);
}

std::vector<TableResult> KeywordSearchEngine::Search(
    const std::string& query, size_t k,
    const Bm25Index::CorpusStats* stats) const {
  std::vector<TableResult> out;
  for (const auto& [id, score] :
       index_.Search(TokenizeWordsNoStopwords(query), k, stats)) {
    out.push_back(TableResult{static_cast<TableId>(id), score,
                              "bm25 metadata match"});
  }
  return out;
}

Bm25Index::CorpusStats KeywordSearchEngine::GatherStats(
    const std::string& query) const {
  return index_.GatherStats(TokenizeWordsNoStopwords(query));
}

}  // namespace lake
