#include "search/bm25.h"

#include <algorithm>
#include <cmath>

#include "util/top_k.h"

namespace lake {

namespace {

/// Deduplicate query terms; repeated query terms add no evidence for
/// metadata-scale documents. Sorted order also fixes the floating-point
/// accumulation order, so two indexes scoring with the same CorpusStats
/// produce bit-identical sums.
std::vector<std::string> CanonicalTerms(
    const std::vector<std::string>& query_tokens) {
  std::vector<std::string> terms = query_tokens;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

}  // namespace

void Bm25Index::CorpusStats::Merge(const CorpusStats& other) {
  num_docs += other.num_docs;
  total_length += other.total_length;
  for (const auto& [term, df] : other.doc_freq) doc_freq[term] += df;
}

void Bm25Index::AddDocument(uint64_t id,
                            const std::vector<std::string>& tokens) {
  const uint32_t doc_index = static_cast<uint32_t>(doc_ids_.size());
  doc_ids_.push_back(id);
  doc_lengths_.push_back(static_cast<uint32_t>(tokens.size()));
  total_length_ += tokens.size();

  std::unordered_map<std::string, uint32_t> tf;
  for (const std::string& t : tokens) ++tf[t];
  for (const auto& [term, count] : tf) {
    postings_[term].push_back(Posting{doc_index, count});
  }
}

Bm25Index::CorpusStats Bm25Index::GatherStats(
    const std::vector<std::string>& query_tokens) const {
  CorpusStats stats;
  stats.num_docs = doc_lengths_.size();
  stats.total_length = total_length_;
  for (const std::string& term : CanonicalTerms(query_tokens)) {
    auto it = postings_.find(term);
    if (it != postings_.end()) stats.doc_freq[term] = it->second.size();
  }
  return stats;
}

std::vector<std::pair<uint64_t, double>> Bm25Index::Search(
    const std::vector<std::string>& query_tokens, size_t k) const {
  return Search(query_tokens, k, nullptr);
}

std::vector<std::pair<uint64_t, double>> Bm25Index::Search(
    const std::vector<std::string>& query_tokens, size_t k,
    const CorpusStats* stats) const {
  const uint64_t n =
      stats != nullptr ? stats->num_docs : doc_lengths_.size();
  if (n == 0 || doc_lengths_.empty() || k == 0) return {};
  const uint64_t corpus_length =
      stats != nullptr ? stats->total_length : total_length_;
  const double avg_len =
      static_cast<double>(corpus_length) / static_cast<double>(n);

  const std::vector<std::string> terms = CanonicalTerms(query_tokens);

  std::unordered_map<uint32_t, double> scores;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    double df = static_cast<double>(it->second.size());
    if (stats != nullptr) {
      auto global = stats->doc_freq.find(term);
      df = global != stats->doc_freq.end()
               ? static_cast<double>(global->second)
               : 0.0;
      if (df == 0.0) continue;
    }
    const double idf =
        std::log(1.0 + (static_cast<double>(n) - df + 0.5) / (df + 0.5));
    for (const Posting& p : it->second) {
      const double tf = p.term_frequency;
      const double len_norm =
          1.0 - params_.b +
          params_.b * doc_lengths_[p.doc_index] / avg_len;
      scores[p.doc_index] +=
          idf * tf * (params_.k1 + 1.0) / (tf + params_.k1 * len_norm);
    }
  }

  TopK<uint32_t> heap(k);
  for (const auto& [doc, score] : scores) heap.Push(score, doc);
  std::vector<std::pair<uint64_t, double>> out;
  for (auto& [score, doc] : heap.Take()) {
    out.emplace_back(doc_ids_[doc], score);
  }
  return out;
}

}  // namespace lake
