#include "search/bm25.h"

#include <algorithm>
#include <cmath>

#include "util/top_k.h"

namespace lake {

void Bm25Index::AddDocument(uint64_t id,
                            const std::vector<std::string>& tokens) {
  const uint32_t doc_index = static_cast<uint32_t>(doc_ids_.size());
  doc_ids_.push_back(id);
  doc_lengths_.push_back(static_cast<uint32_t>(tokens.size()));
  total_length_ += tokens.size();

  std::unordered_map<std::string, uint32_t> tf;
  for (const std::string& t : tokens) ++tf[t];
  for (const auto& [term, count] : tf) {
    postings_[term].push_back(Posting{doc_index, count});
  }
}

std::vector<std::pair<uint64_t, double>> Bm25Index::Search(
    const std::vector<std::string>& query_tokens, size_t k) const {
  const size_t n = doc_lengths_.size();
  if (n == 0 || k == 0) return {};
  const double avg_len =
      static_cast<double>(total_length_) / static_cast<double>(n);

  // Deduplicate query terms; repeated query terms add no evidence for
  // metadata-scale documents.
  std::vector<std::string> terms = query_tokens;
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  std::unordered_map<uint32_t, double> scores;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double df = static_cast<double>(it->second.size());
    const double idf =
        std::log(1.0 + (static_cast<double>(n) - df + 0.5) / (df + 0.5));
    for (const Posting& p : it->second) {
      const double tf = p.term_frequency;
      const double len_norm =
          1.0 - params_.b +
          params_.b * doc_lengths_[p.doc_index] / avg_len;
      scores[p.doc_index] +=
          idf * tf * (params_.k1 + 1.0) / (tf + params_.k1 * len_norm);
    }
  }

  TopK<uint32_t> heap(k);
  for (const auto& [doc, score] : scores) heap.Push(score, doc);
  std::vector<std::pair<uint64_t, double>> out;
  for (auto& [score, doc] : heap.Take()) {
    out.emplace_back(doc_ids_[doc], score);
  }
  return out;
}

}  // namespace lake
