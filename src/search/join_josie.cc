#include "search/join_josie.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace lake {

JosieJoinSearch::JosieJoinSearch(const DataLakeCatalog* catalog,
                                 Options options)
    : catalog_(catalog), options_(options) {
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (!options_.include_numeric && col.IsNumeric()) return;
    const std::vector<std::string> values = col.DistinctStrings();
    if (values.size() < options_.min_distinct) return;
    const uint64_t dense_id = refs_.size();
    refs_.push_back(ref);
    LAKE_CHECK(index_.AddSet(dense_id, values).ok());
  });
  LAKE_CHECK(index_.Build().ok());
}

Result<std::vector<ColumnResult>> JosieJoinSearch::Search(
    const std::vector<std::string>& query_values, size_t k,
    JosieIndex::QueryStats* stats, const CancelToken* cancel) const {
  LAKE_ASSIGN_OR_RETURN(std::vector<JosieIndex::Hit> hits,
                        index_.TopK(query_values, k, stats, cancel));
  std::vector<ColumnResult> out;
  out.reserve(hits.size());
  for (const JosieIndex::Hit& h : hits) {
    out.push_back(ColumnResult{refs_[h.id], static_cast<double>(h.overlap),
                               StrFormat("exact overlap=%u", h.overlap)});
  }
  return out;
}

}  // namespace lake
