#include "search/join_josie.h"

#include <sstream>

#include "util/logging.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace lake {

JosieJoinSearch::JosieJoinSearch(const DataLakeCatalog* catalog,
                                 Options options)
    : catalog_(catalog), options_(options) {
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (!options_.include_numeric && col.IsNumeric()) return;
    const std::vector<std::string> values = col.DistinctStrings();
    if (values.size() < options_.min_distinct) return;
    const uint64_t dense_id = refs_.size();
    refs_.push_back(ref);
    LAKE_CHECK(index_.AddSet(dense_id, values).ok());
  });
  LAKE_CHECK(index_.Build().ok());
}

Status JosieJoinSearch::SaveSnapshot(std::ostream* out) const {
  BinaryWriter w(out);
  w.WriteVarint(refs_.size());
  for (const ColumnRef& ref : refs_) {
    w.WriteVarint(ref.table_id);
    w.WriteVarint(ref.column_index);
  }
  if (!w.ok()) return Status::IoError("josie snapshot write failed");
  return index_.Save(out);
}

Result<std::unique_ptr<JosieJoinSearch>> JosieJoinSearch::FromSnapshot(
    const DataLakeCatalog* catalog, const std::string& payload,
    Options options) {
  std::istringstream in(payload);
  BinaryReader r(&in);
  auto search = std::unique_ptr<JosieJoinSearch>(
      new JosieJoinSearch(catalog, options, DeferBuildTag{}));
  LAKE_ASSIGN_OR_RETURN(uint64_t num_refs, r.ReadVarint());
  search->refs_.reserve(num_refs);
  for (uint64_t i = 0; i < num_refs; ++i) {
    ColumnRef ref;
    LAKE_ASSIGN_OR_RETURN(uint64_t table_id, r.ReadVarint());
    LAKE_ASSIGN_OR_RETURN(uint64_t column, r.ReadVarint());
    if (table_id >= catalog->num_tables() ||
        column >= catalog->table(static_cast<TableId>(table_id)).num_columns()) {
      return Status::IoError("josie snapshot references a column outside "
                             "this catalog (stale snapshot?)");
    }
    ref.table_id = static_cast<TableId>(table_id);
    ref.column_index = static_cast<uint32_t>(column);
    search->refs_.push_back(ref);
  }
  LAKE_RETURN_IF_ERROR(search->index_.Load(&in));
  if (search->index_.num_sets() != search->refs_.size()) {
    return Status::IoError("josie snapshot index/mapping size mismatch");
  }
  return search;
}

Result<std::vector<ColumnResult>> JosieJoinSearch::Search(
    const std::vector<std::string>& query_values, size_t k,
    JosieIndex::QueryStats* stats, const CancelToken* cancel) const {
  LAKE_ASSIGN_OR_RETURN(std::vector<JosieIndex::Hit> hits,
                        index_.TopK(query_values, k, stats, cancel));
  std::vector<ColumnResult> out;
  out.reserve(hits.size());
  for (const JosieIndex::Hit& h : hits) {
    out.push_back(ColumnResult{refs_[h.id], static_cast<double>(h.overlap),
                               StrFormat("exact overlap=%u", h.overlap)});
  }
  return out;
}

}  // namespace lake
