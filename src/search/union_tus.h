#ifndef LAKE_SEARCH_UNION_TUS_H_
#define LAKE_SEARCH_UNION_TUS_H_

#include <string>
#include <vector>

#include "annotate/knowledge_base.h"
#include "embed/column_encoder.h"
#include "index/hyperplane_lsh.h"
#include "search/query.h"
#include "sketch/set_ops.h"
#include "table/catalog.h"

namespace lake {

/// Table Union Search (Nargesian et al., VLDB 2018): a lake table is
/// unionable with the query when its attributes are pairwise unionable
/// with the query's attributes, i.e. drawn from the same domains.
///
/// Attribute unionability is an ensemble of three signals, exactly the
/// paper's taxonomy:
///   - *set* (syntactic): value-set overlap (Jaccard);
///   - *sem* (ontology): both columns ground to the same KB type, scored
///     by the weaker coverage;
///   - *nl* (natural language): cosine of mean value embeddings.
/// The attribute score is the max of the enabled signals (the paper's
/// ensemble picks the most confident measure per pair); the table score
/// aggregates attribute scores with max-weight bipartite matching and
/// normalizes by the query's column count (c-alignment).
///
/// Candidate generation mirrors the paper's LSH usage: lake column
/// embeddings live in a random-hyperplane LSH; tables owning a colliding
/// column are scored fully. `exhaustive = true` scores every table
/// (ground-truth mode for benchmarks).
class TusUnionSearch {
 public:
  struct Options {
    bool use_set_measure = true;
    bool use_semantic_measure = true;
    bool use_nl_measure = true;
    /// Attribute pairs scoring below this contribute nothing.
    double min_attribute_score = 0.3;
    /// Values sampled per column for set/sem measures.
    size_t max_values = 256;
    bool exhaustive = false;
    HyperplaneLsh::Options lsh;
  };

  /// `kb` may be null (disables the semantic measure).
  TusUnionSearch(const DataLakeCatalog* catalog, const ColumnEncoder* encoder,
                 const KnowledgeBase* kb)
      : TusUnionSearch(catalog, encoder, kb, Options{}) {}
  TusUnionSearch(const DataLakeCatalog* catalog, const ColumnEncoder* encoder,
                 const KnowledgeBase* kb, Options options);

  /// Top-k unionable tables for a query table (which need not be in the
  /// catalog; if it is, pass its id via `exclude` to drop self-matches).
  Result<std::vector<TableResult>> Search(const Table& query, size_t k,
                                          int64_t exclude = -1) const;

  /// Unionability score of one candidate table (diagnostics, tests).
  double ScoreTable(const Table& query, TableId candidate) const;

 private:
  struct ColumnInfo {
    ColumnRef ref;
    HashedSet set;
    Vector embedding;
    std::string kb_type;     // "" when ungrounded
    double kb_coverage = 0;
  };

  struct QueryColumn {
    HashedSet set;
    Vector embedding;
    std::string kb_type;
    double kb_coverage = 0;
  };

  std::vector<QueryColumn> PrepareQuery(const Table& query) const;
  double AttributeScore(const QueryColumn& q, const ColumnInfo& c) const;
  double ScorePrepared(const std::vector<QueryColumn>& q, TableId t) const;

  const DataLakeCatalog* catalog_;
  const ColumnEncoder* encoder_;
  const KnowledgeBase* kb_;
  Options options_;
  std::vector<ColumnInfo> columns_;
  std::vector<std::vector<uint32_t>> table_columns_;  // table -> column idx
  HyperplaneLsh lsh_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_UNION_TUS_H_
