#ifndef LAKE_SEARCH_QUERY_H_
#define LAKE_SEARCH_QUERY_H_

#include <string>
#include <vector>

#include "table/catalog.h"

namespace lake {

/// A ranked table result. `score` semantics depend on the search flavor
/// (BM25, overlap, containment, unionability, ...); `why` is a short
/// human-readable provenance string discovery UIs surface to users.
struct TableResult {
  TableId table_id = 0;
  double score = 0;
  std::string why;
};

/// A ranked column result (joinable search returns columns: the specific
/// attribute to join on, not just the table).
struct ColumnResult {
  ColumnRef column;
  double score = 0;
  std::string why;
};

/// Deduplicates column results by table, keeping each table's best column;
/// preserves descending-score order. Joinable search uses it to present
/// table-level answers.
std::vector<TableResult> BestPerTable(const std::vector<ColumnResult>& columns);

/// Precision@k of `results` against a ground-truth set of relevant tables.
double PrecisionAtK(const std::vector<TableResult>& results,
                    const std::vector<TableId>& relevant, size_t k);

/// Recall@k.
double RecallAtK(const std::vector<TableResult>& results,
                 const std::vector<TableId>& relevant, size_t k);

/// Mean average precision at k.
double AveragePrecisionAtK(const std::vector<TableResult>& results,
                           const std::vector<TableId>& relevant, size_t k);

}  // namespace lake

#endif  // LAKE_SEARCH_QUERY_H_
