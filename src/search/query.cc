#include "search/query.h"

#include <algorithm>
#include <unordered_set>

namespace lake {

std::vector<TableResult> BestPerTable(
    const std::vector<ColumnResult>& columns) {
  std::unordered_set<TableId> seen;
  std::vector<TableResult> out;
  for (const ColumnResult& c : columns) {
    if (!seen.insert(c.column.table_id).second) continue;
    out.push_back(TableResult{c.column.table_id, c.score, c.why});
  }
  return out;
}

namespace {
std::unordered_set<TableId> ToSet(const std::vector<TableId>& v) {
  return {v.begin(), v.end()};
}
}  // namespace

double PrecisionAtK(const std::vector<TableResult>& results,
                    const std::vector<TableId>& relevant, size_t k) {
  if (k == 0) return 0.0;
  const auto rel = ToSet(relevant);
  const size_t n = std::min(k, results.size());
  if (n == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rel.count(results[i].table_id)) ++hits;
  }
  return static_cast<double>(hits) / n;  // precision over retrieved results
}

double RecallAtK(const std::vector<TableResult>& results,
                 const std::vector<TableId>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  const auto rel = ToSet(relevant);
  size_t hits = 0;
  for (size_t i = 0; i < results.size() && i < k; ++i) {
    if (rel.count(results[i].table_id)) ++hits;
  }
  return static_cast<double>(hits) / rel.size();
}

double AveragePrecisionAtK(const std::vector<TableResult>& results,
                           const std::vector<TableId>& relevant, size_t k) {
  if (relevant.empty()) return 0.0;
  const auto rel = ToSet(relevant);
  double sum = 0;
  size_t hits = 0;
  for (size_t i = 0; i < results.size() && i < k; ++i) {
    if (rel.count(results[i].table_id)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const size_t denom = std::min(k, rel.size());
  return denom == 0 ? 0.0 : sum / denom;
}

}  // namespace lake
