#include "search/join_mate.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "search/bipartite_matching.h"
#include "text/normalizer.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

namespace {
constexpr uint64_t kValueSeed = 0x3a7e;
}  // namespace

uint64_t MateJoinSearch::CellMask(const std::string& normalized) const {
  uint64_t mask = 0;
  uint64_t h = Hash64(normalized, kValueSeed);
  for (int b = 0; b < options_.bits_per_cell; ++b) {
    mask |= 1ULL << (h & 63);
    h = Mix64(h);
  }
  return mask;
}

MateJoinSearch::MateJoinSearch(const DataLakeCatalog* catalog, Options options)
    : catalog_(catalog), options_(options) {
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    const size_t rows = std::min(table.num_rows(), options_.max_rows_per_table);
    if (rows == 0 || table.num_columns() == 0) continue;
    tables_.push_back(t);
    table_row_offsets_.push_back(static_cast<uint32_t>(row_masks_.size()));
    for (size_t r = 0; r < rows; ++r) {
      const uint32_t global_row = static_cast<uint32_t>(row_masks_.size());
      uint64_t mask = 0;
      std::unordered_set<uint64_t> row_values;
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const Value& cell = table.column(c).cell(r);
        if (cell.is_null()) continue;
        const std::string norm = NormalizeValue(cell.ToString());
        if (norm.empty()) continue;
        mask |= CellMask(norm);
        row_values.insert(Hash64(norm, kValueSeed));
      }
      row_masks_.push_back(mask);
      for (uint64_t vh : row_values) value_rows_[vh].push_back(global_row);
    }
  }
}

Result<std::vector<MateJoinSearch::MultiJoinResult>> MateJoinSearch::Search(
    const Table& query, const std::vector<size_t>& key_columns, size_t k,
    QueryStats* stats) const {
  if (key_columns.empty()) {
    return Status::InvalidArgument("need >= 1 key column");
  }
  for (size_t c : key_columns) {
    if (c >= query.num_columns()) {
      return Status::OutOfRange("key column out of range");
    }
  }
  QueryStats local;

  // Materialize normalized query tuples, skipping incomplete rows.
  std::vector<std::vector<std::string>> tuples;
  for (size_t r = 0; r < query.num_rows(); ++r) {
    std::vector<std::string> tuple;
    tuple.reserve(key_columns.size());
    bool complete = true;
    for (size_t c : key_columns) {
      const Value& cell = query.column(c).cell(r);
      if (cell.is_null()) {
        complete = false;
        break;
      }
      std::string norm = NormalizeValue(cell.ToString());
      if (norm.empty()) {
        complete = false;
        break;
      }
      tuple.push_back(std::move(norm));
    }
    if (complete) tuples.push_back(std::move(tuple));
  }
  if (tuples.empty()) return std::vector<MultiJoinResult>{};

  // Anchor attribute: the key column with the most distinct query values
  // (its posting lists are the most selective on average).
  size_t anchor = 0;
  {
    size_t best_distinct = 0;
    for (size_t a = 0; a < key_columns.size(); ++a) {
      std::unordered_set<std::string> d;
      for (const auto& t : tuples) d.insert(t[a]);
      if (d.size() > best_distinct) {
        best_distinct = d.size();
        anchor = a;
      }
    }
  }

  // Per-table tally: joined tuples and observed column mappings.
  struct Tally {
    size_t joinable = 0;
    std::map<std::vector<int>, size_t> mapping_votes;
  };
  std::unordered_map<uint32_t, Tally> tallies;

  auto table_of_row = [this](uint32_t global_row) -> uint32_t {
    auto it = std::upper_bound(table_row_offsets_.begin(),
                               table_row_offsets_.end(), global_row);
    return static_cast<uint32_t>(it - table_row_offsets_.begin()) - 1;
  };

  for (const std::vector<std::string>& tuple : tuples) {
    uint64_t tuple_mask = 0;
    for (const std::string& v : tuple) tuple_mask |= CellMask(v);

    auto it = value_rows_.find(Hash64(tuple[anchor], kValueSeed));
    if (it == value_rows_.end()) continue;

    // A tuple counts once per table (the first row that joins).
    std::unordered_set<uint32_t> joined_tables;
    for (uint32_t global_row : it->second) {
      ++local.candidate_rows;
      if ((row_masks_[global_row] & tuple_mask) != tuple_mask) continue;
      ++local.superkey_survivors;
      const uint32_t ti = table_of_row(global_row);
      if (joined_tables.count(ti)) continue;
      ++local.verified_rows;

      // Exact verification: injectively assign each query key value to a
      // distinct lake column holding it in this row.
      const Table& table = catalog_->table(tables_[ti]);
      const uint32_t row = global_row - table_row_offsets_[ti];
      std::vector<std::vector<double>> eq(
          tuple.size(), std::vector<double>(table.num_columns(), 0.0));
      for (size_t c = 0; c < table.num_columns(); ++c) {
        const Value& cell = table.column(c).cell(row);
        if (cell.is_null()) continue;
        const std::string norm = NormalizeValue(cell.ToString());
        for (size_t qa = 0; qa < tuple.size(); ++qa) {
          if (tuple[qa] == norm) eq[qa][c] = 1.0;
        }
      }
      const MatchingResult match = MaxWeightBipartiteMatching(eq);
      if (match.total_weight + 1e-9 < static_cast<double>(tuple.size())) {
        continue;  // no injective full assignment: not a composite join row
      }
      joined_tables.insert(ti);
      Tally& tally = tallies[ti];
      ++tally.joinable;
      ++tally.mapping_votes[match.match];
    }
  }

  TopK<MultiJoinResult> heap(k);
  for (const auto& [ti, tally] : tallies) {
    MultiJoinResult r;
    r.table_id = tables_[ti];
    r.joinable_rows = tally.joinable;
    r.score =
        static_cast<double>(tally.joinable) / static_cast<double>(tuples.size());
    size_t best_votes = 0;
    for (const auto& [mapping, votes] : tally.mapping_votes) {
      if (votes > best_votes) {
        best_votes = votes;
        r.column_mapping = mapping;
      }
    }
    heap.Push(r.score, std::move(r));
  }
  std::vector<MultiJoinResult> out;
  for (auto& [score, r] : heap.Take()) out.push_back(std::move(r));
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace lake
