#ifndef LAKE_SEARCH_UNION_STARMIE_H_
#define LAKE_SEARCH_UNION_STARMIE_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "embed/contextual_encoder.h"
#include "index/flat_vector_index.h"
#include "index/hnsw.h"
#include "search/query.h"
#include "table/catalog.h"
#include "util/cancel.h"

namespace lake {

/// Starmie-style union search (Fan et al., 2022): contextualized column
/// embeddings + ANN retrieval + bipartite aggregation.
///
/// Every lake column is embedded *in its table context* (see
/// ContextualColumnEncoder for the LM substitution) and indexed in HNSW.
/// A query column retrieves its nearest lake columns; tables owning hits
/// are verified by computing the full query-columns × candidate-columns
/// cosine matrix and aggregating with max-weight bipartite matching,
/// normalized by the query column count — Starmie's "verification" score.
/// `use_hnsw = false` degrades retrieval to an exact linear scan, the
/// baseline Starmie's efficiency experiments compare against (E7).
class StarmieUnionSearch {
 public:
  struct Options {
    /// ANN neighbors retrieved per query column.
    size_t neighbors_per_column = 32;
    /// Column pairs below this cosine contribute nothing to matching.
    double min_cosine = 0.5;
    bool use_hnsw = true;
    size_t hnsw_m = 16;
    size_t hnsw_ef_construction = 100;
    size_t hnsw_ef_search = 64;
  };

  StarmieUnionSearch(const DataLakeCatalog* catalog,
                     const ContextualColumnEncoder* encoder)
      : StarmieUnionSearch(catalog, encoder, Options{}) {}
  StarmieUnionSearch(const DataLakeCatalog* catalog,
                     const ContextualColumnEncoder* encoder, Options options);

  /// Top-k unionable tables. `exclude` drops a self-match by id. `cancel`
  /// is polled between query columns during retrieval and between
  /// candidate tables during bipartite verification.
  Result<std::vector<TableResult>> Search(
      const Table& query, size_t k, int64_t exclude = -1,
      const CancelToken* cancel = nullptr) const;

  /// Verified score of one candidate table (diagnostics, tests).
  double ScoreTable(const Table& query, TableId candidate) const;

  size_t num_indexed_columns() const { return refs_.size(); }

  /// Persists the column mapping, the column embeddings, and the HNSW
  /// graph (the payload of snapshot section "index/starmie.hnsw"), so a
  /// restart skips re-encoding every lake column. Requires use_hnsw.
  Status SaveSnapshot(std::ostream* out) const;

  /// Restores a search persisted with SaveSnapshot against the same
  /// catalog and encoder. Validates refs against the catalog, the graph
  /// size against the mapping, and the graph dimension against the
  /// encoder; any mismatch fails the load without a partial object.
  static Result<std::unique_ptr<StarmieUnionSearch>> FromSnapshot(
      const DataLakeCatalog* catalog, const ContextualColumnEncoder* encoder,
      const std::string& payload) {
    return FromSnapshot(catalog, encoder, payload, Options{});
  }
  static Result<std::unique_ptr<StarmieUnionSearch>> FromSnapshot(
      const DataLakeCatalog* catalog, const ContextualColumnEncoder* encoder,
      const std::string& payload, Options options);

 private:
  struct DeferBuildTag {};
  StarmieUnionSearch(const DataLakeCatalog* catalog,
                     const ContextualColumnEncoder* encoder, Options options,
                     DeferBuildTag);

  double ScorePrepared(const std::vector<Vector>& query_vecs,
                       TableId t) const;

  const DataLakeCatalog* catalog_;
  const ContextualColumnEncoder* encoder_;
  Options options_;
  std::vector<ColumnRef> refs_;
  std::vector<Vector> vectors_;                      // per dense column
  std::vector<std::vector<uint32_t>> table_columns_; // table -> dense cols
  HnswIndex hnsw_;
  FlatVectorIndex flat_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_UNION_STARMIE_H_
