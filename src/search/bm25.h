#ifndef LAKE_SEARCH_BM25_H_
#define LAKE_SEARCH_BM25_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace lake {

/// Okapi BM25 ranked retrieval over bag-of-words documents — the classic
/// IR scoring keyword-based dataset search engines (Google Dataset Search,
/// Auctus) apply to table metadata.
class Bm25Index {
 public:
  struct Params {
    double k1 = 1.2;
    double b = 0.75;
  };

  Bm25Index() : Bm25Index(Params{}) {}
  explicit Bm25Index(Params params) : params_(params) {}

  /// Corpus-level statistics BM25 scoring depends on (document count,
  /// average length, per-term document frequency). A single index scores
  /// with its own; a partitioned corpus gathers each partition's stats,
  /// merges them, and scores every partition with the merged totals
  /// (distributed IDF), which makes partitioned scores identical to an
  /// unpartitioned index over the same documents.
  struct CorpusStats {
    uint64_t num_docs = 0;
    uint64_t total_length = 0;
    /// Document frequency per queried term (only terms the gather was
    /// asked about; absent means df 0).
    std::unordered_map<std::string, uint64_t> doc_freq;

    void Merge(const CorpusStats& other);
  };

  /// Indexes a document (pre-tokenized). Ids are caller-defined and must
  /// be unique.
  void AddDocument(uint64_t id, const std::vector<std::string>& tokens);

  /// Top-k documents by BM25 score (descending; zero-score docs omitted).
  std::vector<std::pair<uint64_t, double>> Search(
      const std::vector<std::string>& query_tokens, size_t k) const;

  /// Search scored against external corpus statistics instead of this
  /// index's own (null falls back to local stats). Only documents in this
  /// index are candidates; `stats` supplies n, avg_len and df.
  std::vector<std::pair<uint64_t, double>> Search(
      const std::vector<std::string>& query_tokens, size_t k,
      const CorpusStats* stats) const;

  /// This index's contribution to a distributed-IDF gather for one query.
  CorpusStats GatherStats(const std::vector<std::string>& query_tokens) const;

  size_t num_documents() const { return doc_lengths_.size(); }

 private:
  struct Posting {
    uint32_t doc_index;
    uint32_t term_frequency;
  };

  Params params_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<uint64_t> doc_ids_;
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
};

}  // namespace lake

#endif  // LAKE_SEARCH_BM25_H_
