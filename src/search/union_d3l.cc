#include "search/union_d3l.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "search/bipartite_matching.h"
#include "table/stats.h"
#include "text/normalizer.h"
#include "text/qgram.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

std::string ValueFormatPattern(const std::string& value) {
  std::string out;
  char run = '\0';
  for (char ch : value) {
    const unsigned char uc = static_cast<unsigned char>(ch);
    char cls;
    if (std::isdigit(uc)) cls = 'd';
    else if (std::isalpha(uc)) cls = 'a';
    else if (std::isspace(uc)) cls = '_';
    else cls = ch;
    if (cls == run && (cls == 'd' || cls == 'a' || cls == '_')) continue;
    out += cls;
    run = cls;
  }
  return out;
}

double D3lUnionSearch::Evidence::Mean() const {
  double sum = 0;
  int n = 0;
  for (double v : {name, values, format, embedding, numeric}) {
    if (v >= 0) {
      sum += v;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

D3lUnionSearch::D3lUnionSearch(const DataLakeCatalog* catalog,
                               const ColumnEncoder* encoder, Options options)
    : catalog_(catalog), encoder_(encoder), options_(options) {
  table_columns_.resize(catalog_->num_tables());
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    table_columns_[ref.table_id].push_back(
        static_cast<uint32_t>(columns_.size()));
    columns_.push_back(Profile(col));
  });
}

D3lUnionSearch::ColumnProfile D3lUnionSearch::Profile(
    const Column& column) const {
  ColumnProfile p;
  p.numeric = column.IsNumeric();
  p.name = NormalizeAttributeName(column.name());
  if (p.numeric) {
    const ColumnStats stats = ComputeColumnStats(column);
    p.mean = stats.mean;
    p.stddev = stats.stddev;
    p.min = stats.min;
    p.max = stats.max;
    return p;
  }
  std::vector<std::string> values, formats;
  for (const std::string& v : column.DistinctStrings()) {
    if (values.size() >= options_.max_values) break;
    const std::string norm = NormalizeValue(v);
    if (norm.empty()) continue;
    values.push_back(norm);
    formats.push_back(ValueFormatPattern(norm));
  }
  p.values = HashedSet::FromValues(values);
  p.formats = HashedSet::FromValues(formats);
  p.embedding = encoder_->EncodeValues(values);
  return p;
}

D3lUnionSearch::Evidence D3lUnionSearch::Compare(const ColumnProfile& q,
                                                 const ColumnProfile& c) const {
  Evidence e;
  if (options_.use_names && !q.name.empty() && !c.name.empty()) {
    e.name = QGramJaccard(q.name, c.name, options_.qgram);
  }
  if (q.numeric != c.numeric) return e;  // value signals need matched kinds
  if (q.numeric) {
    if (options_.use_numeric) {
      // Range overlap ratio blended with closeness of moments.
      const double lo = std::max(q.min, c.min);
      const double hi = std::min(q.max, c.max);
      const double span =
          std::max(q.max, c.max) - std::min(q.min, c.min);
      const double overlap = span > 0 ? std::max(0.0, hi - lo) / span
                                      : (q.min == c.min ? 1.0 : 0.0);
      const double scale =
          std::max({std::abs(q.mean), std::abs(c.mean), q.stddev, c.stddev,
                    1e-9});
      const double mean_close =
          1.0 - std::min(1.0, std::abs(q.mean - c.mean) / scale);
      const double sd_close =
          1.0 - std::min(1.0, std::abs(q.stddev - c.stddev) / scale);
      e.numeric = (overlap + mean_close + sd_close) / 3.0;
    }
    return e;
  }
  if (options_.use_values) e.values = q.values.Jaccard(c.values);
  if (options_.use_formats) e.format = q.formats.Jaccard(c.formats);
  if (options_.use_embeddings) {
    e.embedding = std::max(0.0, CosineSimilarity(q.embedding, c.embedding));
  }
  return e;
}

double D3lUnionSearch::ScorePrepared(const std::vector<ColumnProfile>& q,
                                     TableId t) const {
  const std::vector<uint32_t>& cand = table_columns_[t];
  if (q.empty() || cand.empty()) return 0.0;
  std::vector<std::vector<double>> weights(
      q.size(), std::vector<double>(cand.size(), 0.0));
  for (size_t i = 0; i < q.size(); ++i) {
    for (size_t j = 0; j < cand.size(); ++j) {
      const double score = Compare(q[i], columns_[cand[j]]).Mean();
      weights[i][j] = score >= options_.min_attribute_score ? score : 0.0;
    }
  }
  const MatchingResult match = MaxWeightBipartiteMatching(weights);
  return match.total_weight / static_cast<double>(q.size());
}

double D3lUnionSearch::ScoreTable(const Table& query, TableId candidate) const {
  std::vector<ColumnProfile> q;
  q.reserve(query.num_columns());
  for (size_t c = 0; c < query.num_columns(); ++c) {
    q.push_back(Profile(query.column(c)));
  }
  return ScorePrepared(q, candidate);
}

Result<std::vector<TableResult>> D3lUnionSearch::Search(const Table& query,
                                                        size_t k,
                                                        int64_t exclude) const {
  std::vector<ColumnProfile> q;
  q.reserve(query.num_columns());
  for (size_t c = 0; c < query.num_columns(); ++c) {
    q.push_back(Profile(query.column(c)));
  }
  if (q.empty()) return std::vector<TableResult>{};

  TopK<TableId> heap(k);
  for (TableId t = 0; t < catalog_->num_tables(); ++t) {
    if (exclude >= 0 && t == static_cast<TableId>(exclude)) continue;
    const double score = ScorePrepared(q, t);
    if (score > 0) heap.Push(score, t);
  }
  std::vector<TableResult> out;
  for (auto& [score, t] : heap.Take()) {
    out.push_back(
        TableResult{t, score, StrFormat("d3l relatedness=%.3f", score)});
  }
  return out;
}

}  // namespace lake
