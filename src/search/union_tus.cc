#include "search/union_tus.h"

#include <algorithm>
#include <unordered_set>

#include "search/bipartite_matching.h"
#include "text/normalizer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

namespace {
std::vector<std::string> SampledValues(const Column& col, size_t cap) {
  std::vector<std::string> out;
  for (const std::string& v : col.DistinctStrings()) {
    if (out.size() >= cap) break;
    const std::string norm = NormalizeValue(v);
    if (!norm.empty()) out.push_back(norm);
  }
  return out;
}
}  // namespace

TusUnionSearch::TusUnionSearch(const DataLakeCatalog* catalog,
                               const ColumnEncoder* encoder,
                               const KnowledgeBase* kb, Options options)
    : catalog_(catalog),
      encoder_(encoder),
      kb_(kb),
      options_(options),
      lsh_([&] {
        HyperplaneLsh::Options o = options.lsh;
        o.dim = encoder->dim();
        return o;
      }()) {
  table_columns_.resize(catalog_->num_tables());
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    ColumnInfo info;
    info.ref = ref;
    const std::vector<std::string> values =
        SampledValues(col, options_.max_values);
    info.set = HashedSet::FromValues(values);
    info.embedding = encoder_->Encode(col);
    if (kb_ != nullptr && options_.use_semantic_measure && !values.empty()) {
      auto vote = kb_->ColumnType(values);
      if (vote.ok()) {
        info.kb_type = vote.value().type;
        info.kb_coverage = vote.value().coverage;
      }
    }
    const uint32_t idx = static_cast<uint32_t>(columns_.size());
    table_columns_[ref.table_id].push_back(idx);
    if (!options_.exhaustive) {
      LAKE_CHECK(lsh_.Insert(idx, info.embedding).ok());
    }
    columns_.push_back(std::move(info));
  });
}

std::vector<TusUnionSearch::QueryColumn> TusUnionSearch::PrepareQuery(
    const Table& query) const {
  std::vector<QueryColumn> out;
  out.reserve(query.num_columns());
  for (size_t c = 0; c < query.num_columns(); ++c) {
    QueryColumn q;
    const std::vector<std::string> values =
        SampledValues(query.column(c), options_.max_values);
    q.set = HashedSet::FromValues(values);
    q.embedding = encoder_->Encode(query.column(c));
    if (kb_ != nullptr && options_.use_semantic_measure && !values.empty()) {
      auto vote = kb_->ColumnType(values);
      if (vote.ok()) {
        q.kb_type = vote.value().type;
        q.kb_coverage = vote.value().coverage;
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

double TusUnionSearch::AttributeScore(const QueryColumn& q,
                                      const ColumnInfo& c) const {
  double score = 0;
  if (options_.use_set_measure) {
    score = std::max(score, q.set.Jaccard(c.set));
  }
  if (options_.use_semantic_measure && !q.kb_type.empty() &&
      q.kb_type == c.kb_type) {
    score = std::max(score, std::min(q.kb_coverage, c.kb_coverage));
  }
  if (options_.use_nl_measure) {
    // Cosine in [-1,1] mapped to [0,1]; squashing keeps weak similarity
    // from dominating strong set evidence.
    const double cos = CosineSimilarity(q.embedding, c.embedding);
    score = std::max(score, std::max(0.0, cos) * std::max(0.0, cos));
  }
  return score < options_.min_attribute_score ? 0.0 : score;
}

double TusUnionSearch::ScorePrepared(const std::vector<QueryColumn>& q,
                                     TableId t) const {
  const std::vector<uint32_t>& cand_cols = table_columns_[t];
  if (q.empty() || cand_cols.empty()) return 0.0;
  std::vector<std::vector<double>> weights(
      q.size(), std::vector<double>(cand_cols.size(), 0.0));
  for (size_t i = 0; i < q.size(); ++i) {
    for (size_t j = 0; j < cand_cols.size(); ++j) {
      weights[i][j] = AttributeScore(q[i], columns_[cand_cols[j]]);
    }
  }
  const MatchingResult match = MaxWeightBipartiteMatching(weights);
  return match.total_weight / static_cast<double>(q.size());
}

double TusUnionSearch::ScoreTable(const Table& query, TableId candidate) const {
  return ScorePrepared(PrepareQuery(query), candidate);
}

Result<std::vector<TableResult>> TusUnionSearch::Search(const Table& query,
                                                        size_t k,
                                                        int64_t exclude) const {
  const std::vector<QueryColumn> q = PrepareQuery(query);
  if (q.empty()) return std::vector<TableResult>{};

  std::vector<TableId> candidates;
  if (options_.exhaustive) {
    candidates = catalog_->AllTables();
  } else {
    std::unordered_set<TableId> tables;
    for (const QueryColumn& qc : q) {
      LAKE_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                            lsh_.Query(qc.embedding));
      for (uint64_t col_idx : hits) {
        tables.insert(columns_[col_idx].ref.table_id);
      }
    }
    candidates.assign(tables.begin(), tables.end());
    std::sort(candidates.begin(), candidates.end());
  }

  TopK<TableId> heap(k);
  for (TableId t : candidates) {
    if (exclude >= 0 && t == static_cast<TableId>(exclude)) continue;
    const double score = ScorePrepared(q, t);
    if (score > 0) heap.Push(score, t);
  }
  std::vector<TableResult> out;
  for (auto& [score, t] : heap.Take()) {
    out.push_back(TableResult{t, score,
                              StrFormat("tus unionability=%.3f", score)});
  }
  return out;
}

}  // namespace lake
