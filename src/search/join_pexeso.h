#ifndef LAKE_SEARCH_JOIN_PEXESO_H_
#define LAKE_SEARCH_JOIN_PEXESO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "embed/word_embedding.h"
#include "index/hnsw.h"
#include "search/query.h"
#include "table/catalog.h"

namespace lake {

/// PEXESO-style fuzzy joinable search (Dong et al., ICDE 2021): columns
/// join when their *embedded* values match under a similarity predicate,
/// so "US", "U.S." and "usa" can still join. Every distinct lake value is
/// embedded and indexed in one ANN structure; a query column retrieves
/// near neighbors per value and scores each lake column by the fraction of
/// query values with at least one match above the similarity threshold
/// (PEXESO's block-and-verify, with HNSW as the blocker).
class PexesoJoinSearch {
 public:
  struct Options {
    /// Cosine threshold for a value-level fuzzy match.
    double tau = 0.8;
    /// Neighbors fetched per query value from the ANN index.
    size_t neighbors_per_value = 24;
    /// Distinct values embedded per column (deterministic prefix).
    size_t max_values_per_column = 200;
    size_t min_distinct = 2;
    /// HNSW parameters for the global value index.
    size_t hnsw_m = 16;
    size_t hnsw_ef_construction = 100;
    size_t hnsw_ef_search = 64;
  };

  PexesoJoinSearch(const DataLakeCatalog* catalog, const WordEmbedding* words)
      : PexesoJoinSearch(catalog, words, Options{}) {}
  PexesoJoinSearch(const DataLakeCatalog* catalog, const WordEmbedding* words,
                   Options options);

  /// Top-k columns by fuzzy-joinability score (fraction of query values
  /// with a fuzzy match in the candidate column).
  Result<std::vector<ColumnResult>> Search(
      const std::vector<std::string>& query_values, size_t k) const;

  size_t num_indexed_columns() const { return refs_.size(); }
  size_t num_indexed_values() const { return value_index_.size(); }

 private:
  const DataLakeCatalog* catalog_;
  const WordEmbedding* words_;
  Options options_;
  std::vector<ColumnRef> refs_;
  std::vector<size_t> column_value_counts_;
  HnswIndex value_index_;
  // ANN ids encode (column, value ordinal); this maps id -> column index.
  std::unordered_map<uint64_t, uint32_t> value_to_column_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_JOIN_PEXESO_H_
