#ifndef LAKE_SEARCH_UNION_SANTOS_H_
#define LAKE_SEARCH_UNION_SANTOS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "annotate/knowledge_base.h"
#include "search/query.h"
#include "table/catalog.h"

namespace lake {

/// Relationship-based semantic table union search — SANTOS (Khatiwada et
/// al., SIGMOD 2023). Column-only unionability (TUS-style) produces false
/// positives when individual columns align but the *relationships between
/// columns* differ (a table of "city, country" is not unionable with
/// "city, mayor" even though the city columns align). SANTOS scores
/// candidates on:
///   - relationship semantics: column pairs grounding to the same KB
///     predicate (curated or lake-synthesized KB);
///   - column semantics: columns grounding to the same KB type, anchored
///     on the query's *intent column* (the column most confidently typed,
///     approximating SANTOS's intent-column notion).
/// Candidate tables are shortlisted via an inverted index from predicates
/// and types to tables, then scored and ranked.
class SantosUnionSearch {
 public:
  struct Options {
    /// Rows sampled per table when grounding relationships.
    size_t max_rows = 500;
    /// Distinct values sampled per column when grounding types.
    size_t max_values = 256;
    /// Minimum KB coverage for a grounded type/predicate to count.
    double min_coverage = 0.1;
    /// Relative weight of relationship matches vs column-type matches.
    double relationship_weight = 0.7;
    /// Extra multiplier for semantics involving the intent column.
    double intent_boost = 2.0;
  };

  SantosUnionSearch(const DataLakeCatalog* catalog, const KnowledgeBase* kb)
      : SantosUnionSearch(catalog, kb, Options{}) {}
  SantosUnionSearch(const DataLakeCatalog* catalog, const KnowledgeBase* kb,
                    Options options);

  /// Top-k unionable tables. `exclude` drops a self-match by id.
  Result<std::vector<TableResult>> Search(const Table& query, size_t k,
                                          int64_t exclude = -1) const;

  /// Relationship/type score of one candidate (diagnostics, tests).
  double ScoreTable(const Table& query, TableId candidate) const;

 private:
  /// Grounded semantics of one table: predicate -> coverage, and per
  /// column type -> coverage, plus which column is the intent column.
  struct TableSemantics {
    std::unordered_map<std::string, double> relationships;
    std::unordered_map<std::string, double> column_types;
    int intent_column = -1;
    std::string intent_type;
  };

  TableSemantics Ground(const Table& table) const;
  double Score(const TableSemantics& query, const TableSemantics& cand) const;

  const DataLakeCatalog* catalog_;
  const KnowledgeBase* kb_;
  Options options_;
  std::vector<TableSemantics> lake_semantics_;  // indexed by TableId
  std::unordered_map<std::string, std::vector<TableId>> predicate_tables_;
  std::unordered_map<std::string, std::vector<TableId>> type_tables_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_UNION_SANTOS_H_
