#ifndef LAKE_SEARCH_JOIN_JOSIE_H_
#define LAKE_SEARCH_JOIN_JOSIE_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "index/josie.h"
#include "search/query.h"
#include "table/catalog.h"

namespace lake {

/// Exact top-k joinable-column search over a catalog, backed by the
/// JOSIE-style index: returns the k lake columns with the largest exact
/// value overlap with the query column (§2.4, Zhu et al. 2019).
class JosieJoinSearch {
 public:
  struct Options {
    size_t min_distinct = 2;
    bool include_numeric = true;
  };

  explicit JosieJoinSearch(const DataLakeCatalog* catalog)
      : JosieJoinSearch(catalog, Options{}) {}
  JosieJoinSearch(const DataLakeCatalog* catalog, Options options);

  /// Exact top-k columns by overlap with the query values. `cancel` is
  /// polled inside the index's search loops (see JosieIndex::TopK).
  Result<std::vector<ColumnResult>> Search(
      const std::vector<std::string>& query_values, size_t k,
      JosieIndex::QueryStats* stats = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// Persists the column mapping and the built JOSIE index (the payload of
  /// snapshot section "index/josie"), so restart skips the O(lake) build.
  Status SaveSnapshot(std::ostream* out) const;

  /// Restores a search persisted with SaveSnapshot against the same
  /// catalog. The payload is validated against the catalog (column refs in
  /// range, index set count matching the mapping); on any error nothing is
  /// returned and the caller's engine stays without a JOSIE modality.
  static Result<std::unique_ptr<JosieJoinSearch>> FromSnapshot(
      const DataLakeCatalog* catalog, const std::string& payload) {
    return FromSnapshot(catalog, payload, Options{});
  }
  static Result<std::unique_ptr<JosieJoinSearch>> FromSnapshot(
      const DataLakeCatalog* catalog, const std::string& payload,
      Options options);

  const JosieIndex& index() const { return index_; }
  size_t num_indexed_columns() const { return refs_.size(); }
  const std::vector<ColumnRef>& indexed_columns() const { return refs_; }

 private:
  struct DeferBuildTag {};
  JosieJoinSearch(const DataLakeCatalog* catalog, Options options,
                  DeferBuildTag)
      : catalog_(catalog), options_(options) {}

  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<ColumnRef> refs_;
  JosieIndex index_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_JOIN_JOSIE_H_
