#include "search/bipartite_matching.h"

#include <algorithm>
#include <limits>

namespace lake {

MatchingResult MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights) {
  MatchingResult result;
  const size_t left = weights.size();
  if (left == 0) return result;
  const size_t right = weights[0].size();
  result.match.assign(left, -1);
  if (right == 0) return result;

  // Square the matrix with zero padding and convert to a min-cost problem.
  const size_t n = std::max(left, right);
  double max_w = 0;
  for (const auto& row : weights) {
    for (double w : row) max_w = std::max(max_w, w);
  }
  auto cost = [&](size_t i, size_t j) -> double {
    if (i < left && j < right) return max_w - weights[i][j];
    return max_w;  // padded cells cost the same as a zero-weight edge
  };

  // Hungarian algorithm with potentials (1-indexed internals).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0), v(n + 1, 0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (size_t j = 1; j <= n; ++j) {
    const size_t i = p[j];
    if (i == 0) continue;
    const size_t li = i - 1;
    const size_t rj = j - 1;
    if (li < left && rj < right && weights[li][rj] > 0) {
      result.match[li] = static_cast<int>(rj);
      result.total_weight += weights[li][rj];
    }
  }
  return result;
}

MatchingResult GreedyBipartiteMatching(
    const std::vector<std::vector<double>>& weights) {
  MatchingResult result;
  const size_t left = weights.size();
  result.match.assign(left, -1);
  if (left == 0 || weights[0].empty()) return result;
  const size_t right = weights[0].size();

  struct Edge {
    double w;
    size_t i, j;
  };
  std::vector<Edge> edges;
  for (size_t i = 0; i < left; ++i) {
    for (size_t j = 0; j < right; ++j) {
      if (weights[i][j] > 0) edges.push_back(Edge{weights[i][j], i, j});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });
  std::vector<char> right_used(right, false);
  for (const Edge& e : edges) {
    if (result.match[e.i] != -1 || right_used[e.j]) continue;
    result.match[e.i] = static_cast<int>(e.j);
    right_used[e.j] = true;
    result.total_weight += e.w;
  }
  return result;
}

}  // namespace lake
