#include "search/union_santos.h"

#include <algorithm>
#include <unordered_set>

#include "text/normalizer.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

namespace {

std::vector<std::string> SampledDistinct(const Column& col, size_t cap) {
  std::vector<std::string> out;
  for (const std::string& v : col.DistinctStrings()) {
    if (out.size() >= cap) break;
    const std::string norm = NormalizeValue(v);
    if (!norm.empty()) out.push_back(norm);
  }
  return out;
}

std::vector<std::string> RowValues(const Column& col, size_t rows) {
  std::vector<std::string> out;
  out.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    const Value& v = col.cell(r);
    out.push_back(v.is_null() ? "" : NormalizeValue(v.ToString()));
  }
  return out;
}

}  // namespace

SantosUnionSearch::SantosUnionSearch(const DataLakeCatalog* catalog,
                                     const KnowledgeBase* kb, Options options)
    : catalog_(catalog), kb_(kb), options_(options) {
  lake_semantics_.reserve(catalog_->num_tables());
  for (TableId t : catalog_->AllTables()) {
    TableSemantics sem = Ground(catalog_->table(t));
    for (const auto& [pred, cov] : sem.relationships) {
      predicate_tables_[pred].push_back(t);
    }
    for (const auto& [type, cov] : sem.column_types) {
      type_tables_[type].push_back(t);
    }
    lake_semantics_.push_back(std::move(sem));
  }
}

SantosUnionSearch::TableSemantics SantosUnionSearch::Ground(
    const Table& table) const {
  TableSemantics sem;
  const size_t rows = std::min(table.num_rows(), options_.max_rows);

  // Column semantics, tracking the most confidently typed string column as
  // the intent column.
  std::vector<int> string_cols;
  double best_intent_cov = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.IsNumeric()) continue;
    string_cols.push_back(static_cast<int>(c));
    const std::vector<std::string> values =
        SampledDistinct(col, options_.max_values);
    if (values.empty()) continue;
    auto vote = kb_->ColumnType(values);
    if (!vote.ok() || vote.value().coverage < options_.min_coverage) continue;
    auto it = sem.column_types.find(vote.value().type);
    if (it == sem.column_types.end() || it->second < vote.value().coverage) {
      sem.column_types[vote.value().type] = vote.value().coverage;
    }
    if (vote.value().coverage > best_intent_cov) {
      best_intent_cov = vote.value().coverage;
      sem.intent_column = static_cast<int>(c);
      sem.intent_type = vote.value().type;
    }
  }

  // Relationship semantics over string column pairs (both orientations:
  // KB predicates are directed).
  for (size_t a = 0; a < string_cols.size(); ++a) {
    const std::vector<std::string> va =
        RowValues(table.column(string_cols[a]), rows);
    for (size_t b = 0; b < string_cols.size(); ++b) {
      if (a == b) continue;
      const std::vector<std::string> vb =
          RowValues(table.column(string_cols[b]), rows);
      auto vote = kb_->ColumnPairRelation(va, vb);
      if (!vote.ok() || vote.value().coverage < options_.min_coverage) {
        continue;
      }
      double weight = vote.value().coverage;
      if (sem.intent_column == string_cols[a] ||
          sem.intent_column == string_cols[b]) {
        weight *= options_.intent_boost;
      }
      auto it = sem.relationships.find(vote.value().predicate);
      if (it == sem.relationships.end() || it->second < weight) {
        sem.relationships[vote.value().predicate] = weight;
      }
    }
  }
  return sem;
}

double SantosUnionSearch::Score(const TableSemantics& query,
                                const TableSemantics& cand) const {
  // Relationship agreement: Σ min(w_q, w_c) over shared predicates,
  // normalized by the query's total relationship weight.
  double rel_match = 0, rel_total = 0;
  for (const auto& [pred, wq] : query.relationships) {
    rel_total += wq;
    auto it = cand.relationships.find(pred);
    if (it != cand.relationships.end()) {
      rel_match += std::min(wq, it->second);
    }
  }
  const double rel_score = rel_total > 0 ? rel_match / rel_total : 0.0;

  // Column-type agreement, same shape.
  double type_match = 0, type_total = 0;
  for (const auto& [type, wq] : query.column_types) {
    double w = wq;
    if (type == query.intent_type) w *= options_.intent_boost;
    type_total += w;
    auto it = cand.column_types.find(type);
    if (it != cand.column_types.end()) {
      type_match += std::min(w, it->second * (type == query.intent_type
                                                  ? options_.intent_boost
                                                  : 1.0));
    }
  }
  const double type_score = type_total > 0 ? type_match / type_total : 0.0;

  if (rel_total == 0 && type_total == 0) return 0.0;
  if (rel_total == 0) return (1.0 - options_.relationship_weight) * type_score;
  return options_.relationship_weight * rel_score +
         (1.0 - options_.relationship_weight) * type_score;
}

double SantosUnionSearch::ScoreTable(const Table& query,
                                     TableId candidate) const {
  return Score(Ground(query), lake_semantics_[candidate]);
}

Result<std::vector<TableResult>> SantosUnionSearch::Search(
    const Table& query, size_t k, int64_t exclude) const {
  const TableSemantics q = Ground(query);

  // Shortlist: any table sharing a predicate or a type with the query.
  std::unordered_set<TableId> candidates;
  for (const auto& [pred, w] : q.relationships) {
    auto it = predicate_tables_.find(pred);
    if (it == predicate_tables_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  for (const auto& [type, w] : q.column_types) {
    auto it = type_tables_.find(type);
    if (it == type_tables_.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }

  std::vector<TableId> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());
  TopK<TableId> heap(k);
  for (TableId t : ordered) {
    if (exclude >= 0 && t == static_cast<TableId>(exclude)) continue;
    const double score = Score(q, lake_semantics_[t]);
    if (score > 0) heap.Push(score, t);
  }
  std::vector<TableResult> out;
  for (auto& [score, t] : heap.Take()) {
    out.push_back(TableResult{
        t, score, StrFormat("santos relationship score=%.3f", score)});
  }
  return out;
}

}  // namespace lake
