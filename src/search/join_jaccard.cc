#include "search/join_jaccard.h"

#include "text/normalizer.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

namespace {
std::vector<std::string> NormalizedDistinct(const Column& col) {
  std::vector<std::string> out;
  for (const std::string& v : col.DistinctStrings()) {
    const std::string norm = NormalizeValue(v);
    if (!norm.empty()) out.push_back(norm);
  }
  return out;
}
}  // namespace

ExactSetJoinSearch::ExactSetJoinSearch(const DataLakeCatalog* catalog,
                                       Options options)
    : catalog_(catalog), options_(options) {
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (!options_.include_numeric && col.IsNumeric()) return;
    const std::vector<std::string> values = NormalizedDistinct(col);
    if (values.size() < options_.min_distinct) return;
    refs_.push_back(ref);
    sets_.push_back(HashedSet::FromValues(values));
  });
}

HashedSet ExactSetJoinSearch::QuerySet(
    const std::vector<std::string>& query_values) const {
  std::vector<std::string> norm;
  norm.reserve(query_values.size());
  for (const std::string& v : query_values) {
    std::string nv = NormalizeValue(v);
    if (!nv.empty()) norm.push_back(std::move(nv));
  }
  return HashedSet::FromValues(norm);
}

std::vector<ColumnResult> ExactSetJoinSearch::TopKByJaccard(
    const std::vector<std::string>& query_values, size_t k) const {
  const HashedSet q = QuerySet(query_values);
  TopK<size_t> heap(k);
  for (size_t i = 0; i < sets_.size(); ++i) {
    const double j = q.Jaccard(sets_[i]);
    if (j > 0) heap.Push(j, i);
  }
  std::vector<ColumnResult> out;
  for (auto& [score, i] : heap.Take()) {
    out.push_back(ColumnResult{refs_[i], score,
                               StrFormat("exact jaccard=%.3f", score)});
  }
  return out;
}

std::vector<ColumnResult> ExactSetJoinSearch::TopKByContainment(
    const std::vector<std::string>& query_values, size_t k) const {
  const HashedSet q = QuerySet(query_values);
  // Tie-break toward smaller candidates: fold a tiny size penalty into the
  // score ordering without changing the containment value reported.
  TopK<std::pair<size_t, double>> heap(k);
  for (size_t i = 0; i < sets_.size(); ++i) {
    const double c = q.ContainmentIn(sets_[i]);
    if (c <= 0) continue;
    const double size_penalty =
        1e-9 * static_cast<double>(sets_[i].size());
    heap.Push(c - size_penalty, {i, c});
  }
  std::vector<ColumnResult> out;
  for (auto& [score, entry] : heap.Take()) {
    out.push_back(ColumnResult{
        refs_[entry.first], entry.second,
        StrFormat("exact containment=%.3f", entry.second)});
  }
  return out;
}

double ExactSetJoinSearch::ContainmentOf(
    const std::vector<std::string>& query_values, size_t column_index) const {
  return QuerySet(query_values).ContainmentIn(sets_[column_index]);
}

}  // namespace lake
