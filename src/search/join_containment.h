#ifndef LAKE_SEARCH_JOIN_CONTAINMENT_H_
#define LAKE_SEARCH_JOIN_CONTAINMENT_H_

#include <string>
#include <vector>

#include "index/lsh_ensemble.h"
#include "search/query.h"
#include "sketch/set_ops.h"
#include "table/catalog.h"
#include "util/cancel.h"

namespace lake {

/// Scalable containment-based joinable search built on LSH Ensemble (§2.4):
/// every lake column is MinHash-sketched and indexed by cardinality
/// partition; a query retrieves candidate columns above a containment
/// threshold in sub-linear time, then ranks them. Ranking is exact when
/// `store_exact_sets` is on (small/medium lakes) and sketch-estimated
/// otherwise (the internet-scale configuration of the original system).
class LshEnsembleJoinSearch {
 public:
  struct Options {
    size_t num_hashes = 128;
    size_t num_partitions = 8;
    size_t min_distinct = 2;
    bool include_numeric = true;
    /// Keep exact hashed sets for candidate re-ranking.
    bool store_exact_sets = true;
  };

  explicit LshEnsembleJoinSearch(const DataLakeCatalog* catalog)
      : LshEnsembleJoinSearch(catalog, Options{}) {}
  LshEnsembleJoinSearch(const DataLakeCatalog* catalog, Options options);

  /// Top-k candidate columns with containment >= threshold (best-effort:
  /// LSH recall is probabilistic). Sorted by descending containment.
  /// `cancel` is polled along the candidate re-ranking loop.
  Result<std::vector<ColumnResult>> Search(
      const std::vector<std::string>& query_values, double threshold,
      size_t k, const CancelToken* cancel = nullptr) const;

  /// Raw candidate column indices from the ensemble (benchmarks measure
  /// recall/precision of this set directly).
  Result<std::vector<size_t>> Candidates(
      const std::vector<std::string>& query_values, double threshold) const;

  size_t num_indexed_columns() const { return refs_.size(); }
  const std::vector<ColumnRef>& indexed_columns() const { return refs_; }
  const LshEnsemble& ensemble() const { return ensemble_; }

 private:
  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<ColumnRef> refs_;
  std::vector<MinHashSignature> signatures_;
  std::vector<size_t> cardinalities_;
  std::vector<HashedSet> exact_sets_;  // empty when !store_exact_sets
  LshEnsemble ensemble_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_JOIN_CONTAINMENT_H_
