#include "search/union_starmie.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "search/bipartite_matching.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

StarmieUnionSearch::StarmieUnionSearch(const DataLakeCatalog* catalog,
                                       const ContextualColumnEncoder* encoder,
                                       Options options)
    : catalog_(catalog),
      encoder_(encoder),
      options_(options),
      hnsw_(HnswIndex::Options{encoder->dim(), VectorMetric::kCosine,
                               options.hnsw_m, options.hnsw_ef_construction,
                               /*seed=*/1234}),
      flat_(encoder->dim(), VectorMetric::kCosine) {
  table_columns_.resize(catalog_->num_tables());
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    const std::vector<Vector> vecs = encoder_->EncodeTable(table);
    for (size_t c = 0; c < vecs.size(); ++c) {
      const uint32_t idx = static_cast<uint32_t>(refs_.size());
      refs_.push_back(ColumnRef{t, static_cast<uint32_t>(c)});
      table_columns_[t].push_back(idx);
      if (options_.use_hnsw) {
        LAKE_CHECK(hnsw_.Insert(idx, vecs[c]).ok());
      } else {
        LAKE_CHECK(flat_.Insert(idx, vecs[c]).ok());
      }
      vectors_.push_back(vecs[c]);
    }
  }
}

StarmieUnionSearch::StarmieUnionSearch(const DataLakeCatalog* catalog,
                                       const ContextualColumnEncoder* encoder,
                                       Options options, DeferBuildTag)
    : catalog_(catalog),
      encoder_(encoder),
      options_(options),
      hnsw_(HnswIndex::Options{encoder->dim(), VectorMetric::kCosine,
                               options.hnsw_m, options.hnsw_ef_construction,
                               /*seed=*/1234}),
      flat_(encoder->dim(), VectorMetric::kCosine) {}

Status StarmieUnionSearch::SaveSnapshot(std::ostream* out) const {
  if (!options_.use_hnsw) {
    return Status::FailedPrecondition(
        "starmie snapshot requires the HNSW retrieval path");
  }
  BinaryWriter w(out);
  w.WriteVarint(refs_.size());
  for (const ColumnRef& ref : refs_) {
    w.WriteVarint(ref.table_id);
    w.WriteVarint(ref.column_index);
  }
  for (const Vector& vec : vectors_) w.WriteFloatVector(vec);
  if (!w.ok()) return Status::IoError("starmie snapshot write failed");
  return hnsw_.Save(out);
}

Result<std::unique_ptr<StarmieUnionSearch>> StarmieUnionSearch::FromSnapshot(
    const DataLakeCatalog* catalog, const ContextualColumnEncoder* encoder,
    const std::string& payload, Options options) {
  if (!options.use_hnsw) {
    return Status::FailedPrecondition(
        "starmie snapshot requires the HNSW retrieval path");
  }
  std::istringstream in(payload);
  BinaryReader r(&in);
  auto search = std::unique_ptr<StarmieUnionSearch>(new StarmieUnionSearch(
      catalog, encoder, options, DeferBuildTag{}));
  search->table_columns_.resize(catalog->num_tables());
  LAKE_ASSIGN_OR_RETURN(uint64_t num_refs, r.ReadVarint());
  search->refs_.reserve(num_refs);
  search->vectors_.reserve(num_refs);
  for (uint64_t i = 0; i < num_refs; ++i) {
    LAKE_ASSIGN_OR_RETURN(uint64_t table_id, r.ReadVarint());
    LAKE_ASSIGN_OR_RETURN(uint64_t column, r.ReadVarint());
    if (table_id >= catalog->num_tables() ||
        column >= catalog->table(static_cast<TableId>(table_id)).num_columns()) {
      return Status::IoError("starmie snapshot references a column outside "
                             "this catalog (stale snapshot?)");
    }
    search->refs_.push_back(
        ColumnRef{static_cast<TableId>(table_id), static_cast<uint32_t>(column)});
    search->table_columns_[table_id].push_back(static_cast<uint32_t>(i));
  }
  for (uint64_t i = 0; i < num_refs; ++i) {
    LAKE_ASSIGN_OR_RETURN(Vector vec, r.ReadFloatVector());
    if (vec.size() != encoder->dim()) {
      return Status::IoError("starmie snapshot embedding dimension mismatch");
    }
    search->vectors_.push_back(std::move(vec));
  }
  LAKE_RETURN_IF_ERROR(search->hnsw_.Load(&in));
  if (search->hnsw_.options().dim != encoder->dim()) {
    return Status::IoError("starmie snapshot graph dimension mismatch");
  }
  if (search->hnsw_.size() != search->refs_.size()) {
    return Status::IoError("starmie snapshot graph/mapping size mismatch");
  }
  return search;
}

double StarmieUnionSearch::ScorePrepared(const std::vector<Vector>& query_vecs,
                                         TableId t) const {
  const std::vector<uint32_t>& cand = table_columns_[t];
  if (query_vecs.empty() || cand.empty()) return 0.0;
  std::vector<std::vector<double>> weights(
      query_vecs.size(), std::vector<double>(cand.size(), 0.0));
  for (size_t i = 0; i < query_vecs.size(); ++i) {
    for (size_t j = 0; j < cand.size(); ++j) {
      const double cos = CosineSimilarity(query_vecs[i], vectors_[cand[j]]);
      weights[i][j] = cos >= options_.min_cosine ? cos : 0.0;
    }
  }
  const MatchingResult match = MaxWeightBipartiteMatching(weights);
  return match.total_weight / static_cast<double>(query_vecs.size());
}

double StarmieUnionSearch::ScoreTable(const Table& query,
                                      TableId candidate) const {
  return ScorePrepared(encoder_->EncodeTable(query), candidate);
}

Result<std::vector<TableResult>> StarmieUnionSearch::Search(
    const Table& query, size_t k, int64_t exclude,
    const CancelToken* cancel) const {
  const std::vector<Vector> query_vecs = encoder_->EncodeTable(query);
  if (query_vecs.empty()) return std::vector<TableResult>{};

  // Retrieval: nearest lake columns per query column seed the candidate
  // table set.
  std::unordered_set<TableId> tables;
  for (const Vector& qv : query_vecs) {
    if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
    Result<std::vector<VectorHit>> hits =
        options_.use_hnsw
            ? hnsw_.Search(qv, options_.neighbors_per_column,
                           options_.hnsw_ef_search)
            : flat_.Search(qv, options_.neighbors_per_column);
    LAKE_RETURN_IF_ERROR(hits.status());
    for (const VectorHit& h : hits.value()) {
      if (h.score < options_.min_cosine) continue;
      tables.insert(refs_[h.id].table_id);
    }
  }
  std::vector<TableId> ordered(tables.begin(), tables.end());
  std::sort(ordered.begin(), ordered.end());

  TopK<TableId> heap(k);
  size_t verified = 0;
  for (TableId t : ordered) {
    if (cancel != nullptr && ShouldCheck(verified++, 8)) {
      LAKE_RETURN_IF_ERROR(cancel->Check());
    }
    if (exclude >= 0 && t == static_cast<TableId>(exclude)) continue;
    const double score = ScorePrepared(query_vecs, t);
    if (score > 0) heap.Push(score, t);
  }
  std::vector<TableResult> out;
  for (auto& [score, t] : heap.Take()) {
    out.push_back(TableResult{
        t, score, StrFormat("starmie contextual score=%.3f", score)});
  }
  return out;
}

}  // namespace lake
