#include "search/union_starmie.h"

#include <algorithm>
#include <unordered_set>

#include "search/bipartite_matching.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

StarmieUnionSearch::StarmieUnionSearch(const DataLakeCatalog* catalog,
                                       const ContextualColumnEncoder* encoder,
                                       Options options)
    : catalog_(catalog),
      encoder_(encoder),
      options_(options),
      hnsw_(HnswIndex::Options{encoder->dim(), VectorMetric::kCosine,
                               options.hnsw_m, options.hnsw_ef_construction,
                               /*seed=*/1234}),
      flat_(encoder->dim(), VectorMetric::kCosine) {
  table_columns_.resize(catalog_->num_tables());
  for (TableId t : catalog_->AllTables()) {
    const Table& table = catalog_->table(t);
    const std::vector<Vector> vecs = encoder_->EncodeTable(table);
    for (size_t c = 0; c < vecs.size(); ++c) {
      const uint32_t idx = static_cast<uint32_t>(refs_.size());
      refs_.push_back(ColumnRef{t, static_cast<uint32_t>(c)});
      table_columns_[t].push_back(idx);
      if (options_.use_hnsw) {
        LAKE_CHECK(hnsw_.Insert(idx, vecs[c]).ok());
      } else {
        LAKE_CHECK(flat_.Insert(idx, vecs[c]).ok());
      }
      vectors_.push_back(vecs[c]);
    }
  }
}

double StarmieUnionSearch::ScorePrepared(const std::vector<Vector>& query_vecs,
                                         TableId t) const {
  const std::vector<uint32_t>& cand = table_columns_[t];
  if (query_vecs.empty() || cand.empty()) return 0.0;
  std::vector<std::vector<double>> weights(
      query_vecs.size(), std::vector<double>(cand.size(), 0.0));
  for (size_t i = 0; i < query_vecs.size(); ++i) {
    for (size_t j = 0; j < cand.size(); ++j) {
      const double cos = CosineSimilarity(query_vecs[i], vectors_[cand[j]]);
      weights[i][j] = cos >= options_.min_cosine ? cos : 0.0;
    }
  }
  const MatchingResult match = MaxWeightBipartiteMatching(weights);
  return match.total_weight / static_cast<double>(query_vecs.size());
}

double StarmieUnionSearch::ScoreTable(const Table& query,
                                      TableId candidate) const {
  return ScorePrepared(encoder_->EncodeTable(query), candidate);
}

Result<std::vector<TableResult>> StarmieUnionSearch::Search(
    const Table& query, size_t k, int64_t exclude,
    const CancelToken* cancel) const {
  const std::vector<Vector> query_vecs = encoder_->EncodeTable(query);
  if (query_vecs.empty()) return std::vector<TableResult>{};

  // Retrieval: nearest lake columns per query column seed the candidate
  // table set.
  std::unordered_set<TableId> tables;
  for (const Vector& qv : query_vecs) {
    if (cancel != nullptr) LAKE_RETURN_IF_ERROR(cancel->Check());
    Result<std::vector<VectorHit>> hits =
        options_.use_hnsw
            ? hnsw_.Search(qv, options_.neighbors_per_column,
                           options_.hnsw_ef_search)
            : flat_.Search(qv, options_.neighbors_per_column);
    LAKE_RETURN_IF_ERROR(hits.status());
    for (const VectorHit& h : hits.value()) {
      if (h.score < options_.min_cosine) continue;
      tables.insert(refs_[h.id].table_id);
    }
  }
  std::vector<TableId> ordered(tables.begin(), tables.end());
  std::sort(ordered.begin(), ordered.end());

  TopK<TableId> heap(k);
  size_t verified = 0;
  for (TableId t : ordered) {
    if (cancel != nullptr && ShouldCheck(verified++, 8)) {
      LAKE_RETURN_IF_ERROR(cancel->Check());
    }
    if (exclude >= 0 && t == static_cast<TableId>(exclude)) continue;
    const double score = ScorePrepared(query_vecs, t);
    if (score > 0) heap.Push(score, t);
  }
  std::vector<TableResult> out;
  for (auto& [score, t] : heap.Take()) {
    out.push_back(TableResult{
        t, score, StrFormat("starmie contextual score=%.3f", score)});
  }
  return out;
}

}  // namespace lake
