#ifndef LAKE_SEARCH_JOIN_JACCARD_H_
#define LAKE_SEARCH_JOIN_JACCARD_H_

#include <string>
#include <vector>

#include "search/query.h"
#include "sketch/set_ops.h"
#include "table/catalog.h"

namespace lake {

/// Exact value-overlap joinable-column search: the pre-LSH baseline
/// (Das Sarma et al., Mannheim Search Join) that scans every lake column
/// and ranks by exact Jaccard or exact containment. Ground truth for the
/// approximate engines and the E2 demonstration that Jaccard is biased
/// against large attributes while containment is not.
class ExactSetJoinSearch {
 public:
  struct Options {
    /// Columns with fewer distinct values than this are not joinable keys.
    size_t min_distinct = 2;
    /// Include numeric columns (joins on numeric codes are common).
    bool include_numeric = true;
  };

  explicit ExactSetJoinSearch(const DataLakeCatalog* catalog)
      : ExactSetJoinSearch(catalog, Options{}) {}
  ExactSetJoinSearch(const DataLakeCatalog* catalog, Options options);

  /// Top-k columns by exact Jaccard with the query value set.
  std::vector<ColumnResult> TopKByJaccard(
      const std::vector<std::string>& query_values, size_t k) const;

  /// Top-k columns by exact containment |Q∩X|/|Q| (domain search). Ties
  /// are broken toward smaller candidate columns (tighter domains first).
  std::vector<ColumnResult> TopKByContainment(
      const std::vector<std::string>& query_values, size_t k) const;

  /// Exact containment of the query in one indexed column (benchmarks).
  double ContainmentOf(const std::vector<std::string>& query_values,
                       size_t column_index) const;

  size_t num_indexed_columns() const { return refs_.size(); }
  const std::vector<ColumnRef>& indexed_columns() const { return refs_; }

 private:
  HashedSet QuerySet(const std::vector<std::string>& query_values) const;

  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<ColumnRef> refs_;
  std::vector<HashedSet> sets_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_JOIN_JACCARD_H_
