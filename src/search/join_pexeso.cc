#include "search/join_pexeso.h"

#include <unordered_set>

#include "text/normalizer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/top_k.h"

namespace lake {

PexesoJoinSearch::PexesoJoinSearch(const DataLakeCatalog* catalog,
                                   const WordEmbedding* words,
                                   Options options)
    : catalog_(catalog),
      words_(words),
      options_(options),
      value_index_(HnswIndex::Options{words->dim(), VectorMetric::kCosine,
                                      options.hnsw_m,
                                      options.hnsw_ef_construction,
                                      /*seed=*/99}) {
  uint64_t next_id = 0;
  catalog_->ForEachColumn([&](const ColumnRef& ref, const Column& col) {
    if (col.IsNumeric()) return;  // fuzzy matching is a string phenomenon
    std::vector<std::string> values;
    for (const std::string& v : col.DistinctStrings()) {
      if (values.size() >= options_.max_values_per_column) break;
      const std::string norm = NormalizeValue(v);
      if (!norm.empty()) values.push_back(norm);
    }
    if (values.size() < options_.min_distinct) return;
    const uint32_t col_idx = static_cast<uint32_t>(refs_.size());
    refs_.push_back(ref);
    column_value_counts_.push_back(values.size());
    for (const std::string& v : values) {
      const uint64_t id = next_id++;
      value_to_column_[id] = col_idx;
      LAKE_CHECK(value_index_.Insert(id, words_->EmbedText(v)).ok());
    }
  });
}

Result<std::vector<ColumnResult>> PexesoJoinSearch::Search(
    const std::vector<std::string>& query_values, size_t k) const {
  // Deduplicate normalized query values.
  std::vector<std::string> queries;
  {
    std::unordered_set<std::string> seen;
    for (const std::string& v : query_values) {
      std::string norm = NormalizeValue(v);
      if (norm.empty() || !seen.insert(norm).second) continue;
      queries.push_back(std::move(norm));
    }
  }
  if (queries.empty()) return std::vector<ColumnResult>{};

  // For each query value, the set of columns with a fuzzy match; score is
  // per-column matched-value count.
  std::unordered_map<uint32_t, uint32_t> matches;
  for (const std::string& q : queries) {
    LAKE_ASSIGN_OR_RETURN(
        std::vector<VectorHit> hits,
        value_index_.Search(words_->EmbedText(q),
                            options_.neighbors_per_value,
                            options_.hnsw_ef_search));
    std::unordered_set<uint32_t> cols_this_value;
    for (const VectorHit& h : hits) {
      if (h.score < options_.tau) continue;
      cols_this_value.insert(value_to_column_.at(h.id));
    }
    for (uint32_t c : cols_this_value) ++matches[c];
  }

  TopK<std::pair<uint32_t, double>> heap(k);
  for (const auto& [col, count] : matches) {
    const double score =
        static_cast<double>(count) / static_cast<double>(queries.size());
    heap.Push(score, {col, score});
  }
  std::vector<ColumnResult> out;
  for (auto& [score, entry] : heap.Take()) {
    out.push_back(ColumnResult{
        refs_[entry.first], entry.second,
        StrFormat("fuzzy match fraction=%.3f (tau=%.2f)", entry.second,
                  options_.tau)});
  }
  return out;
}

}  // namespace lake
