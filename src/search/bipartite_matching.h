#ifndef LAKE_SEARCH_BIPARTITE_MATCHING_H_
#define LAKE_SEARCH_BIPARTITE_MATCHING_H_

#include <cstddef>
#include <vector>

namespace lake {

/// Result of a max-weight bipartite matching: match[i] is the right-side
/// index assigned to left vertex i, or -1 when unmatched.
struct MatchingResult {
  std::vector<int> match;
  double total_weight = 0;
};

/// Exact maximum-weight bipartite matching (Hungarian algorithm, O(n^3))
/// on a |left| x |right| weight matrix with non-negative weights. Pairs
/// with zero weight are left unmatched. This is the aggregation step TUS
/// and Starmie use to lift column-level unionability scores to a
/// table-level score.
MatchingResult MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights);

/// Greedy approximation (sort edges, take non-conflicting): 2-approx,
/// much faster; Starmie's online aggregation uses this flavor.
MatchingResult GreedyBipartiteMatching(
    const std::vector<std::vector<double>>& weights);

}  // namespace lake

#endif  // LAKE_SEARCH_BIPARTITE_MATCHING_H_
