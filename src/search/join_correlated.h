#ifndef LAKE_SEARCH_JOIN_CORRELATED_H_
#define LAKE_SEARCH_JOIN_CORRELATED_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sketch/correlation_sketch.h"
#include "table/catalog.h"
#include "util/status.h"

namespace lake {

/// Correlated-dataset search in the style of Santos et al. (ICDE 2022),
/// cited by the survey for joinable-and-correlated table search: given a
/// query (join-key column, numeric column), find lake tables that (a) join
/// with the key and (b) carry a numeric column *correlated* with the query
/// numeric column after the join. Every eligible (key, numeric) column
/// pair in the lake is summarized by a correlation sketch; a key-hash
/// inverted index shortlists candidates, and sketches estimate containment
/// and correlation without touching the data.
class CorrelatedJoinSearch {
 public:
  struct Options {
    /// Sketch size (pairs retained per column pair).
    size_t sketch_size = 256;
    /// Minimum estimated key containment for a candidate to be scored.
    double min_containment = 0.25;
    /// Use the robust QCR estimator (paper's choice); Pearson otherwise.
    bool use_qcr = true;
    /// Key columns must look key-like: uniqueness above this.
    double min_key_uniqueness = 0.5;
  };

  explicit CorrelatedJoinSearch(const DataLakeCatalog* catalog)
      : CorrelatedJoinSearch(catalog, Options{}) {}
  CorrelatedJoinSearch(const DataLakeCatalog* catalog, Options options);

  struct CorrelatedResult {
    TableId table_id = 0;
    uint32_t key_column = 0;
    uint32_t numeric_column = 0;
    double est_containment = 0;
    double est_correlation = 0;  // signed
    double score = 0;            // |correlation|, the ranking key
  };

  /// Top-k correlated joinable column pairs for a query key/numeric pair.
  Result<std::vector<CorrelatedResult>> Search(
      const std::vector<std::string>& key_values,
      const std::vector<double>& numeric_values, size_t k) const;

  size_t num_indexed_pairs() const { return sketches_.size(); }

 private:
  struct PairInfo {
    TableId table_id;
    uint32_t key_column;
    uint32_t numeric_column;
  };

  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<PairInfo> pairs_;
  std::vector<CorrelationSketch> sketches_;
  // key hash -> sketch indices containing it (candidate shortlist).
  std::unordered_map<uint64_t, std::vector<uint32_t>> key_postings_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_JOIN_CORRELATED_H_
