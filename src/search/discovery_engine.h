#ifndef LAKE_SEARCH_DISCOVERY_ENGINE_H_
#define LAKE_SEARCH_DISCOVERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "annotate/kb_synthesis.h"
#include "approx/approx_search.h"
#include "annotate/semantic_type_detector.h"
#include "annotate/knowledge_base.h"
#include "embed/column_encoder.h"
#include "embed/contextual_encoder.h"
#include "embed/table_encoder.h"
#include "embed/word_embedding.h"
#include "search/join_containment.h"
#include "search/join_correlated.h"
#include "search/join_jaccard.h"
#include "search/join_josie.h"
#include "search/join_mate.h"
#include "search/join_pexeso.h"
#include "search/keyword_search.h"
#include "search/query.h"
#include "search/union_d3l.h"
#include "search/union_santos.h"
#include "search/union_starmie.h"
#include "search/union_tus.h"
#include "store/snapshot.h"
#include "table/catalog.h"
#include "util/cancel.h"

namespace lake {

/// Joinable-search strategies exposed by the engine (§2.4 lineage).
enum class JoinMethod {
  kExactJaccard,     // Das Sarma-style baseline
  kExactContainment, // exact domain search
  kLshEnsemble,      // Zhu et al. 2016
  kJosie,            // Zhu et al. 2019, exact top-k overlap
  kPexeso,           // Dong et al. 2021, fuzzy embedding join
  kApprox,           // sampling-based tier with confidence intervals
};

/// Unionable-search strategies (§2.5 lineage).
enum class UnionMethod {
  kTus,     // Nargesian et al. 2018
  kSantos,  // Khatiwada et al. 2023
  kStarmie, // Fan et al. 2022
  kD3l,     // Bogatu et al. 2020 (five-evidence relatedness)
};

/// End-to-end table discovery system over one catalog — the green boxes of
/// the survey's Figure 1 wired together: table understanding (embeddings +
/// KB) feeds indexing, which serves keyword, joinable, unionable, and
/// correlated search. Construction builds every enabled index; queries are
/// then read-only and cheap.
class DiscoveryEngine {
 public:
  struct Options {
    size_t embedding_dim = 64;
    bool build_keyword = true;
    bool build_exact_join = true;
    bool build_lsh_join = true;
    bool build_josie = true;
    bool build_pexeso = true;
    /// Sampling-based approximate join tier (src/approx): bottom-k value
    /// samples per column, interval answers, exact fallback on straddle.
    bool build_approx = true;
    bool build_mate = true;
    bool build_correlated = true;
    bool build_tus = true;
    bool build_santos = true;
    bool build_starmie = true;
    bool build_d3l = true;
    /// Synthesize the SANTOS KB from the lake (in addition to `kb`).
    bool synthesize_kb = true;
    /// Train a query-time column annotator by distant supervision: lake
    /// columns the KB grounds confidently become training labels (the
    /// survey's §3 "query-time annotation" direction).
    bool train_annotator = true;
    /// Minimum KB coverage for a column to become a training example.
    double annotator_min_coverage = 0.5;
    /// Leaves the snapshot-capable indexes (JOSIE, Starmie) unbuilt so a
    /// server can restore them from a SnapshotStore via LoadIndexSection
    /// instead of paying the O(lake) build. Sections that fail to load
    /// stay null and their query methods return FailedPrecondition — the
    /// engine serves degraded rather than not at all.
    bool defer_index_build = false;
  };

  /// `kb` is an optional curated knowledge base; the engine copies it and,
  /// when `synthesize_kb` is on, augments the copy from the lake.
  explicit DiscoveryEngine(const DataLakeCatalog* catalog)
      : DiscoveryEngine(catalog, nullptr, Options{}) {}
  DiscoveryEngine(const DataLakeCatalog* catalog, const KnowledgeBase* kb,
                  Options options);

  // --- Convenience query API -------------------------------------------

  /// Keyword/metadata search.
  std::vector<TableResult> Keyword(const std::string& query, size_t k) const;

  /// Keyword search scored against external corpus statistics (the
  /// cluster's distributed-IDF two-phase protocol: gather per-shard stats
  /// with KeywordStats, merge, score every shard with the merged totals).
  /// Null stats fall back to this engine's own corpus.
  std::vector<TableResult> Keyword(const std::string& query, size_t k,
                                   const Bm25Index::CorpusStats* stats) const;

  /// This engine's BM25 corpus contribution for `query` (empty when the
  /// keyword index is not built).
  Bm25Index::CorpusStats KeywordStats(const std::string& query) const;

  /// Joinable-column search with a chosen strategy. For kLshEnsemble the
  /// containment threshold is 0.5. `cancel` (optional) is checked at
  /// dispatch for every method and polled inside the JOSIE, LSH-Ensemble,
  /// and approximate search loops. `error_budget` applies to kApprox only
  /// (<= 0 means the engine default, 0.1) and sizes that method's
  /// confidence intervals; `approx_stats`, when non-null, accumulates the
  /// approximate tier's work accounting (kApprox only).
  Result<std::vector<ColumnResult>> Joinable(
      const std::vector<std::string>& query_values, JoinMethod method,
      size_t k, const CancelToken* cancel = nullptr,
      double error_budget = -1,
      approx::ApproxQueryStats* approx_stats = nullptr) const;

  /// Unionable-table search with a chosen strategy. `cancel` (optional) is
  /// checked at dispatch for every method and polled inside the Starmie
  /// retrieval/verification loops.
  Result<std::vector<TableResult>> Unionable(
      const Table& query, UnionMethod method, size_t k, int64_t exclude = -1,
      const CancelToken* cancel = nullptr) const;

  /// Cost-based joinable search (§3's "cost-based and distribution-aware
  /// access methods"): picks the strategy from simple statistics — exact
  /// scan while the lake is small (a scan beats any index below a few
  /// thousand columns), JOSIE for larger lakes when the exact top-k
  /// engine exists, LSH Ensemble at scale — and reports the choice.
  struct AutoJoinResult {
    JoinMethod method;
    std::vector<ColumnResult> results;
  };
  Result<AutoJoinResult> JoinableAuto(
      const std::vector<std::string>& query_values, size_t k) const;

  /// Query-time semantic type annotation of an arbitrary value column
  /// (requires Options::train_annotator and a KB that grounds at least
  /// two types in the lake; FailedPrecondition otherwise).
  Result<TypeAnnotation> AnnotateValues(
      const std::vector<std::string>& values) const;

  /// True when the distantly-supervised annotator was trainable.
  bool annotator_ready() const { return annotator_ != nullptr; }

  // --- Snapshot persistence (crash-safe restart) ------------------------

  /// Snapshot section names for the persistable indexes.
  static constexpr const char* kJosieSection = "index/josie";
  static constexpr const char* kStarmieSection = "index/starmie.hnsw";

  /// Adds one checksummed section per built persistable index (JOSIE,
  /// Starmie HNSW) to `snapshot`; commit through a SnapshotStore.
  Status SaveIndexSections(store::SnapshotWriter* snapshot) const;

  /// Sections that are enabled by Options but not currently loaded —
  /// what a RecoveryManager should Register after a deferred build.
  std::vector<std::string> PendingIndexSections() const;

  /// Restores one index from a CRC-verified section payload. Validates
  /// the payload against this engine's catalog/encoder; on failure the
  /// modality stays null (queries keep returning FailedPrecondition) and
  /// the engine is otherwise untouched. Must not run concurrently with
  /// queries.
  Status LoadIndexSection(const std::string& name, const std::string& payload);

  // --- Component access (benchmarks, tests, advanced callers) ----------

  const DataLakeCatalog& catalog() const { return *catalog_; }
  const WordEmbedding& words() const { return words_; }
  const ColumnEncoder& column_encoder() const { return column_encoder_; }
  const ContextualColumnEncoder& contextual_encoder() const {
    return contextual_encoder_;
  }
  const TableEncoder& table_encoder() const { return table_encoder_; }
  const KnowledgeBase& kb() const { return kb_; }

  const KeywordSearchEngine* keyword_engine() const { return keyword_.get(); }
  const ExactSetJoinSearch* exact_join() const { return exact_join_.get(); }
  const LshEnsembleJoinSearch* lsh_join() const { return lsh_join_.get(); }
  const JosieJoinSearch* josie_join() const { return josie_.get(); }
  const approx::ApproxJoinSearch* approx_join() const {
    return approx_join_.get();
  }
  const PexesoJoinSearch* pexeso_join() const { return pexeso_.get(); }
  const MateJoinSearch* mate_join() const { return mate_.get(); }
  const CorrelatedJoinSearch* correlated_join() const {
    return correlated_.get();
  }
  const TusUnionSearch* tus() const { return tus_.get(); }
  const SantosUnionSearch* santos() const { return santos_.get(); }
  const StarmieUnionSearch* starmie() const { return starmie_.get(); }
  const D3lUnionSearch* d3l() const { return d3l_.get(); }

 private:
  const DataLakeCatalog* catalog_;
  Options options_;
  WordEmbedding words_;
  ColumnEncoder column_encoder_;
  ContextualColumnEncoder contextual_encoder_;
  TableEncoder table_encoder_;
  KnowledgeBase kb_;

  std::unique_ptr<KeywordSearchEngine> keyword_;
  std::unique_ptr<ExactSetJoinSearch> exact_join_;
  std::unique_ptr<LshEnsembleJoinSearch> lsh_join_;
  std::unique_ptr<JosieJoinSearch> josie_;
  std::unique_ptr<approx::ApproxJoinSearch> approx_join_;
  std::unique_ptr<PexesoJoinSearch> pexeso_;
  std::unique_ptr<MateJoinSearch> mate_;
  std::unique_ptr<CorrelatedJoinSearch> correlated_;
  std::unique_ptr<TusUnionSearch> tus_;
  std::unique_ptr<SantosUnionSearch> santos_;
  std::unique_ptr<StarmieUnionSearch> starmie_;
  std::unique_ptr<D3lUnionSearch> d3l_;
  std::unique_ptr<SemanticTypeDetector> annotator_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_DISCOVERY_ENGINE_H_
