#ifndef LAKE_SEARCH_JOIN_MATE_H_
#define LAKE_SEARCH_JOIN_MATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "search/query.h"
#include "table/catalog.h"

namespace lake {

/// MATE-style multi-attribute joinable table search (Esmailoghli et al.,
/// VLDB 2022): find tables joinable with a *composite* key spanning
/// several query columns.
///
/// Single-attribute indexes cannot answer composite-key queries without an
/// index per column combination. MATE's device is the per-row *super key*:
/// a fixed-width bitmask OR-ing hash bits of every cell in the row. A
/// query tuple's mask must be a subset of a row's mask for that row to
/// possibly contain the tuple, so one row-level index serves all column
/// combinations; survivors are verified exactly. This class implements
/// that scheme: a value-hash posting index on (table, row) pairs seeds
/// candidates from the first (rarest) query attribute, super-key masks
/// prune, exact per-cell comparison verifies.
class MateJoinSearch {
 public:
  struct Options {
    /// Rows indexed per table (deterministic prefix; cost control).
    size_t max_rows_per_table = 5000;
    /// Bits set per cell in the super key (the paper uses few bits per
    /// hash function to keep masks sparse).
    int bits_per_cell = 3;
  };

  explicit MateJoinSearch(const DataLakeCatalog* catalog)
      : MateJoinSearch(catalog, Options{}) {}
  MateJoinSearch(const DataLakeCatalog* catalog, Options options);

  /// One result: a lake table plus the per-query-column mapping to its
  /// columns, scored by the number of query tuples that join.
  struct MultiJoinResult {
    TableId table_id = 0;
    std::vector<int> column_mapping;  // query key column -> lake column
    size_t joinable_rows = 0;
    double score = 0;  // joinable_rows / query rows
  };

  /// Work counters for the E16 bench (super-key pruning effectiveness).
  struct QueryStats {
    size_t candidate_rows = 0;       // rows fetched from postings
    size_t superkey_survivors = 0;   // rows passing the mask filter
    size_t verified_rows = 0;        // rows exactly compared
  };

  /// Finds top-k tables joinable on the composite key formed by
  /// `key_columns` of `query`. Every key column must be valid.
  Result<std::vector<MultiJoinResult>> Search(
      const Table& query, const std::vector<size_t>& key_columns, size_t k,
      QueryStats* stats = nullptr) const;

  size_t num_indexed_rows() const { return row_masks_.size(); }

 private:
  /// Dense row handle: table index in tables_, row ordinal.
  struct RowId {
    uint32_t table_index;
    uint32_t row;
  };

  uint64_t CellMask(const std::string& normalized) const;

  const DataLakeCatalog* catalog_;
  Options options_;
  std::vector<TableId> tables_;                 // indexed tables
  std::vector<uint32_t> table_row_offsets_;     // into row_masks_
  std::vector<uint64_t> row_masks_;             // super keys, per row
  // value hash -> rows containing the value (any column).
  std::unordered_map<uint64_t, std::vector<uint32_t>> value_rows_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_JOIN_MATE_H_
