#ifndef LAKE_SEARCH_KEYWORD_SEARCH_H_
#define LAKE_SEARCH_KEYWORD_SEARCH_H_

#include <string>
#include <vector>

#include "search/bm25.h"
#include "search/query.h"
#include "table/catalog.h"

namespace lake {

/// Keyword/metadata table search (§2.3): each table becomes one BM25
/// document built from its name, description, tags, attribute names, and
/// (optionally) a sample of cell values. Following Google Dataset Search,
/// the default searches metadata only; value indexing is the OCTOPUS-style
/// extension.
class KeywordSearchEngine {
 public:
  struct Options {
    bool index_values = false;
    size_t values_per_column = 20;  // sampled deterministically (prefix)
    Bm25Index::Params bm25;
  };

  explicit KeywordSearchEngine(const DataLakeCatalog* catalog)
      : KeywordSearchEngine(catalog, Options{}) {}
  KeywordSearchEngine(const DataLakeCatalog* catalog, Options options);

  /// Top-k tables for a free-text query.
  std::vector<TableResult> Search(const std::string& query, size_t k) const;

  /// Search scored against external (e.g. cluster-merged) corpus
  /// statistics; null falls back to this engine's own corpus.
  std::vector<TableResult> Search(const std::string& query, size_t k,
                                  const Bm25Index::CorpusStats* stats) const;

  /// This engine's contribution to a distributed-IDF gather for `query`.
  Bm25Index::CorpusStats GatherStats(const std::string& query) const;

 private:
  const DataLakeCatalog* catalog_;
  Options options_;
  Bm25Index index_;
};

}  // namespace lake

#endif  // LAKE_SEARCH_KEYWORD_SEARCH_H_
