#ifndef LAKE_INDEX_HYPERPLANE_LSH_H_
#define LAKE_INDEX_HYPERPLANE_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/vector_ops.h"
#include "util/random.h"
#include "util/status.h"

namespace lake {

/// Random-hyperplane LSH for cosine similarity (Charikar's SimHash family),
/// the index TUS uses to retrieve related column embeddings in sub-linear
/// time. Each of `num_tables` tables hashes a vector to `bits_per_table`
/// sign bits of random Gaussian projections; near-duplicates collide in at
/// least one table with probability (1 - θ/π)^bits per table.
class HyperplaneLsh {
 public:
  struct Options {
    size_t dim = 64;
    size_t num_tables = 8;
    size_t bits_per_table = 12;
    uint64_t seed = 7;
  };

  explicit HyperplaneLsh(Options options);

  /// Inserts a vector under a caller id (dimension checked).
  Status Insert(uint64_t id, const Vector& vec);

  /// Candidate ids colliding with the query in >= 1 table (deduplicated).
  Result<std::vector<uint64_t>> Query(const Vector& query) const;

  size_t size() const { return size_; }
  const Options& options() const { return options_; }

 private:
  uint64_t TableKey(const Vector& vec, size_t table) const;

  Options options_;
  // planes_[t * bits + b] is one hyperplane normal of length dim.
  std::vector<Vector> planes_;
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> tables_;
  size_t size_ = 0;
};

}  // namespace lake

#endif  // LAKE_INDEX_HYPERPLANE_LSH_H_
