#include "index/hyperplane_lsh.h"

#include <algorithm>

#include "util/hash.h"

namespace lake {

HyperplaneLsh::HyperplaneLsh(Options options) : options_(options) {
  Rng rng(options_.seed);
  const size_t total = options_.num_tables * options_.bits_per_table;
  planes_.resize(total);
  for (Vector& plane : planes_) {
    plane.resize(options_.dim);
    for (float& x : plane) x = static_cast<float>(rng.NextGaussian());
  }
  tables_.resize(options_.num_tables);
}

uint64_t HyperplaneLsh::TableKey(const Vector& vec, size_t table) const {
  uint64_t key = 0;
  const size_t base = table * options_.bits_per_table;
  for (size_t b = 0; b < options_.bits_per_table; ++b) {
    key = (key << 1) | (Dot(vec, planes_[base + b]) >= 0 ? 1u : 0u);
  }
  // Mix the table id in so identical bit patterns in different tables do
  // not share buckets.
  return HashCombine(key, table);
}

Status HyperplaneLsh::Insert(uint64_t id, const Vector& vec) {
  if (vec.size() != options_.dim) {
    return Status::InvalidArgument("vector dim mismatch");
  }
  for (size_t t = 0; t < options_.num_tables; ++t) {
    tables_[t][TableKey(vec, t)].push_back(id);
  }
  ++size_;
  return Status::OK();
}

Result<std::vector<uint64_t>> HyperplaneLsh::Query(const Vector& query) const {
  if (query.size() != options_.dim) {
    return Status::InvalidArgument("query dim mismatch");
  }
  std::vector<uint64_t> out;
  for (size_t t = 0; t < options_.num_tables; ++t) {
    auto it = tables_[t].find(TableKey(query, t));
    if (it == tables_[t].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace lake
