#ifndef LAKE_INDEX_MINHASH_LSH_H_
#define LAKE_INDEX_MINHASH_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sketch/minhash.h"
#include "util/status.h"

namespace lake {

/// (bands, rows) banding parameters with b*r <= signature width.
struct LshParams {
  size_t bands = 0;
  size_t rows = 0;
};

/// Probability that two sets with Jaccard `s` collide in at least one band
/// under (b, r) banding: 1 - (1 - s^r)^b.
double LshCollisionProbability(double s, size_t bands, size_t rows);

/// Weighted FP/FN area of the (bands, rows) S-curve around `threshold`:
/// fp_weight * ∫₀ᵗ P(s) ds + fn_weight * ∫ₜ¹ (1 − P(s)) ds. The objective
/// both OptimalLshParams and LSH Ensemble's per-partition probe tuning
/// minimize.
double LshProbeError(double threshold, size_t bands, size_t rows,
                     double fp_weight = 0.5, double fn_weight = 0.5);

/// Chooses (b, r) with b*r <= num_hashes minimizing LshProbeError around
/// `threshold` (the datasketch optimization).
LshParams OptimalLshParams(size_t num_hashes, double threshold,
                           double fp_weight = 0.5, double fn_weight = 0.5);

/// Classic MinHash LSH index with banding: sets whose signatures agree on
/// all rows of some band land in the same bucket. Query returns candidate
/// ids whose Jaccard with the query likely exceeds the construction
/// threshold. Ids are caller-defined (e.g. dense column ids).
class MinHashLsh {
 public:
  /// Index for signatures of width `num_hashes`, tuned for `threshold`.
  MinHashLsh(size_t num_hashes, double threshold);

  /// Index with explicit banding parameters (bands*rows <= num_hashes).
  MinHashLsh(size_t num_hashes, LshParams params);

  /// Inserts a signature under `id` (width must match; checked).
  Status Insert(uint64_t id, const MinHashSignature& signature);

  /// Candidate ids colliding with the query in >= 1 band. Deduplicated,
  /// unordered.
  Result<std::vector<uint64_t>> Query(const MinHashSignature& query) const;

  size_t num_hashes() const { return num_hashes_; }
  LshParams params() const { return params_; }
  size_t size() const { return size_; }

  /// Total number of bucket entries (memory proxy for benchmarks).
  size_t BucketEntries() const;

 private:
  uint64_t BandKey(const MinHashSignature& sig, size_t band) const;

  size_t num_hashes_;
  LshParams params_;
  size_t size_ = 0;
  // One hash table per band: band key -> ids.
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> tables_;
};

}  // namespace lake

#endif  // LAKE_INDEX_MINHASH_LSH_H_
