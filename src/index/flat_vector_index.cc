#include "index/flat_vector_index.h"

#include "util/top_k.h"

namespace lake {

Status FlatVectorIndex::Insert(uint64_t id, Vector vec) {
  if (vec.size() != dim_) {
    return Status::InvalidArgument("vector dim mismatch");
  }
  if (metric_ == VectorMetric::kCosine) NormalizeInPlace(vec);
  ids_.push_back(id);
  vectors_.push_back(std::move(vec));
  return Status::OK();
}

Result<std::vector<VectorHit>> FlatVectorIndex::Search(const Vector& query,
                                                       size_t k) const {
  if (query.size() != dim_) {
    return Status::InvalidArgument("query dim mismatch");
  }
  Vector q = query;
  if (metric_ == VectorMetric::kCosine) NormalizeInPlace(q);
  TopK<uint64_t> heap(k);
  for (size_t i = 0; i < vectors_.size(); ++i) {
    const double score = metric_ == VectorMetric::kCosine
                             ? Dot(q, vectors_[i])
                             : -L2DistanceSquared(q, vectors_[i]);
    heap.Push(score, ids_[i]);
  }
  std::vector<VectorHit> hits;
  for (auto& [score, id] : heap.Take()) hits.push_back(VectorHit{id, score});
  return hits;
}

}  // namespace lake
