#ifndef LAKE_INDEX_FLAT_VECTOR_INDEX_H_
#define LAKE_INDEX_FLAT_VECTOR_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/hnsw.h"
#include "index/vector_ops.h"
#include "util/status.h"

namespace lake {

/// Exact brute-force kNN over dense vectors. The ground truth for HNSW
/// recall measurements and the small-lake default (linear scan beats graph
/// indexes below a few thousand vectors).
class FlatVectorIndex {
 public:
  explicit FlatVectorIndex(size_t dim,
                           VectorMetric metric = VectorMetric::kCosine)
      : dim_(dim), metric_(metric) {}

  /// Inserts a vector under a caller id (dimension checked).
  Status Insert(uint64_t id, Vector vec);

  /// Exact k nearest neighbors, sorted by descending score.
  Result<std::vector<VectorHit>> Search(const Vector& query, size_t k) const;

  size_t size() const { return ids_.size(); }
  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  VectorMetric metric_;
  std::vector<uint64_t> ids_;
  std::vector<Vector> vectors_;
};

}  // namespace lake

#endif  // LAKE_INDEX_FLAT_VECTOR_INDEX_H_
