#include "index/inverted_index.h"

#include <algorithm>

namespace lake {

void InvertedIndex::AddSet(uint64_t set_id, std::vector<uint32_t> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  for (uint32_t t : tokens) postings_[t].push_back(set_id);
  ++num_sets_;
}

const std::vector<uint64_t>& InvertedIndex::Postings(uint32_t token) const {
  auto it = postings_.find(token);
  return it == postings_.end() ? empty_ : it->second;
}

std::vector<std::pair<uint64_t, uint32_t>> InvertedIndex::OverlapCounts(
    const std::vector<uint32_t>& query_tokens) const {
  std::vector<uint32_t> q = query_tokens;
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());

  std::unordered_map<uint64_t, uint32_t> counts;
  for (uint32_t t : q) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    for (uint64_t id : it->second) ++counts[id];
  }
  return {counts.begin(), counts.end()};
}

size_t InvertedIndex::DocumentFrequency(uint32_t token) const {
  auto it = postings_.find(token);
  return it == postings_.end() ? 0 : it->second.size();
}

size_t InvertedIndex::TotalPostings() const {
  size_t n = 0;
  for (const auto& [t, p] : postings_) n += p.size();
  return n;
}

}  // namespace lake
