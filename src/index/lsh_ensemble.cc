#include "index/lsh_ensemble.h"

#include <algorithm>
#include <cmath>

#include "index/minhash_lsh.h"
#include "util/hash.h"

namespace lake {

double ContainmentToJaccard(double containment, size_t query_cardinality,
                            size_t upper) {
  const double q = static_cast<double>(query_cardinality);
  const double u = static_cast<double>(upper);
  const double inter = containment * q;
  const double denom = q + u - inter;
  if (denom <= 0) return 1.0;
  return std::clamp(inter / denom, 0.0, 1.0);
}

Status LshEnsemble::Add(uint64_t id, MinHashSignature signature,
                        size_t cardinality) {
  if (built_) return Status::FailedPrecondition("ensemble already built");
  if (signature.num_hashes() != options_.num_hashes) {
    return Status::InvalidArgument("signature width mismatch");
  }
  entries_.push_back(Entry{id, std::move(signature), cardinality});
  return Status::OK();
}

uint64_t LshEnsemble::BandKey(const MinHashSignature& sig, size_t rows,
                              size_t band) {
  uint64_t key = Hash64(static_cast<uint64_t>(band * 131071 + rows),
                        /*seed=*/0xe17a5);
  const size_t begin = band * rows;
  for (size_t r = 0; r < rows; ++r) {
    key = HashCombine(key, sig.value(begin + r));
  }
  return key;
}

Status LshEnsemble::Build() {
  if (built_) return Status::FailedPrecondition("ensemble already built");
  built_ = true;
  if (entries_.empty()) return Status::OK();

  // Equi-depth partitioning by ascending cardinality (the paper's optimal
  // partitioning minimizes false positives under a power-law cardinality
  // distribution; equi-depth is its practical instantiation).
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (entries_[a].cardinality != entries_[b].cardinality) {
      return entries_[a].cardinality < entries_[b].cardinality;
    }
    return entries_[a].id < entries_[b].id;
  });

  const size_t p = std::max<size_t>(
      1, std::min(options_.num_partitions, entries_.size()));
  partitions_.resize(p);

  // Power-of-two row counts <= num_hashes.
  std::vector<size_t> row_choices;
  for (size_t r = 1; r <= options_.num_hashes; r *= 2) row_choices.push_back(r);

  const size_t per = (entries_.size() + p - 1) / p;
  for (size_t pi = 0; pi < p; ++pi) {
    Partition& part = partitions_[pi];
    const size_t begin = pi * per;
    const size_t end = std::min(entries_.size(), begin + per);
    if (begin >= end) {
      // Empty tail partition (more partitions than entries); keep it inert.
      part.lower = part.upper = 0;
      continue;
    }
    part.lower = entries_[order[begin]].cardinality;
    part.upper = entries_[order[end - 1]].cardinality;
    part.bandings.reserve(row_choices.size());
    for (size_t rows : row_choices) {
      Banding banding;
      banding.rows = rows;
      banding.tables.resize(options_.num_hashes / rows);
      part.bandings.push_back(std::move(banding));
    }
    for (size_t i = begin; i < end; ++i) {
      const Entry& e = entries_[order[i]];
      for (Banding& banding : part.bandings) {
        for (size_t band = 0; band < banding.tables.size(); ++band) {
          banding.tables[band][BandKey(e.signature, banding.rows, band)]
              .push_back(e.id);
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> LshEnsemble::Query(const MinHashSignature& query,
                                                 size_t query_cardinality,
                                                 double threshold) const {
  if (!built_) return Status::FailedPrecondition("call Build() first");
  if (query.num_hashes() != options_.num_hashes) {
    return Status::InvalidArgument("signature width mismatch");
  }
  if (query_cardinality == 0) return std::vector<uint64_t>{};
  threshold = std::clamp(threshold, 0.0, 1.0);

  std::vector<uint64_t> out;
  for (const Partition& part : partitions_) {
    if (part.bandings.empty()) continue;
    // Highest achievable containment in this partition is upper/|Q|.
    const double max_containment =
        std::min(1.0, static_cast<double>(part.upper) /
                          static_cast<double>(query_cardinality));
    if (max_containment < threshold) continue;

    const double j =
        ContainmentToJaccard(threshold, query_cardinality, part.upper);
    // Tune (r, b) over the bandings this partition actually materialized:
    // for each available row count, every band-prefix length is a valid
    // probe plan; pick the (r, b) minimizing the weighted FP/FN area at
    // the partition's equivalent Jaccard threshold (false negatives
    // weighted higher, mirroring the paper's recall goal).
    const Banding* chosen = &part.bandings[0];
    size_t bands = 1;
    double best_err = 1e300;
    for (const Banding& banding : part.bandings) {
      // Power-of-two probe lengths (plus the full prefix) are enough to
      // land near the optimum and keep per-query tuning cheap.
      for (size_t b = 1; b <= banding.tables.size(); b *= 2) {
        for (size_t probe : {b, banding.tables.size()}) {
          const double err = LshProbeError(j, probe, banding.rows,
                                           /*fp_weight=*/0.4,
                                           /*fn_weight=*/0.6);
          if (err < best_err) {
            best_err = err;
            chosen = &banding;
            bands = probe;
          }
        }
      }
    }
    for (size_t band = 0; band < bands; ++band) {
      auto it = chosen->tables[band].find(BandKey(query, chosen->rows, band));
      if (it == chosen->tables[band].end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<size_t> LshEnsemble::PartitionUpperBounds() const {
  std::vector<size_t> out;
  out.reserve(partitions_.size());
  for (const Partition& p : partitions_) out.push_back(p.upper);
  return out;
}

}  // namespace lake
