#ifndef LAKE_INDEX_LSH_ENSEMBLE_H_
#define LAKE_INDEX_LSH_ENSEMBLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sketch/minhash.h"
#include "util/status.h"

namespace lake {

/// LSH Ensemble (Zhu et al., VLDB 2016): internet-scale *domain search* —
/// given a query column, find indexed columns X maximizing the containment
/// |Q ∩ X| / |Q| — under heavily skewed cardinality distributions.
///
/// Containment queries cannot be answered directly by Jaccard-tuned LSH
/// because the containment↔Jaccard conversion depends on |X|, which varies
/// by orders of magnitude across a lake. The ensemble partitions indexed
/// sets by cardinality (equi-depth), so each partition has a tight upper
/// bound u_p; at query time the containment threshold t is converted to a
/// per-partition Jaccard threshold
///     j_p = t·|Q| / (|Q| + u_p − t·|Q|)
/// and each partition is probed with banding parameters (b, r) tuned for
/// j_p. Partitions whose u_p cannot meet the threshold are skipped.
///
/// Per partition, bandings for every power-of-two row count r are
/// precomputed; a query probes a b-band prefix of the r-banding chosen by
/// the same FP/FN optimization datasketch uses.
class LshEnsemble {
 public:
  struct Options {
    size_t num_hashes = 128;   // MinHash signature width
    size_t num_partitions = 8; // equi-depth cardinality partitions
  };

  explicit LshEnsemble(Options options) : options_(options) {}

  /// Stages one set for indexing. `cardinality` is the exact (or estimated)
  /// distinct count of the indexed set.
  Status Add(uint64_t id, MinHashSignature signature, size_t cardinality);

  /// Partitions staged entries and builds all banding tables. Must be
  /// called once, after all Add calls, before Query.
  Status Build();

  /// Ids of candidate sets whose containment of the query likely exceeds
  /// `threshold` in [0, 1]. `query_cardinality` is |Q|.
  Result<std::vector<uint64_t>> Query(const MinHashSignature& query,
                                      size_t query_cardinality,
                                      double threshold) const;

  size_t size() const { return entries_.size(); }
  bool built() const { return built_; }
  size_t num_partitions() const { return partitions_.size(); }

  /// Upper cardinality bound of each partition (diagnostics/benchmarks).
  std::vector<size_t> PartitionUpperBounds() const;

 private:
  struct Entry {
    uint64_t id;
    MinHashSignature signature;
    size_t cardinality;
  };

  /// One banding layout: for a fixed row count r, `tables[band]` maps the
  /// band key to member ids. A query probes a prefix of the bands.
  struct Banding {
    size_t rows;
    std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> tables;
  };

  struct Partition {
    size_t lower = 0;  // min cardinality (inclusive)
    size_t upper = 0;  // max cardinality (inclusive)
    std::vector<Banding> bandings;  // one per power-of-two row count
  };

  static uint64_t BandKey(const MinHashSignature& sig, size_t rows,
                          size_t band);

  Options options_;
  bool built_ = false;
  std::vector<Entry> entries_;
  std::vector<Partition> partitions_;
};

/// Converts a containment threshold into the equivalent Jaccard threshold
/// for candidate sets of cardinality at most `upper`, given query size q:
/// the minimum possible Jaccard of a pair meeting the containment bound.
double ContainmentToJaccard(double containment, size_t query_cardinality,
                            size_t upper);

}  // namespace lake

#endif  // LAKE_INDEX_LSH_ENSEMBLE_H_
