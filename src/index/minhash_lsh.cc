#include "index/minhash_lsh.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/logging.h"

namespace lake {

double LshCollisionProbability(double s, size_t bands, size_t rows) {
  return 1.0 - std::pow(1.0 - std::pow(s, static_cast<double>(rows)),
                        static_cast<double>(bands));
}

namespace {

// Numeric integral of the S-curve on [a, b] with the trapezoid rule.
double IntegrateCollision(double a, double b, size_t bands, size_t rows) {
  constexpr int kSteps = 64;
  const double h = (b - a) / kSteps;
  double sum = 0.5 * (LshCollisionProbability(a, bands, rows) +
                      LshCollisionProbability(b, bands, rows));
  for (int i = 1; i < kSteps; ++i) {
    sum += LshCollisionProbability(a + h * i, bands, rows);
  }
  return sum * h;
}

}  // namespace

double LshProbeError(double threshold, size_t bands, size_t rows,
                     double fp_weight, double fn_weight) {
  threshold = std::clamp(threshold, 1e-3, 1.0);
  const double fp = IntegrateCollision(0.0, threshold, bands, rows);
  const double fn =
      (1.0 - threshold) - IntegrateCollision(threshold, 1.0, bands, rows);
  return fp_weight * fp + fn_weight * fn;
}

LshParams OptimalLshParams(size_t num_hashes, double threshold,
                           double fp_weight, double fn_weight) {
  LshParams best{1, num_hashes};
  double best_err = 1e300;
  for (size_t rows = 1; rows <= num_hashes; ++rows) {
    const size_t bands = num_hashes / rows;
    if (bands == 0) break;
    const double err =
        LshProbeError(threshold, bands, rows, fp_weight, fn_weight);
    if (err < best_err) {
      best_err = err;
      best = LshParams{bands, rows};
    }
  }
  return best;
}

MinHashLsh::MinHashLsh(size_t num_hashes, double threshold)
    : MinHashLsh(num_hashes, OptimalLshParams(num_hashes, threshold)) {}

MinHashLsh::MinHashLsh(size_t num_hashes, LshParams params)
    : num_hashes_(num_hashes), params_(params) {
  LAKE_CHECK(params_.bands >= 1 && params_.rows >= 1);
  LAKE_CHECK(params_.bands * params_.rows <= num_hashes_);
  tables_.resize(params_.bands);
}

uint64_t MinHashLsh::BandKey(const MinHashSignature& sig, size_t band) const {
  uint64_t key = Hash64(static_cast<uint64_t>(band), /*seed=*/0x5ba2d3);
  const size_t begin = band * params_.rows;
  for (size_t r = 0; r < params_.rows; ++r) {
    key = HashCombine(key, sig.value(begin + r));
  }
  return key;
}

Status MinHashLsh::Insert(uint64_t id, const MinHashSignature& signature) {
  if (signature.num_hashes() != num_hashes_) {
    return Status::InvalidArgument("signature width mismatch");
  }
  for (size_t b = 0; b < params_.bands; ++b) {
    tables_[b][BandKey(signature, b)].push_back(id);
  }
  ++size_;
  return Status::OK();
}

Result<std::vector<uint64_t>> MinHashLsh::Query(
    const MinHashSignature& query) const {
  if (query.num_hashes() != num_hashes_) {
    return Status::InvalidArgument("signature width mismatch");
  }
  std::vector<uint64_t> out;
  for (size_t b = 0; b < params_.bands; ++b) {
    auto it = tables_[b].find(BandKey(query, b));
    if (it == tables_[b].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t MinHashLsh::BucketEntries() const {
  size_t n = 0;
  for (const auto& table : tables_) {
    for (const auto& [key, ids] : table) n += ids.size();
  }
  return n;
}

}  // namespace lake
