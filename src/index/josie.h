#ifndef LAKE_INDEX_JOSIE_H_
#define LAKE_INDEX_JOSIE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "text/vocabulary.h"
#include "util/cancel.h"
#include "util/status.h"

namespace lake {

/// JOSIE-style *exact* top-k overlap set-similarity search (Zhu et al.,
/// SIGMOD 2019): given a query column's value set Q, return the k indexed
/// sets S maximizing |Q ∩ S|, exactly.
///
/// Tokens are globally ordered rarest-first (ascending document frequency),
/// the order JOSIE uses so that posting lists read early are short and
/// prune most. The query algorithm reads posting lists in that order,
/// maintaining exact partial overlaps for seen candidates, and stops
/// reading new lists once the number of unread query tokens cannot lift an
/// unseen set above the current k-th overlap (prefix filter). Remaining
/// candidates are bounded with the position filter
///     ub(S) = partial + min(|Q|-i, |S|-pos(S))
/// and only survivors are verified by merging list suffixes. Results are
/// exact; the filters only save work.
class JosieIndex {
 public:
  struct Hit {
    uint64_t id = 0;
    uint32_t overlap = 0;
  };

  /// Counters describing how much work one query did (for the E4 bench).
  struct QueryStats {
    size_t posting_entries_read = 0;
    size_t candidates_seen = 0;
    size_t candidates_verified = 0;
    size_t lists_read = 0;
  };

  JosieIndex() = default;

  /// Stages a set of raw values under a caller id. Values are deduplicated.
  Status AddSet(uint64_t external_id, const std::vector<std::string>& values);

  /// Freezes the index: fixes the global token order and builds postings.
  Status Build();

  /// Exact top-k by overlap (descending; ties by insertion order). Sets
  /// with zero overlap are never returned. `stats` is optional. `cancel`
  /// is polled between posting lists and along the verification loop;
  /// expiry unwinds with kDeadlineExceeded / kCancelled.
  Result<std::vector<Hit>> TopK(const std::vector<std::string>& query_values,
                                size_t k, QueryStats* stats = nullptr,
                                const CancelToken* cancel = nullptr) const;

  /// Brute-force reference: scans every set. Used to validate exactness
  /// and as the E4 baseline.
  Result<std::vector<Hit>> TopKBruteForce(
      const std::vector<std::string>& query_values, size_t k) const;

  /// Persists a *built* index (compact binary; postings are rebuilt on
  /// load, so only the token dictionary and rank arrays are stored).
  Status Save(std::ostream* out) const;

  /// Restores an index persisted with Save. Replaces this instance's
  /// state; the loaded index is built and immediately queryable.
  Status Load(std::istream* in);

  /// Persists a built index to `path` inside a checksummed snapshot
  /// envelope (sections "meta" = kind tag, "index" = Save payload),
  /// written atomically.
  Status SaveToFile(const std::string& path) const;

  /// Restores an index written by SaveToFile; CRC-verifies both sections
  /// before touching this instance, so a failed load leaves it unchanged.
  Status LoadFromFile(const std::string& path);

  size_t num_sets() const { return sets_.size(); }
  bool built() const { return built_; }
  size_t vocabulary_size() const { return vocab_.size(); }

 private:
  struct Posting {
    uint32_t set_index;  // dense internal index
    uint32_t position;   // rank position inside the set's sorted array
  };

  /// Query tokens mapped to ranks, sorted ascending (rare first), deduped.
  std::vector<uint32_t> QueryRanks(
      const std::vector<std::string>& query_values) const;

  bool built_ = false;
  Vocabulary vocab_;
  std::vector<uint64_t> external_ids_;
  // Pre-build: token-id sets. Post-build: rank arrays, sorted ascending.
  std::vector<std::vector<uint32_t>> sets_;
  std::vector<uint32_t> token_to_rank_;
  std::vector<std::vector<Posting>> postings_;  // indexed by rank
};

}  // namespace lake

#endif  // LAKE_INDEX_JOSIE_H_
