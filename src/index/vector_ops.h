#ifndef LAKE_INDEX_VECTOR_OPS_H_
#define LAKE_INDEX_VECTOR_OPS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace lake {

/// Dense embedding vector. float keeps HNSW/flat index memory at half of
/// double with no measurable quality loss for discovery workloads.
using Vector = std::vector<float>;

inline double Dot(const Vector& a, const Vector& b) {
  double s = 0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

inline double Norm(const Vector& a) { return std::sqrt(Dot(a, a)); }

inline double L2DistanceSquared(const Vector& a, const Vector& b) {
  double s = 0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

/// Cosine similarity in [-1, 1]; 0 when either vector is zero.
inline double CosineSimilarity(const Vector& a, const Vector& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na <= 0 || nb <= 0) return 0.0;
  return Dot(a, b) / (na * nb);
}

/// Scales to unit norm in place (no-op for the zero vector).
inline void NormalizeInPlace(Vector& a) {
  const double n = Norm(a);
  if (n <= 0) return;
  const float inv = static_cast<float>(1.0 / n);
  for (float& x : a) x *= inv;
}

inline void AddInPlace(Vector& a, const Vector& b, float scale = 1.0f) {
  if (a.size() < b.size()) a.resize(b.size(), 0.0f);
  for (size_t i = 0; i < b.size(); ++i) a[i] += scale * b[i];
}

}  // namespace lake

#endif  // LAKE_INDEX_VECTOR_OPS_H_
