#ifndef LAKE_INDEX_INVERTED_INDEX_H_
#define LAKE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace lake {

/// Token-id → posting-list index over integer token sets. The workhorse of
/// value-based discovery (§3 of the survey calls inverted lists the most
/// common lake index); JOSIE builds on top of it.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes `set_id` with its (not necessarily sorted) token ids.
  /// Duplicate tokens in one set are collapsed.
  void AddSet(uint64_t set_id, std::vector<uint32_t> tokens);

  /// Posting list (ascending set ids) of a token; empty when unseen.
  const std::vector<uint64_t>& Postings(uint32_t token) const;

  /// Exact overlap |Q ∩ S| for every set sharing >= 1 token with the query,
  /// by merging posting lists. Returns (set_id, overlap) pairs, unordered.
  std::vector<std::pair<uint64_t, uint32_t>> OverlapCounts(
      const std::vector<uint32_t>& query_tokens) const;

  /// Number of sets containing the token (posting length).
  size_t DocumentFrequency(uint32_t token) const;

  size_t num_sets() const { return num_sets_; }
  size_t num_tokens() const { return postings_.size(); }

  /// Total posting entries (memory proxy).
  size_t TotalPostings() const;

 private:
  std::unordered_map<uint32_t, std::vector<uint64_t>> postings_;
  std::vector<uint64_t> empty_;
  size_t num_sets_ = 0;
};

}  // namespace lake

#endif  // LAKE_INDEX_INVERTED_INDEX_H_
