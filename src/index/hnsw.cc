#include "index/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "store/snapshot.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace lake {

HnswIndex::HnswIndex(Options options)
    : options_(options),
      level_lambda_(1.0 / std::log(std::max<double>(2.0, options.m))),
      rng_(options.seed) {}

double HnswIndex::Distance(const Vector& a, const Vector& b) const {
  if (options_.metric == VectorMetric::kCosine) {
    // Vectors are normalized at insert/query time; 1 - dot is a proper
    // ordering-equivalent of angular distance.
    return 1.0 - Dot(a, b);
  }
  return L2DistanceSquared(a, b);
}

std::vector<std::pair<double, uint32_t>> HnswIndex::SearchLayer(
    const Vector& query, uint32_t entry, size_t ef, int layer) const {
  // Min-heap of candidates to expand; max-heap of current best ef results.
  using DistNode = std::pair<double, uint32_t>;
  std::priority_queue<DistNode, std::vector<DistNode>, std::greater<>>
      candidates;
  std::priority_queue<DistNode> best;
  std::unordered_set<uint32_t> visited;

  const double d0 = Distance(query, nodes_[entry].vec);
  candidates.emplace(d0, entry);
  best.emplace(d0, entry);
  visited.insert(entry);

  while (!candidates.empty()) {
    const auto [dist, node] = candidates.top();
    candidates.pop();
    if (dist > best.top().first && best.size() >= ef) break;
    for (uint32_t nb : nodes_[node].links[layer]) {
      if (!visited.insert(nb).second) continue;
      const double d = Distance(query, nodes_[nb].vec);
      if (best.size() < ef || d < best.top().first) {
        candidates.emplace(d, nb);
        best.emplace(d, nb);
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<DistNode> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // ascending distance
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    std::vector<std::pair<double, uint32_t>> candidates,
    size_t m) const {
  std::sort(candidates.begin(), candidates.end());
  std::vector<uint32_t> selected;
  selected.reserve(m);
  // Diversity heuristic: keep a candidate only if it is closer to the base
  // than to every already-selected neighbor, so links span directions
  // instead of clustering. Fill remaining slots with discarded candidates
  // (keepPrunedConnections) to preserve connectivity.
  std::vector<std::pair<double, uint32_t>> discarded;
  for (const auto& [dist, cand] : candidates) {
    if (selected.size() >= m) break;
    bool good = true;
    for (uint32_t s : selected) {
      if (Distance(nodes_[cand].vec, nodes_[s].vec) < dist) {
        good = false;
        break;
      }
    }
    if (good) selected.push_back(cand);
    else discarded.push_back({dist, cand});
  }
  for (const auto& [dist, cand] : discarded) {
    if (selected.size() >= m) break;
    selected.push_back(cand);
  }
  return selected;
}

Status HnswIndex::Insert(uint64_t id, Vector vec) {
  if (vec.size() != options_.dim) {
    return Status::InvalidArgument(
        StrFormat("vector dim %zu != index dim %zu", vec.size(),
                  options_.dim));
  }
  if (options_.metric == VectorMetric::kCosine) NormalizeInPlace(vec);

  const int level =
      static_cast<int>(-std::log(std::max(1e-12, rng_.NextUnit())) *
                       level_lambda_);
  const uint32_t idx = static_cast<uint32_t>(nodes_.size());
  Node node;
  node.id = id;
  node.vec = std::move(vec);
  node.links.resize(level + 1);
  nodes_.push_back(std::move(node));

  if (idx == 0) {
    max_level_ = level;
    entry_point_ = 0;
    return Status::OK();
  }

  uint32_t entry = entry_point_;
  // Greedy descent through layers above the new node's level.
  for (int l = max_level_; l > level; --l) {
    bool improved = true;
    double cur = Distance(nodes_[idx].vec, nodes_[entry].vec);
    while (improved) {
      improved = false;
      for (uint32_t nb : nodes_[entry].links[l]) {
        const double d = Distance(nodes_[idx].vec, nodes_[nb].vec);
        if (d < cur) {
          cur = d;
          entry = nb;
          improved = true;
        }
      }
    }
  }

  // Connect on layers min(level, max_level_) .. 0.
  for (int l = std::min(level, max_level_); l >= 0; --l) {
    auto near = SearchLayer(nodes_[idx].vec, entry, options_.ef_construction, l);
    std::vector<uint32_t> neighbors = SelectNeighbors(near, MaxLinks(l));
    nodes_[idx].links[l] = neighbors;
    for (uint32_t nb : neighbors) {
      nodes_[nb].links[l].push_back(idx);
      if (nodes_[nb].links[l].size() > MaxLinks(l)) {
        // Re-select the neighbor's links with the heuristic.
        std::vector<std::pair<double, uint32_t>> cands;
        cands.reserve(nodes_[nb].links[l].size());
        for (uint32_t x : nodes_[nb].links[l]) {
          cands.push_back({Distance(nodes_[nb].vec, nodes_[x].vec), x});
        }
        nodes_[nb].links[l] = SelectNeighbors(std::move(cands), MaxLinks(l));
      }
    }
    if (!near.empty()) entry = near.front().second;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = idx;
  }
  return Status::OK();
}

Result<std::vector<VectorHit>> HnswIndex::Search(const Vector& query, size_t k,
                                                 size_t ef_search) const {
  if (query.size() != options_.dim) {
    return Status::InvalidArgument("query dim mismatch");
  }
  if (nodes_.empty() || k == 0) return std::vector<VectorHit>{};

  Vector q = query;
  if (options_.metric == VectorMetric::kCosine) NormalizeInPlace(q);

  uint32_t entry = entry_point_;
  for (int l = max_level_; l > 0; --l) {
    bool improved = true;
    double cur = Distance(q, nodes_[entry].vec);
    while (improved) {
      improved = false;
      for (uint32_t nb : nodes_[entry].links[l]) {
        const double d = Distance(q, nodes_[nb].vec);
        if (d < cur) {
          cur = d;
          entry = nb;
          improved = true;
        }
      }
    }
  }

  const size_t ef = std::max(ef_search, k);
  auto near = SearchLayer(q, entry, ef, 0);
  std::vector<VectorHit> hits;
  hits.reserve(std::min(k, near.size()));
  for (size_t i = 0; i < near.size() && i < k; ++i) {
    const double score = options_.metric == VectorMetric::kCosine
                             ? 1.0 - near[i].first
                             : -near[i].first;
    hits.push_back(VectorHit{nodes_[near[i].second].id, score});
  }
  return hits;
}

size_t HnswIndex::TotalLinks() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    for (const auto& layer : node.links) n += layer.size();
  }
  return n;
}

}  // namespace lake

namespace lake {

namespace {
constexpr uint64_t kHnswMagic = 0x31484b4c;  // "LKH1"
}  // namespace

Status HnswIndex::Save(std::ostream* out) const {
  BinaryWriter w(out);
  w.WriteVarint(kHnswMagic);
  w.WriteVarint(options_.dim);
  w.WriteVarint(options_.metric == VectorMetric::kCosine ? 0 : 1);
  w.WriteVarint(options_.m);
  w.WriteVarint(options_.ef_construction);
  w.WriteFixed64(options_.seed);
  w.WriteVarint(static_cast<uint64_t>(max_level_ + 1));
  w.WriteVarint(entry_point_);
  w.WriteVarint(nodes_.size());
  for (const Node& node : nodes_) {
    w.WriteFixed64(node.id);
    w.WriteFloatVector(node.vec);
    w.WriteVarint(node.links.size());
    for (const auto& layer : node.links) w.WriteU32Vector(layer);
  }
  if (!w.ok()) return Status::IoError("write failed");
  return Status::OK();
}

Status HnswIndex::Load(std::istream* in) {
  BinaryReader r(in);
  LAKE_ASSIGN_OR_RETURN(uint64_t magic, r.ReadVarint());
  if (magic != kHnswMagic) return Status::IoError("not an HNSW index file");

  Options options;
  LAKE_ASSIGN_OR_RETURN(uint64_t dim, r.ReadVarint());
  options.dim = dim;
  LAKE_ASSIGN_OR_RETURN(uint64_t metric, r.ReadVarint());
  options.metric = metric == 0 ? VectorMetric::kCosine : VectorMetric::kL2;
  LAKE_ASSIGN_OR_RETURN(uint64_t m, r.ReadVarint());
  options.m = m;
  LAKE_ASSIGN_OR_RETURN(uint64_t efc, r.ReadVarint());
  options.ef_construction = efc;
  LAKE_ASSIGN_OR_RETURN(uint64_t seed, r.ReadFixed64());
  options.seed = seed;

  HnswIndex fresh(options);
  LAKE_ASSIGN_OR_RETURN(uint64_t levels, r.ReadVarint());
  fresh.max_level_ = static_cast<int>(levels) - 1;
  LAKE_ASSIGN_OR_RETURN(uint64_t entry, r.ReadVarint());
  fresh.entry_point_ = static_cast<uint32_t>(entry);
  LAKE_ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  fresh.nodes_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Node node;
    LAKE_ASSIGN_OR_RETURN(node.id, r.ReadFixed64());
    LAKE_ASSIGN_OR_RETURN(node.vec, r.ReadFloatVector());
    if (node.vec.size() != options.dim) {
      return Status::IoError("vector dimension mismatch");
    }
    LAKE_ASSIGN_OR_RETURN(uint64_t num_layers, r.ReadVarint());
    node.links.resize(num_layers);
    for (uint64_t l = 0; l < num_layers; ++l) {
      LAKE_ASSIGN_OR_RETURN(node.links[l], r.ReadU32Vector());
      for (uint32_t nb : node.links[l]) {
        if (nb >= count) return Status::IoError("link out of range");
      }
    }
    fresh.nodes_.push_back(std::move(node));
  }
  if (count > 0 && fresh.entry_point_ >= count) {
    return Status::IoError("entry point out of range");
  }
  *this = std::move(fresh);
  return Status::OK();
}

Status HnswIndex::SaveToFile(const std::string& path) const {
  store::SnapshotWriter snapshot;
  snapshot.AddSection("meta", "hnsw");
  std::ostringstream payload;
  LAKE_RETURN_IF_ERROR(Save(&payload));
  snapshot.AddSection("index", std::move(payload).str());
  return snapshot.WriteToFile(path);
}

Status HnswIndex::LoadFromFile(const std::string& path) {
  LAKE_ASSIGN_OR_RETURN(store::SnapshotReader reader,
                        store::SnapshotReader::OpenFile(path));
  LAKE_ASSIGN_OR_RETURN(std::string kind, reader.ReadSection("meta"));
  if (kind != "hnsw") {
    return Status::IoError("snapshot holds a \"" + kind +
                           "\" index, not an HNSW graph");
  }
  LAKE_ASSIGN_OR_RETURN(std::string payload, reader.ReadSection("index"));
  std::istringstream in(payload);
  return Load(&in);
}

}  // namespace lake
